"""Packaging metadata and console entry points.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) are unavailable.  This
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works offline.  Without installing anything,
``PYTHONPATH=src python -m repro.cli`` runs the same CLI the ``repro-sweep``
console script exposes.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-source the version from the package (it is folded into the sweep
# cache's code fingerprint, so distribution metadata must not drift from it).
_VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    Path(__file__).with_name("src").joinpath("repro", "__init__.py").read_text("utf-8"),
    re.MULTILINE,
).group(1)

setup(
    name="repro-async-fpga",
    version=_VERSION,
    description=(
        "Behavioural-model reproduction of the DATE'05 multi-style "
        "asynchronous FPGA paper: fabric, CAD flow, simulators, sweep engine"
    ),
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages("src"),
    extras_require={
        # Optional array-native CAD kernels (FlowOptions.kernel="numpy"):
        # bit-identical to the pure-python reference, ~3x faster place/route.
        "fast": ["numpy"],
    },
    entry_points={
        "console_scripts": [
            "repro-sweep=repro.cli:main",
            "repro-fuzz=repro.fuzz:main",
            "repro-lint=repro.verify.cli:main",
        ],
    },
)
