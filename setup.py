"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) are unavailable.  This
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works offline.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
