#!/usr/bin/env python3
"""The paper's experiment (Section 4 / Figure 3): the same 1-bit full adder in
QDI dual-rail and in micropipeline (bundled-data) style on the same fabric.

For both styles the script runs the complete flow, prints the LE-level mapping
(the dashed boxes of Figure 3), the filling ratios (the Section 5 claim), the
synchronous-FPGA baseline cost, and then simulates both implementations to
show they compute the same function under their respective protocols.

Run with::

    python examples/qdi_vs_micropipeline.py
"""

from repro import api
from repro.analysis.tables import format_table
from repro.baselines.compare import compare_with_sync_baseline
from repro.cad.flow import CadFlow
from repro.circuits.fulladder import micropipeline_full_adder, qdi_full_adder
from repro.core.params import ArchitectureParams


def describe(result) -> None:
    print(result.report())
    rows = [
        {
            "LE": le.name,
            "functions": ", ".join(f.role for f in le.functions),
            "lut_inputs_used": f"{len(le.lut_input_nets)}/7",
            "validity_lut": "used" if le.validity is not None else "-",
            "feedback": ", ".join(le.feedback_nets) or "-",
        }
        for le in result.mapped.les
    ]
    print(format_table(rows))
    print()


def main() -> None:
    flow = CadFlow(ArchitectureParams(width=5, height=5))

    print("=== Figure 3b: QDI dual-rail full adder ===")
    qdi_result = flow.run(qdi_full_adder())
    describe(qdi_result)

    print("=== Figure 3a: micropipeline (bundled-data) full adder ===")
    mp_result = flow.run(micropipeline_full_adder())
    describe(mp_result)

    print("=== Section 5: filling ratios ===")
    print(format_table(api.reproduce_filling_ratios()))
    print()

    print("=== Baseline: the same circuits on a synchronous LUT4 FPGA (ref. [3]) ===")
    print(format_table(compare_with_sync_baseline([qdi_full_adder(), micropipeline_full_adder()])))
    print()

    print("=== Functional check (both styles, mapped designs, 4-phase environments) ===")
    for style in ("qdi", "micropipeline"):
        outcome = api.simulate_circuit(style, use_mapped=True)
        print(f"  {style:>14}: {len(outcome.inputs)} tokens, correct = {outcome.correct}, "
              f"simulated time = {outcome.simulated_time_ps} ps")


if __name__ == "__main__":
    main()
