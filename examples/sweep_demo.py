#!/usr/bin/env python3
"""Sweep engine demo: the Python API and the ``repro-sweep`` CLI.

Part 1 (API): runs the full circuit registry over two fabric sizes in
parallel (cold cache), once more to show the content-addressed store serving
every point, and writes CSV/JSON reports.

Part 2 (CLI): drives the same engine through the ``repro-sweep`` subcommands
-- ``run`` (twice: the second run demonstrates the placement cache serving an
options-only channel-width change), ``stats``, ``gc`` and ``export`` -- by
calling :func:`repro.cli.main` in-process, so the demo works without
installing the console script.  From a shell the equivalent is::

    repro-sweep run --circuit qdi_full_adder --channel-width 8 --store CACHE
    repro-sweep run --circuit qdi_full_adder --channel-width 10 --store CACHE
    repro-sweep stats --store CACHE
    repro-sweep gc --store CACHE
    repro-sweep export --store CACHE --csv out.csv

Run with::

    PYTHONPATH=src python examples/sweep_demo.py
"""

import tempfile
from pathlib import Path

from repro import api, cli
from repro.cad.flow import FlowOptions
from repro.core.params import ArchitectureParams
from repro.sweep import format_report, write_csv, write_json


def demo_api(cache_dir: str) -> None:
    architectures = (ArchitectureParams(), ArchitectureParams().scaled(8, 8))
    options = FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False)

    print("=== Cold run: 4 workers, empty cache ===")
    report = api.run_sweep(
        architectures=architectures, options=options, workers=4, cache_dir=cache_dir
    )
    print(format_report(report))
    print()

    print("=== Warm run: every point served from the store ===")
    cached = api.run_sweep(
        architectures=architectures, options=options, workers=4, cache_dir=cache_dir
    )
    print(f"stats: {cached.stats()}")
    assert cached.flow_executions == 0, "second run must not re-execute any flow"
    assert cached.summaries() == report.summaries(), "cache must be transparent"
    print()

    out_dir = Path(tempfile.gettempdir()) / "repro-sweep-reports"
    csv_path = write_csv(report, out_dir / "registry_sweep.csv")
    json_path = write_json(report, out_dir / "registry_sweep.json")
    print(f"wrote {csv_path}")
    print(f"wrote {json_path}")
    print()


def demo_cli(cache_dir: str) -> None:
    def run(*argv: str) -> None:
        print(f"$ repro-sweep {' '.join(argv)}")
        code = cli.main(list(argv))
        assert code == 0, f"repro-sweep {argv[0]} exited {code}"
        print()

    print("=== The same engine from the shell: repro-sweep ===")
    run(
        "run", "--circuit", "qdi_full_adder",
        "--channel-width", "8", "--store", cache_dir,
    )
    # Channel width is routing-only: the second run misses the summary cache
    # (different result!) but reuses the cached placement -- watch the
    # placement_cache_hit column flip to True.
    run(
        "run", "--circuit", "qdi_full_adder",
        "--channel-width", "10", "--store", cache_dir,
    )
    run("stats", "--store", cache_dir)
    run("gc", "--store", cache_dir, "--dry-run")
    out_dir = Path(tempfile.gettempdir()) / "repro-sweep-reports"
    run("export", "--store", cache_dir, "--csv", str(out_dir / "cli_export.csv"))


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as cache_dir:
        demo_api(cache_dir)
    with tempfile.TemporaryDirectory(prefix="repro-sweep-cli-") as cache_dir:
        demo_cli(cache_dir)


if __name__ == "__main__":
    main()
