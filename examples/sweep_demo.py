#!/usr/bin/env python3
"""Sweep engine demo: the full circuit registry over two fabric sizes.

Runs the grid once in parallel (cold cache), once more to show the
content-addressed store serving every point, and writes CSV/JSON reports.

Run with::

    PYTHONPATH=src python examples/sweep_demo.py
"""

import tempfile
from pathlib import Path

from repro import api
from repro.cad.flow import FlowOptions
from repro.core.params import ArchitectureParams
from repro.sweep import format_report, write_csv, write_json


def main() -> None:
    architectures = (ArchitectureParams(), ArchitectureParams().scaled(8, 8))
    options = FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False)

    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as cache_dir:
        print("=== Cold run: 4 workers, empty cache ===")
        report = api.run_sweep(
            architectures=architectures, options=options, workers=4, cache_dir=cache_dir
        )
        print(format_report(report))
        print()

        print("=== Warm run: every point served from the store ===")
        cached = api.run_sweep(
            architectures=architectures, options=options, workers=4, cache_dir=cache_dir
        )
        print(f"stats: {cached.stats()}")
        assert cached.flow_executions == 0, "second run must not re-execute any flow"
        assert cached.summaries() == report.summaries(), "cache must be transparent"
        print()

        out_dir = Path(tempfile.gettempdir()) / "repro-sweep-reports"
        csv_path = write_csv(report, out_dir / "registry_sweep.csv")
        json_path = write_json(report, out_dir / "registry_sweep.json")
        print(f"wrote {csv_path}")
        print(f"wrote {json_path}")


if __name__ == "__main__":
    main()
