#!/usr/bin/env python3
"""Pipeline experiment: stream tokens through WCHB FIFOs of increasing depth.

Demonstrates the QDI pipeline style (weak-conditioned half buffers) on the
gate-level simulator: tokens flow in order, latency grows with depth, and the
handshake protocol is verified by the channel checkers.

Run with::

    python examples/pipeline_throughput.py
"""

from repro.analysis.tables import format_table
from repro.asynclogic.tokens import average_latency, throughput
from repro.circuits.fifo import wchb_fifo
from repro.sim import (
    FourPhaseDualRailConsumer,
    FourPhaseDualRailProducer,
    GateLevelSimulator,
    HandshakeHarness,
)

TOKENS = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0]


def measure(depth: int) -> dict:
    fifo = wchb_fifo(depth)
    simulator = GateLevelSimulator(fifo.netlist)
    producer = FourPhaseDualRailProducer(fifo.channel("in"), TOKENS, "in_ack")
    consumer = FourPhaseDualRailConsumer(fifo.channel("out"), "out_ack")
    end_time = HandshakeHarness(simulator, [producer, consumer]).run()
    assert consumer.received == TOKENS, "FIFO must deliver tokens in order"
    return {
        "depth": depth,
        "tokens": len(consumer.received),
        "sim_time_ps": end_time,
        "avg_token_latency_ps": round(average_latency(producer.tokens) or 0, 1),
        "throughput_tokens_per_ns": round((throughput(producer.tokens) or 0) * 1000, 3),
    }


def main() -> None:
    rows = [measure(depth) for depth in (2, 3, 4, 6, 8)]
    print(format_table(rows))
    print()
    print("All FIFOs delivered every token in order under the 4-phase dual-rail protocol.")


if __name__ == "__main__":
    main()
