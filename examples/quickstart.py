#!/usr/bin/env python3
"""Quickstart: map, place, route and simulate the paper's QDI full adder.

Run with::

    python examples/quickstart.py
"""

from repro import api
from repro.analysis.figures import render_fabric_floorplan
from repro.analysis.tables import format_table
from repro.cad.flow import CadFlow
from repro.circuits.fulladder import qdi_full_adder
from repro.core.params import ArchitectureParams


def main() -> None:
    # 1. The Section 5 headline numbers in one call.
    print("=== Filling ratios (paper Section 5) ===")
    print(format_table(api.reproduce_filling_ratios()))
    print()

    # 2. Run the full CAD flow on the QDI full adder (Figure 3b).
    flow = CadFlow(ArchitectureParams(width=5, height=5))
    result = flow.run(qdi_full_adder())
    print(result.report())
    print()
    print(render_fabric_floorplan(flow.fabric, result.placement))
    print()

    # 3. Simulate the mapped design with a 4-phase dual-rail environment.
    outcome = api.simulate_circuit("qdi", use_mapped=True)
    print(f"simulated {len(outcome.inputs)} tokens on the mapped design; "
          f"all results correct: {outcome.correct}")
    print(f"simulated time: {outcome.simulated_time_ps} ps")


if __name__ == "__main__":
    main()
