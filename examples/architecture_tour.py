#!/usr/bin/env python3
"""A tour of the architecture model: Figures 1 and 2, fabric statistics,
configuration-bit budget and the routing-resource graph.

Run with::

    python examples/architecture_tour.py
"""

from repro.analysis.area import fabric_area_report, plb_area_estimate
from repro.analysis.figures import render_figure1_plb, render_figure2_le
from repro.analysis.tables import format_table
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams, RoutingParams
from repro.core.rrgraph import RoutingResourceGraph
from repro.core.stats import fabric_statistics


def main() -> None:
    params = ArchitectureParams()

    print(render_figure2_le(params))
    print()
    print(render_figure1_plb(params))
    print()

    print("=== Fabric statistics (default 6x6 instance) ===")
    stats = fabric_statistics(params)
    for key in ("grid", "plb_count", "le_count", "io_pad_count", "channel_width",
                "routing_wires", "config_bits_total", "config_bits_plb",
                "config_bits_cbox", "config_bits_sbox"):
        print(f"  {key:>22}: {stats[key]}")
    print()

    print("=== Area model ===")
    print(f"  per PLB : {plb_area_estimate(params.plb)}")
    print(f"  fabric  : {fabric_area_report(params)}")
    print()

    print("=== Routing-resource graph ===")
    graph = RoutingResourceGraph(Fabric(params))
    print(f"  {graph.summary()}")
    print()

    print("=== Architecture genericity: scaling the fabric ===")
    rows = []
    for width, height, channels in ((4, 4, 6), (6, 6, 8), (8, 8, 10), (12, 12, 12)):
        scaled = ArchitectureParams(width=width, height=height,
                                    routing=RoutingParams(channel_width=channels))
        s = fabric_statistics(scaled)
        rows.append({"grid": s["grid"], "channel_width": channels,
                     "PLBs": s["plb_count"], "LEs": s["le_count"],
                     "config_bits": s["config_bits_total"]})
    print(format_table(rows))


if __name__ == "__main__":
    main()
