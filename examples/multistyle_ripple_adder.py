#!/usr/bin/env python3
"""Scaling experiment: N-bit ripple adders in QDI and micropipeline styles.

Sweeps the operand width, maps and packs each adder, and prints LE/PLB counts
and filling ratios -- the style trade-off the paper's architecture is designed
to let a designer explore on one fabric.

Run with::

    python examples/multistyle_ripple_adder.py [max_bits]
"""

import sys

from repro.analysis.tables import format_table
from repro.cad.metrics import filling_ratio
from repro.cad.pack import pack_design, packing_summary
from repro.circuits.adders import micropipeline_ripple_adder, qdi_ripple_adder


def main(max_bits: int = 8) -> None:
    widths = [bits for bits in (1, 2, 4, 8, 16) if bits <= max_bits]
    rows = []
    for bits in widths:
        for style_name, factory in (("qdi-dual-rail", qdi_ripple_adder),
                                    ("micropipeline", micropipeline_ripple_adder)):
            circuit = factory(bits)
            pack_design(circuit.mapped)
            report = filling_ratio(circuit.mapped)
            summary = packing_summary(circuit.mapped)
            rows.append(
                {
                    "bits": bits,
                    "style": style_name,
                    "LEs": len(circuit.mapped.les),
                    "PLBs": summary["plbs"],
                    "PDEs": len(circuit.mapped.pdes),
                    "filling_ratio": report.per_le,
                    "LE_occupancy": summary["le_occupancy"],
                }
            )
    print(format_table(rows))
    print()
    print("Observations:")
    print("  * QDI needs roughly 5x the LEs of bundled data (delay insensitivity is paid in area)")
    print("  * but fills each LE better, exactly the trend of the paper's 76% vs 51% claim;")
    print("  * only the micropipeline adders consume programmable delay elements.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
