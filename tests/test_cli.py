"""Tests of the ``repro-sweep`` CLI: every subcommand against a real store."""

import csv
import json

import pytest

from repro.cli import build_parser, main
from repro.fingerprint import code_fingerprint
from repro.sweep import SweepResultStore

RUN_ARGS = [
    "run",
    "--circuit",
    "qdi_full_adder",
    "--circuit",
    "micropipeline_full_adder",
    "--analysis-only",
]


def test_help_exits_zero():
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    for subcommand in ("run", "stats", "gc", "export", "clear", "chaos"):
        with pytest.raises(SystemExit) as excinfo:
            main([subcommand, "--help"])
        assert excinfo.value.code == 0


def test_run_stats_gc_round_trip(tmp_path, capsys):
    store_dir = str(tmp_path / "store")

    # run: cold, then warm (served from the store)
    assert main(RUN_ARGS + ["--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "qdi_full_adder" in out and "cache_misses=2" in out
    assert main(RUN_ARGS + ["--store", store_dir, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "cache_hits=2" in out and "flow_executions=0" in out

    # stats: both records are current (this process's fingerprint)
    assert main(["stats", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "records: 2" in out and "retired_records: 0" in out

    # simulate a retired generation, then gc it
    store = SweepResultStore(store_dir)
    store.put("ee" + "0" * 62, {"kind": "flow", "fingerprint": "retired-gen"})
    assert main(["gc", "--store", store_dir, "--dry-run"]) == 0
    assert "would remove 1" in capsys.readouterr().out
    assert store.stats()["retired_records"] == 1  # dry run deleted nothing
    assert main(["gc", "--store", store_dir]) == 0
    assert "removed 1" in capsys.readouterr().out
    stats = store.stats()
    assert stats["retired_records"] == 0 and stats["records"] == 2


def test_export_and_clear(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    csv_path = tmp_path / "out.csv"
    json_path = tmp_path / "out.json"
    assert main(RUN_ARGS + ["--store", store_dir, "--quiet"]) == 0
    capsys.readouterr()

    assert main(
        ["export", "--store", store_dir, "--csv", str(csv_path), "--json", str(json_path)]
    ) == 0
    with csv_path.open(encoding="utf-8", newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert {row["circuit"] for row in rows} == {
        "qdi_full_adder",
        "micropipeline_full_adder",
    }
    document = json.loads(json_path.read_text(encoding="utf-8"))
    assert len(document["rows"]) == 2

    # text export (no file arguments) prints the table
    assert main(["export", "--store", store_dir]) == 0
    assert "qdi_full_adder" in capsys.readouterr().out

    assert main(["clear", "--store", store_dir]) == 0
    assert "removed" in capsys.readouterr().out
    assert len(SweepResultStore(store_dir)) == 0
    assert main(["export", "--store", store_dir]) == 1  # nothing left to export


def test_export_filters_retired_generations(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    assert main(RUN_ARGS + ["--store", store_dir, "--quiet"]) == 0
    store = SweepResultStore(store_dir)
    stale = dict(next(store.records())[1])
    stale["fingerprint"] = "pre-edit-generation"
    store.put("ff" + "0" * 62, stale)
    capsys.readouterr()

    default_csv = tmp_path / "current.csv"
    assert main(["export", "--store", store_dir, "--csv", str(default_csv)]) == 0
    all_csv = tmp_path / "all.csv"
    assert main(
        ["export", "--store", store_dir, "--csv", str(all_csv), "--all-generations"]
    ) == 0
    capsys.readouterr()
    with default_csv.open(encoding="utf-8", newline="") as handle:
        assert len(list(csv.DictReader(handle))) == 2  # current generation only
    with all_csv.open(encoding="utf-8", newline="") as handle:
        assert len(list(csv.DictReader(handle))) == 3  # stale duplicate included


def test_run_writes_reports_and_strict_flag(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    assert main(RUN_ARGS + ["--csv", str(csv_path), "--quiet"]) == 0
    capsys.readouterr()
    assert csv_path.is_file()

    # qdi_multiplier_4x4 cannot place on the default 6x6 fabric: without
    # --strict that is a recorded outcome (exit 0), with --strict exit 1.
    failing = ["run", "--circuit", "qdi_multiplier_4x4"]
    assert main(failing + ["--quiet"]) == 0
    assert main(failing + ["--quiet", "--strict"]) == 1
    capsys.readouterr()


def test_grid_and_channel_width_axes(tmp_path, capsys):
    assert (
        main(
            RUN_ARGS[:3]  # run --circuit qdi_full_adder
            + ["--grid", "5x5", "--grid", "6x6", "--channel-width", "8", "--quiet"]
        )
        == 0
    )
    assert "points=2" in capsys.readouterr().out
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--grid", "not-a-grid"])


def test_timing_and_effort_axes(tmp_path, capsys):
    csv_path = tmp_path / "timing.csv"
    assert (
        main(
            RUN_ARGS[:3]  # run --circuit qdi_full_adder
            + [
                "--timing-tradeoff", "0.3",
                "--timing-tradeoff", "0.6",
                "--placement-effort", "0.5",
                "--csv", str(csv_path),
                "--quiet",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "points=2" in out  # two tradeoffs x one effort
    with csv_path.open(encoding="utf-8", newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    for row in rows:
        # --timing-tradeoff implies the timing-driven flow, and the timing
        # columns land in the report.
        assert row["timing_driven"] == "True"
        assert int(row["cycle_time_ps"]) > 0
        assert row["cycle_time_improvement_ps"] != ""


def test_routing_cache_warm_starts_ladder(tmp_path, capsys):
    store = str(tmp_path / "store")
    args = RUN_ARGS[:3] + [
        "--channel-width", "10",
        "--channel-width", "8",
        "--store", store,
        "--routing-cache",
        "--quiet",
    ]
    assert main(args) == 0
    capsys.readouterr()
    report_csv = tmp_path / "ladder.csv"
    assert main(["export", "--store", store, "--csv", str(report_csv)]) == 0
    capsys.readouterr()
    with report_csv.open(encoding="utf-8", newline="") as handle:
        rows = {row["label"]: row for row in csv.DictReader(handle)}
    assert rows["qdi_full_adder@6x6/cw8"]["routing_warm_started"] not in ("", "0")
    assert rows["qdi_full_adder@6x6/cw8"]["routing_success"] == "True"


def test_run_rejects_unknown_executor():
    with pytest.raises(SystemExit):
        main(["run", "--circuit", "qdi_full_adder", "--executor", "slurm"])


def test_stats_reports_current_fingerprint(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    SweepResultStore(store_dir)  # create empty
    assert main(["stats", "--store", store_dir]) == 0
    assert code_fingerprint() in capsys.readouterr().out

def test_readonly_commands_fail_on_missing_store(tmp_path, capsys):
    # Regression: stats/export/gc used to silently create an empty store at
    # a mistyped --store path and exit 0.  They must fail and not mkdir.
    missing = tmp_path / "no-such-store"
    for argv in (
        ["stats", "--store", str(missing)],
        ["export", "--store", str(missing)],
        ["gc", "--store", str(missing), "--dry-run"],
    ):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert "sweep result store does not exist" in captured.err
        assert not missing.exists(), argv


def test_store_create_false_requires_existing_directory(tmp_path):
    missing = tmp_path / "absent"
    with pytest.raises(FileNotFoundError):
        SweepResultStore(missing, create=False)
    assert not missing.exists()
    SweepResultStore(missing)  # default still creates
    assert missing.is_dir()
    SweepResultStore(missing, create=False)  # and then opens read-only fine


def test_run_artifacts_and_bitstream_export(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    artifacts = str(tmp_path / "arts")
    outdir = tmp_path / "bits"
    args = ["run", "--circuit", "qdi_full_adder", "--store", store_dir,
            "--artifacts", artifacts, "--quiet"]
    assert main(args) == 0
    capsys.readouterr()

    # --bitstreams without --artifacts is a usage error.
    assert main(["export", "--store", store_dir, "--bitstreams", str(outdir)]) == 2
    assert "--artifacts" in capsys.readouterr().err
    # A mistyped artifact directory fails without creating it.
    missing = tmp_path / "no-such-arts"
    assert main(
        ["export", "--store", store_dir, "--artifacts", str(missing),
         "--bitstreams", str(outdir)]
    ) == 2
    assert not missing.exists()
    capsys.readouterr()

    assert main(
        ["export", "--store", store_dir, "--artifacts", artifacts,
         "--bitstreams", str(outdir)]
    ) == 0
    out = capsys.readouterr().out
    assert "wrote 1 bitstream(s)" in out
    written = sorted(outdir.glob("*.bit"))
    assert len(written) == 1
    assert "qdi_full_adder" in written[0].name

    # The rendered file is bit-identical to a direct flow on the stored
    # architecture and options.
    from repro.artifacts import ArtifactStore, load_flow_artifacts
    from repro.cad.flow import CadFlow
    from repro.circuits.registry import build_circuit

    view = load_flow_artifacts(ArtifactStore(artifacts))[0]
    assert view.flow_key[:12] in written[0].name
    direct = CadFlow(view.architecture, view.options).run(build_circuit(view.circuit))
    assert written[0].read_bytes() == direct.bitstream.to_bytes()


def test_gc_max_bytes_reports_size_evictions(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    assert main(RUN_ARGS + ["--store", store_dir, "--quiet"]) == 0
    capsys.readouterr()
    store = SweepResultStore(store_dir)
    assert store.stats()["records"] == 2

    assert main(["gc", "--store", store_dir, "--dry-run", "--max-bytes", "1"]) == 0
    out = capsys.readouterr().out
    assert "would remove 2" in out and "2 evicted for the size bound" in out
    assert store.stats()["records"] == 2  # dry run deleted nothing

    assert main(["gc", "--store", store_dir, "--max-bytes", "1"]) == 0
    assert "2 evicted for the size bound" in capsys.readouterr().out
    assert store.stats()["records"] == 0

    # Without --max-bytes the size-bound clause stays out of the message.
    assert main(["gc", "--store", store_dir]) == 0
    assert "size bound" not in capsys.readouterr().out


def test_supervision_flags_reject_bad_values():
    # Usage errors must exit 2 (argparse convention), not crash or run.
    for argv in (
        ["run", "--circuit", "qdi_full_adder", "--timeout", "0"],
        ["run", "--circuit", "qdi_full_adder", "--timeout", "-3"],
        ["run", "--circuit", "qdi_full_adder", "--timeout", "soon"],
        ["run", "--circuit", "qdi_full_adder", "--retries", "0"],
        ["run", "--circuit", "qdi_full_adder", "--retries", "many"],
        ["run", "--circuit", "qdi_full_adder", "--backoff", "-1"],
        ["run", "--circuit", "qdi_full_adder", "--fallback", "slurm"],
        ["chaos", "--crash", "1.5"],
        ["chaos", "--hang", "-0.1"],
        ["chaos", "--retries", "0"],
        ["chaos", "--timeout", "0"],
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2, argv


def test_run_accepts_supervision_flags(tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    assert (
        main(
            RUN_ARGS
            + [
                "--store",
                store_dir,
                "--timeout",
                "120",
                "--retries",
                "2",
                "--backoff",
                "0.001",
                "--fail-fast",
                "--quiet",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "ok=2" in out and "poisoned=0" in out and "skipped=0" in out


def test_chaos_rejects_unknown_poison_label(capsys):
    assert main(["chaos", "--poison", "no_such@9x9/cw1", "--analysis-only"]) == 2
    assert "--poison label(s)" in capsys.readouterr().err


def test_chaos_campaign_smoke(tmp_path, capsys):
    store_dir = str(tmp_path / "chaos-store")
    report_path = tmp_path / "chaos.json"
    assert (
        main(
            [
                "chaos",
                "--analysis-only",
                "--seed",
                "3",
                "--crash",
                "0.5",
                "--oserror",
                "0.3",
                "--torn",
                "0.6",
                "--poison",
                "qdi_full_adder@6x6/cw8",
                "--store",
                store_dir,
                "--json",
                str(report_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "chaos: all recovery paths held" in out
    outcome = json.loads(report_path.read_text())
    assert outcome["completed"] and outcome["summaries_match"]
    assert outcome["statuses"]["poisoned"] >= 1
    # The torn records are sitting in the store's quarantine.
    store = SweepResultStore(store_dir)
    assert len(store.quarantined()) == outcome["quarantined"]
