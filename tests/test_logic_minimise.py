"""Unit tests for the cube-based minimiser (repro.logic.minimise)."""

import pytest

from repro.logic.functions import majority_table, xor_table
from repro.logic.minimise import (
    Cube,
    cover_is_hazard_free,
    minimise_sop,
    prime_implicants,
    sop_expression,
)
from repro.logic.truthtable import TruthTable


def _cover_matches(table, cover):
    for minterm in range(1 << table.arity):
        covered = any(cube.covers(minterm) for cube in cover)
        assert covered == bool(table.bits[minterm]), f"minterm {minterm}"


def test_cube_basics():
    cube = Cube(care=0b011, value=0b001, width=3)
    assert cube.covers(0b001)
    assert cube.covers(0b101)
    assert not cube.covers(0b011)
    assert cube.literal_count() == 2
    assert "a" in cube.to_expression(("a", "b", "c"))


def test_cube_rejects_value_outside_care():
    with pytest.raises(ValueError):
        Cube(care=0b01, value=0b10, width=2)


def test_cube_merge():
    a = Cube(care=0b11, value=0b00, width=2)
    b = Cube(care=0b11, value=0b01, width=2)
    merged = a.try_merge(b)
    assert merged is not None
    assert merged.care == 0b10 and merged.value == 0b00
    c = Cube(care=0b11, value=0b11, width=2)
    assert a.try_merge(c) is None  # differs in two literals


def test_prime_implicants_of_and():
    table = TruthTable.from_function(("a", "b"), lambda a, b: a and b)
    primes = prime_implicants(table)
    assert len(primes) == 1
    assert primes[0].covers(0b11)


def test_minimise_xor_needs_all_minterms():
    table = xor_table(2)
    cover = minimise_sop(table)
    assert len(cover) == 2
    _cover_matches(table, cover)


def test_minimise_majority():
    table = majority_table(3)
    cover = minimise_sop(table)
    _cover_matches(table, cover)
    # MAJ3 minimises to exactly three 2-literal products.
    assert len(cover) == 3
    assert all(cube.literal_count() == 2 for cube in cover)


def test_minimise_constant_functions():
    zero = TruthTable.constant(0, inputs=("a", "b"))
    assert minimise_sop(zero) == []
    assert sop_expression(zero) == "0"
    one = TruthTable.constant(1, inputs=("a", "b"))
    assert sop_expression(one) == "1"


def test_sop_expression_mentions_inputs():
    table = TruthTable.from_function(("x", "y"), lambda x, y: x and not y)
    text = sop_expression(table)
    assert "x" in text and "!y" in text


def test_hazard_free_cover_check():
    # f = a&b | !a&c has a static-1 hazard between minterms abc=111 and 011
    # unless the consensus term b&c is included.
    table = TruthTable.from_function(("a", "b", "c"), lambda a, b, c: (a and b) or ((not a) and c))
    minimal = minimise_sop(table)
    assert not cover_is_hazard_free(table, minimal)
    consensus = minimal + [Cube(care=0b110, value=0b110, width=3)]  # b & c
    assert cover_is_hazard_free(table, consensus)


def test_minimised_cover_is_correct_for_random_like_function():
    table = TruthTable.from_minterms(("a", "b", "c", "d"), [0, 1, 3, 7, 8, 9, 11, 15])
    cover = minimise_sop(table)
    _cover_matches(table, cover)
