"""Tests for the spec-driven circuit generator families.

Three layers per family:

* spec parsing / registry integration (``gen:`` names resolve everywhere a
  registry circuit name does);
* structural goldens at N=2 (LE and PLB counts, plus full place & route on
  :func:`recommended_fabric` with a routed-channel-width golden);
* simulation equivalence at N=2 in both styles, against the pure-Python
  reference functions, through the four-phase handshake harnesses.
"""

import pytest

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import DualRailEncoding
from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.pack import pack_design
from repro.circuits.generate import alu_reference, crc4_reference, recommended_fabric
from repro.circuits.registry import build_circuit, circuit_registry
from repro.circuits.specs import (
    GENERATOR_STYLES,
    CircuitSpec,
    build_from_spec,
    default_spec_names,
    generator_families,
    parse_spec,
)
from repro.sim import (
    FourPhaseBundledConsumer,
    FourPhaseBundledProducer,
    FourPhaseDualRailProducer,
    HandshakeHarness,
)
from repro.sim.handshake import PassiveDualRailConsumer
from repro.sim.lesim import simulate_mapped_design

ENC = DualRailEncoding()

FAMILIES = ("mult", "alu", "crc", "mac")


# ----------------------------------------------------------------------
# Spec parsing and registry integration
# ----------------------------------------------------------------------
def test_parse_spec_round_trips():
    spec = parse_spec("gen:mult4x4@qdi")
    assert spec == CircuitSpec("mult", 4, "qdi")
    assert spec.name() == "gen:mult4x4@qdi"
    spec = parse_spec("gen:alu8@micropipeline")
    assert spec == CircuitSpec("alu", 8, "micropipeline")
    assert spec.name() == "gen:alu8@micropipeline"


@pytest.mark.parametrize(
    "bad",
    [
        "mult4x4@qdi",  # missing gen: prefix
        "gen:frob4@qdi",  # unknown family
        "gen:mult4x4@sync",  # unknown style
        "gen:mult4x2@qdi",  # square family, non-square size
        "gen:alu2x2@qdi",  # scalar family, NxN size
        "gen:mult1x1@qdi",  # below min_size
        "gen:mult@qdi",  # no size at all
    ],
)
def test_parse_spec_rejects(bad):
    with pytest.raises(ValueError):
        parse_spec(bad)


def test_every_family_registers_both_styles():
    families = generator_families()
    assert set(FAMILIES) <= set(families)
    names = default_spec_names()
    registry = circuit_registry()
    for family in FAMILIES:
        for style in GENERATOR_STYLES:
            ladder = [
                n for n in names if n.startswith(f"gen:{family}") and n.endswith(f"@{style}")
            ]
            assert ladder, f"{family}@{style} missing from the default ladder"
            for name in ladder:
                assert name in registry


def test_build_circuit_falls_back_to_spec_parser():
    # A size outside the default ladder still builds through the registry.
    bench = build_circuit("gen:crc3@qdi")
    assert bench.name == "gen:crc3@qdi"
    assert bench.mapped.validate() == []
    with pytest.raises(ValueError):
        build_circuit("gen:frob4@qdi")


# ----------------------------------------------------------------------
# Structural goldens at N=2
# ----------------------------------------------------------------------
#: (family, style) -> (LE count, PLB count) at size 2.
STRUCTURE_GOLDEN = {
    ("mult", "qdi"): (27, 14),
    ("mult", "micropipeline"): (6, 3),
    ("alu", "qdi"): (65, 33),
    ("alu", "micropipeline"): (4, 2),
    ("crc", "qdi"): (15, 8),
    ("crc", "micropipeline"): (5, 3),
    ("mac", "qdi"): (13, 7),
    ("mac", "micropipeline"): (4, 2),
}


@pytest.mark.parametrize("family,style", sorted(STRUCTURE_GOLDEN))
def test_structure_golden(family, style):
    bench = build_from_spec(CircuitSpec(family, 2, style))
    assert bench.mapped.validate() == []
    les, plbs = STRUCTURE_GOLDEN[(family, style)]
    assert len(bench.mapped.les) == les
    assert len(pack_design(bench.mapped).plbs) == plbs


def _channel_width_used(flow, routing):
    """Max number of distinct tracks used in any one channel segment."""
    graph = flow.rr_graph
    usage = {}
    for routed in routing.routed.values():
        for node_id in routed.nodes:
            node = graph.node(node_id)
            if node.node_type.value == "wire":
                segment = node.name.rsplit("_t", 1)[0]
                usage.setdefault(segment, set()).add(node.track)
    return max(len(tracks) for tracks in usage.values())


#: (family, style) -> (grid side, fabric channel width, max tracks used).
FLOW_GOLDEN = {
    ("mult", "qdi"): (5, 12, 10),
    ("alu", "micropipeline"): (3, 10, 7),
    ("crc", "qdi"): (4, 14, 8),
    ("mac", "micropipeline"): (3, 8, 4),
}


@pytest.mark.parametrize("family,style", sorted(FLOW_GOLDEN))
def test_full_flow_golden(family, style):
    bench = build_from_spec(CircuitSpec(family, 2, style))
    arch = recommended_fabric(bench)
    side, channel_width, tracks_used = FLOW_GOLDEN[(family, style)]
    assert (arch.width, arch.height) == (side, side)
    assert arch.routing.channel_width == channel_width
    flow = CadFlow(arch, FlowOptions(placement_seed=1))
    result = flow.run(bench)
    assert result.placement.matches_design(result.mapped, flow.fabric)
    assert result.routing.success
    assert _channel_width_used(flow, result.routing) == tracks_used
    assert result.bitstream is not None
    assert result.timing.cycle_time_ps > 0


def test_crc_qdi_routes_passthrough_iv_rails():
    # Regression: at n=2 the iv1 initial-vector rails flow PI -> PO without
    # touching a LE; the router used to drop such pad-to-pad nets silently.
    bench = build_from_spec("gen:crc2@qdi")
    assert "iv1" in bench.metadata["state_channels"]
    flow = CadFlow(recommended_fabric(bench), FlowOptions(placement_seed=1))
    result = flow.run(bench)
    assert result.routing.success
    for rail in ("iv1_t", "iv1_f"):
        assert rail in result.routing.routed


# ----------------------------------------------------------------------
# Simulation equivalence at N=2, QDI style
# ----------------------------------------------------------------------
def _run_qdi(bench, producers, output_names):
    simulator = simulate_mapped_design(bench.mapped)
    ack = bench.metadata["ack_net"]
    consumers = [
        PassiveDualRailConsumer(Channel(name, 1, ENC), ack) for name in output_names
    ]
    HandshakeHarness(simulator, producers + consumers).run()
    return consumers


def _bit_producers(names, values, ack):
    return [
        FourPhaseDualRailProducer(
            Channel(name, 1, ENC), [(value >> bit) & 1 for value in values], ack
        )
        for bit, name in enumerate(names)
    ]


def test_qdi_mult_equivalence():
    bench = build_from_spec("gen:mult2x2@qdi")
    vectors = [(0, 0), (1, 2), (3, 3), (2, 1), (3, 1)]
    ack = bench.metadata["ack_net"]
    producers = _bit_producers(
        bench.metadata["a_channels"], [a for a, _ in vectors], ack
    ) + _bit_producers(bench.metadata["b_channels"], [b for _, b in vectors], ack)
    consumers = _run_qdi(bench, producers, bench.metadata["product_channels"])
    for index, (a, b) in enumerate(vectors):
        product = sum(consumers[bit].received[index] << bit for bit in range(4))
        assert product == a * b


def test_qdi_alu_equivalence():
    bench = build_from_spec("gen:alu2@qdi")
    vectors = [(0, 3, 2), (1, 1, 3), (2, 3, 1), (3, 2, 1), (0, 3, 3), (1, 0, 1)]
    ack = bench.metadata["ack_net"]
    producers = [
        FourPhaseDualRailProducer(Channel("op", 2, ENC), [op for op, _, _ in vectors], ack)
    ]
    producers += _bit_producers(["a0", "a1"], [a for _, a, _ in vectors], ack)
    producers += _bit_producers(["b0", "b1"], [b for _, _, b in vectors], ack)
    outputs = bench.metadata["result_channels"] + [bench.metadata["carry_channel"]]
    consumers = _run_qdi(bench, producers, outputs)
    for index, (op, a, b) in enumerate(vectors):
        result = sum(consumers[bit].received[index] << bit for bit in range(2))
        carry = consumers[2].received[index]
        assert (result, carry) == alu_reference(op, a, b, 2)


def test_qdi_crc_equivalence():
    bench = build_from_spec("gen:crc2@qdi")
    vectors = [(0b0000, (0, 0)), (0b1010, (1, 0)), (0b1111, (1, 1)), (0b0110, (0, 1))]
    ack = bench.metadata["ack_net"]
    producers = _bit_producers(
        bench.metadata["iv_channels"], [iv for iv, _ in vectors], ack
    ) + [
        FourPhaseDualRailProducer(
            Channel(name, 1, ENC), [message[step] for _, message in vectors], ack
        )
        for step, name in enumerate(bench.metadata["message_channels"])
    ]
    consumers = _run_qdi(bench, producers, bench.metadata["state_channels"])
    for index, (iv, message) in enumerate(vectors):
        state = sum(consumers[bit].received[index] << bit for bit in range(4))
        assert state == crc4_reference(iv, message)


def test_qdi_mac_equivalence():
    bench = build_from_spec("gen:mac2@qdi")
    vectors = [(0, 0), (3, 3), (1, 3), (2, 2), (3, 1)]
    ack = bench.metadata["ack_net"]
    producers = _bit_producers(
        bench.metadata["x_channels"], [x for x, _ in vectors], ack
    ) + _bit_producers(bench.metadata["w_channels"], [w for _, w in vectors], ack)
    consumers = _run_qdi(bench, producers, bench.metadata["sum_channels"])
    for index, (x, w) in enumerate(vectors):
        total = sum(
            consumers[bit].received[index] << bit for bit in range(len(consumers))
        )
        assert total == bin(x & w).count("1")


# ----------------------------------------------------------------------
# Simulation equivalence at N=2, micropipeline style
# ----------------------------------------------------------------------
def _run_micropipeline(bench, encoded_inputs):
    simulator = simulate_mapped_design(bench.mapped)
    input_channel = bench.metadata["input_channel"]
    output_channel = bench.metadata["output_channel"]
    producer = FourPhaseBundledProducer(
        input_channel, encoded_inputs, input_channel.ack_wire
    )
    consumer = FourPhaseBundledConsumer(
        output_channel, output_channel.req_wire, output_channel.ack_wire
    )
    HandshakeHarness(simulator, [producer, consumer]).run()
    return consumer.received


def test_micropipeline_mult_equivalence():
    bench = build_from_spec("gen:mult2x2@micropipeline")
    vectors = [(0, 0), (1, 2), (3, 3), (2, 3)]
    received = _run_micropipeline(bench, [a | (b << 2) for a, b in vectors])
    assert received == [a * b for a, b in vectors]


def test_micropipeline_alu_equivalence():
    bench = build_from_spec("gen:alu2@micropipeline")
    vectors = [(0, 3, 2), (1, 1, 3), (2, 3, 1), (3, 2, 1)]
    received = _run_micropipeline(
        bench, [a | (b << 2) | (op << 4) for op, a, b in vectors]
    )
    expected = []
    for op, a, b in vectors:
        result, carry = alu_reference(op, a, b, 2)
        expected.append(result | (carry << 2))
    assert received == expected


def test_micropipeline_crc_equivalence():
    bench = build_from_spec("gen:crc2@micropipeline")
    vectors = [(0b0000, (0, 0)), (0b1010, (1, 0)), (0b1111, (1, 1))]
    received = _run_micropipeline(
        bench, [iv | (message[0] << 4) | (message[1] << 5) for iv, message in vectors]
    )
    assert received == [crc4_reference(iv, message) for iv, message in vectors]


def test_micropipeline_mac_equivalence():
    bench = build_from_spec("gen:mac2@micropipeline")
    vectors = [(0, 0), (3, 3), (1, 3), (2, 2)]
    received = _run_micropipeline(bench, [x | (w << 2) for x, w in vectors])
    assert received == [bin(x & w).count("1") for x, w in vectors]
