"""Tests for the rule-based static verifier (``repro.verify``).

Four groups:

* **Mutation harness** — every registered rule must fire on the seeded
  mutant built for it by :mod:`repro.verify.mutate`, and the injected
  defect must not leak into rules of a *different* tier.
* **Clean runs** — every registry circuit (including the ``gen:`` ladder
  specs the registry registers) lints clean on the netlist tier, and
  representative circuits lint clean across all three tiers with
  ``stages=True``.
* **Reporters** — the JSON schema of :meth:`LintReport.to_json` is stable.
* **CLI** — ``repro-lint`` exit codes: 0 clean, 1 findings, 2 usage error.

The :func:`repro.netlist.validate.validate_netlist` compatibility shim is
covered here too (stable rule codes, cycle-path reporting).
"""

import json

import pytest

from repro.circuits.registry import build_circuit, circuit_registry
from repro.verify import (
    LintConfig,
    LintContext,
    lint_circuit,
    rule_registry,
    run_rules,
)
from repro.verify.cli import main as lint_main
from repro.verify.mutate import MUTATORS

ALL_RULE_CODES = sorted(rule_registry())
ALL_CIRCUITS = sorted(circuit_registry())


# ----------------------------------------------------------------------
# Rule registry sanity
# ----------------------------------------------------------------------
def test_registry_codes_are_stable_and_described():
    registry = rule_registry()
    assert set(registry) == {
        "NET001", "NET002", "NET003", "NET004", "NET005", "NET006",
        "NET007", "NET008",
        "QDI001", "QDI002", "QDI003", "QDI004",
        "MP001",
        "STG001", "STG002", "STG003", "STG004", "STG005", "STG006", "STG007",
        "BIT001", "BIT002", "BIT003", "BIT004",
    }
    names = set()
    for code, rule in registry.items():
        assert rule.code == code
        assert rule.name and rule.name not in names  # kebab names unique too
        names.add(rule.name)
        assert rule.tier in ("netlist", "stage", "bitstream")
        assert rule.severity in ("error", "warning")
        assert rule.description


def test_every_rule_has_a_mutator_and_vice_versa():
    assert set(MUTATORS) == set(rule_registry())


# ----------------------------------------------------------------------
# Mutation harness: each rule fires on its seeded defect
# ----------------------------------------------------------------------
@pytest.mark.parametrize("code", sorted(MUTATORS))
def test_rule_fires_on_its_mutant(code):
    rule = rule_registry()[code]
    report = run_rules(MUTATORS[code]())
    assert code in report.codes(), (
        f"{code} did not fire on its mutant; fired: {sorted(report.codes())}"
    )
    for finding in report.findings_for(code):
        assert finding.severity == rule.severity
        assert finding.tier == rule.tier
    # One injected defect may trip sibling rules of the same tier, but must
    # not leak across tiers (that would mean the mutant corrupted more than
    # the artifact class under test).
    assert report.tiers_fired() <= {rule.tier}, (
        f"mutant for {code} leaked into other tiers: "
        f"{sorted(f.rule for f in report.findings)}"
    )


def test_mutant_findings_are_suppressible():
    report = run_rules(
        MUTATORS["NET005"](), LintConfig(suppressed=frozenset({"NET005"}))
    )
    assert "NET005" not in report.codes()
    assert "NET005" not in report.rules_run


def test_enable_restricts_to_named_rules():
    context = MUTATORS["NET001"]()
    report = run_rules(context, LintConfig(enabled=frozenset({"undriven-net"})))
    assert report.rules_run == ["NET001"]
    assert report.codes() == {"NET001"}


def test_severity_override_rewrites_findings():
    config = LintConfig(severity_overrides={"dangling-net": "error"})
    report = run_rules(MUTATORS["NET002"](), config)
    assert all(f.severity == "error" for f in report.findings_for("NET002"))
    assert report.findings_for("NET002")


# ----------------------------------------------------------------------
# Clean runs: the verifier holds on everything the repo builds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_registry_circuit_lints_clean(name):
    report = lint_circuit(name)
    assert report.error_count == 0, report.render_text()
    assert report.warning_count == 0, report.render_text()
    assert report.rules_run  # at least the netlist tier ran


@pytest.mark.parametrize("spec", ["gen:crc4@qdi", "gen:alu2@micropipeline"])
def test_generated_spec_lints_clean(spec):
    report = lint_circuit(spec)
    assert report.error_count == 0, report.render_text()
    assert report.warning_count == 0, report.render_text()


@pytest.mark.parametrize("name", ["qdi_full_adder", "micropipeline_full_adder"])
def test_stage_and_bitstream_tiers_clean(name):
    report = lint_circuit(name, stages=True)
    assert report.error_count == 0, report.render_text()
    assert report.warning_count == 0, report.render_text()
    # The full flow makes all three tiers run.
    run = set(report.rules_run)
    assert {"STG001", "STG005", "STG006", "STG007", "BIT001", "BIT002"} <= run
    assert "NET001" in run


def test_lint_accepts_circuit_objects_and_rejects_junk():
    styled = build_circuit("qdi_full_adder")
    report = lint_circuit(styled)
    assert report.name == styled.name
    assert report.error_count == 0
    with pytest.raises(TypeError):
        lint_circuit(object())


# ----------------------------------------------------------------------
# JSON reporter schema
# ----------------------------------------------------------------------
def test_report_json_schema():
    report = run_rules(MUTATORS["NET005"]())
    blob = report.to_json()
    assert set(blob) == {"name", "errors", "warnings", "rules_run", "findings"}
    assert blob["errors"] == report.error_count
    assert blob["warnings"] == report.warning_count
    assert blob["rules_run"] == report.rules_run
    assert blob["findings"], "mutant report must carry findings"
    for finding in blob["findings"]:
        assert set(finding) == {
            "rule", "name", "severity", "tier", "message", "location",
        }
        assert all(isinstance(value, str) for value in finding.values())
    json.dumps(blob)  # must be serialisable as-is


def test_clean_report_json_is_empty_but_lists_rules():
    blob = lint_circuit("qdi_full_adder").to_json()
    assert blob["errors"] == 0 and blob["warnings"] == 0
    assert blob["findings"] == []
    assert "NET001" in blob["rules_run"]


# ----------------------------------------------------------------------
# CLI exit codes and reporters
# ----------------------------------------------------------------------
def test_cli_exit_0_on_clean_circuit(capsys):
    assert lint_main(["qdi_full_adder"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_exit_1_on_findings():
    # A fanout bound of 1 makes NET008 fire on every multi-sink net;
    # warnings only fail the run under --strict.
    assert lint_main(["qdi_full_adder", "--fanout-limit", "1"]) == 0
    assert lint_main(["qdi_full_adder", "--fanout-limit", "1", "--strict"]) == 1


def test_cli_exit_2_on_usage_errors(capsys):
    assert lint_main(["no_such_circuit"]) == 2
    assert lint_main([]) == 2
    assert lint_main(["qdi_full_adder", "--enable", "NOPE999"]) == 2
    err = capsys.readouterr().err
    assert "no_such_circuit" in err
    assert "NOPE999" in err


def test_cli_json_report(tmp_path, capsys):
    path = tmp_path / "lint.json"
    assert lint_main(["qdi_full_adder", "wchb_fifo_4", "--json", str(path)]) == 0
    capsys.readouterr()
    envelope = json.loads(path.read_text(encoding="utf-8"))
    assert set(envelope) == {"format", "stages", "errors", "warnings", "reports"}
    assert envelope["format"] == 1
    assert envelope["stages"] is False
    assert envelope["errors"] == 0
    assert [report["name"] for report in envelope["reports"]] == [
        "qdi_full_adder",
        "wchb_fifo_4",
    ]


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ALL_RULE_CODES:
        assert code in out


def test_cli_suppress_silences_rule(capsys):
    code = lint_main(
        ["qdi_full_adder", "--fanout-limit", "1", "--strict",
         "--suppress", "isochronic-fork"]
    )
    capsys.readouterr()
    assert code == 0


# ----------------------------------------------------------------------
# validate_netlist compatibility shim
# ----------------------------------------------------------------------
def test_validate_shim_reports_stable_rule_codes():
    from repro.netlist.validate import validate_netlist

    context = MUTATORS["NET005"]()
    issues = validate_netlist(context.netlist)
    loops = [issue for issue in issues if issue.code == "combinational-loop"]
    assert loops and loops[0].rule == "NET005"
    # The loop finding now names the actual cycle path, not just a cell set.
    assert " -> " in loops[0].message
    assert "mut_l1" in loops[0].message and "mut_l2" in loops[0].message


def test_validate_shim_dangling_escalation():
    from repro.netlist.validate import has_errors, validate_netlist

    netlist = MUTATORS["NET002"]().netlist
    tolerated = validate_netlist(netlist, allow_dangling_outputs=True)
    dangling = [i for i in tolerated if i.code == "dangling-net"]
    assert dangling and dangling[0].severity == "warning"
    assert not has_errors(dangling)
    escalated = validate_netlist(netlist, allow_dangling_outputs=False)
    dangling = [i for i in escalated if i.code == "dangling-net"]
    assert dangling and dangling[0].severity == "error"
    assert has_errors(dangling)


# ----------------------------------------------------------------------
# Flow gate: FlowOptions.verify_stages
# ----------------------------------------------------------------------
def test_flow_verify_stages_gate():
    from types import SimpleNamespace

    from repro.cad.flow import CadFlow, FlowOptions
    from repro.cad.techmap import template_map
    from repro.circuits.generate import recommended_fabric

    circuit = build_circuit("qdi_full_adder")
    architecture = recommended_fabric(SimpleNamespace(mapped=template_map(circuit)), slack=2)
    result = CadFlow(architecture, FlowOptions(verify_stages=True)).run(circuit)
    assert result.lint_findings == []
    summary = result.summary()
    assert summary["lint_errors"] == 0
    assert summary["lint_warnings"] == 0

    plain = CadFlow(architecture, FlowOptions()).run(circuit)
    assert plain.lint_findings is None
    assert "lint_errors" not in plain.summary()


# ----------------------------------------------------------------------
# repro-lint --artifacts: auditing stored stage artifacts
# ----------------------------------------------------------------------
def _checkpointed_store(tmp_path):
    from repro.cad.flow import CadFlow, FlowOptions
    from repro.circuits.generate import recommended_fabric
    from repro.cad.techmap import template_map
    from types import SimpleNamespace

    circuit = build_circuit("qdi_full_adder")
    architecture = recommended_fabric(
        SimpleNamespace(mapped=template_map(circuit)), slack=2
    )
    store_dir = tmp_path / "arts"
    options = FlowOptions(artifact_store=str(store_dir))
    CadFlow(architecture, options).run(circuit)
    return store_dir


def test_cli_artifacts_exit_0_on_clean_store(tmp_path, capsys):
    store_dir = _checkpointed_store(tmp_path)
    report_path = tmp_path / "report.json"
    assert lint_main(["--artifacts", str(store_dir), "--json", str(report_path)]) == 0
    out = capsys.readouterr().out
    assert "qdi_full_adder" in out
    document = json.loads(report_path.read_text(encoding="utf-8"))
    (report,) = document["reports"]
    # The stage and bitstream tiers must actually run on the stored flow.
    for code in ("STG001", "STG007", "BIT001", "BIT004"):
        assert code in report["rules_run"]
    assert report["findings"] == []

    # Positional names filter the stored flows.
    assert lint_main(["--artifacts", str(store_dir), "qdi_full_adder"]) == 0
    capsys.readouterr()


def test_cli_artifacts_exit_2_on_usage_errors(tmp_path, capsys):
    missing = tmp_path / "no-such-store"
    assert lint_main(["--artifacts", str(missing)]) == 2
    assert not missing.exists()
    capsys.readouterr()

    store_dir = _checkpointed_store(tmp_path)
    assert lint_main(["--artifacts", str(store_dir), "wchb_fifo_4"]) == 2
    assert "no stored artifacts" in capsys.readouterr().err

    # An existing but artifact-free store has nothing to audit.
    from repro.artifacts import ArtifactStore

    empty = tmp_path / "empty"
    ArtifactStore(empty)
    assert lint_main(["--artifacts", str(empty)]) == 2
    assert "holds no flows" in capsys.readouterr().err
