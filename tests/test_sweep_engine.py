"""Tests of the batch sweep engine: spec hashing, store, runner, reporters."""

import csv
import json

import pytest

from repro.cad.flow import CadFlow, FlowOptions
from repro.circuits.registry import build_circuit, circuit_registry
from repro.core.params import ArchitectureParams, RoutingParams
from repro.sweep import (
    RunnerConfig,
    SweepPoint,
    SweepResultStore,
    SweepRunner,
    SweepSpec,
    available_executors,
    execute_point,
    format_report,
    register_executor,
    report_from_records,
    write_csv,
    write_json,
)

ANALYSIS_ONLY = FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False)


# ----------------------------------------------------------------------
# Serialization and stable hashing
# ----------------------------------------------------------------------
def test_architecture_params_round_trip():
    params = ArchitectureParams(
        width=4, height=7, routing=RoutingParams(channel_width=12, switchbox="wilton")
    )
    rebuilt = ArchitectureParams.from_dict(params.to_dict())
    assert rebuilt == params
    assert rebuilt.stable_hash() == params.stable_hash()


def test_flow_options_round_trip_and_hashable():
    options = FlowOptions(placement_seed=7, router_max_iterations=5)
    rebuilt = FlowOptions.from_dict(options.to_dict())
    assert rebuilt == options
    assert hash(rebuilt) == hash(options)  # frozen dataclass
    assert rebuilt.stable_hash() == options.stable_hash()
    assert options.stable_hash() != FlowOptions(placement_seed=8).stable_hash()


def test_sweep_point_key_is_content_addressed():
    point = SweepPoint("qdi_full_adder", ArchitectureParams(), ANALYSIS_ONLY)
    same = SweepPoint.from_dict(point.to_dict())
    assert same == point
    assert same.key() == point.key()
    other_arch = SweepPoint(
        "qdi_full_adder", ArchitectureParams().scaled(8, 8), ANALYSIS_ONLY
    )
    other_circuit = SweepPoint("wchb_fifo_4", ArchitectureParams(), ANALYSIS_ONLY)
    assert len({point.key(), other_arch.key(), other_circuit.key()}) == 3


def test_sweep_spec_grid_expansion():
    spec = SweepSpec.build(
        ["a", "b"],
        (ArchitectureParams(), ArchitectureParams().scaled(8, 8)),
        (ANALYSIS_ONLY, FlowOptions()),
    )
    points = spec.points()
    assert len(spec) == len(points) == 8
    assert points == spec.points()  # deterministic order
    assert [p.circuit for p in points[:4]] == ["a", "a", "a", "a"]


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_put_get_roundtrip(tmp_path):
    store = SweepResultStore(tmp_path / "cache")
    key = "ab" + "0" * 62
    record = {"status": "ok", "summary": {"les": 5}}
    assert store.get(key) is None
    path = store.put(key, record)
    assert path.is_file()
    assert store.get(key) == record
    assert key in store
    assert list(store.keys()) == [key]
    assert store.clear() == 1
    assert store.get(key) is None


def test_store_tolerates_corrupt_records(tmp_path):
    store = SweepResultStore(tmp_path)
    key = "cd" + "1" * 62
    store.put(key, {"status": "ok"})
    store.path_for(key).write_text("{not json", encoding="utf-8")
    assert store.get(key) is None  # treated as a miss, not a crash


# ----------------------------------------------------------------------
# Runner: serial fallback is bit-identical to the single-flow path
# ----------------------------------------------------------------------
def test_serial_sweep_matches_direct_flow():
    arch = ArchitectureParams()
    spec = SweepSpec.build(
        ["qdi_full_adder", "micropipeline_full_adder"], arch, ANALYSIS_ONLY
    )
    report = SweepRunner(store=None, workers=1).run(spec)
    assert report.cache_hits == 0
    assert report.flow_executions == 2
    for outcome in report.outcomes:
        direct = CadFlow(arch, ANALYSIS_ONLY).run(build_circuit(outcome.point.circuit))
        assert outcome.ok
        assert outcome.summary == direct.summary()


def test_sweep_captures_flow_errors_per_point():
    # The composed 4x4 multiplier maps but cannot *place* on the default 6x6
    # fabric; the sweep must record the failure (class + message) per point
    # instead of aborting.
    points = [
        SweepPoint("qdi_multiplier_4x4", ArchitectureParams(), FlowOptions()),
        SweepPoint("qdi_full_adder", ArchitectureParams(), ANALYSIS_ONLY),
    ]
    report = SweepRunner().run(points)
    assert [o.status for o in report.outcomes] == ["error", "ok"]
    failed = report.outcomes[0]
    assert failed.error is not None and failed.error["type"] == "PlacementError"
    assert failed.error["message"]  # class AND message are recorded
    assert report.ok_count == 1 and report.error_count == 1


def test_multiplier_decomposes_and_sweeps_successfully():
    # The 2x2 multiplier's 9-input rail functions used to be a hard
    # MappingError; wide-function decomposition makes the full registry
    # sweepable.  On a channel-width-10 fabric the whole flow succeeds.
    from repro.core.params import RoutingParams

    routable = ArchitectureParams(routing=RoutingParams(channel_width=10))
    report = SweepRunner().run(
        SweepSpec.build(["qdi_multiplier_2x2"], routable, FlowOptions())
    )
    outcome = report.outcomes[0]
    assert outcome.ok
    assert outcome.summary["decomposed_functions"] == 8
    assert outcome.summary["decomposition_intermediates"] > 0
    assert outcome.summary["routing_success"] is True
    assert outcome.summary["bitstream_bits_set"] > 0


def test_mapping_errors_are_recorded_but_never_cached(tmp_path):
    # A MappingError is exactly what a mapper fix changes: replaying it from
    # the cache would hide the fix, so it must be re-attempted every run.
    from repro.core.params import LEParams, PLBParams

    wide_le = ArchitectureParams(plb=PLBParams(le=LEParams(lut_inputs=10)))
    spec = SweepSpec.build(["qdi_ripple_adder_2"], wide_le, ANALYSIS_ONLY)
    store = SweepResultStore(tmp_path)
    report = SweepRunner(store=store).run(spec)
    assert report.outcomes[0].status == "error"
    assert report.outcomes[0].error["type"] == "MappingError"
    assert len(store) == 0  # not cached ...
    rerun = SweepRunner(store=store).run(spec)
    assert rerun.cache_misses == 1  # ... so the rerun re-attempts the point


def test_premapped_circuit_rejected_on_mismatched_plb_params():
    # Registry ripple adders come pre-mapped for the default PLB; sweeping
    # them on a different LE must not silently report default-LE numbers.
    from repro.core.params import LEParams, PLBParams

    wide_le = ArchitectureParams(plb=PLBParams(le=LEParams(lut_inputs=10)))
    spec = SweepSpec.build(["qdi_ripple_adder_2"], (ArchitectureParams(), wide_le), ANALYSIS_ONLY)
    report = SweepRunner().run(spec)
    default_run, mismatched = report.outcomes
    assert default_run.ok  # matching params: pre-mapped design is accepted
    assert mismatched.status == "error"
    assert mismatched.error["type"] == "MappingError"
    assert "different PLB parameters" in mismatched.error["message"]


def test_premapped_circuit_rejected_when_generic_mapping_requested():
    # A pre-mapped (template-built) registry circuit cannot honour
    # use_template_mapping=False without a gate-level circuit to re-map from;
    # serving the template numbers under the generic-mapping cache key would
    # silently duplicate results across the two option sets.
    generic = FlowOptions(
        use_template_mapping=False,
        run_placement=False,
        run_routing=False,
        generate_bitstream=False,
    )
    spec = SweepSpec.build(["qdi_ripple_adder_2"], ArchitectureParams(), (ANALYSIS_ONLY, generic))
    report = SweepRunner().run(spec)
    template_run, generic_run = report.outcomes
    assert template_run.ok
    assert generic_run.status == "error"
    assert generic_run.error["type"] == "MappingError"
    assert "generic mapping" in generic_run.error["message"]


def test_transient_errors_are_not_cached(tmp_path, monkeypatch):
    import repro.circuits.registry as registry_module

    def explode(name):
        raise OSError("disk full")

    monkeypatch.setattr(registry_module, "build_circuit", explode)
    spec = SweepSpec.build(["qdi_full_adder"], ArchitectureParams(), ANALYSIS_ONLY)
    store = SweepResultStore(tmp_path)
    report = SweepRunner(store=store, workers=1).run(spec)
    assert report.outcomes[0].status == "error"
    assert len(store) == 0  # environmental failure: retried next run

    monkeypatch.undo()
    retried = SweepRunner(store=store, workers=1).run(spec)
    assert retried.outcomes[0].ok and retried.cache_misses == 1
    assert len(store) == 1  # the deterministic success is cached


def test_row_keeps_registry_circuit_name():
    spec = SweepSpec.build(["qdi_ripple_adder_2"], ArchitectureParams(), ANALYSIS_ONLY)
    report = SweepRunner().run(spec)
    row = report.rows()[0]
    assert row["circuit"] == "qdi_ripple_adder_2"
    assert row["design"] == report.outcomes[0].summary["circuit"]
    assert row["design"] != row["circuit"]  # mapped design uses its own name


def test_unknown_circuit_is_an_error_outcome_and_never_cached(tmp_path):
    # Registry lookups depend on code state: caching the KeyError would keep
    # serving it after the circuit gets registered.
    spec = SweepSpec.build(["no_such_circuit"], ArchitectureParams(), ANALYSIS_ONLY)
    store = SweepResultStore(tmp_path)
    report = SweepRunner(store=store).run(spec)
    assert report.outcomes[0].status == "error"
    assert report.outcomes[0].error["type"] == "KeyError"
    assert len(store) == 0


# ----------------------------------------------------------------------
# Code-fingerprint cache keys: results are addressed by the code semantics
# ----------------------------------------------------------------------
def test_code_fingerprint_changes_when_sources_change(tmp_path):
    from repro.fingerprint import hash_sources

    module = tmp_path / "mapper.py"
    module.write_text("BUDGET = 7\n", encoding="utf-8")
    before = hash_sources([module])
    assert before == hash_sources([module])  # stable across calls
    module.write_text("BUDGET = 8\n", encoding="utf-8")
    assert hash_sources([module]) != before


def test_sweep_key_embeds_code_fingerprint(monkeypatch):
    point = SweepPoint("qdi_full_adder", ArchitectureParams(), ANALYSIS_ONLY)
    original = point.key()
    assert point.key() == original  # deterministic within one code state
    import repro.sweep.spec as spec_module

    monkeypatch.setattr(spec_module, "code_fingerprint", lambda: "simulated-edit")
    assert point.key() != original


def test_store_migration_mapper_change_misses_old_entry(tmp_path, monkeypatch):
    # The headline bugfix: a cached record must become unreachable as soon as
    # the code that produced it changes, so a mapper fix re-executes the
    # point instead of replaying the pre-fix result.
    spec = SweepSpec.build(["qdi_full_adder"], ArchitectureParams(), ANALYSIS_ONLY)
    store = SweepResultStore(tmp_path)
    first = SweepRunner(store=store, workers=1).run(spec)
    assert first.cache_misses == 1
    warm = SweepRunner(store=store, workers=1).run(spec)
    assert warm.cache_hits == 1 and warm.flow_executions == 0

    import repro.sweep.spec as spec_module

    monkeypatch.setattr(spec_module, "code_fingerprint", lambda: "post-fix-code")
    after_edit = SweepRunner(store=store, workers=1).run(spec)
    assert after_edit.cache_hits == 0
    assert after_edit.flow_executions == 1  # the old entry was missed
    # Both generations coexist on disk; stats() exposes the retired records.
    assert store.stats()["records"] == 2
    assert store.stats()["bytes"] > 0


# ----------------------------------------------------------------------
# Runner: parallel == serial, cache makes reruns free (acceptance criterion)
# ----------------------------------------------------------------------
def test_parallel_full_registry_sweep_matches_serial_and_caches(tmp_path):
    architectures = (ArchitectureParams(), ArchitectureParams().scaled(8, 8))
    spec = SweepSpec.full_registry(architectures, ANALYSIS_ONLY)
    assert len(spec) == 2 * len(circuit_registry())

    serial = SweepRunner(store=None, workers=1).run(spec)
    parallel = SweepRunner(store=tmp_path / "cache", workers=2).run(spec)
    assert parallel.workers == 2
    assert parallel.summaries() == serial.summaries()
    assert [o.status for o in parallel.outcomes] == [o.status for o in serial.outcomes]
    assert parallel.cache_misses == len(spec)

    rerun = SweepRunner(store=tmp_path / "cache", workers=2).run(spec)
    assert rerun.flow_executions == 0  # zero flow re-executions
    assert rerun.cache_hits == len(spec)
    assert all(outcome.cached for outcome in rerun.outcomes)
    assert rerun.summaries() == serial.summaries()


def test_cache_shared_between_serial_and_parallel_runners(tmp_path):
    spec = SweepSpec.build(["wchb_fifo_4"], ArchitectureParams(), ANALYSIS_ONLY)
    first = SweepRunner(store=tmp_path, workers=1).run(spec)
    second = SweepRunner(store=tmp_path, workers=2).run(spec)
    assert first.cache_misses == 1
    assert second.cache_hits == 1 and second.flow_executions == 0
    assert second.summaries() == first.summaries()


# ----------------------------------------------------------------------
# Executor backends: parity and registration
# ----------------------------------------------------------------------
def test_executor_parity_serial_thread_process():
    # The backend is pure orchestration: every registered in-tree executor
    # must produce identical records for the same grid.
    spec = SweepSpec.build(
        ["qdi_full_adder", "micropipeline_full_adder", "wchb_fifo_4"],
        ArchitectureParams(),
        ANALYSIS_ONLY,
    )
    reports = {
        name: SweepRunner(store=None, workers=2, executor=name).run(spec)
        for name in ("serial", "thread", "process")
    }
    serial = reports["serial"]
    for name, report in reports.items():
        assert report.stats()["executor"] == name
        assert report.summaries() == serial.summaries()
        assert [o.status for o in report.outcomes] == [o.status for o in serial.outcomes]


def test_workers_contract_selects_backend():
    assert SweepRunner(workers=1).config == RunnerConfig(executor="serial", workers=1)
    assert SweepRunner(workers=4).config == RunnerConfig(executor="process", workers=4)
    assert SweepRunner(workers=4, executor="thread").config == RunnerConfig(
        executor="thread", workers=4
    )
    explicit = RunnerConfig(executor="thread", workers=2)
    assert SweepRunner(config=explicit).config == explicit
    with pytest.raises(ValueError, match="not both"):
        SweepRunner(workers=8, config=explicit)  # conflicting styles


def test_unknown_executor_raises_with_known_names(tmp_path):
    spec = SweepSpec.build(["qdi_full_adder"], ArchitectureParams(), ANALYSIS_ONLY)
    with pytest.raises(ValueError, match="slurm"):
        SweepRunner(executor="slurm").run(spec)
    # A typo'd backend must fail fast even when every point is cached.
    SweepRunner(store=tmp_path).run(spec)
    with pytest.raises(ValueError, match="slurm"):
        SweepRunner(store=tmp_path, executor="slurm").run(spec)
    for name in ("serial", "thread", "process"):
        assert name in available_executors()


def test_third_party_executor_registration():
    # The cluster-backend hook: anything honouring submit/gather/shutdown and
    # calling execute_point produces records identical to the serial backend.
    calls = {"submitted": 0, "shutdown": False}

    class RecordingExecutor:
        def submit(self, fn, payload):
            calls["submitted"] += 1
            return fn(payload)

        def gather(self, tokens):
            return list(tokens)

        def shutdown(self):
            calls["shutdown"] = True

    register_executor("recording", lambda config: RecordingExecutor())
    try:
        spec = SweepSpec.build(["qdi_full_adder"], ArchitectureParams(), ANALYSIS_ONLY)
        report = SweepRunner(executor="recording").run(spec)
        assert report.stats()["executor"] == "recording"
        assert calls == {"submitted": 1, "shutdown": True}
        assert report.summaries() == SweepRunner().run(spec).summaries()
    finally:
        import repro.sweep.runner as runner_module

        runner_module._EXECUTOR_FACTORIES.pop("recording", None)


def test_execute_point_is_self_contained():
    # The contract offered to third-party backends: a plain payload dict in,
    # a plain record dict out, no runner state required.
    payload = SweepPoint("qdi_full_adder", ArchitectureParams(), ANALYSIS_ONLY).to_dict()
    record = execute_point(payload)
    assert record["status"] == "ok"
    assert record["kind"] == "flow"
    assert record["fingerprint"]  # stamped for stats()/gc()


# ----------------------------------------------------------------------
# Store: fingerprint-aware stats and garbage collection
# ----------------------------------------------------------------------
def test_store_gc_removes_retired_generations(tmp_path, monkeypatch):
    spec = SweepSpec.build(["qdi_full_adder"], ArchitectureParams(), ANALYSIS_ONLY)
    store = SweepResultStore(tmp_path)
    SweepRunner(store=store).run(spec)

    # Simulate a code edit: both the key side (spec imported the symbol) and
    # the stamp side (execute_point / stats import lazily) must move.
    import repro.fingerprint as fingerprint_module
    import repro.sweep.spec as spec_module

    monkeypatch.setattr(fingerprint_module, "code_fingerprint", lambda: "post-edit")
    monkeypatch.setattr(spec_module, "code_fingerprint", lambda: "post-edit")
    SweepRunner(store=store).run(spec)  # second generation under new key
    # Both generations on disk; only the post-edit one is current.
    assert store.stats()["records"] == 2
    assert store.stats()["retired_records"] == 1

    outcome = store.gc(dry_run=True)
    assert outcome["removed"] == 1 and outcome["dry_run"] is True
    assert store.stats()["records"] == 2  # dry run deleted nothing

    outcome = store.gc()
    assert outcome["removed"] == 1 and outcome["kept_current"] == 1
    stats = store.stats()
    assert stats["records"] == 1 and stats["retired_records"] == 0
    # The surviving record is still served.
    rerun = SweepRunner(store=store).run(spec)
    assert rerun.flow_executions == 0


def test_store_gc_keep_latest_spares_recent_generations(tmp_path):
    store = SweepResultStore(tmp_path)
    import os
    import time

    for index, fingerprint in enumerate(("gen-a", "gen-b", "gen-c")):
        key = f"{index:02d}" + "0" * 62
        store.put(key, {"kind": "flow", "fingerprint": fingerprint})
        # Distinct mtimes so generation recency is well defined.
        stamp = time.time() - (100 - index)
        os.utime(store.path_for(key), (stamp, stamp))

    outcome = store.gc(current_fingerprint="current", keep_latest=2)
    assert outcome["removed"] == 1  # only the oldest generation went
    assert outcome["kept_retired"] == 2
    remaining = {record["fingerprint"] for _key, record in store.records()}
    assert remaining == {"gen-b", "gen-c"}


def test_store_stats_counts_unstamped_records_as_retired(tmp_path):
    store = SweepResultStore(tmp_path)
    store.put("ab" + "0" * 62, {"status": "ok"})  # pre-stamping record layout
    stats = store.stats(current_fingerprint="whatever")
    assert stats["retired_records"] == 1
    assert store.gc(current_fingerprint="whatever")["removed"] == 1


def test_report_from_records_round_trips_store(tmp_path):
    spec = SweepSpec.build(
        ["qdi_full_adder", "micropipeline_full_adder"], ArchitectureParams(), ANALYSIS_ONLY
    )
    live = SweepRunner(store=tmp_path).run(spec)
    rebuilt = report_from_records(SweepResultStore(tmp_path).records())
    assert len(rebuilt.outcomes) == 2
    assert all(outcome.cached for outcome in rebuilt.outcomes)
    by_circuit = {o.point.circuit: o.summary for o in rebuilt.outcomes}
    for outcome in live.outcomes:
        assert by_circuit[outcome.point.circuit] == outcome.summary


def test_store_gc_collects_corrupt_records(tmp_path):
    # A corrupt record is a permanent cache miss: any read that touches it
    # (stats() included) quarantines the file, and gc() reaps the
    # quarantine, so the disk always comes back.
    store = SweepResultStore(tmp_path)
    key = "ab" + "0" * 62
    store.put(key, {"kind": "flow", "fingerprint": "x"})
    store.path_for(key).write_text("{not json", encoding="utf-8")
    stats = store.stats(current_fingerprint="x")
    assert stats["records"] == 0
    assert stats["quarantined_records"] == 1
    outcome = store.gc(current_fingerprint="x", keep_latest=99)
    assert outcome["removed"] == 1  # never spared, even by keep_latest
    assert outcome["quarantine_reaped"] == 1
    after = store.stats(current_fingerprint="x")
    assert after["records"] == 0
    assert after["quarantined_records"] == 0


def test_report_from_records_filters_by_fingerprint(tmp_path):
    store = SweepResultStore(tmp_path)
    spec = SweepSpec.build(["qdi_full_adder"], ArchitectureParams(), ANALYSIS_ONLY)
    SweepRunner(store=store).run(spec)
    # A retired generation of the same point.
    stale = dict(next(store.records())[1])
    stale["fingerprint"] = "pre-edit"
    store.put("ff" + "0" * 62, stale)

    from repro.fingerprint import code_fingerprint

    everything = report_from_records(store.records())
    assert len(everything.outcomes) == 2  # one per generation
    current_only = report_from_records(
        store.records(), current_fingerprint=code_fingerprint()
    )
    assert len(current_only.outcomes) == 1


def test_placement_cache_disabled_strips_flag_from_cache_hits(tmp_path):
    # A store populated by a placement-caching run must not leak the
    # placement_cache_hit marker into a placement_cache=False runner.
    spec = SweepSpec.build(["qdi_full_adder"], ArchitectureParams(), FlowOptions())
    SweepRunner(store=tmp_path, placement_cache=True).run(spec)
    baseline = SweepRunner(store=None).run(spec)
    warm = SweepRunner(store=tmp_path, placement_cache=False).run(spec)
    assert warm.cache_hits == 1
    assert warm.summaries() == baseline.summaries()  # bit-identical, no flag


def test_report_from_records_skips_placement_records(tmp_path):
    spec = SweepSpec.build(["qdi_full_adder"], ArchitectureParams(), FlowOptions())
    SweepRunner(store=tmp_path).run(spec)
    store = SweepResultStore(tmp_path)
    assert store.stats()["placement_records"] == 1
    rebuilt = report_from_records(store.records())
    assert len(rebuilt.outcomes) == 1  # the flow record only


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def test_reporters_render_all_outcomes(tmp_path):
    points = [
        SweepPoint("qdi_full_adder", ArchitectureParams(), ANALYSIS_ONLY),
        # Maps (decomposition) but does not place on the default fabric.
        SweepPoint("qdi_multiplier_4x4", ArchitectureParams(), FlowOptions()),
    ]
    report = SweepRunner().run(points)

    text = format_report(report)
    assert "qdi_full_adder" in text and "cache_hits=0" in text

    csv_path = write_csv(report, tmp_path / "out" / "sweep.csv")
    with csv_path.open(encoding="utf-8", newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert {row["status"] for row in rows} == {"ok", "error"}
    assert "error" in rows[0]  # union-of-keys columns include sparse ones

    json_path = write_json(report, tmp_path / "out" / "sweep.json")
    document = json.loads(json_path.read_text(encoding="utf-8"))
    assert document["stats"]["points"] == 2
    assert len(document["rows"]) == 2


# ----------------------------------------------------------------------
# Store-level locking (concurrent gc / clear)
# ----------------------------------------------------------------------
def test_store_lock_serializes_and_times_out(tmp_path):
    from repro.sweep import StoreLockTimeout

    store = SweepResultStore(tmp_path)
    with store.lock():
        assert store.lock_path.is_file()
        with pytest.raises(StoreLockTimeout):
            with store.lock(timeout=0.2):
                pass  # pragma: no cover - the acquire must fail
    # Released on exit: immediately reacquirable (the flock file itself may
    # legitimately persist — unlinking a flock file is the classic race).
    with store.lock(timeout=0.2):
        pass


def test_store_lock_survives_crashed_holder_leftovers(tmp_path):
    import os
    import time

    store = SweepResultStore(tmp_path)
    # A crashed holder's leftover lock file (flock died with the process;
    # on the fallback path it is older than stale_after): not fatal.
    store.lock_path.write_text("12345\n", encoding="utf-8")
    ancient = time.time() - 3600
    os.utime(store.lock_path, (ancient, ancient))
    with store.lock(timeout=0.5, stale_after=60.0):
        assert store.lock_path.is_file()


def test_store_lock_fallback_token_scheme(tmp_path, monkeypatch):
    # Exercise the non-POSIX O_EXCL token path explicitly.
    import time

    import repro.sweep.store as store_module
    from repro.sweep import StoreLockTimeout

    monkeypatch.setattr(store_module, "fcntl", None)
    store = SweepResultStore(tmp_path)
    with store.lock():
        assert store.lock_path.is_file()
        with pytest.raises(StoreLockTimeout):
            with store.lock(timeout=0.2):
                pass  # pragma: no cover - the acquire must fail
    assert not store.lock_path.is_file()  # token release unlinks its own lock
    # Stale leftovers are stolen (atomic rename), then normally reacquired.
    store.lock_path.write_text("stale-token\n", encoding="utf-8")
    ancient = time.time() - 3600
    import os

    os.utime(store.lock_path, (ancient, ancient))
    with store.lock(timeout=0.5, stale_after=60.0):
        assert store.lock_path.read_text(encoding="ascii") != "stale-token\n"


def test_store_gc_tolerates_files_vanishing_mid_walk(tmp_path, monkeypatch):
    # A rival collector (or operator rm) deleting records between the key
    # walk and the stat/unlink must be skipped, not raised.
    store = SweepResultStore(tmp_path)
    keys = [f"{index:02x}" + "0" * 62 for index in range(4)]
    for key in keys:
        store.put(key, {"kind": "flow", "fingerprint": "old-gen"})

    real_keys = SweepResultStore.keys

    def keys_then_rival_deletes(self):
        listed = list(real_keys(self))
        self.path_for(listed[0]).unlink()  # rival wins the race on one file
        return iter(listed)

    monkeypatch.setattr(SweepResultStore, "keys", keys_then_rival_deletes)
    outcome = store.gc(current_fingerprint="current")
    # The vanished record is no longer reported as removed by *this* gc.
    assert outcome["removed"] == len(keys) - 1
    monkeypatch.undo()
    assert len(store) == 0


def test_concurrent_gc_invocations_never_double_count(tmp_path):
    import threading

    store = SweepResultStore(tmp_path)
    for index in range(30):
        store.put(f"{index:02x}" + "0" * 62, {"kind": "flow", "fingerprint": "old"})

    results: list[dict[str, object]] = []

    def collect():
        results.append(
            SweepResultStore(tmp_path).gc(current_fingerprint="new", keep_latest=0)
        )

    threads = [threading.Thread(target=collect) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert len(store) == 0
    # The lock serializes the collectors: every record is reclaimed by
    # exactly one of them.
    assert sum(outcome["removed"] for outcome in results) == 30


def test_gc_and_clear_release_lock_on_success(tmp_path):
    store = SweepResultStore(tmp_path)
    store.put("ab" + "0" * 62, {"kind": "flow", "fingerprint": "old"})
    store.gc(current_fingerprint="new")
    store.put("cd" + "0" * 62, {"kind": "flow", "fingerprint": "old"})
    assert store.clear() == 1
    # The lock is released after each maintenance call: reacquirable at once.
    with store.lock(timeout=0.2):
        pass
