"""The pluggable kernel layer: numpy/python parity and the fallback contract.

The numpy backend exists purely for speed — ``docs/flow.md`` promises it is
**bit-identical** to the pure-python reference for a fixed seed.  These tests
hold that promise at three levels:

* end to end: full flows (bitstream bytes + the entire ``summary()`` dict)
  across a spread of registry circuits and seeds;
* the net-parallel router: grouped routing must return exactly the serial
  trees while reporting nonzero ``parallel_groups`` on the acceptance
  benches (``qdi_multiplier_2x2``, ``gen:mult8x8@micropipeline``);
* the placement cache: a hypothesis-driven random anneal protocol
  (mutate → propose → commit/reject) compared move-by-move against the
  reference cache and the full :func:`repro.cad.place._hpwl` recompute.

The resolution contract (``auto`` falls back, explicit ``numpy`` raises when
the dependency is absent) is tested by erasing the module's numpy handle, so
it runs on both CI legs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.cad.kernels as kernels
from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.kernels import KernelUnavailableError, numpy_available, resolve_kernel
from repro.cad.place import NetCostCache, _hpwl
from repro.cad.route import route_design
from repro.circuits.registry import build_circuit
from repro.core.params import ArchitectureParams, RoutingParams

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="optional numpy extra not installed"
)

#: Registry circuits of the end-to-end parity sweep: both logic styles, both
#: encodings, fifos, adders and the decomposed multiplier.
PARITY_CIRCUITS = (
    "qdi_full_adder",
    "qdi_full_adder_1of4",
    "micropipeline_full_adder",
    "qdi_multiplier_2x2",
    "wchb_fifo_4",
    "wchb_fifo_8",
    "qdi_ripple_adder_2",
    "qdi_ripple_adder_4",
)
PARITY_SEEDS = (1, 7)

#: The standard routable fabric (the golden multiplier test's geometry).
ROUTABLE = ArchitectureParams(routing=RoutingParams(channel_width=10))


def _flow(name: str, seed: int, kernel: str):
    options = FlowOptions(placement_seed=seed, kernel=kernel)
    return CadFlow(ROUTABLE, options).run(build_circuit(name))


# ----------------------------------------------------------------------
# Kernel resolution and fallback
# ----------------------------------------------------------------------
def test_resolve_kernel_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown kernel"):
        resolve_kernel("fortran")


def test_auto_falls_back_to_python_without_numpy(monkeypatch):
    monkeypatch.setattr(kernels, "_numpy", None)
    assert resolve_kernel("auto") == "python"
    assert resolve_kernel("python") == "python"


def test_explicit_numpy_raises_without_numpy(monkeypatch):
    monkeypatch.setattr(kernels, "_numpy", None)
    with pytest.raises(KernelUnavailableError, match="fast"):
        resolve_kernel("numpy")


def test_flow_options_reject_unknown_kernel():
    with pytest.raises(ValueError):
        FlowOptions(kernel="fortran")


def test_kernel_choice_is_execution_side():
    # The backend must never perturb flow identity: not the options dict the
    # sweep hashes, and not the summary the store caches.
    assert "kernel" not in FlowOptions(kernel="python").to_dict()
    assert FlowOptions(kernel="python") == FlowOptions(kernel="auto")
    result = CadFlow(ROUTABLE, FlowOptions(kernel="python")).run(
        build_circuit("qdi_full_adder")
    )
    assert result.kernel == "python"
    assert "kernel" not in result.summary()


# ----------------------------------------------------------------------
# End-to-end parity: numpy == python, bit for bit
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("name", PARITY_CIRCUITS)
@pytest.mark.parametrize("seed", PARITY_SEEDS)
def test_numpy_flow_bit_identical_to_python(name, seed):
    python = _flow(name, seed, "python")
    numpy = _flow(name, seed, "numpy")
    assert python.kernel == "python" and numpy.kernel == "numpy"
    assert numpy.summary() == python.summary()
    if python.bitstream is not None or numpy.bitstream is not None:
        assert numpy.bitstream.to_bytes() == python.bitstream.to_bytes()
    assert numpy.placement.plb_sites == python.placement.plb_sites
    assert numpy.placement.io_sites == python.placement.io_sites


@needs_numpy
def test_auto_resolves_to_numpy_when_available():
    result = CadFlow(ROUTABLE, FlowOptions(kernel="auto")).run(
        build_circuit("qdi_full_adder")
    )
    assert result.kernel == "numpy"


# ----------------------------------------------------------------------
# Net-parallel routing: serial trees exactly, groups reported
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["python", pytest.param("numpy", marks=needs_numpy)])
def test_parallel_routing_matches_serial_exactly(kernel):
    from repro.cad.pack import pack_design
    from repro.cad.place import place_design
    from repro.circuits.adders import qdi_ripple_adder
    from repro.core.fabric import Fabric
    from repro.core.rrgraph import cached_rr_graph

    design = qdi_ripple_adder(4).mapped
    pack_design(design)
    side = max(4, int(len(design.plbs) ** 0.5) + 2)
    fabric = Fabric(
        ArchitectureParams(
            width=side,
            height=side,
            routing=RoutingParams(channel_width=10, io_pads_per_side=6),
        )
    )
    graph = cached_rr_graph(fabric)
    placement = place_design(design, fabric, seed=1, kernel=kernel)
    serial = route_design(design, placement, graph, kernel=kernel, parallel=False)
    grouped = route_design(design, placement, graph, kernel=kernel, parallel=True)
    assert grouped.routed == serial.routed
    assert grouped.success == serial.success
    assert grouped.total_wirelength == serial.total_wirelength
    assert grouped.node_pops == serial.node_pops
    assert serial.parallel_groups == 0
    assert grouped.parallel_groups > 0


@pytest.mark.parametrize(
    "name", ["qdi_multiplier_2x2", "gen:mult8x8@micropipeline"]
)
def test_acceptance_benches_report_parallel_groups(name):
    if name.startswith("gen:mult8x8"):
        from repro.circuits.generate import recommended_fabric
        from repro.circuits.specs import build_from_spec

        bench = build_from_spec(name)
        params = recommended_fabric(bench)
    else:
        bench = build_circuit(name)
        params = ROUTABLE
    summary = CadFlow(params, FlowOptions()).run(bench).summary()
    assert summary["routing_success"] is True
    assert summary["router_parallel_groups"] > 0


# ----------------------------------------------------------------------
# Placement cache parity, property-based
# ----------------------------------------------------------------------
@st.composite
def _anneal_protocol(draw):
    """A random net structure plus a random mutate/propose/commit protocol."""
    coord = st.integers(min_value=0, max_value=6)
    n_plbs = draw(st.integers(min_value=2, max_value=5))
    plb_names = [f"plb{i}" for i in range(n_plbs)]
    io_names = ["in0", "out0"]
    terminals = plb_names + [f"io:{name}" for name in io_names]
    n_nets = draw(st.integers(min_value=1, max_value=6))
    nets = {
        f"net{i}": draw(
            st.lists(st.sampled_from(terminals), min_size=1, max_size=4, unique=True)
        )
        for i in range(n_nets)
    }
    plb_sites = {name: (draw(coord), draw(coord)) for name in plb_names}
    io_positions = {name: (float(draw(coord)), float(draw(coord))) for name in io_names}
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(plb_names),  # terminal to move
                coord,  # new x
                coord,  # new y
                st.booleans(),  # commit?
            ),
            min_size=1,
            max_size=12,
        )
    )
    return nets, plb_sites, io_positions, steps


@needs_numpy
@settings(max_examples=60, deadline=None)
@given(_anneal_protocol())
def test_numpy_cache_matches_reference_and_full_hpwl(protocol):
    from repro.cad.kernels.placement import NumpyNetCostCache

    nets, plb_sites, io_positions, steps = protocol
    caches = [
        NetCostCache(nets, dict(plb_sites), dict(io_positions)),
        NumpyNetCostCache(nets, dict(plb_sites), dict(io_positions)),
    ]
    assert caches[1].total == caches[0].total
    assert caches[0].total == _hpwl(nets, plb_sites, io_positions)
    live = dict(plb_sites)
    for terminal, new_x, new_y, commit in steps:
        old = live[terminal]
        new = (new_x, new_y)
        deltas = []
        for cache in caches:
            # The place_design protocol: mutate the live dict, then propose
            # the move with old/new coordinates.
            cache.plb_sites[terminal] = new
            deltas.append(
                cache.propose_moves(
                    [(terminal, (float(old[0]), float(old[1])), (float(new_x), float(new_y)))]
                )
            )
        assert deltas[1] == deltas[0]
        if commit:
            live[terminal] = new
            for cache in caches:
                cache.commit()
        else:
            for cache in caches:
                cache.plb_sites[terminal] = old
                cache.reject()
        reference = _hpwl(nets, live, io_positions)
        for cache in caches:
            assert cache.total == reference
    # Counter parity: evaluations and bbox fast-path hits are part of the
    # pinned summary contract, so the array cache must count identically.
    assert caches[1].evaluations == caches[0].evaluations
    assert caches[1].bbox_updates == caches[0].bbox_updates
