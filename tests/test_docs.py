"""Docs stay truthful: code fences and symbol references must resolve.

The CI docs gate: every import statement inside a ```python fence of
README.md / docs/*.md must execute, every dotted ``repro.*`` name anywhere
in those files must resolve to a real module/attribute, every ``api.<name>``
reference must exist on :mod:`repro.api`, and every ``repro-sweep``
subcommand the docs mention must exist in the CLI parser.  Renaming a public
symbol without updating the docs fails this file.
"""

import argparse
import importlib
import re
from pathlib import Path

import pytest

import repro.api

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)
IMPORT_RE = re.compile(r"^(?:import|from)\s+\S.*$", re.MULTILINE)
DOTTED_RE = re.compile(r"\brepro(?:\.\w+)+")
API_RE = re.compile(r"\bapi\.(\w+)")
CLI_RE = re.compile(r"repro-sweep\s+([a-z][\w-]*)")


def _doc_texts() -> list[tuple[str, str]]:
    return [(path.name, path.read_text(encoding="utf-8")) for path in DOC_FILES]


def _python_fences() -> list[tuple[str, str]]:
    fences = []
    for name, text in _doc_texts():
        for match in FENCE_RE.finditer(text):
            if match.group(1) in ("python", "py"):
                fences.append((name, match.group(2)))
    return fences


def test_docs_exist_and_are_linked_from_readme():
    assert (ROOT / "docs" / "sweep.md").is_file()
    assert (ROOT / "docs" / "flow.md").is_file()
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/sweep.md" in readme and "docs/flow.md" in readme


def test_python_fence_imports_execute():
    fences = _python_fences()
    assert fences, "docs should contain python examples"
    for name, code in fences:
        for statement in IMPORT_RE.findall(code):
            try:
                exec(statement, {})
            except Exception as exc:  # pragma: no cover - assertion carries context
                pytest.fail(f"{name}: {statement!r} failed: {exc}")


def test_dotted_repro_references_resolve():
    seen = set()
    for name, text in _doc_texts():
        for dotted in DOTTED_RE.findall(text):
            if dotted in seen:
                continue
            seen.add(dotted)
            parts = dotted.split(".")
            module, rest = None, parts
            for cut in range(len(parts), 0, -1):
                try:
                    module = importlib.import_module(".".join(parts[:cut]))
                    rest = parts[cut:]
                    break
                except ImportError:
                    continue
            if module is None:
                pytest.fail(f"{name}: {dotted!r} is not importable")
            obj = module
            for attribute in rest:
                if not hasattr(obj, attribute):
                    pytest.fail(f"{name}: {dotted!r} does not resolve ({attribute!r})")
                obj = getattr(obj, attribute)
    assert seen, "docs should reference repro.* symbols"


def test_api_references_exist():
    for name, text in _doc_texts():
        for attribute in API_RE.findall(text):
            assert hasattr(repro.api, attribute), f"{name}: api.{attribute} missing"


def test_cli_subcommand_references_exist():
    from repro.cli import build_parser

    subparser_actions = [
        action
        for action in build_parser()._actions
        if isinstance(action, argparse._SubParsersAction)
    ]
    valid = set(subparser_actions[0].choices)
    mentioned = set()
    for name, text in _doc_texts():
        for command in CLI_RE.findall(text):
            mentioned.add(command)
            assert command in valid, f"{name}: unknown subcommand {command!r}"
    # The docs should cover the full surface.
    assert valid <= mentioned, f"undocumented subcommands: {valid - mentioned}"
