"""The incremental timing engine and the timing-driven flow.

Four families of guarantees introduced by the criticality-fed CAD refactor:

* **engine invariants** — criticalities live in [0, 1] with the critical
  path at exactly 1.0, delay updates are monotone (a slower net can only
  become more critical and the cycle time can only grow), and recomputation
  is lazy (queries after no update are free);
* **golden cycle times** — the reported ``cycle_time_ps`` of registry
  circuits on the paper-default fabric is locked, so a timing-model or
  engine refactor that drifts the reproduced numbers must be deliberate;
* **timing-driven quality gate** — at the paper-default channel width 8 the
  timing-driven flow strictly reduces cycle time on several circuits
  (including the decomposed 2×2 multiplier) with routed legality and at
  most 2% total-wirelength regression;
* **A\\* router** — routed parity with plain Dijkstra while popping fewer
  heap nodes on the largest benchmarked fabric, and the warm-start seed
  path reaches parity-quality routings while inheriting most trees.
"""

import copy
import random

import pytest

from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.pack import pack_design
from repro.cad.place import NetCostCache, TimingObjective, place_design
from repro.cad.route import refine_critical_nets, route_design
from repro.cad.timing import TimingEngine, TimingModel, analyse_timing
from repro.circuits.registry import build_circuit
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams, RoutingParams
from repro.core.rrgraph import RoutingResourceGraph

PAPER_ARCH = lambda: ArchitectureParams(routing=RoutingParams(channel_width=8))  # noqa: E731


def _mapped(name):
    circuit = build_circuit(name)
    flow = CadFlow(PAPER_ARCH())
    if hasattr(circuit, "mapped") and circuit.mapped.params == flow.architecture.plb:
        design = circuit.mapped
    else:
        design = flow.map(circuit if not hasattr(circuit, "gate_circuit") else circuit.gate_circuit)
    pack_design(design, flow.architecture.plb)
    return design, flow


# ----------------------------------------------------------------------
# Engine invariants
# ----------------------------------------------------------------------
def test_criticalities_bounded_and_critical_path_at_one():
    design, _flow = _mapped("qdi_full_adder")
    engine = TimingEngine(design)
    crits = engine.criticalities()
    assert crits, "a mapped design must expose timed nets"
    assert all(0.0 <= crit <= 1.0 for crit in crits.values())
    assert max(crits.values()) == 1.0
    assert engine.critical_path_ps > 0
    assert engine.cycle_time_ps == 4 * engine.critical_path_ps


def test_criticality_monotone_in_net_delay():
    design, _flow = _mapped("qdi_full_adder")
    engine = TimingEngine(design)
    baseline_cycle = engine.cycle_time_ps
    crits = engine.criticalities()
    for net in sorted(crits)[:6]:
        before = engine.criticality(net)
        engine.set_net_delay(net, engine.net_delays_ps.get(net, 110) + 5000)
        after = engine.criticality(net)
        # Slowing a net down can only raise its own criticality ...
        assert after >= before - 1e-9
        # ... and can never shorten the handshake cycle.
        assert engine.cycle_time_ps >= baseline_cycle
        baseline_cycle = engine.cycle_time_ps


def test_engine_recomputes_lazily():
    design, _flow = _mapped("qdi_ripple_adder_2")
    engine = TimingEngine(design)
    engine.criticalities()
    engine.criticalities()
    engine.cycle_time_ps
    assert engine.recomputes == 1  # queries without updates are free
    engine.set_net_delay(next(iter(engine.criticalities())), 9999)
    engine.criticalities()
    engine.criticality("nonexistent")
    assert engine.recomputes == 2


def test_estimate_and_routed_delays_feed_the_engine():
    design, flow = _mapped("qdi_full_adder")
    placement = place_design(design, flow.fabric, seed=1)
    engine = TimingEngine(design)
    flat_cycle = engine.cycle_time_ps
    estimates = engine.estimate_from_placement(placement, flow.fabric)
    assert estimates and all(delay > 0 for delay in estimates.values())

    routing = route_design(design, placement, flow.rr_graph)
    assert routing.success
    model = TimingModel()
    exact = engine.update_from_routing(routing, flow.rr_graph)
    assert exact.keys() == routing.routed.keys()
    for net, routed in routing.routed.items():
        assert exact[net] == model.routed_net_delay(flow.rr_graph, routed.nodes)
    assert engine.cycle_time_ps > 0
    assert flat_cycle > 0


def test_analyse_timing_report_carries_criticalities():
    design, flow = _mapped("qdi_full_adder")
    report = analyse_timing(design)
    assert report.criticalities
    assert report.critical_path_ps == report.forward_latency_ps
    assert report.cycle_time_ps == 4 * report.forward_latency_ps


# ----------------------------------------------------------------------
# Golden cycle times (paper-default fabric, channel width 8)
# ----------------------------------------------------------------------
GOLDEN_CYCLE_TIMES_PS = {
    "qdi_full_adder": 13440,
    "micropipeline_full_adder": 10880,
    "qdi_ripple_adder_2": 22320,
    "wchb_fifo_4": 30080,
    "qdi_multiplier_2x2": 26720,
}


@pytest.mark.parametrize("name", sorted(GOLDEN_CYCLE_TIMES_PS))
def test_golden_cycle_times(name):
    flow = CadFlow(PAPER_ARCH(), FlowOptions(generate_bitstream=False))
    result = flow.run(build_circuit(name))
    summary = result.summary()
    assert summary["routing_success"] is True
    assert summary["cycle_time_ps"] == GOLDEN_CYCLE_TIMES_PS[name]


# ----------------------------------------------------------------------
# Timing-driven quality gate (the PR's acceptance criterion)
# ----------------------------------------------------------------------
#: Circuits whose handshake cycle the timing-driven flow must strictly
#: improve at the paper-default channel width 8 (incl. one multiplier).
TIMING_GATE_CIRCUITS = (
    "qdi_full_adder",
    "qdi_multiplier_2x2",
    "micropipeline_full_adder",
    "wchb_fifo_4",
)


def _assert_legal(routing, graph):
    occupancy = [0] * len(graph)
    for routed in routing.routed.values():
        for node_id in routed.nodes:
            occupancy[node_id] += 1
    assert all(
        occupancy[node_id] <= graph.capacity[node_id] for node_id in range(len(graph))
    )


@pytest.mark.parametrize("name", TIMING_GATE_CIRCUITS)
def test_timing_driven_reduces_cycle_time_at_default_channel_width(name):
    arch = PAPER_ARCH()
    baseline = CadFlow(arch, FlowOptions(generate_bitstream=False)).run(
        build_circuit(name)
    )
    flow = CadFlow(arch, FlowOptions(generate_bitstream=False, timing_driven=True))
    timed = flow.run(build_circuit(name))
    base_summary = baseline.summary()
    timed_summary = timed.summary()

    assert base_summary["routing_success"] is True
    assert timed_summary["routing_success"] is True
    _assert_legal(timed.routing, flow.rr_graph)
    # Strict cycle-time reduction ...
    assert timed_summary["cycle_time_ps"] < base_summary["cycle_time_ps"]
    # ... within the 2% total-wirelength budget.
    assert (
        timed_summary["total_wirelength"]
        <= base_summary["total_wirelength"] * 1.02
    )
    # The mode is visible in the summary contract.
    assert timed_summary["timing_driven"] is True
    assert timed_summary["critical_nets_rerouted"] >= 0
    assert timed_summary["cycle_time_improvement_ps"] >= 0


def test_timing_driven_summary_key_set():
    from test_regression_golden import FULL_FLOW_SUMMARY_KEYS

    result = CadFlow(
        ArchitectureParams(width=5, height=5), FlowOptions(timing_driven=True)
    ).run(build_circuit("qdi_full_adder"))
    assert set(result.summary().keys()) == FULL_FLOW_SUMMARY_KEYS | {
        "timing_driven",
        "critical_nets_rerouted",
        "cycle_time_improvement_ps",
    }


# ----------------------------------------------------------------------
# Critical-net refinement
# ----------------------------------------------------------------------
def test_refine_critical_nets_improves_multiplier_and_stays_legal():
    design, flow = _mapped("qdi_multiplier_2x2")
    placement = place_design(design, flow.fabric, seed=1)
    routing = route_design(design, placement, flow.rr_graph)
    assert routing.success
    model = TimingModel()
    engine = TimingEngine(design, model)
    engine.update_from_routing(routing, flow.rr_graph)
    before_cycle = engine.cycle_time_ps
    before_wirelength = routing.total_wirelength
    before = {
        net: model.routed_net_delay(flow.rr_graph, routed.nodes)
        for net, routed in routing.routed.items()
    }

    improved = refine_critical_nets(
        routing,
        flow.rr_graph,
        engine.criticalities(),
        model,
        max_wirelength=int(before_wirelength * 1.02),
    )
    assert improved > 0  # the displacement pass finds real detours to cut
    assert routing.critical_reroutes == improved
    _assert_legal(routing, flow.rr_graph)
    assert routing.total_wirelength <= before_wirelength * 1.02
    engine.update_from_routing(routing, flow.rr_graph)
    assert engine.cycle_time_ps <= before_cycle
    # Refined critical nets only ever got faster.
    crits = engine.criticalities()
    for net, routed in routing.routed.items():
        after = model.routed_net_delay(flow.rr_graph, routed.nodes)
        if crits.get(net, 0.0) >= 0.999:
            assert after <= before[net]


def test_refine_noop_on_failed_routing():
    design, flow = _mapped("qdi_full_adder")
    placement = place_design(design, flow.fabric, seed=1)
    routing = route_design(design, placement, flow.rr_graph)
    failed = copy.deepcopy(routing)
    failed.success = False
    assert refine_critical_nets(failed, flow.rr_graph, {"any": 1.0}) == 0


# ----------------------------------------------------------------------
# A*: routed parity with plain Dijkstra, fewer pops
# ----------------------------------------------------------------------
def _largest_fabric_route(astar: bool):
    adder = build_circuit("qdi_ripple_adder_8")
    design = adder.mapped
    pack_design(design)
    side = max(4, int(len(design.plbs) ** 0.5) + 2)
    params = ArchitectureParams(
        width=side, height=side, routing=RoutingParams(channel_width=10, io_pads_per_side=6)
    )
    fabric = Fabric(params)
    graph = RoutingResourceGraph(fabric)
    placement = place_design(design, fabric, seed=1)
    return route_design(design, placement, graph, astar=astar), graph


def test_astar_parity_and_pop_reduction_on_largest_fabric():
    accelerated, graph = _largest_fabric_route(astar=True)
    plain, _ = _largest_fabric_route(astar=False)
    assert accelerated.success and plain.success
    _assert_legal(accelerated, graph)
    assert accelerated.routed.keys() == plain.routed.keys()
    # Both orderings run cost-optimal searches; quality stays within the
    # repo-wide 2% parity tolerance and the lower bound must actually prune.
    assert accelerated.total_wirelength <= plain.total_wirelength * 1.02
    assert accelerated.node_pops < plain.node_pops


def test_astar_failure_restarts_with_dijkstra_parity():
    # The knife-edge instance: the decomposed multiplier at channel width 8
    # only converges under classic frontier ordering.  astar=True must reach
    # the exact same routability via its internal restart.
    design, flow = _mapped("qdi_multiplier_2x2")
    placement = place_design(design, flow.fabric, seed=1)
    accelerated = route_design(design, placement, flow.rr_graph, astar=True)
    plain = route_design(design, placement, flow.rr_graph, astar=False)
    assert accelerated.success == plain.success is True
    assert accelerated.total_wirelength == plain.total_wirelength


# ----------------------------------------------------------------------
# Warm start (the sweep engine's channel-width ladder cache)
# ----------------------------------------------------------------------
def test_warm_start_inherits_trees_with_quality_parity(tmp_path):
    from repro import api

    architectures = [
        ArchitectureParams(routing=RoutingParams(channel_width=width))
        for width in (10, 9, 8)
    ]
    warm = api.run_sweep(
        circuits=["qdi_ripple_adder_2"],
        architectures=architectures,
        cache_dir=str(tmp_path / "store"),
        routing_cache=True,
    )
    cold = api.run_sweep(
        circuits=["qdi_ripple_adder_2"], architectures=architectures
    )
    warm_by_label = {o.point.label(): o.summary for o in warm.outcomes}
    cold_by_label = {o.point.label(): o.summary for o in cold.outcomes}
    seeded = 0
    for label, summary in warm_by_label.items():
        assert summary["routing_success"] is True
        reference = cold_by_label[label]
        # Parity gate: warm-started quality within 2% of a cold route.
        assert summary["total_wirelength"] <= reference["total_wirelength"] * 1.02
        if summary.get("routing_warm_started"):
            seeded += 1
            assert summary["routing_warm_started"] > 0
    # The second and third rung of the ladder must actually inherit trees.
    assert seeded >= 2
    # Cold runs never carry the marker.
    assert all("routing_warm_started" not in s for s in cold_by_label.values())


def test_warm_start_rejects_broken_seed_trees():
    design, flow = _mapped("qdi_full_adder")
    placement = place_design(design, flow.fabric, seed=1)
    reference = route_design(design, placement, flow.rr_graph)
    bogus = {net: [0, 1, 2] for net in reference.routed}
    seeded = route_design(design, placement, flow.rr_graph, warm_start=bogus)
    assert seeded.success
    assert seeded.warm_started_nets == 0  # nothing validated, all routed fresh
    assert seeded.total_wirelength == reference.total_wirelength


def test_flow_routing_seed_roundtrip():
    # Trees routed at channel width 10, re-injected (as node names) into a
    # width-8 flow: the flow maps what exists, validates per net, and the
    # result stays legal and successful.
    wide = CadFlow(
        ArchitectureParams(routing=RoutingParams(channel_width=10)),
        FlowOptions(generate_bitstream=False),
    )
    wide_result = wide.run(build_circuit("qdi_ripple_adder_2"))
    assert wide_result.routing is not None and wide_result.routing.success
    trees = {
        net: [wide.rr_graph.nodes[node_id].name for node_id in routed.nodes]
        for net, routed in wide_result.routing.routed.items()
    }
    narrow = CadFlow(PAPER_ARCH(), FlowOptions(generate_bitstream=False))
    seeded = narrow.run(build_circuit("qdi_ripple_adder_2"), routing_seed=trees)
    assert seeded.routing is not None and seeded.routing.success
    _assert_legal(seeded.routing, narrow.rr_graph)
    assert seeded.routing.warm_started_nets > 0
    assert seeded.summary()["routing_warm_started"] > 0


def test_cross_grid_seed_warm_starts_routing():
    # Grid-size ladder rung: trees and placement from a 6x6 fabric carry to
    # an 8x8 one.  A smaller grid's PLB sites, pad names and wire names all
    # exist on the larger grid, so with the placement transferred the seed
    # trees validate and PathFinder warm-starts (ROADMAP carry-over: the
    # warm-start cache used to be keyed on exact geometry minus channel
    # width only, which made cross-grid rungs miss).
    small = CadFlow(
        ArchitectureParams(width=6, height=6, routing=RoutingParams(channel_width=8)),
        FlowOptions(generate_bitstream=False),
    )
    small_result = small.run(build_circuit("qdi_full_adder"))
    assert small_result.routing is not None and small_result.routing.success
    trees = {
        net: [small.rr_graph.nodes[node_id].name for node_id in routed.nodes]
        for net, routed in small_result.routing.routed.items()
    }
    large = CadFlow(
        ArchitectureParams(width=8, height=8, routing=RoutingParams(channel_width=8)),
        FlowOptions(generate_bitstream=False),
    )
    seeded = large.run(
        build_circuit("qdi_full_adder"),
        placement=small_result.placement,
        routing_seed=trees,
    )
    assert seeded.routing is not None and seeded.routing.success
    _assert_legal(seeded.routing, large.rr_graph)
    assert seeded.routing.warm_started_nets > 0
    assert seeded.summary()["placement_cache_hit"] is True


def test_routing_cache_key_shared_across_grid_sizes():
    # The routing-tree cache slot must hash out grid size as well as channel
    # width, so grid-size ladders share trees the way channel-width ladders do.
    from repro.sweep.spec import SweepPoint

    def point(width, height, channel_width):
        return SweepPoint(
            circuit="qdi_full_adder",
            architecture=ArchitectureParams(
                width=width,
                height=height,
                routing=RoutingParams(channel_width=channel_width),
            ),
            options=FlowOptions(),
        )

    base = point(6, 6, 8)
    assert base.routing_base_key() == point(8, 8, 8).routing_base_key()
    assert base.routing_base_key() == point(6, 6, 10).routing_base_key()
    # Everything else still differentiates the slot.
    other_circuit = SweepPoint(
        circuit="qdi_ripple_adder_2",
        architecture=ArchitectureParams(width=6, height=6),
        options=FlowOptions(),
    )
    assert base.routing_base_key() != other_circuit.routing_base_key()
    # And the flow-summary key keeps geometry, so the slots stay distinct.
    assert base.key() != point(8, 8, 8).key()


# ----------------------------------------------------------------------
# Blended placement objective
# ----------------------------------------------------------------------
def test_timing_objective_cache_tracks_full_recompute_under_random_moves():
    rng = random.Random(7)
    blocks = [f"b{index}" for index in range(5)]
    nets = {
        f"n{index}": rng.sample(blocks, rng.randint(2, len(blocks)))
        for index in range(8)
    }
    plb_sites = {name: (rng.randrange(6), rng.randrange(6)) for name in blocks}
    crits = {net: rng.random() for net in nets}
    objective = TimingObjective(crits, tradeoff=0.6)
    cache = NetCostCache(nets, plb_sites, {}, objective=objective)
    for _ in range(120):
        name = rng.choice(blocks)
        old = plb_sites[name]
        new = (rng.randrange(6), rng.randrange(6))
        plb_sites[name] = new
        cache.propose_moves(
            [(name, (float(old[0]), float(old[1])), (float(new[0]), float(new[1])))]
        )
        if rng.random() < 0.5:
            cache.commit()
        else:
            cache.reject()
            plb_sites[name] = old
        assert cache.audit_matches()


def test_blended_placement_beats_wirelength_placement_on_timing_cost():
    design, flow = _mapped("qdi_full_adder")
    engine = TimingEngine(design)
    objective = TimingObjective(engine.criticalities(), tradeoff=0.5)
    plain = place_design(design, flow.fabric, seed=3)
    polished = place_design(
        design,
        flow.fabric,
        seed=3,
        objective=objective,
        initial=plain,
        temperature_factor=0.02,
        effort=0.4,
    )
    assert polished.matches_design(design, flow.fabric)
    # The polish anneals the blended objective mostly downhill from the
    # plain layout; the low temperature bounds any uphill wander tightly.
    assert polished.cost <= plain_cost_under(objective, design, flow, plain) * 1.1
    # Pure wirelength is tracked separately and stays available.
    assert polished.wirelength > 0


def plain_cost_under(objective, design, flow, placement):
    from repro.cad.place import _build_net_terminals, _pad_position

    nets = _build_net_terminals(design)
    io_positions = {
        net: _pad_position(pad, flow.fabric) for net, pad in placement.io_sites.items()
    }
    cache = NetCostCache(nets, dict(placement.plb_sites), io_positions, objective=objective)
    return cache.total
