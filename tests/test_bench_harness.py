"""The CAD perf harness: BENCH_cad.json schema and the regression floor.

``benchmarks/bench_cad_flow.py`` doubles as a CLI that emits the
machine-readable perf trajectory CI uploads per build.  These tests pin the
document schema (what dashboards and the floor check consume) and the floor
check's pass/fail behaviour, on a small grid so tier-1 stays fast.
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "benchmarks"))

import bench_cad_flow  # noqa: E402  (path shim above)


def test_harness_document_schema(tmp_path):
    # --kernel python keeps the schema test independent of numpy presence;
    # --rounds 1 keeps it fast (the timing fields are still populated).
    exit_code = bench_cad_flow.main(
        [
            "--json", str(tmp_path / "BENCH_cad.json"),
            "--widths", "1,2",
            "--kernel", "python",
            "--rounds", "1",
        ]
    )
    assert exit_code == 0
    document = json.loads((tmp_path / "BENCH_cad.json").read_text(encoding="utf-8"))

    assert document["schema"] == bench_cad_flow.BENCH_SCHEMA
    assert document["benchmark"] == "bench_cad_flow"
    assert document["kernel"] == "python"
    assert document["timing_rounds"] == 1
    assert [design["bits"] for design in document["designs"]] == [1, 2]
    for design in document["designs"]:
        assert set(design["stages_s"]) == {"pack", "place", "route", "route_parallel"}
        assert design["kernel"] == "python"
        placement = design["placement"]
        assert placement["moves_per_s"] > 0
        assert placement["net_evals"] <= placement["full_recompute_evals"]
        assert placement["eval_reduction"] > 1.0
        routing = design["routing"]
        assert routing["success"] is True
        assert sum(routing["reroutes_per_iteration"]) == routing["total_reroutes"]
        assert routing["reroutes_per_iteration"][0] == routing["nets"]
        assert routing["parallel_parity"] is True
        assert routing["parallel_groups"] >= 0
        assert routing["conflict_replays"] >= 0
        astar = design["astar"]
        assert astar["parity"] is True
        assert astar["pops"] > 0 and astar["dijkstra_pops"] > 0
        assert astar["pop_reduction"] > 0
        timing = design["timing"]
        assert timing["cycle_time_ps"] > 0
        assert timing["timing_driven_cycle_time_ps"] > 0
        assert timing["timing_driven_flow_s"] > 0
        assert timing["timing_driven_flows_per_s"] > 0
    # Registry circuits run as full flows; the multiplier is the acceptance
    # bench of the net-parallel router, so its groups must be nonzero.
    registry = document["registry"]
    assert [record["name"] for record in registry] == list(
        bench_cad_flow.REGISTRY_CIRCUITS
    )
    for record in registry:
        assert record["routing_success"] is True
        assert record["kernel"] == "python"
        assert record["parallel_groups"] >= 1
    headline = document["headline"]
    assert headline["largest_design"] == document["designs"][-1]["name"]
    assert headline["kernel"] == "python"
    assert headline["router_route_s"] > 0
    assert headline["parallel_groups"] >= 1
    assert headline["astar_pop_reduction"] > 0
    assert headline["timing_driven_flows_per_s"] > 0


def test_floor_check_passes_and_fails_correctly():
    document = bench_cad_flow.run_harness(widths=(1, 2), kernel="python", rounds=1)
    # A floor far below any real machine: healthy.
    assert bench_cad_flow.check_floor(
        document, {"placement_moves_per_s": 1.0, "regression_factor": 3}
    ) == []
    # An impossibly high floor: the regression trips.
    problems = bench_cad_flow.check_floor(
        document, {"placement_moves_per_s": 1e12, "regression_factor": 3}
    )
    assert problems and "below the floor" in problems[0]
    # A broken delta evaluator would trip the eval-reduction guard.
    problems = bench_cad_flow.check_floor(
        document, {"placement_moves_per_s": 1.0, "min_eval_reduction": 1e6}
    )
    assert problems and "eval reduction" in problems[0]
    # A router that stops converging on a harness design fails the check
    # even when throughput is healthy.
    import copy

    broken = copy.deepcopy(document)
    broken["designs"][-1]["routing"]["success"] = False
    problems = bench_cad_flow.check_floor(
        broken, {"placement_moves_per_s": 1.0, "regression_factor": 3}
    )
    assert problems and "failed to route" in problems[0]
    # A disabled / broken A* lower bound trips the pop-reduction guard.
    problems = bench_cad_flow.check_floor(
        document, {"placement_moves_per_s": 1.0, "min_astar_pop_reduction": 1e6}
    )
    assert problems and "pop reduction" in problems[0]
    # A timing-driven mode 3x+ below its throughput floor trips the guard.
    problems = bench_cad_flow.check_floor(
        document,
        {
            "placement_moves_per_s": 1.0,
            "timing_driven_flows_per_s": 1e9,
            "regression_factor": 3,
        },
    )
    assert problems and "timing-driven throughput" in problems[0]
    # A router that blows past its wall-clock floor trips the guard.
    problems = bench_cad_flow.check_floor(
        document,
        {"placement_moves_per_s": 1.0, "router_route_s": 1e-9, "regression_factor": 3},
    )
    assert problems and "router wall-clock" in problems[0]
    # The net-parallel router silently disengaging trips min_parallel_groups.
    problems = bench_cad_flow.check_floor(
        document, {"placement_moves_per_s": 1.0, "min_parallel_groups": 10**6}
    )
    assert problems and "parallel group" in problems[0]
    # Grouped routing diverging from the serial trees is always fatal.
    diverged = copy.deepcopy(document)
    diverged["designs"][-1]["routing"]["parallel_parity"] = False
    problems = bench_cad_flow.check_floor(
        diverged, {"placement_moves_per_s": 1.0, "regression_factor": 3}
    )
    assert problems and "bit-identical" in problems[0]
    # Per-kernel overrides: the document ran kernel=python, so a brutal
    # numpy-only floor must not apply to it...
    assert bench_cad_flow.check_floor(
        document,
        {
            "placement_moves_per_s": 1.0,
            "regression_factor": 3,
            "kernels": {"numpy": {"placement_moves_per_s": 1e12}},
        },
    ) == []
    # ...while a python override does.
    problems = bench_cad_flow.check_floor(
        document,
        {
            "placement_moves_per_s": 1.0,
            "regression_factor": 3,
            "kernels": {"python": {"placement_moves_per_s": 1e12}},
        },
    )
    assert problems and "below the floor" in problems[0]


def test_checked_in_floor_file_is_well_formed():
    floor = json.loads(
        (ROOT / "benchmarks" / "perf_floor.json").read_text(encoding="utf-8")
    )
    assert floor["placement_moves_per_s"] > 0
    assert floor["router_route_s"] > 0
    assert floor["regression_factor"] >= 1
    assert floor["min_eval_reduction"] >= 1
    assert floor["min_astar_pop_reduction"] >= 1
    assert floor["timing_driven_flows_per_s"] > 0
    assert floor["min_parallel_groups"] >= 1
    # The numpy leg is ratcheted ~3x above the pure-python floors.
    numpy_floor = floor["kernels"]["numpy"]
    assert numpy_floor["placement_moves_per_s"] >= 2 * floor["placement_moves_per_s"]
    assert numpy_floor["router_route_s"] <= floor["router_route_s"] / 2
