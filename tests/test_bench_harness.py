"""The CAD perf harness: BENCH_cad.json schema and the regression floor.

``benchmarks/bench_cad_flow.py`` doubles as a CLI that emits the
machine-readable perf trajectory CI uploads per build.  These tests pin the
document schema (what dashboards and the floor check consume) and the floor
check's pass/fail behaviour, on a small grid so tier-1 stays fast.
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "benchmarks"))

import bench_cad_flow  # noqa: E402  (path shim above)


def test_harness_document_schema(tmp_path):
    exit_code = bench_cad_flow.main(
        ["--json", str(tmp_path / "BENCH_cad.json"), "--widths", "1,2"]
    )
    assert exit_code == 0
    document = json.loads((tmp_path / "BENCH_cad.json").read_text(encoding="utf-8"))

    assert document["schema"] == bench_cad_flow.BENCH_SCHEMA
    assert document["benchmark"] == "bench_cad_flow"
    assert [design["bits"] for design in document["designs"]] == [1, 2]
    for design in document["designs"]:
        assert set(design["stages_s"]) == {"pack", "place", "route"}
        placement = design["placement"]
        assert placement["moves_per_s"] > 0
        assert placement["net_evals"] <= placement["full_recompute_evals"]
        assert placement["eval_reduction"] > 1.0
        routing = design["routing"]
        assert routing["success"] is True
        assert sum(routing["reroutes_per_iteration"]) == routing["total_reroutes"]
        assert routing["reroutes_per_iteration"][0] == routing["nets"]
        astar = design["astar"]
        assert astar["parity"] is True
        assert astar["pops"] > 0 and astar["dijkstra_pops"] > 0
        assert astar["pop_reduction"] > 0
        timing = design["timing"]
        assert timing["cycle_time_ps"] > 0
        assert timing["timing_driven_cycle_time_ps"] > 0
        assert timing["timing_driven_flow_s"] > 0
        assert timing["timing_driven_flows_per_s"] > 0
    headline = document["headline"]
    assert headline["largest_design"] == document["designs"][-1]["name"]
    assert headline["astar_pop_reduction"] > 0
    assert headline["timing_driven_flows_per_s"] > 0


def test_floor_check_passes_and_fails_correctly():
    document = bench_cad_flow.run_harness(widths=(1, 2))
    # A floor far below any real machine: healthy.
    assert bench_cad_flow.check_floor(
        document, {"placement_moves_per_s": 1.0, "regression_factor": 3}
    ) == []
    # An impossibly high floor: the regression trips.
    problems = bench_cad_flow.check_floor(
        document, {"placement_moves_per_s": 1e12, "regression_factor": 3}
    )
    assert problems and "below the floor" in problems[0]
    # A broken delta evaluator would trip the eval-reduction guard.
    problems = bench_cad_flow.check_floor(
        document, {"placement_moves_per_s": 1.0, "min_eval_reduction": 1e6}
    )
    assert problems and "eval reduction" in problems[0]
    # A router that stops converging on a harness design fails the check
    # even when throughput is healthy.
    import copy

    broken = copy.deepcopy(document)
    broken["designs"][-1]["routing"]["success"] = False
    problems = bench_cad_flow.check_floor(
        broken, {"placement_moves_per_s": 1.0, "regression_factor": 3}
    )
    assert problems and "failed to route" in problems[0]
    # A disabled / broken A* lower bound trips the pop-reduction guard.
    problems = bench_cad_flow.check_floor(
        document, {"placement_moves_per_s": 1.0, "min_astar_pop_reduction": 1e6}
    )
    assert problems and "pop reduction" in problems[0]
    # A timing-driven mode 3x+ below its throughput floor trips the guard.
    problems = bench_cad_flow.check_floor(
        document,
        {
            "placement_moves_per_s": 1.0,
            "timing_driven_flows_per_s": 1e9,
            "regression_factor": 3,
        },
    )
    assert problems and "timing-driven throughput" in problems[0]


def test_checked_in_floor_file_is_well_formed():
    floor = json.loads(
        (ROOT / "benchmarks" / "perf_floor.json").read_text(encoding="utf-8")
    )
    assert floor["placement_moves_per_s"] > 0
    assert floor["regression_factor"] >= 1
    assert floor["min_eval_reduction"] >= 1
    assert floor["min_astar_pop_reduction"] >= 1
    assert floor["timing_driven_flows_per_s"] > 0
