"""Tests for the PDE, the interconnection matrix, the PLB, the fabric,
the routing-resource graph, the bitstream and the fabric statistics."""

import pytest

from repro.core.bitstream import Bitstream, BitstreamBudget
from repro.core.fabric import Fabric, IOPad, TileType
from repro.core.im import IMConfig, InterconnectionMatrix
from repro.core.le import LEConfig
from repro.core.params import ArchitectureParams, PLBParams, RoutingParams
from repro.core.pde import PDEConfig, ProgrammableDelayElement
from repro.core.plb import PLB, PLBConfig
from repro.core.rrgraph import RoutingResourceGraph, RRNodeType
from repro.core.stats import fabric_statistics, le_statistics, plb_statistics
from repro.logic.functions import c_element_table, latch_table, xor_table


# ----------------------------------------------------------------------
# PDE
# ----------------------------------------------------------------------
def test_pde_configure_delay_rounds_up():
    pde = ProgrammableDelayElement(taps=8, step_ps=100)
    config = pde.configure_delay(250)
    assert config.tap == 2
    assert pde.delay_ps == 300
    assert pde.achievable_delays() == tuple(range(100, 900, 100))
    assert pde.config_bits == 3


def test_pde_range_checks():
    pde = ProgrammableDelayElement(taps=4, step_ps=50)
    with pytest.raises(ValueError):
        pde.configure_delay(0)
    with pytest.raises(ValueError):
        pde.configure_delay(10_000)
    with pytest.raises(ValueError):
        pde.configure(PDEConfig(tap=9))
    with pytest.raises(ValueError):
        ProgrammableDelayElement(taps=0)


def test_pde_config_vector():
    pde = ProgrammableDelayElement(taps=8, step_ps=100)
    pde.configure(PDEConfig(tap=5, used=True))
    assert pde.config_vector() == (1, 0, 1)


# ----------------------------------------------------------------------
# Interconnection matrix
# ----------------------------------------------------------------------
def test_im_connect_and_propagate():
    im = InterconnectionMatrix(sources=["a", "b"], destinations=["x", "y", "z"])
    im.connect("x", "a")
    im.connect("y", "b")
    assert im.source_of("x") == "a"
    assert im.source_of("z") is None
    values = im.propagate({"a": 1, "b": 0})
    assert values == {"x": 1, "y": 0, "z": 0}
    assert im.used_destinations() == 2
    assert im.utilisation() == pytest.approx(2 / 3)
    im.disconnect("x")
    assert im.source_of("x") is None


def test_im_rejects_unknown_names():
    im = InterconnectionMatrix(sources=["a"], destinations=["x"])
    with pytest.raises(KeyError):
        im.connect("nope", "a")
    with pytest.raises(KeyError):
        im.connect("x", "nope")
    with pytest.raises(ValueError):
        InterconnectionMatrix(sources=["a", "a"], destinations=["x"])


def test_im_config_vector_roundtrip():
    sources = ("s0", "s1", "s2")
    destinations = ("d0", "d1", "d2", "d3")
    im = InterconnectionMatrix(sources, destinations)
    im.connect("d0", "s2")
    im.connect("d3", "s0")
    bits = im.config_vector()
    assert len(bits) == im.config_bits
    decoded = InterconnectionMatrix.decode_config_vector(sources, destinations, bits)
    assert decoded.routes == {"d0": "s2", "d3": "s0"}


# ----------------------------------------------------------------------
# PLB
# ----------------------------------------------------------------------
def _c_element_plb() -> tuple[PLB, PLBConfig]:
    plb = PLB(PLBParams())
    config = PLBConfig(
        le_configs=[LEConfig(lut_tables=[c_element_table(("i0", "i1"), state="i2"), None, None])],
        im_config=IMConfig(
            routes={"le0_i0": "in0", "le0_i1": "in1", "le0_i2": "le0_o0", "out0": "le0_o0"}
        ),
    )
    plb.configure(config)
    return plb, config


def test_plb_signal_naming_matches_params():
    plb = PLB(PLBParams())
    assert len(plb.input_names()) == PLBParams().plb_inputs
    assert len(plb.output_names()) == PLBParams().plb_outputs
    assert len(plb.im.sources) == PLBParams().im_sources
    assert len(plb.im.destinations) == PLBParams().im_destinations
    assert plb.config_bits == PLBParams().config_bits


def test_plb_memory_by_looping_c_element():
    plb, _config = _c_element_plb()
    state: dict = {}
    outputs, state = plb.evaluate({"in0": 1, "in1": 1}, state)
    assert outputs["out0"] == 1
    outputs, state = plb.evaluate({"in0": 0, "in1": 1}, state)
    assert outputs["out0"] == 1  # hold through the IM feedback loop
    outputs, state = plb.evaluate({"in0": 0, "in1": 0}, state)
    assert outputs["out0"] == 0


def test_plb_latch_and_second_le():
    plb = PLB(PLBParams())
    config = PLBConfig(
        le_configs=[
            LEConfig(lut_tables=[xor_table(inputs=("i0", "i1")), None, None]),
            LEConfig(lut_tables=[latch_table("i0", "i1", "i2"), None, None]),
        ],
        im_config=IMConfig(
            routes={
                "le0_i0": "in0",
                "le0_i1": "in1",
                "le1_i0": "le0_o0",  # latch data = xor output
                "le1_i1": "in2",     # latch enable
                "le1_i2": "le1_o0",  # latch feedback
                "out0": "le1_o0",
            }
        ),
    )
    plb.configure(config)
    state: dict = {}
    outputs, state = plb.evaluate({"in0": 1, "in1": 0, "in2": 1}, state)
    assert outputs["out0"] == 1
    outputs, state = plb.evaluate({"in0": 1, "in1": 1, "in2": 0}, state)
    assert outputs["out0"] == 1  # latch holds although xor now 0


def test_plb_utilisation_and_rejects_too_many_le_configs():
    plb, _ = _c_element_plb()
    usage = plb.utilisation()
    assert usage["im_destinations_used"] == 4
    with pytest.raises(ValueError):
        plb.configure(PLBConfig(le_configs=[LEConfig(), LEConfig(), LEConfig()]))


# ----------------------------------------------------------------------
# Fabric geometry
# ----------------------------------------------------------------------
def test_fabric_tiles_and_channels():
    fabric = Fabric(ArchitectureParams(width=3, height=2))
    assert len(list(fabric.tiles())) == 6
    assert fabric.tile_at(2, 1).tile_type is TileType.PLB
    with pytest.raises(KeyError):
        fabric.tile_at(3, 0)
    assert fabric.contains(0, 0) and not fabric.contains(-1, 0)
    assert fabric.channel_segment_count() == (2 + 1) * 3 + (3 + 1) * 2
    assert fabric.wire_count() == fabric.channel_segment_count() * fabric.params.routing.channel_width
    assert len(fabric.tile_adjacent_channels(1, 1)) == 4
    corners = list(fabric.switchbox_corners())
    assert len(corners) == 4 * 3
    assert 2 <= len(fabric.corner_incident_channels(0, 0)) <= 4
    assert len(fabric.corner_incident_channels(1, 1)) == 4


def test_fabric_io_pads():
    params = ArchitectureParams(width=3, height=2, routing=RoutingParams(io_pads_per_side=2))
    fabric = Fabric(params)
    pads = fabric.io_pads()
    assert len(pads) == 2 * (3 + 2) * 2
    north = [pad for pad in pads if pad.side == "north"]
    assert all(pad.adjacent_channel(3, 2)[0] == "h" for pad in north)
    west = IOPad(side="west", position=1, index=0)
    assert west.adjacent_channel(3, 2) == ("v", 0, 1)
    with pytest.raises(ValueError):
        IOPad(side="up", position=0, index=0).adjacent_channel(3, 2)


def test_fabric_pin_channel_distribution():
    fabric = Fabric(ArchitectureParams(width=2, height=2))
    sides = {fabric.pin_channel(0, 0, pin)[0:1] for pin in range(4)}
    # pins rotate over the four adjacent channels
    channels = [fabric.pin_channel(0, 0, pin) for pin in range(4)]
    assert len(set(channels)) == 4
    assert Fabric.manhattan((0, 0), (2, 3)) == 5


# ----------------------------------------------------------------------
# Routing-resource graph
# ----------------------------------------------------------------------
def test_rr_graph_structure():
    params = ArchitectureParams(width=2, height=2)
    graph = RoutingResourceGraph(Fabric(params))
    summary = graph.summary()
    expected_wires = Fabric(params).wire_count()
    assert summary["wires"] == expected_wires
    plb_pins = params.plb.plb_inputs + params.plb.plb_outputs
    assert summary["opins"] == params.plb_count * params.plb.plb_outputs + len(Fabric(params).io_pads())
    assert summary["ipins"] == params.plb_count * params.plb.plb_inputs + len(Fabric(params).io_pads())
    assert summary["edges"] > 0
    # every PLB opin connects to at least fc_out * W tracks
    node = graph.opin(0, 0, "out0")
    assert node.node_type is RRNodeType.OPIN
    assert len(node.edges) >= params.routing.tracks_per_pin(params.routing.fc_out)
    # wire nodes exist with the documented naming
    wire = graph.node_by_name(RoutingResourceGraph.wire_name("h", 0, 0, 0))
    assert wire.node_type is RRNodeType.WIRE


def test_rr_graph_wilton_switchbox_variant():
    params = ArchitectureParams(
        width=2, height=2, routing=RoutingParams(channel_width=4, switchbox="wilton")
    )
    graph = RoutingResourceGraph(Fabric(params))
    assert graph.summary()["edges"] > 0


def test_rr_graph_duplicate_node_protection():
    graph = RoutingResourceGraph(Fabric(ArchitectureParams(width=1, height=1)))
    with pytest.raises(ValueError):
        graph._add_node(RRNodeType.WIRE, graph.nodes[0].name, 0, 0)


# ----------------------------------------------------------------------
# Bitstream
# ----------------------------------------------------------------------
def test_bitstream_budget_and_roundtrip():
    params = ArchitectureParams(width=2, height=2)
    budget = BitstreamBudget.for_architecture(params)
    kinds = budget.bits_by_kind()
    assert kinds["plb"] == params.plb_count * params.plb.config_bits
    assert budget.total_bits == sum(kinds.values())
    assert budget.region("plb_0_0").bits == params.plb.config_bits
    with pytest.raises(KeyError):
        budget.region("plb_9_9")

    bitstream = Bitstream(budget)
    bitstream.set_region("plb_0_0", (1, 0, 1, 1))
    bitstream.set_bit("plb_1_1", 7, 1)
    with pytest.raises(IndexError):
        bitstream.set_bit("plb_0_0", 10 ** 9, 1)
    with pytest.raises(ValueError):
        bitstream.set_region("plb_0_0", [1] * (params.plb.config_bits + 1))
    data = bitstream.to_bytes()
    assert len(data) == (budget.total_bits + 7) // 8
    again = Bitstream.from_bytes(budget, data)
    assert again == bitstream
    assert again.used_bits() == bitstream.used_bits() == 4
    with pytest.raises(ValueError):
        Bitstream.from_bytes(budget, b"\x00")


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def test_statistics_reports():
    params = ArchitectureParams(width=3, height=3)
    le_stats = le_statistics(params)
    assert le_stats["lut_inputs"] == 7 and le_stats["lut_outputs"] == 3
    plb_stats = plb_statistics(params)
    assert plb_stats["les_per_plb"] == 2
    assert plb_stats["plb_config_bits"] == params.plb.config_bits
    assert plb_stats["im_crosspoints"] == params.plb.im_sources * params.plb.im_destinations
    fabric_stats = fabric_statistics(params)
    assert fabric_stats["plb_count"] == 9
    assert fabric_stats["le_count"] == 18
    assert fabric_stats["config_bits_total"] == BitstreamBudget.for_architecture(params).total_bits
    assert fabric_stats["config_bits_plb"] == 9 * params.plb.config_bits
