"""Tests for the LE-level IR, the technology mappers, packing and metrics."""

import pytest

from repro.cad.lemap import LEFunction, MappedDesign, MappedLE, MappedPDE, MappedPLB, merge_mapped_designs
from repro.cad.metrics import filling_ratio, utilisation_report
from repro.cad.pack import PackingError, pack_design, packing_summary
from repro.cad.techmap import MappingError, generic_map, template_map
from repro.circuits.fulladder import micropipeline_full_adder, qdi_full_adder, reference_sum_carry
from repro.core.params import LEParams, PLBParams
from repro.logic.functions import and_table, c_element_table, or_table, xor_table
from repro.logic.truthtable import TruthTable
from repro.netlist.builder import NetlistBuilder
from repro.sim import (
    FourPhaseBundledConsumer,
    FourPhaseBundledProducer,
    FourPhaseDualRailProducer,
    HandshakeHarness,
    PassiveDualRailConsumer,
)
from repro.sim.lesim import simulate_mapped_design
from repro.styles.base import LogicStyle


# ----------------------------------------------------------------------
# IR basics
# ----------------------------------------------------------------------
def test_le_function_properties():
    table = c_element_table(("a", "b"), state="z").rename({"a": "a", "b": "b"})
    function = LEFunction(output_net="z", table=table.rename({"z": "z"}), role="ack")
    # the state variable of c_element_table is named via 'state', so rebuild properly
    table = TruthTable.from_function(("a", "b", "z"), lambda a, b, z: 1 if (a and b) else (0 if (not a and not b) else z))
    function = LEFunction(output_net="z", table=table)
    assert function.has_feedback
    assert function.external_inputs == ("a", "b")
    assert function.arity == 3


def test_mapped_le_constraints_and_views():
    params = PLBParams()
    le = MappedLE(
        name="le0",
        functions=[
            LEFunction("x", xor_table(inputs=("a", "b", "c"))),
            LEFunction("y", and_table(inputs=("a", "d"))),
        ],
        validity=LEFunction("v", or_table(inputs=("x", "y")), role="validity"),
    )
    assert set(le.lut_input_nets) == {"a", "b", "c", "d"}
    assert le.output_nets == ("x", "y", "v")
    assert set(le.external_input_nets) == {"a", "b", "c", "d"}
    assert le.feedback_nets == ("x", "y")  # validity reads its own LE's outputs
    assert le.fits(params)
    usage = le.utilisation(params)
    assert usage["lut_inputs_used"] == 4 and usage["lut_outputs_used"] == 2

    too_wide = MappedLE(
        name="wide",
        functions=[LEFunction("z", xor_table(inputs=tuple(f"n{i}" for i in range(8))))],
    )
    assert not too_wide.fits(params)


def test_mapped_plb_external_inputs():
    plb = MappedPLB(
        name="plb0",
        les=[
            MappedLE("le0", functions=[LEFunction("m", and_table(inputs=("a", "b")))]),
            MappedLE("le1", functions=[LEFunction("z", or_table(inputs=("m", "c")))]),
        ],
    )
    assert set(plb.external_input_nets) == {"a", "b", "c"}
    assert "m" in plb.output_nets


def test_mapped_design_validate_detects_problems():
    params = PLBParams()
    design = MappedDesign(name="bad", params=params)
    design.les = [
        MappedLE("le0", functions=[LEFunction("x", and_table(inputs=("a", "b")))]),
        MappedLE("le1", functions=[LEFunction("x", or_table(inputs=("a", "c")))]),  # double driver
    ]
    design.primary_inputs = ["a"]
    problems = design.validate()
    assert any("driven by both" in problem for problem in problems)
    assert any("undriven net" in problem for problem in problems)  # b and c undriven


def test_merge_mapped_designs():
    params = PLBParams()
    first = MappedDesign(name="a", params=params, primary_inputs=["i"], primary_outputs=["m"])
    first.les = [MappedLE("le_m", functions=[LEFunction("m", and_table(inputs=("i", "i2")))])]
    first.primary_inputs = ["i", "i2"]
    second = MappedDesign(name="b", params=params, primary_inputs=["m"], primary_outputs=["o"])
    second.les = [MappedLE("le_o", functions=[LEFunction("o", or_table(inputs=("m", "i2")))])]
    merged = merge_mapped_designs("ab", [first, second])
    assert "m" not in merged.primary_inputs  # driven internally
    assert set(merged.primary_inputs) == {"i", "i2"}
    assert merged.validate() == []


# ----------------------------------------------------------------------
# Template mapping
# ----------------------------------------------------------------------
def test_template_map_qdi_structure():
    design = template_map(qdi_full_adder())
    assert design.style is LogicStyle.QDI_DUAL_RAIL
    assert design.validate() == []
    # one LE per output rail + one for the acknowledge
    assert len(design.les) == 5
    roles = {function.role for le in design.les for function in le.functions}
    assert "ack" in roles and "logic" in roles
    rail_les = [le for le in design.les for f in le.functions if f.role == "logic"]
    assert all(f.has_feedback for le in rail_les for f in le.functions if f.role == "logic")
    # the two output digits have validity functions on the LUT2s
    assert sum(1 for le in design.les if le.validity is not None) == 2
    assert design.pdes == []


def test_template_map_qdi_preserves_behaviour():
    circuit = qdi_full_adder()
    design = template_map(circuit)
    simulator = simulate_mapped_design(design)
    vectors = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
    producers = [
        FourPhaseDualRailProducer(circuit.channel("a"), [v[0] for v in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("b"), [v[1] for v in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("cin"), [v[2] for v in vectors], "ack"),
    ]
    sums = PassiveDualRailConsumer(circuit.channel("sum"), "ack")
    carries = PassiveDualRailConsumer(circuit.channel("cout"), "ack")
    HandshakeHarness(simulator, producers + [sums, carries]).run()
    expected = [reference_sum_carry(*v) for v in vectors]
    assert sums.received == [s for s, _ in expected]
    assert carries.received == [c for _, c in expected]


def test_template_map_micropipeline_structure():
    design = template_map(micropipeline_full_adder())
    assert design.style is LogicStyle.MICROPIPELINE
    assert design.validate() == []
    assert len(design.pdes) == 1
    assert design.pdes[0].delay_ps > 0
    roles = [function.role for le in design.les for function in le.functions]
    assert roles.count("latch") == 2
    assert roles.count("controller") == 2
    # latch functions absorb the datapath and keep their own feedback
    latch_functions = [f for le in design.les for f in le.functions if f.role == "latch"]
    assert all(f.has_feedback for f in latch_functions)


def test_template_map_micropipeline_preserves_behaviour():
    circuit = micropipeline_full_adder()
    design = template_map(circuit)
    simulator = simulate_mapped_design(design)
    input_channel = circuit.input_channels[0]
    output_channel = circuit.output_channels[0]
    vectors = [(1, 1, 0), (0, 1, 1), (1, 1, 1), (0, 0, 0), (1, 0, 0)]
    encoded = [a | (b << 1) | (c << 2) for a, b, c in vectors]
    producer = FourPhaseBundledProducer(input_channel, encoded, input_channel.ack_wire)
    consumer = FourPhaseBundledConsumer(output_channel, output_channel.req_wire, output_channel.ack_wire)
    HandshakeHarness(simulator, [producer, consumer]).run()
    expected = [s | (c << 1) for s, c in (reference_sum_carry(*v) for v in vectors)]
    assert consumer.received == expected


def test_template_map_requires_metadata():
    circuit = qdi_full_adder()
    del circuit.metadata["reference_function"]
    with pytest.raises(MappingError):
        template_map(circuit)
    stage = micropipeline_full_adder()
    del stage.metadata["datapath_tables"]
    with pytest.raises(MappingError):
        template_map(stage)


def test_template_map_decomposes_too_wide_rail_functions():
    # An LE with fewer LUT inputs cannot host the 7-input rail functions
    # natively; the mapper decomposes them across synthetic nets instead of
    # rejecting the circuit, and the mapped design still behaves correctly.
    small = PLBParams(le=LEParams(lut_inputs=4, lut_outputs=3))
    circuit = qdi_full_adder()
    design = template_map(circuit, small)
    assert design.validate() == []
    assert design.metadata["decomposition"]["intermediate_functions"] > 0
    assert all(len(le.lut_input_nets) <= 4 for le in design.les)

    simulator = simulate_mapped_design(design)
    vectors = [(1, 1, 1), (0, 1, 0), (1, 0, 1), (0, 0, 0)]
    producers = [
        FourPhaseDualRailProducer(circuit.channel("a"), [v[0] for v in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("b"), [v[1] for v in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("cin"), [v[2] for v in vectors], "ack"),
    ]
    sums = PassiveDualRailConsumer(circuit.channel("sum"), "ack")
    carries = PassiveDualRailConsumer(circuit.channel("cout"), "ack")
    HandshakeHarness(simulator, producers + [sums, carries]).run()
    expected = [reference_sum_carry(*v) for v in vectors]
    assert sums.received == [s for s, _ in expected]
    assert carries.received == [c for _, c in expected]


def test_template_map_rejects_degenerate_lut_budget():
    # Below 3 LUT inputs even the decomposition multiplexers cannot fit.
    tiny = PLBParams(le=LEParams(lut_inputs=2, lut_outputs=3))
    with pytest.raises(MappingError):
        template_map(qdi_full_adder(), tiny)


# ----------------------------------------------------------------------
# Generic mapping
# ----------------------------------------------------------------------
def test_generic_map_simple_logic_collapses_to_one_lut():
    builder = NetlistBuilder("cone")
    a, b, c, d = builder.inputs("a", "b", "c", "d")
    x = builder.and2(a, b)
    y = builder.or2(x, c)
    builder.xor2(y, d, out="z")
    builder.output("z")
    design = generic_map(builder.build())
    assert len(design.les) == 1
    function = design.les[0].functions[0]
    assert set(function.input_nets) == {"a", "b", "c", "d"}
    for row in range(16):
        a_v, b_v, c_v, d_v = (row & 1), (row >> 1) & 1, (row >> 2) & 1, (row >> 3) & 1
        expected = (((a_v and b_v) or c_v) ^ d_v)
        assert function.table.evaluate({"a": a_v, "b": b_v, "c": c_v, "d": d_v}) == int(expected)


def test_generic_map_respects_budget_and_cuts():
    builder = NetlistBuilder("wide")
    inputs = builder.inputs(*[f"i{k}" for k in range(10)])
    level1 = [builder.and2(inputs[k], inputs[k + 1]) for k in range(0, 10, 2)]
    out = builder.or_tree(level1, out="z")
    builder.output("z")
    design = generic_map(builder.build(), max_lut_inputs=4)
    assert all(len(le.lut_input_nets) <= 4 for le in design.les)
    assert design.validate() == []
    assert len(design.les) > 1


def test_generic_map_sequential_cells_become_feedback_luts():
    builder = NetlistBuilder("ce")
    a, b = builder.inputs("a", "b")
    builder.c2(a, b, out="z")
    builder.output("z")
    design = generic_map(builder.build())
    assert len(design.les) == 1
    assert design.les[0].functions[0].has_feedback


def test_generic_map_delay_cells_become_pdes():
    circuit = micropipeline_full_adder()
    design = generic_map(circuit.netlist)
    assert len(design.pdes) == 1
    assert design.pdes[0].delay_ps == circuit.metadata["matched_delay"]
    assert design.validate() == []


def test_generic_map_unmappable_raises():
    builder = NetlistBuilder("hopeless")
    inputs = builder.inputs(*[f"i{k}" for k in range(9)])
    # A single 9-input sequential cone cannot be split below its own support.
    tree = builder.c_tree(inputs, out="z")
    builder.output("z")
    # A C-tree is made of C2 cells, each of which maps fine -- so instead force
    # the failure with a tiny budget that even a C2 (3 inputs incl. feedback)
    # cannot satisfy.
    with pytest.raises(MappingError):
        generic_map(builder.build(), max_lut_inputs=2)


# ----------------------------------------------------------------------
# Packing and metrics
# ----------------------------------------------------------------------
def test_pack_design_groups_les_and_attaches_pdes():
    design = template_map(micropipeline_full_adder())
    pack_design(design)
    assert len(design.plbs) == 1
    assert design.plbs[0].pde is not None
    summary = packing_summary(design)
    assert summary["les_used"] == 2 and summary["plbs"] == 1
    assert summary["le_occupancy"] == 1.0


def test_pack_design_respects_les_per_plb():
    design = template_map(qdi_full_adder())
    pack_design(design)
    assert len(design.plbs) == 3  # 5 LEs at 2 per PLB
    assert all(len(plb.les) <= 2 for plb in design.plbs)


def test_pack_design_rejects_illegal_le():
    params = PLBParams()
    design = MappedDesign(name="bad", params=params)
    design.les = [
        MappedLE("wide", functions=[LEFunction("z", xor_table(inputs=tuple(f"n{i}" for i in range(9))))])
    ]
    with pytest.raises(PackingError):
        pack_design(design)


def test_filling_ratio_reproduces_paper_shape():
    qdi = template_map(qdi_full_adder())
    pack_design(qdi)
    mp = template_map(micropipeline_full_adder())
    pack_design(mp)
    qdi_report = filling_ratio(qdi)
    mp_report = filling_ratio(mp)
    # Paper: QDI 76 %, micropipeline 51 % -- QDI must fill the LEs clearly better.
    assert qdi_report.per_le > mp_report.per_le
    assert qdi_report.per_le > 0.55
    assert 0.40 <= mp_report.per_le <= 0.65
    assert qdi_report.lut_inputs_only > mp_report.lut_inputs_only
    row = qdi_report.as_row()
    assert row["les"] == 5 and row["plbs"] == 3


def test_utilisation_report_fields():
    design = template_map(qdi_full_adder())
    pack_design(design)
    report = utilisation_report(design)
    assert report["lut_functions"] == 5
    assert report["validity_functions"] == 2
    assert report["feedback_nets"] == 5
    assert "le_occupancy" in report
