"""Incremental place & route: invariants, parity and quality gates.

Three families of guarantees introduced by the delta-HPWL placer and the
dirty-net PathFinder router:

* the placer's per-net cost cache equals a full ``_hpwl`` recompute at every
  step of any move sequence (property test + in-anneal audit);
* dirty-net re-routing stays *legal* (no overused node in a successful
  result) and is never worse than full re-routing in success or channel
  width across registry circuits × seeds;
* the paper's ``qdi_multiplier_2x2`` quality gate: routed success and
  wirelength at channel width 10 no worse than the full re-route reference,
  and the minimum routable channel width no higher.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cad.flow import CadFlow
from repro.cad.pack import pack_design
from repro.cad.place import HpwlCache, _build_net_terminals, _hpwl, _pad_position, place_design
from repro.cad.route import route_design
from repro.circuits.registry import build_circuit
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams, RoutingParams
from repro.core.rrgraph import RoutingResourceGraph


# ----------------------------------------------------------------------
# Delta-HPWL == full recompute: property test over random move sequences
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n_blocks=st.integers(1, 6),
    n_io=st.integers(0, 4),
    n_nets=st.integers(1, 10),
    n_moves=st.integers(1, 60),
)
def test_delta_hpwl_equals_full_recompute_after_random_moves(
    seed, n_blocks, n_io, n_nets, n_moves
):
    rng = random.Random(seed)
    width, height = rng.randint(3, 7), rng.randint(3, 7)
    blocks = [f"b{index}" for index in range(n_blocks)]
    io_nets = [f"pi{index}" for index in range(n_io)]
    terminals = blocks + [f"io:{net}" for net in io_nets]

    def random_site():
        return (rng.randrange(width), rng.randrange(height))

    def random_io_position():
        # Boundary-style integer-valued coordinates, as _pad_position yields.
        return (float(rng.randrange(-1, width + 1)), float(rng.randrange(-1, height + 1)))

    plb_sites = {name: random_site() for name in blocks}
    io_positions = {net: random_io_position() for net in io_nets}
    nets = {}
    for index in range(n_nets):
        size = rng.randint(2, len(terminals)) if len(terminals) >= 2 else 0
        if size:
            nets[f"n{index}"] = rng.sample(terminals, size)
    if not nets:
        return

    cache = HpwlCache(nets, plb_sites, io_positions)
    assert cache.total == _hpwl(nets, plb_sites, io_positions)

    for _ in range(n_moves):
        kind = rng.choice(["move", "swap", "io"] if io_nets else ["move", "swap"])
        if kind == "move":
            name = rng.choice(blocks)
            saved = plb_sites[name]
            plb_sites[name] = random_site()
            affected = cache.nets_of(name)
        elif kind == "swap":
            a, b = rng.choice(blocks), rng.choice(blocks)
            saved = (plb_sites[a], plb_sites[b])
            plb_sites[a], plb_sites[b] = plb_sites[b], plb_sites[a]
            affected = cache.nets_of(a, b)
        else:
            name = rng.choice(io_nets)
            saved = io_positions[name]
            io_positions[name] = random_io_position()
            affected = cache.nets_of(f"io:{name}")
        delta = cache.propose(affected)
        if rng.random() < 0.5:
            cache.commit()
            assert math.isfinite(cache.total)
        else:
            cache.reject()
            if kind == "move":
                plb_sites[name] = saved
            elif kind == "swap":
                plb_sites[a], plb_sites[b] = saved
            else:
                io_positions[name] = saved
        # The headline invariant: the cached total is *exactly* the full
        # recompute (integer-valued coordinates make float sums exact).
        assert cache.total == _hpwl(nets, plb_sites, io_positions)
        assert isinstance(delta, (int, float))


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n_blocks=st.integers(1, 6),
    n_io=st.integers(0, 4),
    n_nets=st.integers(1, 10),
    n_moves=st.integers(1, 60),
)
def test_incremental_bbox_updates_equal_full_recompute(
    seed, n_blocks, n_io, n_nets, n_moves
):
    # The propose_moves path: bounding boxes updated from the moved
    # terminal's old/new coordinates (edge-occupancy counts), rescanning a
    # net only when a terminal leaves an extreme it alone defined.  The
    # cached total must stay *exactly* a full recompute, move after move.
    rng = random.Random(seed)
    width, height = rng.randint(3, 7), rng.randint(3, 7)
    blocks = [f"b{index}" for index in range(n_blocks)]
    io_nets = [f"pi{index}" for index in range(n_io)]
    terminals = blocks + [f"io:{net}" for net in io_nets]

    def random_site():
        return (rng.randrange(width), rng.randrange(height))

    def random_io_position():
        return (float(rng.randrange(-1, width + 1)), float(rng.randrange(-1, height + 1)))

    plb_sites = {name: random_site() for name in blocks}
    io_positions = {net: random_io_position() for net in io_nets}
    nets = {}
    for index in range(n_nets):
        size = rng.randint(2, len(terminals)) if len(terminals) >= 2 else 0
        if size:
            nets[f"n{index}"] = rng.sample(terminals, size)
    if not nets:
        return

    cache = HpwlCache(nets, plb_sites, io_positions)
    assert cache.total == _hpwl(nets, plb_sites, io_positions)

    def pos(site):
        return (float(site[0]), float(site[1]))

    for _ in range(n_moves):
        kind = rng.choice(["move", "swap", "io"] if io_nets else ["move", "swap"])
        if kind == "move":
            name = rng.choice(blocks)
            saved = plb_sites[name]
            plb_sites[name] = random_site()
            moves = [(name, pos(saved), pos(plb_sites[name]))]
        elif kind == "swap":
            a, b = rng.choice(blocks), rng.choice(blocks)
            saved = (plb_sites[a], plb_sites[b])
            plb_sites[a], plb_sites[b] = plb_sites[b], plb_sites[a]
            moves = [
                (a, pos(saved[0]), pos(plb_sites[a])),
                (b, pos(saved[1]), pos(plb_sites[b])),
            ]
        else:
            name = rng.choice(io_nets)
            saved = io_positions[name]
            io_positions[name] = random_io_position()
            moves = [(f"io:{name}", saved, io_positions[name])]
        cache.propose_moves(moves)
        if rng.random() < 0.5:
            cache.commit()
        else:
            cache.reject()
            if kind == "move":
                plb_sites[name] = saved
            elif kind == "swap":
                plb_sites[a], plb_sites[b] = saved
            else:
                io_positions[name] = saved
        assert cache.total == _hpwl(nets, plb_sites, io_positions)


def test_bbox_update_avoids_rescan_for_interior_terminal():
    # Deterministic check that the O(1) path actually fires: moving a
    # terminal strictly inside its net's bounding box must not rescan.
    nets = {"n0": ["a", "b", "c"]}
    plb_sites = {"a": (0, 0), "b": (4, 4), "c": (2, 2)}
    cache = HpwlCache(nets, plb_sites, {})
    scans_before = cache.evaluations
    plb_sites["c"] = (1, 3)  # still interior
    delta = cache.propose_moves([("c", (2.0, 2.0), (1.0, 3.0))])
    cache.commit()
    assert delta == 0.0
    assert cache.bbox_updates == 1
    assert cache.evaluations == scans_before  # no terminal rescan happened
    # Moving the sole terminal off an extreme degenerates into a rescan.
    plb_sites["b"] = (1, 1)
    cache.propose_moves([("b", (4.0, 4.0), (1.0, 1.0))])
    cache.commit()
    assert cache.evaluations == scans_before + 1
    assert cache.total == _hpwl(nets, plb_sites, {})


def test_place_design_audited_anneal_and_final_cost():
    # audit_interval=1 asserts cache == full recompute inside every move of
    # the real anneal; the final cost must also match an independent
    # recompute from the returned placement.
    circuit = build_circuit("qdi_full_adder")
    flow = CadFlow(ArchitectureParams(width=5, height=5))
    design = flow.map(circuit)
    pack_design(design, flow.architecture.plb)
    placement = place_design(design, flow.fabric, seed=3, audit_interval=1)

    nets = _build_net_terminals(design)
    io_positions = {
        net: _pad_position(pad, flow.fabric) for net, pad in placement.io_sites.items()
    }
    assert placement.cost == _hpwl(nets, placement.plb_sites, io_positions)
    assert placement.net_count == len(nets)
    assert placement.iterations >= 200
    assert 0 < placement.moves_accepted <= placement.iterations


def test_incremental_placer_saves_net_evaluations():
    # The reason the rewrite exists: far fewer per-net evaluations than the
    # full-recompute annealer's moves * nets.
    adder = build_circuit("qdi_ripple_adder_4")
    design = adder.mapped
    pack_design(design)
    fabric = Fabric(ArchitectureParams(width=7, height=7))
    placement = place_design(design, fabric, seed=1)
    full_equivalent = placement.iterations * placement.net_count
    assert placement.net_evaluations * 4 < full_equivalent


def test_placement_counters_serialize():
    adder = build_circuit("qdi_ripple_adder_2")
    design = adder.mapped
    pack_design(design)
    fabric = Fabric(ArchitectureParams(width=6, height=6))
    placement = place_design(design, fabric, seed=5)
    from repro.cad.place import Placement

    rebuilt = Placement.from_dict(placement.to_dict())
    assert rebuilt.net_evaluations == placement.net_evaluations
    assert rebuilt.moves_accepted == placement.moves_accepted
    assert rebuilt.net_count == placement.net_count
    assert rebuilt.plb_sites == placement.plb_sites


# ----------------------------------------------------------------------
# Router parity: dirty-net vs full re-routing
# ----------------------------------------------------------------------
PARITY_CIRCUITS = (
    "qdi_full_adder",
    "qdi_full_adder_1of4",
    "micropipeline_full_adder",
    "qdi_ripple_adder_2",
    "qdi_ripple_adder_4",
    "micropipeline_ripple_adder_4",
    "wchb_fifo_4",
    "wchb_fifo_8",
)


def _place_and_graph(name: str, seed: int):
    circuit = build_circuit(name)
    arch = ArchitectureParams(routing=RoutingParams(channel_width=10))
    flow = CadFlow(arch)
    if hasattr(circuit, "mapped"):
        design = circuit.mapped
        if design.params != arch.plb:
            design = flow.map(circuit.gate_circuit)
    else:
        design = flow.map(circuit)
    pack_design(design, arch.plb)
    side = max(4, int(len(design.plbs) ** 0.5) + 2)
    params = ArchitectureParams(
        width=side, height=side, routing=RoutingParams(channel_width=10, io_pads_per_side=8)
    )
    fabric = Fabric(params)
    graph = RoutingResourceGraph(fabric)
    placement = place_design(design, fabric, seed=seed)
    return design, placement, graph


def _assert_legal(routing, graph):
    occupancy = [0] * len(graph)
    for routed in routing.routed.values():
        for node_id in routed.nodes:
            occupancy[node_id] += 1
    assert all(
        occupancy[node_id] <= graph.capacity[node_id] for node_id in range(len(graph))
    )


@pytest.mark.parametrize("name", PARITY_CIRCUITS)
@pytest.mark.parametrize("seed", [1, 7])
def test_dirty_net_routing_parity_with_full_rerouting(name, seed):
    design, placement, graph = _place_and_graph(name, seed)
    incremental = route_design(design, placement, graph, incremental=True)
    full = route_design(design, placement, graph, incremental=False)

    # Success parity: dirty-net routing converges wherever full does.
    assert incremental.success or not full.success
    if incremental.success:
        _assert_legal(incremental, graph)
        assert incremental.routed.keys() == full.routed.keys()
        # Quality gate: within 2% of the full re-route wirelength.
        if full.success:
            assert incremental.total_wirelength <= full.total_wirelength * 1.02
    # The perf point: after the first iteration, dirty iterations re-route
    # only a subset of the nets (recovery sweeps excepted).
    per_iteration = incremental.reroutes_per_iteration
    if incremental.iterations > 1:
        assert any(count < per_iteration[0] for count in per_iteration[1:])


def test_dirty_net_first_iteration_routes_every_net():
    design, placement, graph = _place_and_graph("qdi_full_adder", 1)
    incremental = route_design(design, placement, graph, incremental=True)
    assert incremental.reroutes_per_iteration[0] == len(incremental.routed)
    # Later iterations touch only dirty nets.
    assert all(
        count <= incremental.reroutes_per_iteration[0]
        for count in incremental.reroutes_per_iteration
    )


# ----------------------------------------------------------------------
# The paper's multiplier: channel-width / wirelength quality gate
# ----------------------------------------------------------------------
def _multiplier_route(channel_width: int, incremental: bool):
    arch = ArchitectureParams(routing=RoutingParams(channel_width=channel_width))
    flow = CadFlow(arch)
    design = flow.map(build_circuit("qdi_multiplier_2x2"))
    pack_design(design, arch.plb)
    placement = place_design(design, flow.fabric, seed=1)
    return route_design(design, placement, flow.rr_graph, incremental=incremental), flow


def test_multiplier_quality_gate_channel_width_10():
    incremental, flow = _multiplier_route(10, incremental=True)
    full, _ = _multiplier_route(10, incremental=False)
    assert incremental.success and full.success
    _assert_legal(incremental, flow.rr_graph)
    # Wirelength within the repo-wide 2% parity tolerance of the full
    # re-route reference (A* tie-breaking makes exact equality schedule-
    # dependent; both schedules route cost-optimal searches).
    assert incremental.total_wirelength <= full.total_wirelength * 1.02


def test_multiplier_routes_at_default_channel_width_8():
    # The seed router needed channel width 10; the incremental router's
    # recovery schedule closes the ROADMAP gap and routes the decomposed
    # multiplier on the paper's default fabric (channel width 8).
    incremental, flow = _multiplier_route(8, incremental=True)
    assert incremental.success
    _assert_legal(incremental, flow.rr_graph)
