"""Round-trip tests of the stage-artifact codecs and the artifact store.

Acceptance criteria of the artifacts subsystem: every stage boundary of the
flow serializes to a JSON-safe, schema-versioned payload whose round trip is
exact (``from_dict(to_dict(x))`` equals ``x``), unknown schema versions and
corrupt payloads raise the typed errors from :mod:`repro.core.schema`, and
the :class:`~repro.artifacts.ArtifactStore` enforces its size bound.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.artifacts import (
    ARTIFACT_SCHEMA,
    STAGES,
    ArtifactError,
    ArtifactStore,
    CorruptArtifactError,
    UnknownSchemaError,
    decode_envelope,
    encode_envelope,
    flow_artifact_key,
    load_flow_artifacts,
    stage_key,
)
from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.lemap import MappedDesign
from repro.cad.place import Placement
from repro.cad.route import RoutingResult
from repro.cad.timing import TimingReport
from repro.circuits.registry import build_circuit
from repro.core.bitstream import Bitstream, BitstreamBudget
from repro.core.params import ArchitectureParams
from repro.core.schema import LEGACY_VERSION, decoding, require_version
from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist

ARCH = ArchitectureParams()


@pytest.fixture(scope="module")
def flow_and_result():
    flow = CadFlow(ARCH, FlowOptions())
    return flow, flow.run(build_circuit("qdi_full_adder"))


def _json_round_trip(payload):
    """Assert the payload is JSON-safe and return the reloaded copy."""
    return json.loads(json.dumps(payload))


# ----------------------------------------------------------------------
# Stage codecs: exact round trips through JSON
# ----------------------------------------------------------------------
def test_mapped_design_round_trips(flow_and_result):
    _, result = flow_and_result
    payload = _json_round_trip(result.mapped.to_dict())
    rebuilt = MappedDesign.from_dict(payload)
    assert rebuilt.to_dict() == result.mapped.to_dict()
    # PLB membership must be reconstructed by identity, not by copies.
    for plb in rebuilt.plbs:
        for le in plb.les:
            assert any(le is candidate for candidate in rebuilt.les)


def test_placement_round_trips(flow_and_result):
    _, result = flow_and_result
    payload = _json_round_trip(result.placement.to_dict())
    assert Placement.from_dict(payload).to_dict() == result.placement.to_dict()


def test_routing_round_trips(flow_and_result):
    flow, result = flow_and_result
    payload = _json_round_trip(result.routing.to_dict(flow.rr_graph))
    rebuilt = RoutingResult.from_dict(payload, flow.rr_graph)
    assert rebuilt.to_dict(flow.rr_graph) == result.routing.to_dict(flow.rr_graph)
    for net, routed in rebuilt.routed.items():
        assert routed.nodes == result.routing.routed[net].nodes


def test_timing_round_trips(flow_and_result):
    _, result = flow_and_result
    payload = _json_round_trip(result.timing.to_dict())
    assert TimingReport.from_dict(payload) == result.timing


def test_bitstream_round_trips(flow_and_result):
    _, result = flow_and_result
    payload = _json_round_trip(result.bitstream.to_dict())
    rebuilt = Bitstream.from_dict(payload)
    assert rebuilt == result.bitstream
    assert rebuilt.to_bytes() == result.bitstream.to_bytes()
    # An explicitly supplied budget is honoured too.
    budget = BitstreamBudget.for_architecture(ARCH)
    assert Bitstream.from_dict(payload, budget) == result.bitstream


def test_netlist_round_trips():
    builder = NetlistBuilder("codec_probe")
    a, b = builder.inputs("a", "b")
    x = builder.and2(a, b)
    builder.or2(x, a, out="y")
    builder.output("y")
    netlist = builder.netlist
    payload = _json_round_trip(netlist.to_dict())
    rebuilt = Netlist.from_dict(payload)
    assert rebuilt.to_dict() == netlist.to_dict()
    assert rebuilt.stats() == netlist.stats()


# ----------------------------------------------------------------------
# Hypothesis: codecs over generated values
# ----------------------------------------------------------------------
net_names = st.text(
    alphabet="abcdefgh_0123456789", min_size=1, max_size=8
).filter(lambda s: not s.isdigit())


@given(
    delays=st.dictionaries(net_names, st.integers(0, 10_000), max_size=8),
    levels=st.integers(0, 64),
    cycle=st.integers(0, 1_000_000),
    crit=st.dictionaries(net_names, st.floats(0, 1, allow_nan=False), max_size=8),
    notes=st.lists(st.text(max_size=20), max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_timing_report_round_trips_generated(delays, levels, cycle, crit, notes):
    report = TimingReport(
        net_delays_ps=delays,
        max_net_delay_ps=max(delays.values(), default=0),
        le_levels=levels,
        forward_latency_ps=cycle // 2,
        cycle_time_ps=cycle,
        criticalities=crit,
        notes=notes,
        critical_path_ps=cycle // 2,
    )
    assert TimingReport.from_dict(_json_round_trip(report.to_dict())) == report


@given(data=st.binary(min_size=0, max_size=64))
@settings(max_examples=40, deadline=None)
def test_bitstream_round_trips_generated(data):
    budget = BitstreamBudget.for_architecture(ARCH)
    padded = data.ljust((budget.total_bits + 7) // 8, b"\x00")
    bitstream = Bitstream.from_bytes(budget, padded)
    rebuilt = Bitstream.from_dict(_json_round_trip(bitstream.to_dict()))
    assert rebuilt.to_bytes() == bitstream.to_bytes()


@given(chain=st.integers(1, 6), invert=st.lists(st.booleans(), min_size=1, max_size=6))
@settings(max_examples=25, deadline=None)
def test_netlist_round_trips_generated(chain, invert):
    builder = NetlistBuilder("gen")
    net = builder.input("in0")
    for index in range(chain):
        flip = invert[index % len(invert)]
        net = builder.inv(net) if flip else builder.buf(net)
    builder.netlist.add_net("out0")
    builder.buf(net, out="out0")
    builder.output("out0")
    payload = _json_round_trip(builder.netlist.to_dict())
    assert Netlist.from_dict(payload).to_dict() == builder.netlist.to_dict()


# ----------------------------------------------------------------------
# Typed decode errors
# ----------------------------------------------------------------------
def _stage_payloads(flow, result):
    return {
        "mapped": result.mapped.to_dict(),
        "placement": result.placement.to_dict(),
        "routing": result.routing.to_dict(flow.rr_graph),
        "timing": result.timing.to_dict(),
        "bitstream": result.bitstream.to_dict(),
    }


def _decoder_for(stage, flow):
    return {
        "mapped": MappedDesign.from_dict,
        "placement": Placement.from_dict,
        "routing": lambda data: RoutingResult.from_dict(data, flow.rr_graph),
        "timing": TimingReport.from_dict,
        "bitstream": Bitstream.from_dict,
    }[stage]


@pytest.mark.parametrize("stage", ["mapped", "placement", "routing", "timing", "bitstream"])
def test_unknown_schema_version_raises_typed_error(stage, flow_and_result):
    flow, result = flow_and_result
    payload = dict(_stage_payloads(flow, result)[stage])
    payload["schema"] = 999
    with pytest.raises(UnknownSchemaError):
        _decoder_for(stage, flow)(payload)
    # The typed errors stay catchable as ValueError (legacy call sites).
    assert issubclass(UnknownSchemaError, ValueError)
    assert issubclass(CorruptArtifactError, ValueError)


@pytest.mark.parametrize("stage", ["mapped", "placement", "routing", "timing", "bitstream"])
def test_corrupt_payload_raises_typed_error(stage, flow_and_result):
    flow, result = flow_and_result
    decoder = _decoder_for(stage, flow)
    with pytest.raises(CorruptArtifactError):
        decoder("not a mapping")
    gutted = {"schema": _stage_payloads(flow, result)[stage]["schema"]}
    with pytest.raises(CorruptArtifactError):
        decoder(gutted)


def test_placement_accepts_legacy_unversioned_payload(flow_and_result):
    _, result = flow_and_result
    legacy = dict(result.placement.to_dict())
    del legacy["schema"]  # pre-artifact records carried no version stamp
    assert Placement.from_dict(legacy).to_dict() == result.placement.to_dict()


def test_routing_rejects_foreign_fabric_nodes(flow_and_result):
    flow, result = flow_and_result
    payload = json.loads(json.dumps(result.routing.to_dict(flow.rr_graph)))
    net = next(iter(payload["routed"]))
    payload["routed"][net]["nodes"][0] = "no_such_node"
    with pytest.raises(CorruptArtifactError):
        RoutingResult.from_dict(payload, flow.rr_graph)


def test_require_version_and_decoding_primitives():
    assert require_version({"schema": 3}, "probe", 3) == 3
    assert require_version({}, "probe", 1, legacy=True) == LEGACY_VERSION
    with pytest.raises(CorruptArtifactError):
        require_version({}, "probe", 1)
    with pytest.raises(UnknownSchemaError):
        require_version({"schema": 2}, "probe", 1)
    with pytest.raises(CorruptArtifactError):
        require_version({"schema": True}, "probe", 1)
    with pytest.raises(CorruptArtifactError):
        with decoding("probe"):
            raise KeyError("missing")
    # Typed errors pass through undisturbed instead of being re-wrapped.
    with pytest.raises(UnknownSchemaError):
        with decoding("probe"):
            raise UnknownSchemaError("inner")


# ----------------------------------------------------------------------
# Envelope and keys
# ----------------------------------------------------------------------
def test_envelope_round_trips_and_pins_stage():
    options = FlowOptions()
    key = flow_artifact_key("qdi_full_adder", ARCH, options)
    record = encode_envelope("mapped", key, "qdi_full_adder", ARCH, options, {"x": 1})
    record = _json_round_trip(record)
    assert record["schema"] == ARTIFACT_SCHEMA
    assert decode_envelope(record) == {"x": 1}
    assert decode_envelope(record, "mapped") == {"x": 1}
    with pytest.raises(CorruptArtifactError):
        decode_envelope(record, "routing")
    bad = dict(record)
    bad["kind"] = "flow"
    with pytest.raises(CorruptArtifactError):
        decode_envelope(bad)


def test_stage_keys_are_distinct_and_validated():
    options = FlowOptions()
    key = flow_artifact_key("qdi_full_adder", ARCH, options)
    assert len({stage_key(key, stage) for stage in STAGES}) == len(STAGES)
    with pytest.raises(ValueError):
        stage_key(key, "netlist")
    with pytest.raises(ValueError):
        encode_envelope("netlist", key, "c", ARCH, options, {})


def test_flow_key_ignores_execution_side_options(tmp_path):
    plain = flow_artifact_key("qdi_full_adder", ARCH, FlowOptions())
    stored = flow_artifact_key(
        "qdi_full_adder",
        ARCH,
        FlowOptions(artifact_store=str(tmp_path), checkpoint_stages=("mapped",)),
    )
    assert plain == stored
    assert plain != flow_artifact_key("qdi_ripple_adder_2", ARCH, FlowOptions())
    assert plain != flow_artifact_key("qdi_full_adder", ARCH, FlowOptions(timing_driven=True))


# ----------------------------------------------------------------------
# The store: bound enforcement, GC, grouped loads
# ----------------------------------------------------------------------
def test_artifact_store_round_trips_records(tmp_path):
    store = ArtifactStore(tmp_path / "arts")
    store.put("aa" + "0" * 62, {"kind": "artifact", "x": 1})
    assert store.get("aa" + "0" * 62) == {"kind": "artifact", "x": 1}
    assert store.get("bb" + "0" * 62) is None


def test_artifact_store_enforces_size_bound(tmp_path):
    store = ArtifactStore(tmp_path / "arts", max_bytes=None)
    sizes = []
    for index in range(4):
        path = store.put(f"{index:02d}" + "0" * 62, {"payload": "x" * 256, "index": index})
        sizes.append(path.stat().st_size)
    # Budget exactly one record so the three oldest get evicted.
    store.max_bytes = max(sizes)
    removed, freed = store.enforce_size_bound()
    assert removed == 3 and freed == sum(sizes[:3])
    # The newest record survives the oldest-mtime eviction order.
    assert store.get("03" + "0" * 62) is not None
    assert store.get("00" + "0" * 62) is None
    unbounded = ArtifactStore(tmp_path / "loose", max_bytes=None)
    unbounded.put("aa" + "0" * 62, {"payload": "x"})
    assert unbounded.enforce_size_bound() == (0, 0)


def test_sweep_store_gc_accepts_size_bound(tmp_path):
    store = ArtifactStore(tmp_path / "arts", max_bytes=None)
    fingerprint = "f" * 16
    for index in range(3):
        store.put(f"{index:02d}" + "0" * 62, {"fingerprint": fingerprint, "i": index})
    outcome = store.gc(current_fingerprint=fingerprint, max_bytes=1)
    assert outcome["size_evicted"] >= 2
    assert outcome["removed"] == outcome["size_evicted"]  # nothing was retired


def test_checkpointed_flow_loads_back_as_grouped_views(tmp_path):
    store_dir = tmp_path / "arts"
    options = FlowOptions(artifact_store=str(store_dir))
    result = CadFlow(ARCH, options).run(build_circuit("qdi_full_adder"))
    views = load_flow_artifacts(ArtifactStore(store_dir))
    assert len(views) == 1
    view = views[0]
    assert view.circuit == "qdi_full_adder"
    assert view.stages == STAGES
    assert view.flow_key == flow_artifact_key("qdi_full_adder", ARCH, options)
    assert view.bitstream() == result.bitstream
    assert view.placement().to_dict() == result.placement.to_dict()
    assert view.timing() == result.timing
    assert view.design().to_dict() == result.mapped.to_dict()
    # Re-rendering from packed + placement reproduces the stored bytes.
    view.payloads.pop("bitstream")
    assert view.render_bitstream().to_bytes() == result.bitstream.to_bytes()
    # Filters: wrong circuit or fingerprint yields nothing.
    assert load_flow_artifacts(ArtifactStore(store_dir), circuit="nope") == []
    assert load_flow_artifacts(ArtifactStore(store_dir), fingerprint="stale") == []


def test_resume_requires_a_stored_artifact(tmp_path):
    options = FlowOptions(artifact_store=str(tmp_path / "arts"))
    with pytest.raises(ArtifactError):
        CadFlow(ARCH, options).run(build_circuit("qdi_full_adder"), resume_from="routing")
    with pytest.raises(ValueError):
        CadFlow(ARCH, FlowOptions()).run(
            build_circuit("qdi_full_adder"), resume_from="auto"
        )
