"""Tests for the event scheduler, gate-level simulator, hazards, checkers, VCD."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.sim.checkers import DualRailChecker, FourPhaseChecker, ProtocolViolation
from repro.sim.hazards import TransitionTrace, analyse_traces, count_glitches, is_monotonic_transition
from repro.sim.netsim import GateLevelSimulator, evaluate_combinational
from repro.sim.scheduler import EventScheduler
from repro.sim.vcd import VcdWriter
from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import DualRailEncoding


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
def test_scheduler_ordering_and_determinism():
    scheduler = EventScheduler()
    scheduler.schedule(10, "b")
    scheduler.schedule(5, "a")
    scheduler.schedule(10, "c")
    order = [scheduler.pop().target for _ in range(3)]
    assert order == ["a", "b", "c"]  # time order, then insertion order
    assert scheduler.now == 10
    assert scheduler.empty()


def test_scheduler_negative_delay_and_past():
    scheduler = EventScheduler()
    with pytest.raises(ValueError):
        scheduler.schedule(-1, "x")
    scheduler.schedule(5, "x")
    scheduler.pop()
    with pytest.raises(ValueError):
        scheduler.schedule_at(1, "y")


def test_scheduler_pop_simultaneous():
    scheduler = EventScheduler()
    scheduler.schedule(3, "a")
    scheduler.schedule(3, "b")
    scheduler.schedule(7, "c")
    events = scheduler.pop_simultaneous()
    assert [event.target for event in events] == ["a", "b"]


def test_scheduler_drain_limit():
    scheduler = EventScheduler()
    for index in range(10):
        scheduler.schedule(index, index)
    with pytest.raises(RuntimeError):
        scheduler.drain(lambda event: None, max_events=3)


def test_scheduler_drain_exact_limit_is_not_an_error():
    # Regression: draining a queue that empties at exactly max_events used to
    # raise the "event limit reached" oscillation error.
    scheduler = EventScheduler()
    for index in range(5):
        scheduler.schedule(index, index)
    seen = []
    assert scheduler.drain(seen.append, max_events=5) == 5
    assert len(seen) == 5
    assert scheduler.empty()


def test_scheduler_drain_limit_with_only_beyond_horizon_events_left():
    # Hitting max_events with the only remaining events beyond the `until`
    # horizon is a horizon stop, not an oscillation.
    scheduler = EventScheduler()
    for index in range(3):
        scheduler.schedule(index, index)
    scheduler.schedule(100, "late")
    assert scheduler.drain(lambda event: None, max_events=3, until=50) == 3
    assert not scheduler.empty()


def test_scheduler_drain_until():
    scheduler = EventScheduler()
    for index in range(10):
        scheduler.schedule(index * 10, index)
    seen = []
    scheduler.drain(seen.append, until=35)
    assert len(seen) == 4


def test_scheduler_empty_pop():
    with pytest.raises(RuntimeError):
        EventScheduler().pop()


# ----------------------------------------------------------------------
# Gate-level simulator
# ----------------------------------------------------------------------
def _xor_chain():
    builder = NetlistBuilder("chain")
    a, b, c = builder.inputs("a", "b", "c")
    x = builder.xor2(a, b, out="x")
    builder.xor2(x, c, out="y")
    builder.outputs("y")
    return builder.build()


def test_combinational_evaluation_exhaustive():
    netlist = _xor_chain()
    for v in range(8):
        vector = {"a": v & 1, "b": (v >> 1) & 1, "c": (v >> 2) & 1}
        out = evaluate_combinational(netlist, vector)
        assert out["y"] == (vector["a"] ^ vector["b"] ^ vector["c"])


def test_simulator_rejects_driving_non_inputs():
    simulator = GateLevelSimulator(_xor_chain())
    with pytest.raises(ValueError):
        simulator.set_input("x", 1)


def test_simulator_time_advances_with_delays():
    simulator = GateLevelSimulator(_xor_chain())
    simulator.initialise()
    result = simulator.apply_and_settle({"a": 1})
    assert result.settled
    assert simulator.now >= 2 * 100  # two XOR gates at >=100 ps each... (XOR delay is 140)
    assert simulator.value("y") == 1


def test_simulator_c_element_holds_state():
    builder = NetlistBuilder("ce")
    a, b = builder.inputs("a", "b")
    builder.c2(a, b, out="z")
    builder.output("z")
    simulator = GateLevelSimulator(builder.build())
    simulator.initialise()
    simulator.apply_and_settle({"a": 1, "b": 1})
    assert simulator.value("z") == 1
    simulator.apply_and_settle({"a": 0, "b": 1})
    assert simulator.value("z") == 1  # hold
    simulator.apply_and_settle({"a": 0, "b": 0})
    assert simulator.value("z") == 0


def test_simulator_latch():
    builder = NetlistBuilder("latch")
    d, en = builder.inputs("d", "en")
    builder.latch(d, en, out="q")
    builder.output("q")
    simulator = GateLevelSimulator(builder.build())
    simulator.initialise()
    simulator.apply_and_settle({"d": 1, "en": 1})
    assert simulator.value("q") == 1
    simulator.apply_and_settle({"en": 0})
    simulator.apply_and_settle({"d": 0})
    assert simulator.value("q") == 1  # opaque latch holds
    simulator.apply_and_settle({"en": 1})
    assert simulator.value("q") == 0


def test_simulator_traces_and_wait_for():
    netlist = _xor_chain()
    simulator = GateLevelSimulator(netlist, trace_nets=["y"])
    simulator.initialise()
    simulator.set_input("a", 1)
    assert simulator.wait_for("y", 1)
    trace = simulator.trace("y")
    assert trace[-1][1] == 1
    with pytest.raises(KeyError):
        simulator.trace("x")


def test_per_instance_delay_override():
    builder = NetlistBuilder("delay")
    a = builder.input("a")
    builder.gate("DELAY", [a], out="z", name="dly")
    builder.output("z")
    netlist = builder.build()
    netlist.cell("dly").attributes["delay"] = 1234
    simulator = GateLevelSimulator(netlist)
    simulator.initialise()
    simulator.set_input("a", 1)
    simulator.run()
    assert simulator.now == 1234
    assert simulator.value("z") == 1


# ----------------------------------------------------------------------
# Hazard analysis
# ----------------------------------------------------------------------
def test_count_glitches_and_monotonicity():
    changes = [(0, 0), (10, 1), (12, 0), (15, 1)]
    assert count_glitches(changes, 0, 20) == 2
    assert not is_monotonic_transition(changes, 0, 20)
    assert is_monotonic_transition(changes, 0, 10)
    assert count_glitches([], 0, 100) == 0


def test_transition_trace_queries():
    trace = TransitionTrace(net="x", changes=[(0, 0), (10, 1), (30, 0), (50, 1)])
    assert trace.value_at(5) == 0
    assert trace.value_at(10) == 1
    assert trace.value_at(40) == 0
    assert trace.rising_edges() == [10, 50]
    assert trace.falling_edges() == [30]
    assert trace.transition_count(0, 30) == 2
    assert trace.window(0, 10) == [(10, 1)]


def test_analyse_traces():
    traces = {"a": [(0, 0), (5, 1)], "b": [(0, 0), (5, 1), (6, 0), (7, 1)]}
    report = analyse_traces(traces, 0, 10)
    assert report["a"] == 0
    assert report["b"] == 2


# ----------------------------------------------------------------------
# Protocol checkers
# ----------------------------------------------------------------------
def test_dual_rail_checker_accepts_legal_sequence():
    channel = Channel("d", 1, DualRailEncoding())
    checker = DualRailChecker(channel)
    checker.observe({"d_f": 0, "d_t": 0})
    checker.observe({"d_f": 0, "d_t": 1})
    checker.observe({"d_f": 0, "d_t": 0})
    checker.observe({"d_f": 1, "d_t": 0})
    assert checker.observed_values == [1, 0]
    assert checker.ok


def test_dual_rail_checker_rejects_back_to_back_valid():
    channel = Channel("d", 1, DualRailEncoding())
    checker = DualRailChecker(channel)
    checker.observe({"d_f": 0, "d_t": 1})
    with pytest.raises(ProtocolViolation):
        checker.observe({"d_f": 1, "d_t": 0})
    relaxed = DualRailChecker(channel, strict=False)
    relaxed.observe({"d_f": 0, "d_t": 1})
    relaxed.observe({"d_f": 1, "d_t": 0})
    assert not relaxed.ok


def test_four_phase_checker():
    checker = FourPhaseChecker(name="ch")
    for req, ack in [(1, 0), (1, 1), (0, 1), (0, 0), (1, 0), (1, 1), (0, 1), (0, 0)]:
        checker.observe(req, ack)
    assert checker.handshakes_completed == 2
    with pytest.raises(ProtocolViolation):
        checker.observe(0, 1)  # illegal from (0, 0)


# ----------------------------------------------------------------------
# VCD
# ----------------------------------------------------------------------
def test_vcd_render_and_save(tmp_path):
    writer = VcdWriter(design_name="testbench")
    writer.add_trace("a", [(0, 0), (10, 1), (20, 0)])
    writer.add_trace("b", [(0, 1), (15, 0)])
    text = writer.render()
    assert "$timescale" in text
    assert "$var wire 1" in text
    assert "#10" in text and "#20" in text
    path = tmp_path / "wave.vcd"
    writer.save(str(path))
    assert path.read_text().startswith("$date")
