"""Integration tests tied to the paper's claims and cross-level consistency.

These tests are the executable form of EXPERIMENTS.md: each one checks the
*shape* of a paper claim (who wins, by roughly what factor) rather than an
absolute number, since the underlying substrate is a behavioural model.
"""

import pytest

from repro import api
from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.metrics import filling_ratio
from repro.cad.pack import pack_design
from repro.cad.techmap import generic_map, template_map
from repro.circuits.adders import micropipeline_ripple_adder, qdi_ripple_adder
from repro.circuits.fulladder import micropipeline_full_adder, qdi_full_adder, reference_sum_carry
from repro.core.params import ArchitectureParams
from repro.sim import (
    FourPhaseBundledConsumer,
    FourPhaseBundledProducer,
    FourPhaseDualRailProducer,
    GateLevelSimulator,
    HandshakeHarness,
)
from repro.sim.fabricsim import simulate_on_fabric
from repro.sim.handshake import PassiveDualRailConsumer
from repro.sim.hazards import count_glitches
from repro.styles.base import LogicStyle


# ----------------------------------------------------------------------
# Section 5 headline: filling ratios (EXP-FR)
# ----------------------------------------------------------------------
def test_exp_fr_filling_ratio_shape():
    rows = api.reproduce_filling_ratios()
    by_style = {row["style"]: row["measured_filling_ratio"] for row in rows}
    qdi = by_style["qdi-dual-rail"]
    mp = by_style["micropipeline"]
    # Paper: 76 % vs 51 % (ratio 1.49).  The shape requirement: QDI fills the
    # LEs substantially better than micropipeline.
    assert qdi > mp
    assert qdi / mp > 1.15
    assert 0.55 <= qdi <= 0.9
    assert 0.40 <= mp <= 0.65


def test_exp_fr_micropipeline_uses_pde_and_qdi_does_not():
    mp = api.map_full_adder(
        "micropipeline", options=FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False)
    )
    qdi = api.map_full_adder(
        "qdi", options=FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False)
    )
    assert len(mp.mapped.pdes) == 1
    assert len(qdi.mapped.pdes) == 0
    # The micropipeline FA fits one PLB (2 LEs + PDE); the QDI FA needs three.
    assert len(mp.mapped.plbs) == 1
    assert len(qdi.mapped.plbs) == 3


# ----------------------------------------------------------------------
# Figure 3: both adders work on the fabric model, end to end (EXP-F3a/b)
# ----------------------------------------------------------------------
def test_exp_f3_qdi_full_adder_on_routed_fabric():
    flow = CadFlow(ArchitectureParams(width=5, height=5))
    circuit = qdi_full_adder()
    result = flow.run(circuit)
    assert result.routing is not None and result.routing.success
    simulator = simulate_on_fabric(result)
    vectors = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
    producers = [
        FourPhaseDualRailProducer(circuit.channel("a"), [v[0] for v in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("b"), [v[1] for v in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("cin"), [v[2] for v in vectors], "ack"),
    ]
    sums = PassiveDualRailConsumer(circuit.channel("sum"), "ack")
    carries = PassiveDualRailConsumer(circuit.channel("cout"), "ack")
    HandshakeHarness(simulator, producers + [sums, carries]).run()
    expected = [reference_sum_carry(*v) for v in vectors]
    assert sums.received == [s for s, _ in expected]
    assert carries.received == [c for _, c in expected]


def test_exp_f3_micropipeline_full_adder_on_routed_fabric():
    flow = CadFlow(ArchitectureParams(width=5, height=5))
    circuit = micropipeline_full_adder()
    result = flow.run(circuit)
    assert result.routing is not None and result.routing.success
    simulator = simulate_on_fabric(result)
    input_channel = circuit.input_channels[0]
    output_channel = circuit.output_channels[0]
    vectors = [(1, 0, 1), (1, 1, 1), (0, 0, 0), (0, 1, 0)]
    encoded = [a | (b << 1) | (c << 2) for a, b, c in vectors]
    producer = FourPhaseBundledProducer(input_channel, encoded, input_channel.ack_wire)
    consumer = FourPhaseBundledConsumer(output_channel, output_channel.req_wire, output_channel.ack_wire)
    HandshakeHarness(simulator, [producer, consumer]).run()
    expected = [s | (c << 1) for s, c in (reference_sum_carry(*v) for v in vectors)]
    assert consumer.received == expected


# ----------------------------------------------------------------------
# QDI hazard-freedom on the mapped design
# ----------------------------------------------------------------------
def test_qdi_outputs_are_hazard_free_during_handshakes():
    circuit = qdi_full_adder()
    from repro.cad.techmap import template_map
    from repro.sim.lesim import simulate_mapped_design

    design = template_map(circuit)
    simulator = simulate_mapped_design(design, trace_all=True)
    vectors = [(1, 1, 0), (0, 1, 1), (1, 0, 1)]
    producers = [
        FourPhaseDualRailProducer(circuit.channel("a"), [v[0] for v in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("b"), [v[1] for v in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("cin"), [v[2] for v in vectors], "ack"),
    ]
    sums = PassiveDualRailConsumer(circuit.channel("sum"), "ack")
    carries = PassiveDualRailConsumer(circuit.channel("cout"), "ack")
    end_time = HandshakeHarness(simulator, producers + [sums, carries]).run()
    # Every output rail transitions monotonically: the number of changes over
    # the whole run is exactly 2 per token that asserted the rail (set + reset).
    for wire in ("sum_f", "sum_t", "cout_f", "cout_t"):
        trace = simulator.traces[wire]
        changes = [change for change in trace if change[0] > 0]
        assert len(changes) % 2 == 0
        rises = sum(1 for _, value in changes if value == 1)
        expected_rises = sum(
            1
            for v in vectors
            if {"sum_f": 0, "sum_t": 1}.get(wire.replace("cout", "sum"), None) is not None
        )
        # simpler invariant: rises equal falls (every set returns to zero)
        falls = sum(1 for _, value in changes if value == 0)
        assert rises == falls
    assert end_time > 0


# ----------------------------------------------------------------------
# Template vs generic mapping ablation
# ----------------------------------------------------------------------
def test_template_mapping_beats_generic_mapping():
    circuit = qdi_full_adder()
    template = template_map(circuit)
    pack_design(template)
    naive = generic_map(circuit.netlist)
    pack_design(naive)
    assert len(template.les) < len(naive.les) / 3
    assert filling_ratio(template).per_le > filling_ratio(naive).per_le


# ----------------------------------------------------------------------
# Scaling shape (EXP-EXT1)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bits", [2, 4])
def test_adder_scaling_shapes(bits):
    qdi = qdi_ripple_adder(bits)
    mp = micropipeline_ripple_adder(bits)
    pack_design(qdi.mapped)
    pack_design(mp.mapped)
    # QDI costs considerably more LEs than bundled data for the same function
    # (the price of delay insensitivity), but fills them better.
    assert len(qdi.mapped.les) > len(mp.mapped.les)
    assert filling_ratio(qdi.mapped).per_le > filling_ratio(mp.mapped).per_le
    # Both grow linearly with the bit width.
    assert len(qdi.mapped.les) == 5 * bits + bits - 1
    assert len(mp.mapped.les) == bits + 1


# ----------------------------------------------------------------------
# Style coverage claim (Section 1 / EXP-PRIOR)
# ----------------------------------------------------------------------
def test_all_styles_map_onto_the_architecture():
    flow = CadFlow(
        ArchitectureParams(width=8, height=8),
        FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False),
    )
    from repro.circuits.fifo import wchb_fifo

    results = {
        LogicStyle.QDI_DUAL_RAIL: flow.run(qdi_full_adder()),
        LogicStyle.QDI_ONE_OF_FOUR: flow.run(qdi_full_adder(encoding="1-of-4", name="fa_1of4")),
        LogicStyle.MICROPIPELINE: flow.run(micropipeline_full_adder()),
        LogicStyle.WCHB: flow.run(wchb_fifo(3)),
    }
    for style, result in results.items():
        assert result.mapped.validate() == []
        assert len(result.mapped.les) > 0, style
