"""Tests of the incremental re-route path: the placement cache.

Acceptance criterion of the sweep subsystem: an options-only change (e.g.
routing channel width) re-runs a sweep point **without re-placing** — the
summary reports ``placement_cache_hit=True`` and the routed result is
bit-for-bit identical to a cold run of the same point.
"""

import pytest

from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.place import Placement, place_design
from repro.circuits.fulladder import qdi_full_adder
from repro.cad.techmap import template_map
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams, RoutingParams
from repro.cad.pack import pack_design
from repro.sweep import SweepPoint, SweepResultStore, SweepRunner, SweepSpec

ARCH_CW8 = ArchitectureParams()
ARCH_CW10 = ArchitectureParams(routing=RoutingParams(channel_width=10))
FULL = FlowOptions()


def _placed_design(arch=ARCH_CW8, seed=1):
    mapped = template_map(qdi_full_adder(), arch.plb)
    pack_design(mapped, arch.plb)
    fabric = Fabric(arch)
    return mapped, fabric, place_design(mapped, fabric, seed=seed)


# ----------------------------------------------------------------------
# Placement serialization
# ----------------------------------------------------------------------
def test_placement_round_trips_through_dict():
    mapped, fabric, placement = _placed_design()
    rebuilt = Placement.from_dict(placement.to_dict())
    assert rebuilt.plb_sites == placement.plb_sites
    assert rebuilt.io_sites == placement.io_sites
    assert rebuilt.cost == placement.cost
    assert rebuilt.matches_design(mapped, fabric)


def test_placement_match_rejects_overlapping_sites_and_pads():
    # A parseable-but-corrupt record mapping two PLBs to one tile (or two
    # nets to one pad) must not be routed.
    mapped, fabric, placement = _placed_design()
    overlapping = Placement.from_dict(placement.to_dict())
    names = list(overlapping.plb_sites)
    overlapping.plb_sites[names[0]] = overlapping.plb_sites[names[1]]
    assert not overlapping.matches_design(mapped, fabric)

    double_pad = Placement.from_dict(placement.to_dict())
    nets = list(double_pad.io_sites)
    double_pad.io_sites[nets[0]] = double_pad.io_sites[nets[1]]
    assert not double_pad.matches_design(mapped, fabric)


def test_placement_match_rejects_other_design():
    mapped, fabric, placement = _placed_design()
    from repro.circuits.fulladder import micropipeline_full_adder

    other = template_map(micropipeline_full_adder(), ARCH_CW8.plb)
    pack_design(other, ARCH_CW8.plb)
    assert not placement.matches_design(other, fabric)


# ----------------------------------------------------------------------
# Placement key: what placement depends on, nothing more
# ----------------------------------------------------------------------
def test_placement_key_ignores_routing_only_knobs():
    base = SweepPoint("qdi_full_adder", ARCH_CW8, FULL)
    rerouted = SweepPoint("qdi_full_adder", ARCH_CW10, FULL)
    more_iterations = SweepPoint(
        "qdi_full_adder", ARCH_CW8, FlowOptions(router_max_iterations=50)
    )
    assert base.placement_key() == rerouted.placement_key()
    assert base.placement_key() == more_iterations.placement_key()
    assert base.key() != rerouted.key()  # the *flow* keys still differ


def test_placement_key_tracks_placement_inputs():
    base = SweepPoint("qdi_full_adder", ARCH_CW8, FULL)
    other_seed = SweepPoint("qdi_full_adder", ARCH_CW8, FlowOptions(placement_seed=2))
    other_grid = SweepPoint("qdi_full_adder", ARCH_CW8.scaled(8, 8), FULL)
    other_circuit = SweepPoint("micropipeline_full_adder", ARCH_CW8, FULL)
    other_pads = SweepPoint(
        "qdi_full_adder",
        ArchitectureParams(routing=RoutingParams(io_pads_per_side=6)),
        FULL,
    )
    keys = {
        base.placement_key(),
        other_seed.placement_key(),
        other_grid.placement_key(),
        other_circuit.placement_key(),
        other_pads.placement_key(),
    }
    assert len(keys) == 5


def test_placement_key_tracks_timing_knobs():
    # A timing-driven flow polishes the baseline placement under the
    # blended objective, so the timing knobs produce genuinely different
    # placements and must split the cache slot — otherwise a timing point
    # would inherit (and route) a baseline placement, silently skipping
    # the polish.
    base = SweepPoint("qdi_full_adder", ARCH_CW8, FULL)
    timed = SweepPoint("qdi_full_adder", ARCH_CW8, FlowOptions(timing_driven=True))
    other_lambda = SweepPoint(
        "qdi_full_adder",
        ARCH_CW8,
        FlowOptions(timing_driven=True, timing_tradeoff=0.3),
    )
    assert base.placement_key() != timed.placement_key()
    assert timed.placement_key() != other_lambda.placement_key()
    # The blend weight is polish-only: baseline points with different
    # (unused) tradeoff values still share one placement record.
    baseline_other_lambda = SweepPoint(
        "qdi_full_adder", ARCH_CW8, FlowOptions(timing_tradeoff=0.3)
    )
    assert base.placement_key() == baseline_other_lambda.placement_key()


# ----------------------------------------------------------------------
# CadFlow placement injection
# ----------------------------------------------------------------------
def test_flow_uses_injected_placement_and_reports_hit():
    flow = CadFlow(ARCH_CW8, FULL)
    cold = flow.run(qdi_full_adder())
    assert cold.placement_cache_hit is None  # no cache involved
    warm = CadFlow(ARCH_CW8, FULL).run(qdi_full_adder(), placement=cold.placement)
    assert warm.placement_cache_hit is True
    assert warm.placement is cold.placement
    assert warm.summary()["placement_cache_hit"] is True
    assert "placement_cache_hit" not in cold.summary()


def test_flow_discards_mismatched_injected_placement():
    bogus = Placement(plb_sites={"nonexistent_plb": (0, 0)})
    result = CadFlow(ARCH_CW8, FULL).run(qdi_full_adder(), placement=bogus)
    assert result.placement_cache_hit is False  # fell back to placing
    assert result.placement is not bogus
    assert result.routing is not None and result.routing.success


# ----------------------------------------------------------------------
# The acceptance criterion, end to end through the runner
# ----------------------------------------------------------------------
def test_options_only_change_reroutes_without_replacing(tmp_path):
    spec_cw8 = SweepSpec.build(["qdi_full_adder"], ARCH_CW8, FULL)
    spec_cw10 = SweepSpec.build(["qdi_full_adder"], ARCH_CW10, FULL)

    cold = SweepRunner(store=tmp_path / "store").run(spec_cw8)
    assert cold.outcomes[0].summary["placement_cache_hit"] is False

    warm = SweepRunner(store=tmp_path / "store").run(spec_cw10)
    assert warm.cache_misses == 1  # different flow key: the flow re-ran ...
    warm_summary = dict(warm.outcomes[0].summary)
    assert warm_summary.pop("placement_cache_hit") is True  # ... without re-placing

    control = SweepRunner(store=tmp_path / "control").run(spec_cw10)
    control_summary = dict(control.outcomes[0].summary)
    assert control_summary.pop("placement_cache_hit") is False
    assert warm_summary == control_summary  # bit-for-bit identical


def test_parallel_run_matches_serial_placement_cache_behaviour(tmp_path):
    # Points sharing a placement key must not race in a pool: the runner
    # schedules one leader per key first, so followers deterministically
    # reuse its placement and parallel runs cache the same records as
    # serial ones (executor choice never changes what is computed).
    architectures = (
        ARCH_CW8,
        ARCH_CW10,
        ArchitectureParams(routing=RoutingParams(channel_width=12)),
    )
    spec = SweepSpec.build(["qdi_full_adder"], architectures, FULL)
    serial = SweepRunner(store=tmp_path / "serial").run(spec)
    parallel = SweepRunner(store=tmp_path / "parallel", workers=3).run(spec)
    hits = [outcome.summary["placement_cache_hit"] for outcome in parallel.outcomes]
    assert hits == [False, True, True]  # leader placed, followers reused
    assert parallel.summaries() == serial.summaries()


def test_router_iteration_change_also_hits_placement_cache(tmp_path):
    runner = SweepRunner(store=tmp_path)
    runner.run(SweepSpec.build(["qdi_full_adder"], ARCH_CW8, FULL))
    tweaked = SweepSpec.build(
        ["qdi_full_adder"], ARCH_CW8, FlowOptions(router_max_iterations=50)
    )
    report = runner.run(tweaked)
    assert report.cache_misses == 1
    assert report.outcomes[0].summary["placement_cache_hit"] is True


def test_different_seed_misses_placement_cache(tmp_path):
    runner = SweepRunner(store=tmp_path)
    runner.run(SweepSpec.build(["qdi_full_adder"], ARCH_CW8, FULL))
    report = runner.run(
        SweepSpec.build(["qdi_full_adder"], ARCH_CW8, FlowOptions(placement_seed=9))
    )
    assert report.outcomes[0].summary["placement_cache_hit"] is False


def test_corrupt_placement_record_falls_back_to_placing(tmp_path):
    store = SweepResultStore(tmp_path)
    point = SweepPoint("qdi_full_adder", ARCH_CW8, FULL)
    store.put(
        point.placement_key(),
        {"kind": "placement", "placement": {"plb_sites": "garbage", "io_sites": {}}},
    )
    report = SweepRunner(store=store).run([point])
    summary = report.outcomes[0].summary
    assert summary["placement_cache_hit"] is False
    assert summary["routing_success"] is True


def test_placement_cache_disabled_keeps_historical_summary(tmp_path):
    report = SweepRunner(store=tmp_path, placement_cache=False).run(
        SweepSpec.build(["qdi_full_adder"], ARCH_CW8, FULL)
    )
    summary = report.outcomes[0].summary
    assert "placement_cache_hit" not in summary
    assert SweepResultStore(tmp_path).stats()["placement_records"] == 0


def test_analysis_only_sweeps_never_touch_placement_cache(tmp_path):
    analysis = FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False)
    report = SweepRunner(store=tmp_path).run(
        SweepSpec.build(["qdi_full_adder"], ARCH_CW8, analysis)
    )
    assert "placement_cache_hit" not in report.outcomes[0].summary
    assert SweepResultStore(tmp_path).stats()["placement_records"] == 0
