"""Tests for channels, C-element models, completion detection and tokens."""

import pytest

from repro.asynclogic.celements import AsymmetricCElement, CElement, c_element_lut_config
from repro.asynclogic.channels import Channel
from repro.asynclogic.completion import (
    completion_cost,
    completion_detector,
    completion_tree_depth,
    dual_rail_validity,
    one_of_n_validity,
)
from repro.asynclogic.encodings import BundledDataEncoding, DualRailEncoding, OneOfNEncoding
from repro.asynclogic.tokens import Token, average_latency, throughput
from repro.netlist.builder import NetlistBuilder
from repro.sim.netsim import evaluate_combinational


# ----------------------------------------------------------------------
# Channels
# ----------------------------------------------------------------------
def test_dual_rail_channel_wires():
    channel = Channel("a", 1, DualRailEncoding())
    assert channel.data_wires() == ("a_f", "a_t")
    assert channel.ack_wire == "a_ack"
    assert not channel.has_request_wire
    assert channel.wire_count == 3


def test_multibit_channel_wires_and_codec():
    channel = Channel("d", 3, DualRailEncoding())
    assert channel.digits == 3
    assert len(channel.data_wires()) == 6
    encoded = channel.encode(5)
    assert channel.decode(encoded) == 5
    assert channel.is_valid(encoded)
    assert channel.is_neutral(channel.neutral())
    assert channel.decode(channel.neutral()) is None


def test_bundled_channel_has_request():
    channel = Channel("d", 4, BundledDataEncoding())
    assert channel.has_request_wire
    assert channel.req_wire == "d_req"
    assert len(channel.data_wires()) == 4
    assert channel.wire_count == 6  # 4 data + req + ack


def test_one_of_four_channel():
    channel = Channel("x", 4, OneOfNEncoding(4))
    assert channel.digits == 2
    assert len(channel.data_wires()) == 8
    assert channel.decode(channel.encode(11)) == 11


def test_channel_digit_wires_bounds():
    channel = Channel("x", 2, DualRailEncoding())
    assert channel.digit_wires(0) == ("x0_f", "x0_t")
    with pytest.raises(IndexError):
        channel.digit_wires(5)


def test_channel_with_name():
    channel = Channel("x", 2, DualRailEncoding())
    renamed = channel.with_name("y")
    assert renamed.name == "y" and renamed.width_bits == 2
    assert renamed.encoding is channel.encoding


def test_channel_requires_positive_width():
    with pytest.raises(ValueError):
        Channel("x", 0)


# ----------------------------------------------------------------------
# C-elements
# ----------------------------------------------------------------------
def test_c_element_behaviour():
    ce = CElement(arity=2)
    assert ce.step([1, 0]) == 0
    assert ce.step([1, 1]) == 1
    assert ce.step([0, 1]) == 1   # hold
    assert ce.step([0, 0]) == 0
    ce.reset(1)
    assert ce.output == 1


def test_c_element_requires_two_inputs():
    with pytest.raises(ValueError):
        CElement(arity=1)
    with pytest.raises(ValueError):
        CElement(arity=2).step([1])


def test_c_element_table_matches_model():
    ce = CElement(arity=3)
    table = ce.next_state_table()
    for row in range(1 << 4):
        a0, a1, a2, y = (row >> 0) & 1, (row >> 1) & 1, (row >> 2) & 1, (row >> 3) & 1
        model = CElement(arity=3, output=y)
        expected = model.step([a0, a1, a2])
        assert table.evaluate({"a0": a0, "a1": a1, "a2": a2, "y": y}) == expected


def test_asymmetric_c_element():
    ace = AsymmetricCElement(plus=("a", "b"), minus=("a",))
    assert ace.step(a=1, b=1) == 1
    assert ace.step(a=1, b=0) == 1   # hold: minus input still high
    assert ace.step(a=0, b=0) == 0
    assert ace.input_names == ("a", "b")
    table = ace.next_state_table()
    assert table.evaluate({"a": 1, "b": 1, "y": 0}) == 1


def test_asymmetric_c_element_needs_inputs():
    with pytest.raises(ValueError):
        AsymmetricCElement(plus=(), minus=())
    with pytest.raises(ValueError):
        AsymmetricCElement(plus=("a",), minus=("b",)).step(a=1)


def test_c_element_lut_config_has_feedback_input():
    table = c_element_lut_config(2)
    assert "y" in table.inputs
    assert table.arity == 3


# ----------------------------------------------------------------------
# Completion detection
# ----------------------------------------------------------------------
def test_validity_functions():
    dr = dual_rail_validity("d_f", "d_t")
    assert dr.evaluate({"d_f": 0, "d_t": 1}) == 1
    assert dr.evaluate({"d_f": 0, "d_t": 0}) == 0
    oon = one_of_n_validity(("r0", "r1", "r2", "r3"))
    assert oon.evaluate({"r0": 0, "r1": 0, "r2": 1, "r3": 0}) == 1
    with pytest.raises(ValueError):
        one_of_n_validity(("only",))


def test_completion_detector_netlist_behaviour():
    channel = Channel("d", 2, DualRailEncoding())
    builder = NetlistBuilder("cd")
    for wire in channel.data_wires():
        builder.input(wire)
    completion_detector(builder, channel, out="done")
    builder.output("done")
    netlist = builder.build()

    valid = channel.encode(2)
    assert evaluate_combinational(netlist, valid)["done"] == 1
    assert evaluate_combinational(netlist, channel.neutral())["done"] == 0
    # Partially valid word: only one digit asserted -> not complete.
    partial = dict(channel.neutral())
    partial["d0_t"] = 1
    assert evaluate_combinational(netlist, partial)["done"] == 0


def test_completion_detector_rejects_bundled_data():
    channel = Channel("d", 2, BundledDataEncoding())
    builder = NetlistBuilder("cd")
    for wire in channel.data_wires():
        builder.input(wire)
    with pytest.raises(ValueError):
        completion_detector(builder, channel)


def test_completion_tree_depth_and_cost():
    assert completion_tree_depth(1) == 0
    assert completion_tree_depth(2) == 1
    assert completion_tree_depth(8) == 3
    with pytest.raises(ValueError):
        completion_tree_depth(0)
    cost = completion_cost(Channel("d", 4, DualRailEncoding()))
    assert cost["or_gates"] == 4
    assert cost["c_elements"] == 3


# ----------------------------------------------------------------------
# Tokens
# ----------------------------------------------------------------------
def test_token_latency_and_stats():
    tokens = [
        Token(value=1, issued_at=0, completed_at=100),
        Token(value=2, issued_at=50, completed_at=200),
        Token(value=3),
    ]
    assert tokens[0].latency == 100
    assert tokens[2].latency is None
    assert average_latency(tokens) == pytest.approx(125.0)
    assert throughput(tokens) == pytest.approx(1 / 100)
    assert throughput([tokens[0]]) is None
    assert average_latency([tokens[2]]) is None
