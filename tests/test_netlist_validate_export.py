"""Tests for netlist validation and the Verilog / DOT exporters."""

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist, PortDirection
from repro.netlist.validate import has_errors, validate_netlist
from repro.netlist.verilog import library_stub, to_verilog
from repro.netlist.dot import to_dot


def _good_netlist() -> Netlist:
    builder = NetlistBuilder("good")
    a, b = builder.inputs("a", "b")
    builder.c2(a, b, out="z")
    builder.output("z")
    return builder.build()


def test_validate_clean_netlist():
    issues = validate_netlist(_good_netlist())
    assert not has_errors(issues)


def test_validate_undriven_net():
    netlist = Netlist("bad")
    netlist.add_port("o", PortDirection.OUTPUT)
    netlist.add_cell("g", "INV", {"a": "floating", "z": "o"})
    issues = validate_netlist(netlist)
    assert has_errors(issues)
    assert any(issue.code == "undriven-net" for issue in issues)


def test_validate_undriven_output():
    netlist = Netlist("bad2")
    netlist.add_port("o", PortDirection.OUTPUT)
    issues = validate_netlist(netlist)
    assert any(issue.code == "undriven-output" for issue in issues)


def test_validate_unused_input_warning():
    netlist = Netlist("warn")
    netlist.add_port("i", PortDirection.INPUT)
    issues = validate_netlist(netlist)
    assert any(issue.code == "unused-input" and issue.severity == "warning" for issue in issues)
    assert not has_errors(issues)


def test_validate_dangling_net_warning():
    builder = NetlistBuilder("dangle")
    a = builder.input("a")
    builder.inv(a)  # output net read by nothing
    issues = validate_netlist(builder.build())
    assert any(issue.code == "dangling-net" for issue in issues)
    assert not has_errors(issues)


def test_validate_combinational_loop():
    netlist = Netlist("loop")
    netlist.add_port("i", PortDirection.INPUT)
    netlist.add_cell("g1", "AND2", {"a0": "i", "a1": "w2", "z": "w1"})
    netlist.add_cell("g2", "BUF", {"a": "w1", "z": "w2"})
    issues = validate_netlist(netlist)
    assert any(issue.code == "combinational-loop" for issue in issues)
    assert has_errors(issues)


def test_validate_sequential_loop_ok():
    issues = validate_netlist(_good_netlist())
    assert not any(issue.code == "combinational-loop" for issue in issues)


def test_issue_str():
    issues = validate_netlist(Netlist("empty") )
    # Just exercise __str__ on a synthetic issue.
    from repro.netlist.validate import NetlistIssue

    text = str(NetlistIssue("error", "some-code", "message"))
    assert "some-code" in text and "error" in text
    assert issues == []


def test_verilog_export_structure():
    text = to_verilog(_good_netlist())
    assert "module good" in text
    assert "input a;" in text
    assert "output z;" in text
    assert "C2" in text
    assert text.strip().endswith("endmodule")


def test_verilog_escaping():
    builder = NetlistBuilder("esc")
    a = builder.input("a.0[1]")
    builder.inv(a, out="z")
    builder.output("z")
    text = to_verilog(builder.build())
    assert "\\a.0[1]" in text


def test_library_stub_lists_used_cells():
    text = library_stub(_good_netlist())
    assert "module C2" in text


def test_dot_export():
    text = to_dot(_good_netlist())
    assert text.startswith("digraph")
    assert '"pi_a"' in text
    assert '"po_z"' in text
    assert "->" in text
    no_labels = to_dot(_good_netlist(), include_net_labels=False)
    # Edges carry no label when include_net_labels is off.
    edge_lines = [line for line in no_labels.splitlines() if "->" in line]
    assert edge_lines and all("label" not in line for line in edge_lines)
