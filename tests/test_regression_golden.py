"""Golden regression tests.

These lock the *reproduced numbers* (not just their shape) so refactors of the
mapper, packer or metrics cannot silently drift the values this repo exists to
reproduce:

* the Section 5 filling ratios measured by :func:`api.reproduce_filling_ratios`
  (paper: 0.51 micropipeline, 0.76 QDI; the behavioural model measures 0.5185
  and 0.6462 under the DESIGN.md definition);
* the key set of :meth:`FlowResult.summary`, which is the sweep engine's
  stored/pickled contract;
* determinism of the placement seed and of the sweep engine's parallel path.
"""

import pytest

from repro import api
from repro.cad.flow import CadFlow, FlowOptions
from repro.circuits.fulladder import qdi_full_adder
from repro.core.params import ArchitectureParams

GOLDEN_FILLING_RATIOS = {
    "micropipeline": 0.5185,
    "qdi-dual-rail": 0.6462,
}
PAPER_FILLING_RATIOS = {
    "micropipeline": 0.51,
    "qdi-dual-rail": 0.76,
}

#: The exact summary() key set of a full (place + route + bitstream) flow.
FULL_FLOW_SUMMARY_KEYS = {
    "circuit",
    "style",
    "les",
    "plbs",
    "pdes",
    "filling_ratio",
    "filling_ratio_per_plb",
    "le_occupancy",
    "placement_cost",
    "placement_moves",
    "placement_net_evals",
    "routed_nets",
    "total_wirelength",
    "routing_success",
    "router_iterations",
    "router_nets_rerouted",
    "router_node_pops",
    "router_parallel_groups",
    "router_conflict_replays",
    "max_net_delay_ps",
    "le_levels",
    "forward_latency_ps",
    "cycle_time_ps",
    "bitstream_bits_set",
    "bitstream_bits_total",
}

#: The key set when placement/routing/bitstream are skipped (analysis only).
ANALYSIS_ONLY_SUMMARY_KEYS = {
    "circuit",
    "style",
    "les",
    "plbs",
    "pdes",
    "filling_ratio",
    "filling_ratio_per_plb",
    "le_occupancy",
    "max_net_delay_ps",
    "le_levels",
    "forward_latency_ps",
    "cycle_time_ps",
}


# ----------------------------------------------------------------------
# Section 5 headline numbers
# ----------------------------------------------------------------------
def test_golden_filling_ratios_exact():
    rows = api.reproduce_filling_ratios()
    assert [row["style"] for row in rows] == ["micropipeline", "qdi-dual-rail"]
    for row in rows:
        style = row["style"]
        assert row["measured_filling_ratio"] == GOLDEN_FILLING_RATIOS[style]
        assert row["paper_filling_ratio"] == PAPER_FILLING_RATIOS[style]
    by_style = {row["style"]: row for row in rows}
    assert (by_style["micropipeline"]["les"], by_style["micropipeline"]["plbs"]) == (2, 1)
    assert (by_style["qdi-dual-rail"]["les"], by_style["qdi-dual-rail"]["plbs"]) == (5, 3)


# ----------------------------------------------------------------------
# FlowResult.summary() contract
# ----------------------------------------------------------------------
def test_golden_full_flow_summary_key_set():
    result = CadFlow(ArchitectureParams(width=5, height=5)).run(qdi_full_adder())
    assert set(result.summary().keys()) == FULL_FLOW_SUMMARY_KEYS


def test_golden_analysis_only_summary_key_set():
    options = FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False)
    result = CadFlow(options=options).run(qdi_full_adder())
    assert set(result.summary().keys()) == ANALYSIS_ONLY_SUMMARY_KEYS


def test_golden_summary_keys_with_verify_stages_gate():
    # The lint gate adds exactly two conditional keys; the locked base set
    # is otherwise untouched (sweep pickles from older runs stay loadable).
    arch = ArchitectureParams(width=5, height=5)
    result = CadFlow(arch, FlowOptions(verify_stages=True)).run(qdi_full_adder())
    assert set(result.summary().keys()) == FULL_FLOW_SUMMARY_KEYS | {
        "lint_errors",
        "lint_warnings",
    }
    assert result.summary()["lint_errors"] == 0
    assert result.summary()["lint_warnings"] == 0


# ----------------------------------------------------------------------
# Wide-function decomposition: multiplier LE/PLB counts and summary keys
# ----------------------------------------------------------------------
def test_golden_decomposed_multiplier_counts():
    # Locks the decomposition result for the 2x2 multiplier: 8 nine-input
    # rail functions split into 41 intermediates, coalesced onto 24 LEs in
    # 12 PLBs.  A mapper/decomposer refactor that drifts these numbers must
    # be deliberate.
    from repro.circuits.registry import build_circuit
    from repro.core.params import RoutingParams

    routable = ArchitectureParams(routing=RoutingParams(channel_width=10))
    result = CadFlow(routable).run(build_circuit("qdi_multiplier_2x2"))
    summary = result.summary()
    assert (summary["les"], summary["plbs"]) == (24, 12)
    assert summary["decomposed_functions"] == 8
    assert summary["decomposition_intermediates"] == 41
    assert summary["routing_success"] is True
    # Decomposition summary keys appear *in addition to* the locked base set.
    assert set(summary.keys()) == FULL_FLOW_SUMMARY_KEYS | {
        "decomposed_functions",
        "decomposition_intermediates",
    }


# ----------------------------------------------------------------------
# Determinism: placement seed and bitstream
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 42])
def test_same_seed_same_placement_cost_and_bitstream(seed):
    arch = ArchitectureParams(width=5, height=5)
    options = FlowOptions(placement_seed=seed)
    first = CadFlow(arch, options).run(qdi_full_adder())
    second = CadFlow(arch, options).run(qdi_full_adder())
    assert first.placement is not None and second.placement is not None
    assert first.placement.cost == second.placement.cost
    assert first.placement.plb_sites == second.placement.plb_sites
    assert first.bitstream is not None and second.bitstream is not None
    assert first.bitstream.to_bytes() == second.bitstream.to_bytes()
    assert first.summary() == second.summary()
