"""Tests for the logic-style generators (gate level) and their simulation."""

import pytest

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import BundledDataEncoding, DualRailEncoding
from repro.circuits.fulladder import reference_sum_carry
from repro.logic.functions import xor_table
from repro.netlist.validate import has_errors, validate_netlist
from repro.sim import (
    FourPhaseBundledConsumer,
    FourPhaseBundledProducer,
    FourPhaseDualRailConsumer,
    FourPhaseDualRailProducer,
    GateLevelSimulator,
    HandshakeHarness,
    PassiveDualRailConsumer,
)
from repro.styles import (
    LogicStyle,
    available_styles,
    dims_function_block,
    micropipeline_full_adder_stage,
    micropipeline_stage,
    qdi_full_adder_block,
    style_info,
    wchb_buffer_stage,
    wchb_pipeline,
)
from repro.styles.base import StyledCircuit


# ----------------------------------------------------------------------
# Style registry
# ----------------------------------------------------------------------
def test_style_registry():
    infos = available_styles()
    assert len(infos) == 4
    assert style_info("qdi").style is LogicStyle.QDI_DUAL_RAIL
    assert style_info("bundled-data").style is LogicStyle.MICROPIPELINE
    assert style_info(LogicStyle.WCHB).timing_class.name == "QDI"
    assert style_info("micropipeline").uses_delay_element
    assert not style_info("qdi").uses_delay_element
    with pytest.raises(KeyError):
        LogicStyle.from_name("nonsense")


def test_styled_circuit_helpers():
    circuit = qdi_full_adder_block()
    assert isinstance(circuit, StyledCircuit)
    assert circuit.channel("a").name == "a"
    with pytest.raises(KeyError):
        circuit.channel("zzz")
    summary = circuit.summary()
    assert summary["c_elements"] > 0
    assert summary["delay_elements"] == 0


# ----------------------------------------------------------------------
# QDI / DIMS
# ----------------------------------------------------------------------
def test_qdi_full_adder_structure():
    circuit = qdi_full_adder_block()
    assert circuit.style is LogicStyle.QDI_DUAL_RAIL
    assert not has_errors(validate_netlist(circuit.netlist))
    histogram = circuit.netlist.cell_histogram()
    # DIMS: one C-tree per input combination (8 combinations) plus completion.
    assert sum(count for name, count in histogram.items() if name.startswith("C")) >= 8


def test_qdi_full_adder_exhaustive_handshake():
    circuit = qdi_full_adder_block()
    vectors = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
    simulator = GateLevelSimulator(circuit.netlist)
    producers = [
        FourPhaseDualRailProducer(circuit.channel("a"), [v[0] for v in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("b"), [v[1] for v in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("cin"), [v[2] for v in vectors], "ack"),
    ]
    sums = PassiveDualRailConsumer(circuit.channel("sum"), "ack")
    carries = PassiveDualRailConsumer(circuit.channel("cout"), "ack")
    HandshakeHarness(simulator, producers + [sums, carries]).run()
    expected = [reference_sum_carry(*v) for v in vectors]
    assert sums.received == [s for s, _ in expected]
    assert carries.received == [c for _, c in expected]
    # every producer completed all its tokens
    assert all(producer.finished for producer in producers)
    assert all(token.latency is not None for token in producers[0].tokens)


def test_qdi_full_adder_one_of_four():
    circuit = qdi_full_adder_block(encoding="1-of-4")
    assert circuit.style is LogicStyle.QDI_ONE_OF_FOUR
    assert not has_errors(validate_netlist(circuit.netlist))
    vectors = [(1, 0, 1), (1, 1, 1), (0, 0, 0), (0, 1, 1)]
    simulator = GateLevelSimulator(circuit.netlist)
    ab_values = [a | (b << 1) for a, b, _ in vectors]
    producers = [
        FourPhaseDualRailProducer(circuit.channel("ab"), ab_values, "ack"),
        FourPhaseDualRailProducer(circuit.channel("cin"), [c for _, _, c in vectors], "ack"),
    ]
    sums = PassiveDualRailConsumer(circuit.channel("sum"), "ack")
    carries = PassiveDualRailConsumer(circuit.channel("cout"), "ack")
    HandshakeHarness(simulator, producers + [sums, carries]).run()
    expected = [reference_sum_carry(*v) for v in vectors]
    assert sums.received == [s for s, _ in expected]
    assert carries.received == [c for _, c in expected]


def test_qdi_full_adder_rejects_unknown_encoding():
    with pytest.raises(ValueError):
        qdi_full_adder_block(encoding="3-of-7")


def test_dims_block_rejects_bundled_channels():
    with pytest.raises(ValueError):
        dims_function_block(
            "bad",
            input_channels=[Channel("a", 1, BundledDataEncoding())],
            output_channels=[Channel("z", 1, DualRailEncoding())],
            function=lambda values: {"z": values["a"]},
        )


def test_dims_block_requires_complete_function():
    # An output channel value never produced -> one rail never asserted.
    with pytest.raises(ValueError):
        dims_function_block(
            "bad",
            input_channels=[Channel("a", 1, DualRailEncoding())],
            output_channels=[Channel("z", 1, DualRailEncoding())],
            function=lambda values: {"z": 1},
        )


def test_dims_buffer_is_identity():
    circuit = dims_function_block(
        "dims_buf",
        input_channels=[Channel("a", 1, DualRailEncoding())],
        output_channels=[Channel("z", 1, DualRailEncoding())],
        function=lambda values: {"z": values["a"]},
    )
    simulator = GateLevelSimulator(circuit.netlist)
    producer = FourPhaseDualRailProducer(circuit.channel("a"), [1, 0, 1, 1], "ack")
    consumer = PassiveDualRailConsumer(circuit.channel("z"), "ack")
    HandshakeHarness(simulator, [producer, consumer]).run()
    assert consumer.received == [1, 0, 1, 1]


# ----------------------------------------------------------------------
# Micropipeline
# ----------------------------------------------------------------------
def test_micropipeline_full_adder_structure():
    circuit = micropipeline_full_adder_stage()
    assert circuit.style is LogicStyle.MICROPIPELINE
    assert circuit.uses_delay_element
    assert circuit.netlist.cell_histogram().get("DELAY") == 1
    assert circuit.netlist.cell_histogram().get("LATCH") == 2
    assert not has_errors(validate_netlist(circuit.netlist))
    delay_cell = [c for c in circuit.netlist.iter_cells() if c.type_name == "DELAY"][0]
    assert int(delay_cell.attributes["delay"]) == circuit.metadata["matched_delay"]


def test_micropipeline_full_adder_exhaustive():
    circuit = micropipeline_full_adder_stage()
    input_channel = circuit.input_channels[0]
    output_channel = circuit.output_channels[0]
    vectors = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
    encoded = [a | (b << 1) | (c << 2) for a, b, c in vectors]
    simulator = GateLevelSimulator(circuit.netlist)
    producer = FourPhaseBundledProducer(input_channel, encoded, input_channel.ack_wire)
    consumer = FourPhaseBundledConsumer(output_channel, output_channel.req_wire, output_channel.ack_wire)
    HandshakeHarness(simulator, [producer, consumer]).run()
    expected = []
    for a, b, c in vectors:
        s, carry = reference_sum_carry(a, b, c)
        expected.append(s | (carry << 1))
    assert consumer.received == expected


def test_micropipeline_stage_validates_channels_and_tables():
    dual = Channel("x", 1, DualRailEncoding())
    bundled_in = Channel("i", 2, BundledDataEncoding())
    bundled_out = Channel("o", 1, BundledDataEncoding())
    with pytest.raises(ValueError):
        micropipeline_stage("bad", dual, bundled_out, outputs={})
    with pytest.raises(ValueError):
        micropipeline_stage(
            "bad2",
            bundled_in,
            bundled_out,
            outputs={"wrong_wire": xor_table(inputs=bundled_in.data_wires())},
        )


# ----------------------------------------------------------------------
# WCHB
# ----------------------------------------------------------------------
def test_wchb_stage_rejects_mismatched_channels():
    with pytest.raises(ValueError):
        wchb_buffer_stage("bad", Channel("a", 1, DualRailEncoding()), Channel("b", 2, DualRailEncoding()))


def test_wchb_pipeline_transports_tokens_in_order():
    pipeline = wchb_pipeline("fifo", stages=3, width_bits=2)
    simulator = GateLevelSimulator(pipeline.netlist)
    values = [3, 0, 2, 1, 3]
    producer = FourPhaseDualRailProducer(pipeline.channel("in"), values, "in_ack")
    consumer = FourPhaseDualRailConsumer(pipeline.channel("out"), "out_ack")
    HandshakeHarness(simulator, [producer, consumer]).run()
    assert consumer.received == values


def test_wchb_pipeline_requires_stage():
    with pytest.raises(ValueError):
        wchb_pipeline("empty", stages=0)
