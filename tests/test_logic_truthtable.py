"""Unit tests for repro.logic.truthtable."""

import pytest

from repro.logic.truthtable import TruthTable


def test_from_function_and_evaluate():
    table = TruthTable.from_function(("a", "b"), lambda a, b: a and b, name="and2")
    assert table.bits == (0, 0, 0, 1)
    assert table.evaluate({"a": 1, "b": 1}) == 1
    assert table.evaluate({"a": 1, "b": 0}) == 0
    assert table(a=0, b=1) == 0


def test_bit_order_lsb_first():
    # inputs[0] is the least significant bit of the row index.
    table = TruthTable.from_function(("a", "b"), lambda a, b: a, name="proj_a")
    # rows: (a,b) = (0,0), (1,0), (0,1), (1,1)
    assert table.bits == (0, 1, 0, 1)


def test_from_minterms_and_minterms_roundtrip():
    table = TruthTable.from_minterms(("x", "y", "z"), [1, 4, 7])
    assert table.minterms() == [1, 4, 7]


def test_from_minterms_out_of_range():
    with pytest.raises(ValueError):
        TruthTable.from_minterms(("x",), [3])


def test_wrong_bit_count_rejected():
    with pytest.raises(ValueError):
        TruthTable(inputs=("a",), bits=(0, 1, 1))


def test_duplicate_inputs_rejected():
    with pytest.raises(ValueError):
        TruthTable(inputs=("a", "a"), bits=(0, 0, 0, 0))


def test_non_binary_bits_rejected():
    with pytest.raises(ValueError):
        TruthTable(inputs=("a",), bits=(0, 2))


def test_constant():
    one = TruthTable.constant(1)
    assert one.bits == (1,)
    zero = TruthTable.constant(0, inputs=("a", "b"))
    assert zero.is_constant()
    assert len(zero.bits) == 4


def test_depends_on_and_support():
    table = TruthTable.from_function(("a", "b", "c"), lambda a, b, c: a ^ b)
    assert table.depends_on("a")
    assert table.depends_on("b")
    assert not table.depends_on("c")
    assert table.support() == ("a", "b")


def test_cofactor():
    table = TruthTable.from_function(("a", "b"), lambda a, b: a and b)
    positive = table.cofactor("a", 1)
    assert positive.inputs == ("b",)
    assert positive.bits == (0, 1)
    negative = table.cofactor("a", 0)
    assert negative.is_constant() and negative.bits[0] == 0


def test_restrict_multiple():
    table = TruthTable.from_function(("a", "b", "c"), lambda a, b, c: (a and b) or c)
    restricted = table.restrict({"a": 1, "b": 1})
    assert restricted.inputs == ("c",)
    assert restricted.bits == (1, 1)


def test_remove_redundant_inputs():
    table = TruthTable.from_function(("a", "b", "c"), lambda a, b, c: a)
    reduced = table.remove_redundant_inputs()
    assert set(reduced.inputs) == {"a"}


def test_rename_and_reorder():
    table = TruthTable.from_function(("a", "b"), lambda a, b: a and not b)
    renamed = table.rename({"a": "x"})
    assert renamed.inputs == ("x", "b")
    assert renamed.evaluate({"x": 1, "b": 0}) == 1
    reordered = table.reorder(("b", "a"))
    for a in (0, 1):
        for b in (0, 1):
            assert reordered.evaluate({"a": a, "b": b}) == table.evaluate({"a": a, "b": b})


def test_reorder_requires_permutation():
    table = TruthTable.from_function(("a", "b"), lambda a, b: a)
    with pytest.raises(ValueError):
        table.reorder(("a", "c"))


def test_extend_inputs():
    table = TruthTable.from_function(("a",), lambda a: 1 - a)
    extended = table.extend_inputs(("b", "a", "c"))
    assert extended.inputs == ("b", "a", "c")
    assert extended.evaluate({"a": 0, "b": 1, "c": 1}) == 1
    assert extended.evaluate({"a": 1, "b": 0, "c": 0}) == 0


def test_compose():
    xor = TruthTable.from_function(("p", "q"), lambda p, q: p ^ q)
    inner = TruthTable.from_function(("a", "b"), lambda a, b: a and b)
    composed = xor.compose({"p": inner})
    assert set(composed.inputs) == {"a", "b", "q"}
    for a in (0, 1):
        for b in (0, 1):
            for q in (0, 1):
                assert composed.evaluate({"a": a, "b": b, "q": q}) == ((a and b) ^ q)


def test_operators_and_equivalence():
    a = TruthTable.from_function(("a",), lambda a: a)
    b = TruthTable.from_function(("b",), lambda b: b)
    both = a & b
    assert both.evaluate({"a": 1, "b": 1}) == 1
    assert both.evaluate({"a": 1, "b": 0}) == 0
    either = a | b
    assert either.evaluate({"a": 0, "b": 1}) == 1
    exclusive = a ^ b
    assert exclusive.evaluate({"a": 1, "b": 1}) == 0
    inverted = ~a
    assert inverted.evaluate({"a": 1}) == 0
    assert (a & b).equivalent(b & a)
    assert not (a & b).equivalent(a | b)


def test_serialisation_roundtrip():
    table = TruthTable.from_function(("a", "b", "c"), lambda a, b, c: a ^ b ^ c, name="xor3")
    data = table.to_dict()
    again = TruthTable.from_dict(data)
    assert again == table
    assert again.to_config_bits() == table.bits


def test_missing_assignment_raises():
    table = TruthTable.from_function(("a", "b"), lambda a, b: a)
    with pytest.raises(KeyError):
        table.evaluate({"a": 1})
