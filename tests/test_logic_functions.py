"""Unit tests for the standard function library (repro.logic.functions)."""

import itertools

from repro.logic import functions as F


def _assignments(names):
    for values in itertools.product((0, 1), repeat=len(names)):
        yield dict(zip(names, values))


def test_and_or_nand_nor():
    for arity in (2, 3, 4):
        and_t = F.and_table(arity)
        or_t = F.or_table(arity)
        nand_t = F.nand_table(arity)
        nor_t = F.nor_table(arity)
        for assignment in _assignments(and_t.inputs):
            values = list(assignment.values())
            assert and_t.evaluate(assignment) == int(all(values))
            assert or_t.evaluate(assignment) == int(any(values))
            assert nand_t.evaluate(assignment) == int(not all(values))
            assert nor_t.evaluate(assignment) == int(not any(values))


def test_xor_xnor_parity():
    xor3 = F.xor_table(3)
    xnor3 = F.xnor_table(3)
    for assignment in _assignments(xor3.inputs):
        parity = sum(assignment.values()) % 2
        assert xor3.evaluate(assignment) == parity
        assert xnor3.evaluate(assignment) == 1 - parity


def test_not_buf():
    assert F.not_table("x").evaluate({"x": 0}) == 1
    assert F.not_table("x").evaluate({"x": 1}) == 0
    assert F.buf_table("x").evaluate({"x": 1}) == 1


def test_majority():
    maj = F.majority_table(3)
    for assignment in _assignments(maj.inputs):
        expected = int(sum(assignment.values()) >= 2)
        assert maj.evaluate(assignment) == expected


def test_mux():
    mux = F.mux_table()
    assert mux.evaluate({"s": 0, "d0": 1, "d1": 0}) == 1
    assert mux.evaluate({"s": 1, "d0": 1, "d1": 0}) == 0


def test_c_element_truth_table():
    table = F.c_element_table(("a", "b"))
    # Rise when all inputs high, fall when all low, hold otherwise.
    assert table.evaluate({"a": 1, "b": 1, "y": 0}) == 1
    assert table.evaluate({"a": 0, "b": 0, "y": 1}) == 0
    assert table.evaluate({"a": 1, "b": 0, "y": 0}) == 0
    assert table.evaluate({"a": 1, "b": 0, "y": 1}) == 1
    assert table.evaluate({"a": 0, "b": 1, "y": 1}) == 1


def test_c_element_three_inputs():
    table = F.c_element_table(("a", "b", "c"))
    assert table.evaluate({"a": 1, "b": 1, "c": 1, "y": 0}) == 1
    assert table.evaluate({"a": 1, "b": 1, "c": 0, "y": 0}) == 0
    assert table.evaluate({"a": 1, "b": 1, "c": 0, "y": 1}) == 1
    assert table.evaluate({"a": 0, "b": 0, "c": 0, "y": 1}) == 0


def test_generalized_c_element():
    table = F.generalized_c_table(plus_inputs=("s",), minus_inputs=("r",))
    # Set-dominant style behaviour: rise when s, fall when r low?  The
    # semantics: rise when all plus inputs are 1, fall when all minus are 0.
    assert table.evaluate({"s": 1, "r": 1, "y": 0}) == 1
    assert table.evaluate({"s": 0, "r": 0, "y": 1}) == 0
    assert table.evaluate({"s": 0, "r": 1, "y": 1}) == 1  # hold


def test_latch_table():
    latch = F.latch_table()
    assert latch.evaluate({"d": 1, "en": 1, "y": 0}) == 1
    assert latch.evaluate({"d": 0, "en": 1, "y": 1}) == 0
    assert latch.evaluate({"d": 1, "en": 0, "y": 0}) == 0
    assert latch.evaluate({"d": 0, "en": 0, "y": 1}) == 1


def test_sr_latch_table():
    sr = F.sr_latch_table()
    assert sr.evaluate({"s": 1, "r": 0, "y": 0}) == 1
    assert sr.evaluate({"s": 0, "r": 1, "y": 1}) == 0
    assert sr.evaluate({"s": 0, "r": 0, "y": 1}) == 1
    assert sr.evaluate({"s": 1, "r": 1, "y": 0}) == 1  # set dominant


def test_full_adder_helpers():
    s = F.full_adder_sum_table()
    c = F.full_adder_carry_table()
    for assignment in _assignments(("a", "b", "cin")):
        total = sum(assignment.values())
        assert s.evaluate(assignment) == total & 1
        assert c.evaluate(assignment) == (total >> 1) & 1
