"""Resume-equivalence tests for checkpointed flows.

Acceptance criterion: resuming ``CadFlow.run`` at any stage boundary — in
this process or a fresh one — produces a bitstream and a ``summary()`` that
are bit-identical to the straight-through run, for both circuit styles and
for the timing-driven and ``verify_stages`` option variants.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.artifacts import STAGES
from repro.cad.flow import CadFlow, FlowOptions
from repro.circuits.generate import recommended_fabric
from repro.circuits.registry import build_circuit
from repro.core.params import ArchitectureParams

#: Two circuits per handshake style, small enough for a bounded runtime.
PER_STAGE_CIRCUITS = ("qdi_full_adder", "micropipeline_full_adder")
SPOT_CHECK_CIRCUITS = ("qdi_full_adder_1of4", "wchb_fifo_4")

REPO_ROOT = Path(__file__).resolve().parent.parent


def _architecture(name: str) -> ArchitectureParams:
    from types import SimpleNamespace

    from repro.cad.techmap import template_map

    sized = SimpleNamespace(mapped=template_map(build_circuit(name)))
    return recommended_fabric(sized, slack=2)


def _fingerprint(result) -> tuple[str, str]:
    """The identity we require resumes to preserve, as comparable strings."""
    assert result.bitstream is not None
    return (
        result.bitstream.to_bytes().hex(),
        json.dumps(result.summary(), sort_keys=True, default=str),
    )


def _checkpoint_then_resume(name, store_dir, resume_points, **option_kwargs):
    """Run once with checkpoints, then resume at each point; return mismatches."""
    architecture = _architecture(name)
    options = FlowOptions(artifact_store=str(store_dir), **option_kwargs)
    circuit = build_circuit(name)
    baseline = _fingerprint(CadFlow(architecture, options).run(circuit))
    mismatches = []
    for resume_from in resume_points:
        resumed = CadFlow(architecture, options).run(
            build_circuit(name), resume_from=resume_from
        )
        if _fingerprint(resumed) != baseline:
            mismatches.append(resume_from)
    return mismatches


# ----------------------------------------------------------------------
# Per-stage and spot-check resume equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", PER_STAGE_CIRCUITS)
def test_resume_at_every_stage_is_bit_identical(name, tmp_path):
    points = list(STAGES) + ["auto"]
    assert _checkpoint_then_resume(name, tmp_path / "arts", points) == []


@pytest.mark.parametrize("name", SPOT_CHECK_CIRCUITS)
def test_resume_spot_checks_are_bit_identical(name, tmp_path):
    points = ["placement", "auto"]
    assert _checkpoint_then_resume(name, tmp_path / "arts", points) == []


def test_timing_driven_resume_is_bit_identical(tmp_path):
    points = ["packed", "placement", "routing", "auto"]
    mismatches = _checkpoint_then_resume(
        "qdi_full_adder", tmp_path / "arts", points, timing_driven=True
    )
    assert mismatches == []


def test_verify_stages_resume_is_bit_identical(tmp_path):
    points = ["placement", "routing", "auto"]
    mismatches = _checkpoint_then_resume(
        "qdi_full_adder", tmp_path / "arts", points, verify_stages=True
    )
    assert mismatches == []


def test_partial_checkpoint_resumes_with_recomputation(tmp_path):
    """A shallow checkpoint set still resumes; deeper stages recompute."""
    architecture = _architecture("qdi_full_adder")
    options = FlowOptions(
        artifact_store=str(tmp_path / "arts"),
        checkpoint_stages=("mapped", "packed", "placement"),
    )
    baseline = _fingerprint(CadFlow(architecture, options).run(build_circuit("qdi_full_adder")))
    resumed = CadFlow(architecture, options).run(
        build_circuit("qdi_full_adder"), resume_from="auto"
    )
    assert _fingerprint(resumed) == baseline


# ----------------------------------------------------------------------
# Fresh-process resume
# ----------------------------------------------------------------------
_RESUME_SCRIPT = """
import json, sys
from repro.cad.flow import CadFlow, FlowOptions
from repro.circuits.registry import build_circuit
from repro.core.params import ArchitectureParams

config = json.load(sys.stdin)
architecture = ArchitectureParams.from_dict(config["architecture"])
options = FlowOptions(**config["options"])
result = CadFlow(architecture, options).run(
    build_circuit(config["circuit"]), resume_from=config["resume_from"]
)
print(json.dumps({
    "bitstream": result.bitstream.to_bytes().hex(),
    "summary": json.dumps(result.summary(), sort_keys=True, default=str),
}))
"""


def _resume_in_fresh_process(architecture, options, circuit, resume_from):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    config = {
        "architecture": architecture.to_dict(),
        "options": {
            "artifact_store": options.artifact_store,
            "timing_driven": options.timing_driven,
        },
        "circuit": circuit,
        "resume_from": resume_from,
    }
    proc = subprocess.run(
        [sys.executable, "-c", _RESUME_SCRIPT],
        input=json.dumps(config),
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    return (payload["bitstream"], payload["summary"])


@pytest.mark.parametrize("timing_driven", [False, True])
def test_fresh_process_resume_is_bit_identical(timing_driven, tmp_path):
    name = "qdi_full_adder"
    architecture = _architecture(name)
    options = FlowOptions(
        artifact_store=str(tmp_path / "arts"), timing_driven=timing_driven
    )
    baseline = _fingerprint(CadFlow(architecture, options).run(build_circuit(name)))
    for resume_from in ("routing", "auto"):
        resumed = _resume_in_fresh_process(architecture, options, name, resume_from)
        assert resumed == baseline


def test_resume_auto_on_empty_store_runs_straight_through(tmp_path):
    architecture = _architecture("qdi_full_adder")
    plain = _fingerprint(
        CadFlow(architecture, FlowOptions()).run(build_circuit("qdi_full_adder"))
    )
    options = FlowOptions(artifact_store=str(tmp_path / "arts"))
    fresh = _fingerprint(
        CadFlow(architecture, options).run(build_circuit("qdi_full_adder"), resume_from="auto")
    )
    assert fresh == plain
