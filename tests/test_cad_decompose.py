"""Tests of the wide-function decomposition subsystem (repro.cad.decompose).

Covers the three reductions (Shannon, disjoint-support extraction, cone
un-absorption), feedback handling, the LE coalescing post-pass, and -- most
importantly -- end-to-end equivalence: decomposed mappings must simulate
identically to the undecomposed netlist.
"""

import random

import pytest

from repro.cad.decompose import (
    DECOMPOSITION_ROLE,
    DecompositionError,
    DecompositionStats,
    NetNamer,
    coalesce_decomposition_les,
    decompose_function,
)
from repro.cad.lemap import LEFunction, MappedLE
from repro.cad.pack import pack_design
from repro.cad.techmap import template_map
from repro.circuits.registry import build_circuit
from repro.core.params import LEParams, PLBParams
from repro.logic.truthtable import TruthTable
from repro.netlist.celltypes import STANDARD_LIBRARY, CellType
from repro.netlist.netlist import Netlist, PortDirection
from repro.sim.lesim import simulate_mapped_design
from repro.sim.netsim import GateLevelSimulator, evaluate_combinational


def evaluate_network(functions, assignment):
    """Evaluate a list of LEFunctions (intermediates first) on *assignment*.

    Returns the value of the last function.  Feedback inputs must be given in
    *assignment* (they read the previous output value).
    """
    values = dict(assignment)
    result = None
    for function in functions:
        local = dict(values)
        if function.has_feedback and function.output_net not in local:
            local[function.output_net] = assignment[function.output_net]
        result = function.table.evaluate(
            {name: local[name] for name in function.table.inputs}
        )
        values[function.output_net] = result
    return result


def random_table(arity, seed, name="rnd"):
    rng = random.Random(seed)
    inputs = tuple(f"i{index}" for index in range(arity))
    bits = tuple(rng.randint(0, 1) for _ in range(1 << arity))
    return TruthTable(inputs=inputs, bits=bits, name=name)


# ----------------------------------------------------------------------
# Core decomposition behaviour
# ----------------------------------------------------------------------
def test_narrow_function_is_returned_unchanged():
    table = random_table(4, seed=1)
    function = LEFunction(output_net="z", table=table)
    result = decompose_function(function, budget=7)
    assert result.functions == [function]
    assert result.reused_nets == []


@pytest.mark.parametrize("arity,seed", [(8, 2), (9, 3), (10, 4)])
def test_shannon_decomposition_is_equivalent(arity, seed):
    table = random_table(arity, seed)
    stats = DecompositionStats()
    result = decompose_function(
        LEFunction(output_net="z", table=table), budget=7, stats=stats
    )
    assert all(f.arity <= 7 for f in result.functions)
    assert result.final.output_net == "z"
    assert all(f.role == DECOMPOSITION_ROLE for f in result.intermediates)
    assert stats.functions_decomposed == 1
    assert stats.intermediate_functions == len(result.intermediates) > 0

    rng = random.Random(seed + 100)
    for _ in range(64):
        assignment = {name: rng.randint(0, 1) for name in table.inputs}
        assert evaluate_network(result.functions, assignment) == table.evaluate(
            assignment
        )


def test_disjoint_support_extraction_fires_and_is_equivalent():
    # f = AND(i0..i4) XOR OR(i5..i9): the i0..i4 window has column
    # multiplicity 2, so one synthetic net replaces five inputs.
    inputs = tuple(f"i{index}" for index in range(10))

    def f(*values):
        return int(all(values[:5])) ^ int(any(values[5:]))

    table = TruthTable.from_function(inputs, f, name="and_xor_or")
    stats = DecompositionStats()
    result = decompose_function(
        LEFunction(output_net="z", table=table), budget=7, stats=stats
    )
    assert stats.disjoint_extractions >= 1
    assert stats.shannon_splits == 0  # structure found, no cofactoring needed
    assert all(f_.arity <= 7 for f_ in result.functions)
    for row in range(1 << 10):
        assignment = {name: (row >> pos) & 1 for pos, name in enumerate(inputs)}
        assert evaluate_network(result.functions, assignment) == table.evaluate(
            assignment
        )


def test_unabsorption_restores_candidate_cone_net():
    # The wide table is h with an inner cone g absorbed: g = AND(i4..i7) on
    # net "m".  Supplying g as a candidate must restore "m" as an input
    # instead of synthesising new nets.
    cone = TruthTable.from_function(("i4", "i5", "i6", "i7"), lambda *v: all(v), name="g")
    outer = TruthTable.from_function(
        ("i0", "i1", "i2", "i3", "m"), lambda a, b, c, d, m: (a & b) | (c ^ d) | m
    )
    wide = outer.compose({"m": cone})
    assert wide.arity == 8
    stats = DecompositionStats()
    result = decompose_function(
        LEFunction(output_net="z", table=wide),
        budget=7,
        stats=stats,
        candidates={"m": cone},
    )
    assert stats.resubstitutions == 1
    assert result.reused_nets == ["m"]
    assert result.intermediates == []  # nothing synthetic was needed
    assert "m" in result.final.input_nets
    assert result.final.table.equivalent(outer)


def test_unabsorption_handles_complemented_cone():
    # The extraction normalises g by first-seen column, which can be the
    # complement of the absorbed cone; the rewritten h must compensate so the
    # original cone output still drives the restored net.
    cone = TruthTable.from_function(("i4", "i5", "i6", "i7"), lambda *v: not all(v))
    outer = TruthTable.from_function(
        ("i0", "i1", "i2", "i3", "m"), lambda a, b, c, d, m: (a ^ b) | (c & d & m)
    )
    wide = outer.compose({"m": cone})
    result = decompose_function(
        LEFunction(output_net="z", table=wide), budget=7, candidates={"m": cone}
    )
    assert result.reused_nets == ["m"]
    assert result.final.table.equivalent(outer)


def test_feedback_function_splits_on_its_own_output_first():
    # A 9-input Muller-C-style function (8 data + feedback): the final LUT
    # must keep the feedback pin and every intermediate must be combinational.
    inputs = tuple(f"d{index}" for index in range(8)) + ("z",)

    def c_next(*values):
        data, previous = values[:-1], values[-1]
        if all(data):
            return 1
        if not any(data):
            return 0
        return previous

    table = TruthTable.from_function(inputs, c_next, name="wide_c")
    result = decompose_function(LEFunction(output_net="z", table=table), budget=7)
    assert result.final.has_feedback
    assert all(not f.has_feedback for f in result.intermediates)
    assert all("z" not in f.input_nets for f in result.intermediates)
    assert all(f.arity <= 7 for f in result.functions)
    rng = random.Random(7)
    for _ in range(128):
        assignment = {name: rng.randint(0, 1) for name in inputs}
        assert evaluate_network(result.functions, assignment) == table.evaluate(
            assignment
        )


def test_budget_below_mux_width_raises():
    table = random_table(5, seed=9)
    with pytest.raises(DecompositionError):
        decompose_function(LEFunction(output_net="z", table=table), budget=2)


def test_net_namer_avoids_existing_and_repeats():
    namer = NetNamer(["z__d0", "z"])
    first = namer.fresh("z")
    second = namer.fresh("z")
    assert first == "z__d1" and second == "z__d2"
    assert len({first, second}) == 2


# ----------------------------------------------------------------------
# Coalescing post-pass
# ----------------------------------------------------------------------
def test_coalesce_merges_only_decomposition_les():
    params = PLBParams()
    shared = tuple(f"i{index}" for index in range(5))
    decomp = [
        MappedLE(
            name=f"le_d{index}",
            functions=[
                LEFunction(
                    output_net=f"d{index}",
                    table=random_table(5, seed=20 + index).rename(
                        dict(zip(tuple(f"i{k}" for k in range(5)), shared))
                    ),
                    role=DECOMPOSITION_ROLE,
                )
            ],
        )
        for index in range(3)
    ]
    regular = MappedLE(
        name="le_z",
        functions=[LEFunction(output_net="z", table=random_table(4, seed=30))],
    )
    result = coalesce_decomposition_les([regular] + decomp, params)
    assert regular in result  # untouched
    merged = [le for le in result if le is not regular]
    # Three functions over the same five inputs share one LUT7-3.
    assert len(merged) == 1
    assert len(merged[0].functions) == 3
    assert merged[0].fits(params)
    total = sum(len(le.functions) for le in result)
    assert total == 4  # nothing lost, nothing duplicated


def test_coalesce_respects_le_budget():
    params = PLBParams()
    # Disjoint supports: merging any two would need 10 > 7 LUT inputs.
    les = [
        MappedLE(
            name=f"le_d{index}",
            functions=[
                LEFunction(
                    output_net=f"d{index}",
                    table=TruthTable.from_function(
                        tuple(f"i{index}_{k}" for k in range(5)), lambda *v: any(v)
                    ),
                    role=DECOMPOSITION_ROLE,
                )
            ],
        )
        for index in range(3)
    ]
    result = coalesce_decomposition_les(les, params)
    assert len(result) == 3
    assert all(le.fits(params) for le in result)


# ----------------------------------------------------------------------
# Equivalence: decomposed mappings vs the undecomposed netlist
# ----------------------------------------------------------------------
def test_decomposed_multiplier_simulates_identically_to_gate_netlist():
    circuit = build_circuit("qdi_multiplier_2x2")
    design = template_map(circuit)
    assert design.metadata["decomposition"]["functions_decomposed"] == 8
    mapped_sim = simulate_mapped_design(design)
    gate_sim = GateLevelSimulator(circuit.netlist)
    a, b = circuit.channel("a"), circuit.channel("b")
    outputs = list(design.primary_outputs)

    for a_value in range(4):
        for b_value in range(4):
            valid = {**a.encode(a_value), **b.encode(b_value)}
            neutral = {**a.neutral(), **b.neutral()}
            for phase in (valid, neutral):
                for sim in (mapped_sim, gate_sim):
                    sim.set_inputs(phase)
                    sim.run()
                assert {net: mapped_sim.value(net) for net in outputs} == {
                    net: gate_sim.value(net) for net in outputs
                }, f"divergence for a={a_value} b={b_value}"


def _wide_cell_netlist(arity=10):
    """A netlist whose single cell is wider than the LUT budget."""
    pins = tuple(f"x{index}" for index in range(arity))

    def threshold(*values):
        return int(sum(values) >= (arity // 2))

    cell_type = CellType(
        name=f"WIDE{arity}",
        inputs=pins,
        outputs=("z",),
        tables={"z": TruthTable.from_function(pins, threshold, name="threshold")},
    )
    netlist = Netlist(f"wide{arity}", library=STANDARD_LIBRARY)
    nets = tuple(f"i{index}" for index in range(arity))
    for net in nets:
        netlist.add_port(net, PortDirection.INPUT)
    netlist.add_port("z", PortDirection.OUTPUT)
    connections = dict(zip(pins, nets))
    connections["z"] = "z"
    netlist.add_cell("u_wide", cell_type, connections)
    return netlist, nets


def test_decomposed_generic_map_of_wide_function_is_equivalent():
    from repro.cad.techmap import generic_map

    netlist, nets = _wide_cell_netlist(10)
    design = generic_map(netlist)
    assert design.validate() == []
    assert design.metadata["decomposition"]["functions_decomposed"] == 1
    assert all(len(le.lut_input_nets) <= 7 for le in design.les)

    simulator = simulate_mapped_design(design)
    rng = random.Random(42)
    vectors = [
        {net: rng.randint(0, 1) for net in nets} for _ in range(40)
    ] + [{net: 1 for net in nets}, {net: 0 for net in nets}]
    for assignment in vectors:
        simulator.apply_and_settle(assignment)
        expected = evaluate_combinational(netlist, assignment)["z"]
        assert simulator.value("z") == expected


def test_wide_one_of_n_digit_validity_decomposes():
    # A 1-of-8 output digit needs an 8-input validity OR on a 7-input LE;
    # the dedicated validity LE must go through decomposition like the rail
    # and acknowledge functions do.
    from repro.asynclogic.channels import Channel
    from repro.asynclogic.encodings import DualRailEncoding, OneOfNEncoding
    from repro.styles.base import LogicStyle
    from repro.styles.qdi import dims_function_block

    circuit = dims_function_block(
        "wide_digit",
        input_channels=[Channel("x", 3, DualRailEncoding())],
        output_channels=[Channel("z", 3, OneOfNEncoding(8))],
        function=lambda values: {"z": values["x"]},
        style=LogicStyle.QDI_ONE_OF_FOUR,
    )
    design = template_map(circuit)
    assert design.validate() == []
    assert all(le.fits(design.params) for le in design.les)
    validity = [
        f for le in design.les for f in le.functions if f.role == "validity"
    ]
    assert validity and all(f.arity <= 7 for f in validity)
    assert design.metadata["decomposition"]["functions_decomposed"] >= 1


def test_merge_mapped_designs_folds_decomposition_metadata():
    # Composed circuits (ripple adders, the 4x4 multiplier) must report the
    # same decomposition counters a monolithic mapping would: the merge folds
    # the per-part metadata instead of dropping it.
    from repro.circuits.adders import qdi_ripple_adder
    from repro.circuits.multiplier import qdi_multiplier_4x4

    small = PLBParams(le=LEParams(lut_inputs=4, lut_outputs=3))
    adder = qdi_ripple_adder(2, params=small)
    stats = adder.mapped.metadata["decomposition"]
    assert stats["functions_decomposed"] == 8  # 4 rails per slice, 2 slices
    assert stats["intermediate_functions"] > 0

    multiplier = qdi_multiplier_4x4()
    stats = multiplier.mapped.metadata["decomposition"]
    assert stats["functions_decomposed"] == 32  # 8 rails per 2x2 block
    assert stats["max_arity_seen"] == 9


def test_decomposed_small_le_adder_packs_and_validates():
    # A 4-input LUT cannot host the full adder's 7-input rail functions; the
    # mapper must decompose instead of rejecting, and the result must pack.
    from repro.circuits.fulladder import qdi_full_adder

    params = PLBParams(le=LEParams(lut_inputs=4, lut_outputs=3))
    design = template_map(qdi_full_adder(), params)
    # All four 7-input rail functions split; the 3-input ack C-element fits.
    assert design.metadata["decomposition"]["functions_decomposed"] == 4
    assert design.validate() == []
    pack_design(design, params)
    assert all(le.fits(params) for plb in design.plbs for le in plb.les)
