"""Unit tests for repro.logic.boolexpr."""

import pytest

from repro.logic.boolexpr import And, Const, Not, Or, Var, Xor, parse_expr


def test_variable_collection_order():
    expr = parse_expr("b & a | c & a")
    assert expr.variables() == ("b", "a", "c")


def test_parse_precedence():
    # & binds tighter than ^ which binds tighter than |.
    expr = parse_expr("a | b & c")
    assert expr.evaluate({"a": 0, "b": 1, "c": 0}) == 0
    assert expr.evaluate({"a": 0, "b": 1, "c": 1}) == 1
    expr2 = parse_expr("a ^ b & c")
    assert expr2.evaluate({"a": 1, "b": 1, "c": 1}) == 0
    assert expr2.evaluate({"a": 1, "b": 1, "c": 0}) == 1


def test_parse_parentheses_and_not():
    expr = parse_expr("!(a | b) & c")
    assert expr.evaluate({"a": 0, "b": 0, "c": 1}) == 1
    assert expr.evaluate({"a": 1, "b": 0, "c": 1}) == 0


def test_parse_constants():
    assert parse_expr("1 | a").evaluate({"a": 0}) == 1
    assert parse_expr("0 & a").evaluate({"a": 1}) == 0


def test_parse_alternative_operators():
    expr = parse_expr("a * b + c")
    assert expr.evaluate({"a": 1, "b": 1, "c": 0}) == 1
    assert expr.evaluate({"a": 0, "b": 1, "c": 0}) == 0


def test_parse_errors():
    with pytest.raises(ValueError):
        parse_expr("a &")
    with pytest.raises(ValueError):
        parse_expr("(a | b")
    with pytest.raises(ValueError):
        parse_expr("a ? b")
    with pytest.raises(ValueError):
        parse_expr("a b")


def test_to_truth_table_matches_evaluation():
    expr = parse_expr("(a & b) ^ !c")
    table = expr.to_truth_table()
    for a in (0, 1):
        for b in (0, 1):
            for c in (0, 1):
                assignment = {"a": a, "b": b, "c": c}
                assert table.evaluate(assignment) == expr.evaluate(assignment)


def test_to_truth_table_with_explicit_inputs():
    expr = parse_expr("a & b")
    table = expr.to_truth_table(inputs=("a", "b", "unused"))
    assert table.inputs == ("a", "b", "unused")
    with pytest.raises(ValueError):
        expr.to_truth_table(inputs=("a",))


def test_operator_sugar():
    a, b = Var("a"), Var("b")
    expr = (a & b) | ~a ^ Const(0)
    assert expr.evaluate({"a": 0, "b": 0}) == 1
    assert expr.evaluate({"a": 1, "b": 0}) == 0


def test_nary_constructors_require_two_operands():
    with pytest.raises(ValueError):
        And(Var("a"))
    with pytest.raises(ValueError):
        Or(Var("a"))
    with pytest.raises(ValueError):
        Xor(Var("a"))


def test_str_rendering():
    expr = parse_expr("!a & (b | c)")
    text = str(expr)
    assert "a" in text and "|" in text and "&" in text
    assert str(Not(Var("z"))) == "!z"
