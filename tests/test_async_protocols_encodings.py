"""Tests for handshake protocols and data encodings."""

import pytest

from repro.asynclogic.encodings import (
    BundledDataEncoding,
    DualRailEncoding,
    EncodingError,
    OneOfNEncoding,
    encoding_by_name,
)
from repro.asynclogic.protocols import (
    FourPhaseProtocol,
    Phase,
    TimingClass,
    TwoPhaseProtocol,
    protocol_by_name,
)


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------
def test_four_phase_properties():
    assert FourPhaseProtocol.phases_per_cycle == 4
    assert FourPhaseProtocol.return_to_zero
    sequence = FourPhaseProtocol.handshake_sequence()
    assert sequence[0] is Phase.DATA_VALID
    assert Phase.RETURN_TO_ZERO in sequence
    assert FourPhaseProtocol.cycles_for_tokens(3) == 12


def test_two_phase_properties():
    assert TwoPhaseProtocol.phases_per_cycle == 2
    assert not TwoPhaseProtocol.return_to_zero
    assert Phase.RETURN_TO_ZERO not in TwoPhaseProtocol.handshake_sequence()


def test_protocol_lookup_aliases():
    assert protocol_by_name("four-phase") is FourPhaseProtocol
    assert protocol_by_name("4ph") is FourPhaseProtocol
    assert protocol_by_name("2-PHASE") is TwoPhaseProtocol
    with pytest.raises(KeyError):
        protocol_by_name("three-phase")


def test_timing_classes():
    assert TimingClass.BUNDLED.requires_matched_delay
    assert not TimingClass.QDI.requires_matched_delay
    assert TimingClass.QDI.requires_isochronic_forks
    assert not TimingClass.DI.requires_isochronic_forks


# ----------------------------------------------------------------------
# Dual-rail
# ----------------------------------------------------------------------
def test_dual_rail_encode_decode_digit():
    enc = DualRailEncoding()
    assert enc.encode_digit(0) == (1, 0)
    assert enc.encode_digit(1) == (0, 1)
    assert enc.decode_digit((1, 0)) == 0
    assert enc.decode_digit((0, 1)) == 1
    assert enc.decode_digit((0, 0)) is None
    with pytest.raises(EncodingError):
        enc.decode_digit((1, 1))


def test_dual_rail_word_roundtrip():
    enc = DualRailEncoding()
    for width in (1, 3, 5):
        for value in range(1 << width):
            rails = enc.encode_word(value, width)
            assert len(rails) == 2 * width
            assert enc.decode_word(rails, width) == value
            assert enc.word_is_valid(rails, width)
    assert enc.decode_word(enc.neutral_word(3), 3) is None


def test_dual_rail_rail_names():
    enc = DualRailEncoding()
    assert enc.rail_names("x") == ("x_f", "x_t")


def test_dual_rail_validity_and_neutral():
    enc = DualRailEncoding()
    assert enc.digit_is_valid((0, 1))
    assert not enc.digit_is_valid((0, 0))
    assert enc.digit_is_neutral((0, 0))
    assert not enc.digit_is_neutral((1, 0))


# ----------------------------------------------------------------------
# 1-of-N
# ----------------------------------------------------------------------
def test_one_of_four_encoding():
    enc = OneOfNEncoding(4)
    assert enc.rails_per_digit == 4
    assert enc.bits_per_digit == 2
    assert enc.encode_digit(2) == (0, 0, 1, 0)
    assert enc.decode_digit((0, 0, 1, 0)) == 2
    assert enc.decode_digit((0, 0, 0, 0)) is None
    with pytest.raises(EncodingError):
        enc.decode_digit((1, 1, 0, 0))
    with pytest.raises(EncodingError):
        enc.encode_digit(4)


def test_one_of_four_word_roundtrip():
    enc = OneOfNEncoding(4)
    for value in range(16):
        rails = enc.encode_word(value, 4)
        assert len(rails) == 8  # two digits of four rails
        assert enc.decode_word(rails, 4) == value


def test_one_of_n_requires_two_rails():
    with pytest.raises(ValueError):
        OneOfNEncoding(1)


def test_encode_word_range_check():
    enc = DualRailEncoding()
    with pytest.raises(EncodingError):
        enc.encode_word(4, 2)
    with pytest.raises(EncodingError):
        enc.encode_word(-1, 2)


def test_decode_word_length_check():
    enc = DualRailEncoding()
    with pytest.raises(EncodingError):
        enc.decode_word((0, 1), 2)


# ----------------------------------------------------------------------
# Bundled data
# ----------------------------------------------------------------------
def test_bundled_data_properties():
    enc = BundledDataEncoding()
    assert not enc.is_delay_insensitive
    assert enc.rails_per_digit == 1
    assert enc.encode_word(5, 3) == (1, 0, 1)
    assert enc.decode_word((1, 0, 1), 3) == 5
    assert enc.digit_is_valid((0,))  # validity comes from the request wire
    assert enc.rail_names("d") == ("d",)
    with pytest.raises(EncodingError):
        enc.encode_digit(2)


# ----------------------------------------------------------------------
# Lookup
# ----------------------------------------------------------------------
def test_encoding_by_name():
    assert isinstance(encoding_by_name("dual-rail"), DualRailEncoding)
    assert isinstance(encoding_by_name("bundled-data"), BundledDataEncoding)
    one_of_8 = encoding_by_name("1-of-8")
    assert isinstance(one_of_8, OneOfNEncoding) and one_of_8.n == 8
    with pytest.raises(KeyError):
        encoding_by_name("morse")
