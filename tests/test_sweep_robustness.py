"""Tests of the sweep supervision layer and the chaos harness.

Everything here is deterministic: faults come from seeded
:class:`~repro.sweep.chaos.FaultPlan` schedules (or fork-inherited
monkeypatches for the real-process-crash test), so every scenario replays
bit-identically -- the property the chaos harness itself exists to prove.
"""

import json
import multiprocessing
import os
import shutil
import sys
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifacts import ArtifactStore
from repro.cad.flow import FlowOptions
from repro.core.params import ArchitectureParams, RoutingParams
from repro.sweep import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_POISONED,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    ChaosStore,
    FaultPlan,
    RetryPolicy,
    RunnerConfig,
    SweepResultStore,
    SweepRunner,
    SweepSpec,
    execute_point,
    run_campaign,
    write_csv,
)
from repro.sweep.chaos import chaos_executor

ANALYSIS_ONLY = FlowOptions(
    run_placement=False, run_routing=False, generate_bitstream=False
)


def _spec(widths=(8,), circuits=("qdi_full_adder",), options=ANALYSIS_ONLY):
    return SweepSpec.build(
        circuits,
        [
            ArchitectureParams(routing=RoutingParams(channel_width=width))
            for width in widths
        ],
        options,
    )


def _chaos_config(**kwargs):
    defaults = dict(executor="chaos", workers=1)
    defaults.update(kwargs)
    return RunnerConfig(**defaults)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_backoff_is_deterministic_and_serializable():
    policy = RetryPolicy(max_attempts=4, backoff_s=0.5, backoff_factor=3.0, seed=9)
    delays = [policy.delay_s(n, "point@6x6/cw8") for n in (1, 2, 3)]
    assert delays == [policy.delay_s(n, "point@6x6/cw8") for n in (1, 2, 3)]
    # Exponential growth dominates the +-10% jitter.
    assert delays[0] < delays[1] < delays[2]
    assert delays[0] == pytest.approx(0.5, rel=policy.jitter)
    assert delays[1] == pytest.approx(1.5, rel=policy.jitter)
    # A different point jitters differently (seeded per token).
    assert policy.delay_s(1, "other@6x6/cw8") != delays[0]
    assert RetryPolicy.from_dict(policy.to_dict()) == policy
    assert RetryPolicy(max_attempts=2).delay_s(1, "x") == 0.0  # no backoff_s


# ----------------------------------------------------------------------
# Record schema: duration + attempts
# ----------------------------------------------------------------------
def test_execute_point_records_duration_and_attempt_history():
    point = _spec().points()[0]
    record = execute_point(point.to_dict())
    assert record["status"] == STATUS_OK
    assert record["transient"] is False
    assert record["duration_s"] > 0
    assert record["attempts"] == [
        {"outcome": STATUS_OK, "error": None, "duration_s": record["duration_s"]}
    ]


def test_reporters_surface_attempts_and_duration(tmp_path):
    report = SweepRunner(store=None).run(_spec())
    rows = report.rows()
    assert rows[0]["attempts"] == 1
    assert rows[0]["duration_s"] > 0
    path = write_csv(report, tmp_path / "report.csv")
    header = path.read_text().splitlines()[0].split(",")
    assert "attempts" in header and "duration_s" in header
    stats = report.stats()
    for key in ("timeouts", "poisoned", "skipped", "retried", "pool_rebuilds"):
        assert stats[key] == 0


# ----------------------------------------------------------------------
# Retries of transient failures
# ----------------------------------------------------------------------
def test_transient_flow_error_is_retried_and_recovers(monkeypatch):
    import repro.circuits.registry as registry

    real = registry.build_circuit
    calls = {"n": 0}

    def flaky(name, *args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError("simulated transient I/O failure")
        return real(name, *args, **kwargs)

    monkeypatch.setattr(registry, "build_circuit", flaky)
    config = RunnerConfig(executor="serial", retry=RetryPolicy(max_attempts=2))
    report = SweepRunner(store=None, config=config).run(_spec())
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_OK
    assert outcome.retried
    assert [a["outcome"] for a in outcome.attempts] == [STATUS_ERROR, STATUS_OK]
    assert outcome.attempts[0]["error"]["type"] == "OSError"
    assert report.retried_count == 1


def test_transient_error_exhausting_retries_is_not_cached(tmp_path, monkeypatch):
    import repro.circuits.registry as registry

    def always_transient(name, *args, **kwargs):
        raise OSError("persistently flaky environment")

    monkeypatch.setattr(registry, "build_circuit", always_transient)
    config = RunnerConfig(executor="serial", retry=RetryPolicy(max_attempts=3))
    store = SweepResultStore(tmp_path)
    report = SweepRunner(store=store, config=config).run(_spec())
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_ERROR
    assert len(outcome.attempts) == 3
    # Transient errors are never cached: the store holds no flow record.
    assert store.get(outcome.point.key()) is None


# ----------------------------------------------------------------------
# Timeouts
# ----------------------------------------------------------------------
def test_cooperative_timeout_on_serial_backend(tmp_path):
    # The serial backend cannot preempt, so an impossible budget is
    # detected after the fact; the result is discarded and never cached.
    store = SweepResultStore(tmp_path)
    config = RunnerConfig(executor="serial", timeout_s=1e-9)
    report = SweepRunner(store=store, config=config).run(_spec())
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_TIMEOUT
    assert report.timeout_count == 1
    assert outcome.attempts[0]["error"]["type"] == "TimeoutError"
    assert store.get(outcome.point.key()) is None
    # Retries make it attempt the point again before giving up.
    config = RunnerConfig(
        executor="serial", timeout_s=1e-9, retry=RetryPolicy(max_attempts=2)
    )
    report = SweepRunner(store=None, config=config).run(_spec())
    assert len(report.outcomes[0].attempts) == 2


def test_injected_hang_recovers_on_retry():
    label = _spec().points()[0].label()
    plan = FaultPlan.build(scripted={label: ("hang",)})
    with chaos_executor(plan):
        config = _chaos_config(timeout_s=60.0, retry=RetryPolicy(max_attempts=2))
        report = SweepRunner(store=None, config=config).run(_spec())
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_OK
    assert [a["outcome"] for a in outcome.attempts] == [STATUS_TIMEOUT, STATUS_OK]


# ----------------------------------------------------------------------
# Worker-crash recovery and poisoning
# ----------------------------------------------------------------------
def test_injected_crash_is_resubmitted_and_recovers():
    spec = _spec(widths=(8, 10))
    label = spec.points()[0].label()
    plan = FaultPlan.build(scripted={label: ("crash",)})
    with chaos_executor(plan) as instances:
        report = SweepRunner(store=None, config=_chaos_config()).run(spec)
    assert [o.status for o in report.outcomes] == [STATUS_OK, STATUS_OK]
    assert report.pool_rebuilds == 1
    crashed = report.outcomes[0]
    assert [a["outcome"] for a in crashed.attempts] == ["crash", STATUS_OK]
    assert instances[0].rebuilds == 1  # plan state survived the rebuild


def test_repeat_killer_is_poisoned_and_cached(tmp_path):
    spec = _spec(widths=(8, 10))
    points = spec.points()
    poison_label = points[0].label()
    plan = FaultPlan.build(poison=[poison_label])
    store = SweepResultStore(tmp_path)
    with chaos_executor(plan):
        config = _chaos_config(max_point_crashes=2)
        report = SweepRunner(store=store, config=config).run(spec)
    poisoned = report.outcomes[0]
    assert poisoned.status == STATUS_POISONED
    assert report.poisoned_count == 1
    # 3 crashes: the initial attempt plus max_point_crashes resubmissions.
    assert [a["outcome"] for a in poisoned.attempts] == ["crash"] * 3
    # The healthy point of the grid is unaffected.
    assert report.outcomes[1].status == STATUS_OK
    # Poisoned records are cached with their attempt history...
    cached = store.get(points[0].key())
    assert cached["status"] == STATUS_POISONED
    assert len(cached["attempts"]) == 3
    # ...so a re-run serves them from the store instead of re-crashing.
    with chaos_executor(plan):
        warm = SweepRunner(store=store, config=_chaos_config()).run(spec)
    assert warm.cache_hits == 2
    assert warm.outcomes[0].status == STATUS_POISONED
    # stats() reports the poisoned record.
    assert store.stats()["poisoned_records"] == 1


def test_fail_fast_skips_the_rest_of_the_grid(tmp_path):
    spec = _spec(widths=(8, 10, 12))
    plan = FaultPlan.build(poison=[spec.points()[0].label()])
    store = SweepResultStore(tmp_path)
    with chaos_executor(plan):
        config = _chaos_config(max_point_crashes=0, fail_fast=True)
        report = SweepRunner(store=store, config=config).run(spec)
    statuses = [o.status for o in report.outcomes]
    assert statuses == [STATUS_POISONED, STATUS_SKIPPED, STATUS_SKIPPED]
    assert report.skipped_count == 2
    skipped = report.outcomes[1]
    assert skipped.error["type"] == "FailFast"
    # Skipped points are never cached: a later run re-attempts them.
    assert store.get(spec.points()[1].key()) is None


def test_fallback_ladder_degrades_to_a_working_backend():
    spec = _spec(widths=(8, 10))
    # Poisoning every label makes the chaos backend crash on every attempt;
    # with a zero rebuild budget the supervisor must degrade to the serial
    # backend (no faults there) and complete the grid cleanly.
    plan = FaultPlan.build(poison=[p.label() for p in spec.points()])
    with chaos_executor(plan):
        config = _chaos_config(max_pool_rebuilds=0, fallback=("serial",))
        report = SweepRunner(store=None, config=config).run(spec)
    assert report.fallbacks == ["serial"]
    assert [o.status for o in report.outcomes] == [STATUS_OK, STATUS_OK]
    assert report.pool_rebuilds >= 1


@pytest.mark.skipif(
    sys.platform != "linux" or multiprocessing.get_start_method() != "fork",
    reason="needs fork-inherited monkeypatching of pool workers",
)
def test_real_process_pool_crash_recovery(tmp_path, monkeypatch):
    # A genuine BrokenProcessPool: the worker os._exit()s mid-point on its
    # first attempt (fork propagates the patched registry into workers
    # created after the patch; the flag file makes the crash one-shot).
    import repro.circuits.registry as registry

    flag = tmp_path / "crashed-once"
    real = registry.build_circuit

    def crash_once(name, *args, **kwargs):
        if not flag.exists():
            flag.write_text("crashing")
            os._exit(17)
        return real(name, *args, **kwargs)

    monkeypatch.setattr(registry, "build_circuit", crash_once)
    config = RunnerConfig(executor="process", workers=1)
    report = SweepRunner(store=None, config=config).run(_spec())
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_OK
    assert report.pool_rebuilds >= 1
    assert outcome.attempts[0]["outcome"] == "crash"
    assert outcome.attempts[-1]["outcome"] == STATUS_OK


# ----------------------------------------------------------------------
# Corrupt-placement-cache observability (the once-silent fallback)
# ----------------------------------------------------------------------
def test_corrupt_placement_cache_is_observable(tmp_path, caplog):
    spec = SweepSpec.build(["qdi_full_adder"], ArchitectureParams(), FlowOptions())
    point = spec.points()[0]
    store = SweepResultStore(tmp_path)
    SweepRunner(store=store).run(spec)
    # Corrupt the cached placement (valid JSON, bogus payload) and retire
    # the flow record so the point re-executes against the bad cache.
    store.put(
        point.placement_key(),
        {"kind": "placement", "placement": {"not": "a placement"}},
    )
    store.path_for(point.key()).unlink()
    with caplog.at_level("WARNING", logger="repro.sweep.runner"):
        report = SweepRunner(store=store).run(spec)
    outcome = report.outcomes[0]
    assert outcome.status == STATUS_OK  # fell back to a fresh placement
    record = store.get(point.key())
    assert record["placement_cache_corrupt"] is True
    assert any("corrupt placement-cache record" in m for m in caplog.messages)


# ----------------------------------------------------------------------
# Torn writes, checksums, quarantine (property tests)
# ----------------------------------------------------------------------
@given(
    offset_fraction=st.floats(min_value=0.0, max_value=1.0),
    mode=st.sampled_from(["truncate", "flip"]),
)
@settings(max_examples=40, deadline=None)
def test_corrupt_record_quarantines_and_continues(offset_fraction, mode):
    root = tempfile.mkdtemp()
    try:
        store = SweepResultStore(root)
        good_key = "aa" + "1" * 62
        bad_key = "ab" + "2" * 62
        store.put(good_key, {"kind": "flow", "status": "ok", "summary": {"x": 1}})
        store.put(bad_key, {"kind": "flow", "status": "ok", "summary": {"y": 2}})
        path = store.path_for(bad_key)
        blob = bytearray(path.read_bytes())
        offset = min(int(offset_fraction * len(blob)), len(blob) - 1)
        if mode == "truncate":
            path.write_bytes(bytes(blob[:offset]))
        else:
            blob[offset] ^= 0xFF
            path.write_bytes(bytes(blob))
        # Quarantine-and-continue: the corrupt record reads as a miss...
        assert store.get(bad_key) is None
        assert len(store.quarantined()) == 1
        # ...while the intact record keeps being served.
        assert store.get(good_key)["summary"] == {"x": 1}
        assert list(store.keys()) == [good_key]
        stats = store.stats(current_fingerprint="irrelevant")
        assert stats["quarantined_records"] == 1
        assert stats["quarantined_bytes"] > 0 or mode == "truncate"
        # gc reaps the quarantine (and honours dry_run first).
        dry = store.gc(current_fingerprint="irrelevant", dry_run=True, keep_latest=99)
        assert dry["quarantine_reaped"] == 1
        assert len(store.quarantined()) == 1
        wet = store.gc(current_fingerprint="irrelevant", keep_latest=99)
        assert wet["quarantine_reaped"] == 1
        assert store.quarantined() == []
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_artifact_store_inherits_checksums_and_quarantine(tmp_path):
    store = ArtifactStore(tmp_path, max_bytes=None)
    key = "cd" + "3" * 62
    store.put(key, {"kind": "artifact", "payload": [1, 2, 3]})
    path = store.path_for(key)
    data = json.loads(path.read_text())
    data["payload"] = [4, 5, 6]  # valid JSON, stale checksum
    path.write_text(json.dumps(data))
    assert store.get(key) is None
    assert len(store.quarantined()) == 1
    assert store.stats()["quarantined_records"] == 1
    outcome = store.gc(max_bytes=None)
    assert outcome["quarantine_reaped"] == 1


def test_torn_chaos_store_writes_are_quarantined_on_read(tmp_path):
    plan = FaultPlan(p_torn_write=1.0, seed=5)
    store = ChaosStore(tmp_path, plan)
    key = "ef" + "4" * 62
    store.put(key, {"kind": "flow", "status": "ok"})
    assert store.torn_keys == [key]
    assert store.get(key) is None
    assert len(store.quarantined()) == 1


# ----------------------------------------------------------------------
# The full campaign: determinism and bit-identical unaffected summaries
# ----------------------------------------------------------------------
def test_chaos_campaign_replays_bit_identically(tmp_path):
    spec = _spec(widths=(8, 10, 12), options=FlowOptions(run_routing=False))
    labels = [p.label() for p in spec.points()]
    plan = FaultPlan.build(
        seed=7,
        p_crash=0.4,
        p_hang=0.3,
        p_oserror=0.3,
        p_torn_write=0.5,
        poison=[labels[0]],
    )
    kwargs = dict(
        timeout_s=60.0, retry=RetryPolicy(max_attempts=3), max_point_crashes=2
    )
    first = run_campaign(spec, plan, store=str(tmp_path / "a"), **kwargs)
    # Crashes, hangs, OSErrors and torn writes all fired, yet the campaign
    # completed, the repeat-killer poisoned out, torn records quarantined,
    # and every surviving summary equals the fault-free baseline.
    assert first["completed"] and first["summaries_match"]
    assert first["statuses"]["poisoned"] == 1
    assert first["injected"]  # at least one fault actually fired
    assert first["torn_keys"] and first["quarantined"] >= len(first["torn_keys"])
    # Deterministic replay: same plan, fresh store, identical trajectory.
    second = run_campaign(spec, plan, store=str(tmp_path / "b"), **kwargs)
    for key in ("statuses", "injected", "faulted_labels", "torn_keys", "plan"):
        assert first[key] == second[key]
    assert FaultPlan.from_dict(plan.to_dict()) == plan
