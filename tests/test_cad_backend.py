"""Tests for placement, routing, timing, configuration generation and the
end-to-end CAD flow."""

import pytest

from repro.cad.bitgen import ConfigurationError, configure_plb, generate_bitstream
from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.lemap import LEFunction, MappedDesign, MappedLE, MappedPDE, MappedPLB
from repro.cad.pack import pack_design
from repro.cad.place import Placement, PlacementError, place_design
from repro.cad.route import RoutingError, route_design
from repro.cad.techmap import template_map
from repro.cad.timing import TimingModel, analyse_timing
from repro.circuits.fulladder import micropipeline_full_adder, qdi_full_adder
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams, PLBParams
from repro.core.plb import PLB
from repro.core.rrgraph import RoutingResourceGraph, RRNodeType
from repro.logic.functions import and_table, c_element_table, or_table


def _packed_qdi():
    design = template_map(qdi_full_adder())
    pack_design(design)
    return design


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
def test_place_design_assigns_all_blocks_and_ios():
    design = _packed_qdi()
    fabric = Fabric(ArchitectureParams(width=4, height=4))
    placement = place_design(design, fabric, seed=3)
    assert len(placement.plb_sites) == len(design.plbs)
    assert len(set(placement.plb_sites.values())) == len(design.plbs)  # no overlap
    io_nets = set(design.primary_inputs) | set(design.primary_outputs)
    assert set(placement.io_sites) == io_nets
    pad_names = [pad.name for pad in placement.io_sites.values()]
    assert len(set(pad_names)) == len(pad_names)  # one pad per IO
    assert placement.cost <= placement.initial_cost or placement.cost >= 0


def test_place_design_deterministic_for_seed():
    design = _packed_qdi()
    fabric = Fabric(ArchitectureParams(width=4, height=4))
    first = place_design(design, fabric, seed=7)
    second = place_design(design, fabric, seed=7)
    assert first.plb_sites == second.plb_sites
    assert {net: pad.name for net, pad in first.io_sites.items()} == {
        net: pad.name for net, pad in second.io_sites.items()
    }


def test_place_design_requires_packing_and_capacity():
    fabric = Fabric(ArchitectureParams(width=1, height=1))
    unpacked = template_map(qdi_full_adder())
    with pytest.raises(PlacementError):
        place_design(unpacked, fabric)
    packed = _packed_qdi()
    with pytest.raises(PlacementError):
        place_design(packed, fabric)  # 3 PLBs cannot fit a 1x1 fabric


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
def test_route_design_success_and_capacity_respected():
    design = _packed_qdi()
    params = ArchitectureParams(width=4, height=4)
    fabric = Fabric(params)
    graph = RoutingResourceGraph(fabric)
    placement = place_design(design, fabric, seed=5)
    result = route_design(design, placement, graph)
    assert result.success
    assert result.routed  # at least the ack / rail nets between PLBs
    occupancy = result.channel_occupancy(graph)
    assert all(count <= 1 for count in occupancy.values())
    assert result.total_wirelength > 0
    # every routed net reaches all of its sinks
    for routed in result.routed.values():
        assert set(routed.sink_nodes).issubset(set(routed.nodes))
        assert routed.source_node in routed.nodes


def test_route_design_narrow_channels_may_fail_gracefully():
    from repro.core.params import RoutingParams

    design = _packed_qdi()
    params = ArchitectureParams(width=2, height=2, routing=RoutingParams(channel_width=2, io_pads_per_side=6))
    fabric = Fabric(params)
    graph = RoutingResourceGraph(fabric)
    placement = place_design(design, fabric, seed=1)
    # With only two tracks and a disjoint switch box (which never changes the
    # track index) some pin pairs are genuinely unreachable, so the router may
    # legitimately raise; otherwise it must either succeed or report overuse.
    try:
        result = route_design(design, placement, graph, max_iterations=3)
    except RoutingError:
        return
    if not result.success:
        assert result.overused_nodes > 0


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
def test_analyse_timing_unrouted_and_routed():
    design = _packed_qdi()
    unrouted = analyse_timing(design)
    assert unrouted.le_levels >= 2
    assert unrouted.forward_latency_ps > 0
    assert unrouted.cycle_time_ps >= 4 * unrouted.forward_latency_ps - 4  # rounding slack

    params = ArchitectureParams(width=4, height=4)
    fabric = Fabric(params)
    graph = RoutingResourceGraph(fabric)
    placement = place_design(design, fabric, seed=2)
    routing = route_design(design, placement, graph)
    routed = analyse_timing(design, routing=routing, graph=graph)
    assert routed.max_net_delay_ps > 0
    assert set(routed.net_delays_ps) == set(routing.routed)


def test_timing_matched_delay_adequacy():
    design = template_map(micropipeline_full_adder())
    pack_design(design)
    report = analyse_timing(design)
    assert design.pdes[0].name in report.matched_delays
    entry = report.matched_delays[design.pdes[0].name]
    assert entry["configured_ps"] == design.pdes[0].delay_ps
    # With the default matched delay and this tiny datapath the assumption holds.
    assert entry["adequate"] == 1

    short = MappedDesign(name="short", params=design.params, style=design.style)
    short.les = design.les
    short.pdes = [MappedPDE(name="pde", input_net="req", output_net="req_d", delay_ps=1)]
    short.primary_inputs = design.primary_inputs
    short.primary_outputs = design.primary_outputs
    bad = analyse_timing(short)
    assert bad.matched_delays["pde"]["adequate"] == 0
    assert bad.notes


def test_timing_model_routed_net_delay():
    params = ArchitectureParams(width=2, height=2)
    graph = RoutingResourceGraph(Fabric(params))
    model = TimingModel()
    wire_ids = [node.node_id for node in graph.nodes if node.node_type is RRNodeType.WIRE][:3]
    delay = model.routed_net_delay(graph, wire_ids)
    assert delay == model.cbox_delay_ps * 2 + 3 * model.wire_segment_delay_ps + 2 * model.switch_delay_ps


# ----------------------------------------------------------------------
# Configuration generation
# ----------------------------------------------------------------------
def test_configure_plb_realises_c_element():
    params = ArchitectureParams()
    table = c_element_table(("a", "b"), state="z").rename({"a": "a", "b": "b"})
    # Build the looped-LUT function explicitly over net names.
    from repro.logic.truthtable import TruthTable

    table = TruthTable.from_function(
        ("a", "b", "z"), lambda a, b, z: 1 if (a and b) else (0 if (not a and not b) else z)
    )
    plb = MappedPLB(
        name="plb0",
        les=[MappedLE("le_c", functions=[LEFunction("z", table)])],
    )
    configured = configure_plb(plb, params)
    hardware = PLB(params.plb)
    hardware.configure(configured.config)
    # replicate C-element behaviour through the configured hardware
    state: dict = {}
    pin_a = configured.input_pin_of_net["a"]
    pin_b = configured.input_pin_of_net["b"]
    out_pin = configured.output_pin_of_net["z"]
    outputs, state = hardware.evaluate({pin_a: 1, pin_b: 1}, state)
    assert outputs[out_pin] == 1
    outputs, state = hardware.evaluate({pin_a: 0, pin_b: 1}, state)
    assert outputs[out_pin] == 1
    outputs, state = hardware.evaluate({pin_a: 0, pin_b: 0}, state)
    assert outputs[out_pin] == 0


def test_configure_plb_rejects_overflow():
    params = ArchitectureParams()
    wide_nets = tuple(f"n{i}" for i in range(params.plb.plb_inputs + 3))
    les = [
        MappedLE(
            f"le{i}",
            functions=[LEFunction(f"o{i}", or_table(inputs=wide_nets[i * 7 : i * 7 + 7]))],
        )
        for i in range(2)
    ]
    plb = MappedPLB(name="too_many_inputs", les=les)
    if len(plb.external_input_nets) > params.plb.plb_inputs:
        with pytest.raises(ConfigurationError):
            configure_plb(plb, params)


def test_configure_plb_pde_range_check():
    params = ArchitectureParams()
    plb = MappedPLB(
        name="plb0",
        les=[],
        pde=MappedPDE(name="pde", input_net="req", output_net="req_d", delay_ps=10 ** 6),
    )
    with pytest.raises(ConfigurationError):
        configure_plb(plb, params)


def test_generate_bitstream_covers_all_plbs():
    design = _packed_qdi()
    params = ArchitectureParams(width=4, height=4)
    fabric = Fabric(params)
    placement = place_design(design, fabric, seed=2)
    bitstream, configured = generate_bitstream(design, placement, params)
    assert set(configured) == {plb.name for plb in design.plbs}
    assert bitstream.used_bits() > 0
    # configured regions correspond to the placed tiles
    for plb in design.plbs:
        x, y = placement.site_of(plb.name)
        assert sum(bitstream.region_bits(f"plb_{x}_{y}")) > 0


# ----------------------------------------------------------------------
# Full flow
# ----------------------------------------------------------------------
def test_cad_flow_end_to_end_qdi():
    flow = CadFlow(ArchitectureParams(width=5, height=5))
    result = flow.run(qdi_full_adder())
    summary = result.summary()
    assert summary["routing_success"] is True
    assert summary["plbs"] == 3
    assert summary["filling_ratio"] > 0.5
    assert result.bitstream is not None and result.bitstream.used_bits() > 0
    assert "CAD flow report" in result.report()


def test_cad_flow_options_allow_mapping_only():
    flow = CadFlow(options=FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False))
    result = flow.run(micropipeline_full_adder())
    assert result.placement is None and result.routing is None and result.bitstream is None
    assert result.filling is not None
    assert result.timing is not None


def test_cad_flow_generic_mapping_option():
    flow = CadFlow(
        ArchitectureParams(width=8, height=8),
        FlowOptions(use_template_mapping=False, run_placement=False, run_routing=False,
                    generate_bitstream=False),
    )
    result = flow.run(qdi_full_adder())
    # The naive gate-level mapping needs far more LEs than the template mapping.
    assert len(result.mapped.les) > 10


def test_cad_flow_accepts_plain_netlists():
    from repro.circuits.fulladder import full_adder_reference_netlist

    flow = CadFlow(options=FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False))
    result = flow.run(full_adder_reference_netlist())
    assert len(result.mapped.les) >= 1
    assert result.filling is not None
