"""Tests for the differential flow fuzzer and its regression corpus."""

import json
from pathlib import Path

import repro.fuzz as fuzz
from repro.fuzz import (
    FuzzConfig,
    FuzzFailure,
    FuzzResult,
    corpus_entry,
    fuzz_campaign,
    netlist_from_dict,
    netlist_to_dict,
    random_netlist,
    replay_corpus,
    run_pipeline,
    shrink,
    write_corpus_entry,
)
from repro.sim.netsim import GateLevelSimulator, evaluate_combinational

CORPUS_DIR = Path(__file__).parent / "corpus"


# ----------------------------------------------------------------------
# Generation and serialization
# ----------------------------------------------------------------------
def test_random_netlist_is_deterministic():
    first = netlist_to_dict(random_netlist(5))
    second = netlist_to_dict(random_netlist(5))
    assert first == second
    assert first != netlist_to_dict(random_netlist(6))


def test_random_netlists_are_acyclic():
    for seed in range(8):
        netlist = random_netlist(seed)
        netlist.topological_order()  # raises on a combinational cycle


def test_netlist_serialization_round_trips():
    netlist = random_netlist(3)
    data = netlist_to_dict(netlist)
    assert netlist_to_dict(netlist_from_dict(data)) == data
    # JSON-safe: survives an actual encode/decode.
    assert netlist_to_dict(netlist_from_dict(json.loads(json.dumps(data)))) == data


# ----------------------------------------------------------------------
# Pipeline smoke: seeded netlists and degenerate topologies
# ----------------------------------------------------------------------
def test_seeded_pipeline_smoke():
    for seed in range(12):
        outcome = run_pipeline(random_netlist(seed), seed=seed)
        assert outcome.ok, f"seed {seed}: {outcome.failure}"


def _pipeline_ok(data):
    outcome = run_pipeline(netlist_from_dict(data), seed=0)
    assert outcome.ok, outcome.failure
    return outcome


def test_single_cell_netlist():
    _pipeline_ok(
        {
            "name": "single",
            "inputs": ["a", "b"],
            "outputs": ["z"],
            "cells": [{"name": "u0", "type": "AND2", "connections": {"a0": "a", "a1": "b", "z": "z"}}],
        }
    )


def test_passthrough_input_as_output():
    _pipeline_ok(
        {
            "name": "passthrough",
            "inputs": ["a", "b"],
            "outputs": ["a", "z"],
            "cells": [{"name": "u0", "type": "AND2", "connections": {"a0": "a", "a1": "b", "z": "z"}}],
        }
    )


def test_constant_function_from_tied_inputs():
    # XOR2 with both pins tied to one net computes the constant 0; the
    # mapper used to crash building a truth table with duplicate inputs.
    _pipeline_ok(
        {
            "name": "tied",
            "inputs": ["a"],
            "outputs": ["z"],
            "cells": [{"name": "u0", "type": "XOR2", "connections": {"a0": "a", "a1": "a", "z": "z"}}],
        }
    )


def test_fanout_free_output_cones():
    _pipeline_ok(
        {
            "name": "cones",
            "inputs": ["a", "b", "c"],
            "outputs": ["p", "q"],
            "cells": [
                {"name": "u0", "type": "MAJ3", "connections": {"a0": "a", "a1": "b", "a2": "c", "z": "p"}},
                {"name": "u1", "type": "NOR3", "connections": {"a0": "a", "a1": "b", "a2": "c", "z": "q"}},
            ],
        }
    )


# ----------------------------------------------------------------------
# Committed corpus replays clean
# ----------------------------------------------------------------------
def test_corpus_replays_clean():
    results = replay_corpus(CORPUS_DIR)
    assert len(results) >= 6
    for path, outcome in results.items():
        assert outcome.ok, f"{path}: {outcome.failure}"


def test_netsim_c_element_livelock_regression():
    # Direct regression for the inertial-collapse fix: a stale same-timestamp
    # C-element evaluation used to schedule a conflicting output event, after
    # which the net oscillated forever (event-limit blowup).
    entry = json.loads(
        (CORPUS_DIR / "equivalence_exception_b9a693ac8b97.json").read_text()
    )
    netlist = netlist_from_dict(entry["netlist"])
    values = evaluate_combinational(netlist, {name: 1 for name in netlist.primary_inputs})
    assert set(values) == set(netlist.primary_outputs)
    simulator = GateLevelSimulator(netlist)
    simulator.initialise()
    simulator.set_inputs({name: 1 for name in netlist.primary_inputs})
    result = simulator.run(max_events=10_000)
    assert result.settled


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def test_shrink_minimises_to_failing_core(monkeypatch):
    # Fake failure oracle: the pipeline "fails" iff an OR3 cell is present.
    def fake_pipeline(netlist, seed=0, config=None, placement_seed=1):
        if any(cell.type_name == "OR3" for cell in netlist.iter_cells()):
            return FuzzResult(failure=FuzzFailure("map", "fake", "OR3 present"), stages_run=["map"])
        return FuzzResult(failure=None, stages_run=["map"])

    monkeypatch.setattr(fuzz, "run_pipeline", fake_pipeline)
    netlist = netlist_from_dict(
        {
            "name": "bloated",
            "inputs": ["a", "b", "c"],
            "outputs": ["z"],
            "cells": [
                {"name": "u0", "type": "AND2", "connections": {"a0": "a", "a1": "b", "z": "n0"}},
                {"name": "u1", "type": "XOR2", "connections": {"a0": "n0", "a1": "c", "z": "n1"}},
                {"name": "u2", "type": "OR3", "connections": {"a0": "n1", "a1": "a", "a2": "b", "z": "z"}},
            ],
        }
    )
    reduced = shrink(netlist, ("map", "fake"))
    types = sorted(cell.type_name for cell in reduced.iter_cells())
    assert types == ["OR3"]


# ----------------------------------------------------------------------
# Campaign driver, corpus writing and the CLI
# ----------------------------------------------------------------------
def test_campaign_smoke_is_clean(tmp_path):
    seen = []
    failures = fuzz_campaign(
        6, seed_base=100, corpus_dir=tmp_path, progress=lambda s, f: seen.append((s, f))
    )
    assert failures == []
    assert [s for s, _ in seen] == list(range(100, 106))
    assert all(f is None for _, f in seen)
    assert list(tmp_path.glob("*.json")) == []


def test_corpus_entry_writes_and_replays(tmp_path):
    config = FuzzConfig()
    netlist = random_netlist(2, config)
    failure = FuzzFailure("route", "invariant", "synthetic example")
    path = write_corpus_entry(tmp_path, corpus_entry(netlist, failure, 2, config))
    assert path.name.startswith("route_invariant_")
    results = replay_corpus(tmp_path)
    assert list(results) == [str(path)]
    assert results[str(path)].ok  # the netlist itself is healthy


def test_cli_run_and_replay(tmp_path, capsys):
    assert fuzz.main(["run", "--count", "3", "--seed-base", "40", "--corpus", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 failure(s)" in out
    assert fuzz.main(["replay", str(CORPUS_DIR)]) == 0
    out = capsys.readouterr().out
    assert "replayed" in out
