"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import BundledDataEncoding, DualRailEncoding, OneOfNEncoding
from repro.core.bitstream import Bitstream, BitstreamBudget
from repro.core.im import InterconnectionMatrix
from repro.core.params import ArchitectureParams
from repro.logic.minimise import minimise_sop, prime_implicants
from repro.logic.truthtable import TruthTable


# ----------------------------------------------------------------------
# Truth tables
# ----------------------------------------------------------------------
@st.composite
def truth_tables(draw, max_inputs: int = 4):
    arity = draw(st.integers(min_value=1, max_value=max_inputs))
    names = tuple(f"v{i}" for i in range(arity))
    bits = tuple(draw(st.lists(st.integers(0, 1), min_size=1 << arity, max_size=1 << arity)))
    return TruthTable(inputs=names, bits=bits)


@given(truth_tables())
@settings(max_examples=60, deadline=None)
def test_cofactor_shannon_expansion(table):
    """f = x ? f_x1 : f_x0 for every input x (Shannon expansion)."""
    for variable in table.inputs:
        positive = table.cofactor(variable, 1)
        negative = table.cofactor(variable, 0)
        for row in range(1 << table.arity):
            assignment = {
                name: (row >> index) & 1 for index, name in enumerate(table.inputs)
            }
            expected = table.evaluate(assignment)
            sub = {k: v for k, v in assignment.items() if k != variable}
            chosen = positive if assignment[variable] else negative
            assert chosen.evaluate(sub) == expected


@given(truth_tables())
@settings(max_examples=60, deadline=None)
def test_extend_inputs_preserves_function(table):
    extended = table.extend_inputs(tuple(table.inputs) + ("extra0", "extra1"))
    for row in range(1 << table.arity):
        assignment = {name: (row >> index) & 1 for index, name in enumerate(table.inputs)}
        assert extended.evaluate({**assignment, "extra0": 1, "extra1": 0}) == table.evaluate(assignment)


@given(truth_tables())
@settings(max_examples=60, deadline=None)
def test_double_negation_and_de_morgan(table):
    assert (~(~table)).bits == table.bits
    other = TruthTable(inputs=table.inputs, bits=tuple(reversed(table.bits)))
    left = ~(table & other)
    right = (~table) | (~other)
    assert left.equivalent(right)


@given(truth_tables(max_inputs=4))
@settings(max_examples=40, deadline=None)
def test_minimised_cover_equals_function(table):
    cover = minimise_sop(table)
    primes = prime_implicants(table)
    for minterm in range(1 << table.arity):
        value = table.bits[minterm]
        covered = any(cube.covers(minterm) for cube in cover)
        assert covered == bool(value)
        # every chosen cube is a prime implicant
    for cube in cover:
        assert cube in primes


@given(truth_tables(), st.data())
@settings(max_examples=60, deadline=None)
def test_compose_matches_direct_substitution(table, data):
    if table.arity < 1:
        return
    target = table.inputs[0]
    inner = data.draw(truth_tables(max_inputs=3))
    inner = inner.rename({name: f"in_{name}" for name in inner.inputs})
    composed = table.compose({target: inner})
    for row in range(1 << len(composed.inputs)):
        assignment = {
            name: (row >> index) & 1 for index, name in enumerate(composed.inputs)
        }
        inner_value = inner.evaluate({name: assignment[name] for name in inner.inputs})
        outer_assignment = {name: assignment.get(name, 0) for name in table.inputs}
        outer_assignment[target] = inner_value
        assert composed.evaluate(assignment) == table.evaluate(outer_assignment)


# ----------------------------------------------------------------------
# Encodings
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=8), st.data())
@settings(max_examples=80, deadline=None)
def test_dual_rail_word_roundtrip_property(width, data):
    value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    enc = DualRailEncoding()
    rails = enc.encode_word(value, width)
    assert enc.decode_word(rails, width) == value
    assert enc.word_is_valid(rails, width)
    # exactly one rail per digit is high
    assert sum(rails) == enc.digits_for_bits(width)


@given(st.sampled_from([2, 3, 4, 8]), st.data())
@settings(max_examples=80, deadline=None)
def test_one_of_n_roundtrip_property(n, data):
    enc = OneOfNEncoding(n)
    value = data.draw(st.integers(min_value=0, max_value=n - 1))
    rails = enc.encode_digit(value)
    assert rails.count(1) == 1
    assert enc.decode_digit(rails) == value


@given(st.integers(min_value=1, max_value=10), st.data())
@settings(max_examples=50, deadline=None)
def test_channel_encode_decode_property(width, data):
    encoding = data.draw(st.sampled_from([DualRailEncoding(), OneOfNEncoding(4), BundledDataEncoding()]))
    channel = Channel("c", width, encoding)
    value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    encoded = channel.encode(value)
    assert set(encoded) == set(channel.data_wires())
    assert channel.decode(encoded) == value
    if encoding.is_delay_insensitive:
        assert channel.decode(channel.neutral()) is None


# ----------------------------------------------------------------------
# Architecture models
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=2, max_value=12),
    st.data(),
)
@settings(max_examples=40, deadline=None)
def test_im_config_vector_roundtrip_property(n_sources, n_destinations, data):
    sources = tuple(f"s{i}" for i in range(n_sources))
    destinations = tuple(f"d{i}" for i in range(n_destinations))
    im = InterconnectionMatrix(sources, destinations)
    routes = data.draw(
        st.dictionaries(st.sampled_from(destinations), st.sampled_from(sources), max_size=n_destinations)
    )
    for destination, source in routes.items():
        im.connect(destination, source)
    bits = im.config_vector()
    decoded = InterconnectionMatrix.decode_config_vector(sources, destinations, bits)
    assert decoded.routes == routes


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_bitstream_roundtrip_property(data):
    params = ArchitectureParams(width=2, height=2)
    budget = BitstreamBudget.for_architecture(params)
    bitstream = Bitstream(budget)
    regions = data.draw(
        st.lists(st.sampled_from([region.name for region in budget.regions]), max_size=5, unique=True)
    )
    for name in regions:
        region = budget.region(name)
        count = data.draw(st.integers(min_value=0, max_value=min(region.bits, 16)))
        bits = data.draw(st.lists(st.integers(0, 1), min_size=count, max_size=count))
        bitstream.set_region(name, bits)
    again = Bitstream.from_bytes(budget, bitstream.to_bytes())
    assert again == bitstream
    assert again.used_bits() == bitstream.used_bits()
