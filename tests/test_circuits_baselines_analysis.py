"""Tests for benchmark circuits, baselines, analysis helpers and the API."""

import pytest

from repro import api
from repro.analysis.area import design_area_report, fabric_area_report, plb_area_estimate
from repro.analysis.figures import render_fabric_floorplan, render_figure1_plb, render_figure2_le
from repro.analysis.tables import format_table
from repro.baselines.compare import compare_with_sync_baseline, prior_art_table
from repro.baselines.priorart import prior_art_fpgas, style_support_matrix, styles_supported_count
from repro.asynclogic.channels import Channel
from repro.baselines.sync_fpga import SyncFPGAParams, map_to_sync_fpga
from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.metrics import filling_ratio
from repro.cad.pack import pack_design
from repro.circuits.adders import micropipeline_ripple_adder, qdi_ripple_adder
from repro.circuits.fifo import wchb_fifo, wchb_ring
from repro.circuits.fulladder import micropipeline_full_adder, qdi_full_adder
from repro.circuits.multiplier import qdi_multiplier
from repro.circuits.registry import build_circuit, circuit_registry
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams
from repro.sim import FourPhaseDualRailProducer, FourPhaseDualRailConsumer, GateLevelSimulator, HandshakeHarness
from repro.styles.base import LogicStyle


# ----------------------------------------------------------------------
# Adders
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bits", [1, 2, 4])
def test_qdi_ripple_adder_structure(bits):
    adder = qdi_ripple_adder(bits)
    assert adder.style is LogicStyle.QDI_DUAL_RAIL
    assert adder.mapped.validate() == []
    # 5 LEs per slice plus an acknowledge tree of (bits - 1) C-element LEs.
    assert len(adder.mapped.les) == 5 * bits + max(0, bits - 1)
    pack_design(adder.mapped)
    report = filling_ratio(adder.mapped)
    assert report.per_le > 0.5


def test_qdi_ripple_adder_functional_via_lesim():
    from repro.asynclogic.channels import Channel
    from repro.asynclogic.encodings import DualRailEncoding
    from repro.sim.lesim import simulate_mapped_design
    from repro.sim.handshake import PassiveDualRailConsumer

    bits = 2
    adder = qdi_ripple_adder(bits)
    ack_net = adder.metadata["ack_net"]
    simulator = simulate_mapped_design(adder.mapped)
    vectors = [(1, 2, 0), (3, 3, 1), (0, 0, 0), (2, 1, 1)]
    producers = []
    for index, channel_prefix in enumerate(("a", "b")):
        for bit in range(bits):
            channel = Channel(f"{channel_prefix}{bit}", 1, DualRailEncoding())
            values = [(vector[index] >> bit) & 1 for vector in vectors]
            producers.append(FourPhaseDualRailProducer(channel, values, ack_net))
    cin = Channel("c0", 1, DualRailEncoding())
    producers.append(FourPhaseDualRailProducer(cin, [v[2] for v in vectors], ack_net))
    sum_consumers = [
        PassiveDualRailConsumer(Channel(f"s{bit}", 1, DualRailEncoding()), ack_net) for bit in range(bits)
    ]
    cout_consumer = PassiveDualRailConsumer(Channel(f"c{bits}", 1, DualRailEncoding()), ack_net)
    HandshakeHarness(simulator, producers + sum_consumers + [cout_consumer]).run()
    for vector_index, (a, b, c) in enumerate(vectors):
        total = a + b + c
        for bit in range(bits):
            assert sum_consumers[bit].received[vector_index] == (total >> bit) & 1
        assert cout_consumer.received[vector_index] == (total >> bits) & 1


@pytest.mark.parametrize("bits", [1, 2, 4, 8])
def test_micropipeline_ripple_adder_structure(bits):
    adder = micropipeline_ripple_adder(bits)
    assert adder.mapped.validate() == []
    assert len(adder.mapped.pdes) == 1
    assert adder.mapped.pdes[0].delay_ps >= 150 * bits
    pack_design(adder.mapped)
    report = filling_ratio(adder.mapped)
    assert 0.3 < report.per_le < 0.8


def test_micropipeline_ripple_adder_functional():
    from repro.sim.lesim import simulate_mapped_design
    from repro.sim import FourPhaseBundledProducer, FourPhaseBundledConsumer

    bits = 3
    adder = micropipeline_ripple_adder(bits)
    input_channel = adder.metadata["input_channel"]
    output_channel = adder.metadata["output_channel"]
    simulator = simulate_mapped_design(adder.mapped)
    vectors = [(5, 2, 1), (7, 7, 1), (0, 0, 0), (3, 4, 0)]
    encoded = [a | (b << bits) | (c << (2 * bits)) for a, b, c in vectors]
    producer = FourPhaseBundledProducer(input_channel, encoded, input_channel.ack_wire)
    consumer = FourPhaseBundledConsumer(output_channel, output_channel.req_wire, output_channel.ack_wire)
    HandshakeHarness(simulator, [producer, consumer]).run()
    assert consumer.received == [a + b + c for a, b, c in vectors]


def test_adder_argument_validation():
    with pytest.raises(ValueError):
        qdi_ripple_adder(0)
    with pytest.raises(ValueError):
        micropipeline_ripple_adder(0)
    with pytest.raises(ValueError):
        qdi_ripple_adder(2, encoding="9-rail")


# ----------------------------------------------------------------------
# Multiplier / FIFO / ring
# ----------------------------------------------------------------------
def test_qdi_multiplier_functional():
    circuit = qdi_multiplier(2)
    from repro.sim.handshake import PassiveDualRailConsumer

    simulator = GateLevelSimulator(circuit.netlist)
    vectors = [(3, 2), (1, 3), (0, 2), (3, 3)]
    producers = [
        FourPhaseDualRailProducer(circuit.channel("a"), [a for a, _ in vectors], "ack"),
        FourPhaseDualRailProducer(circuit.channel("b"), [b for _, b in vectors], "ack"),
    ]
    bit_consumers = [PassiveDualRailConsumer(circuit.channel(f"p{i}"), "ack") for i in range(4)]
    HandshakeHarness(simulator, producers + bit_consumers).run()
    for index, (a, b) in enumerate(vectors):
        product = a * b
        value = sum(bit_consumers[i].received[index] << i for i in range(4))
        assert value == product


def test_qdi_multiplier_4x4_composed_functional():
    from repro.asynclogic.encodings import DualRailEncoding
    from repro.circuits.multiplier import qdi_multiplier_4x4
    from repro.sim.handshake import PassiveDualRailConsumer
    from repro.sim.lesim import simulate_mapped_design

    bench = qdi_multiplier_4x4()
    assert bench.mapped.validate() == []
    simulator = simulate_mapped_design(bench.mapped)
    vectors = [(15, 15), (9, 13), (0, 7), (5, 11)]
    ack = bench.metadata["ack_net"]
    enc = DualRailEncoding()
    producers = [
        FourPhaseDualRailProducer(Channel("al", 2, enc), [a & 3 for a, _ in vectors], ack),
        FourPhaseDualRailProducer(Channel("ah", 2, enc), [a >> 2 for a, _ in vectors], ack),
        FourPhaseDualRailProducer(Channel("bl", 2, enc), [b & 3 for _, b in vectors], ack),
        FourPhaseDualRailProducer(Channel("bh", 2, enc), [b >> 2 for _, b in vectors], ack),
    ]
    consumers = [
        PassiveDualRailConsumer(Channel(name, 1, enc), ack)
        for name in bench.metadata["product_channels"]
    ]
    HandshakeHarness(simulator, producers + consumers).run()
    for index, (a, b) in enumerate(vectors):
        product = sum(consumers[bit].received[index] << bit for bit in range(8))
        assert product == a * b


def test_qdi_multiplier_limits():
    with pytest.raises(ValueError):
        qdi_multiplier(4)
    with pytest.raises(ValueError):
        qdi_multiplier(0)
    with pytest.raises(ValueError):
        qdi_multiplier(2, encoding="gray")


def test_wchb_fifo_and_ring_structure():
    fifo = wchb_fifo(5, width_bits=2)
    assert fifo.metadata["stages"] == 5
    ring = wchb_ring(4)
    assert ring.metadata["ring"] is True
    assert ring.netlist.cell_count("C2") >= 4
    with pytest.raises(ValueError):
        wchb_ring(2)


def test_circuit_registry():
    registry = circuit_registry()
    assert "qdi_full_adder" in registry
    assert "qdi_ripple_adder_4" in registry
    # Both multipliers are registered as mappable workloads: decomposition
    # handles their wide rail functions on the default LE.
    assert "qdi_multiplier_2x2" in registry
    assert "qdi_multiplier_4x4" in registry
    circuit = build_circuit("micropipeline_full_adder")
    assert circuit.style is LogicStyle.MICROPIPELINE
    with pytest.raises(KeyError):
        build_circuit("does_not_exist")


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def test_sync_baseline_mapping_shows_overhead():
    qdi = qdi_full_adder()
    result = map_to_sync_fpga(qdi.netlist)
    assert result.luts_used > 10            # versus 5 LEs on the paper's fabric
    assert result.feedback_luts >= 8        # every DIMS C-element needs a looped LUT
    assert result.wasted_flip_flops > 0
    assert 0 < result.lut_input_utilisation <= 1
    row = result.as_row()
    assert row["luts"] == result.luts_used


def test_sync_baseline_counts_delay_emulation():
    mp = micropipeline_full_adder()
    result = map_to_sync_fpga(mp.netlist)
    assert any("matched delays" in note for note in result.notes)
    params = SyncFPGAParams()
    assert result.config_bits_used == result.clbs_used * params.clb_config_bits


def test_prior_art_matrix():
    fpgas = prior_art_fpgas()
    assert len(fpgas) == 6
    matrix = style_support_matrix()
    ours = matrix["Multi-style (this paper)"]
    assert all(ours.values())  # the paper's architecture supports every style
    counts = styles_supported_count()
    assert counts["Multi-style (this paper)"] == max(counts.values())
    assert counts["PGA-STC"] < counts["Multi-style (this paper)"]
    rows = prior_art_table()
    assert len(rows) == 6
    assert all("styles_supported" in row for row in rows)


def test_compare_with_sync_baseline_rows():
    rows = compare_with_sync_baseline([qdi_full_adder(), micropipeline_full_adder()])
    assert len(rows) == 2
    for row in rows:
        assert row["sync_luts"] > row["async_les"]
        assert row["lut_per_le_ratio"] > 1


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
def test_area_reports():
    plb = plb_area_estimate()
    assert plb["plb_config_bits"] == ArchitectureParams().plb.config_bits
    assert plb["plb_transistor_estimate"] > plb["plb_config_bits"]
    fabric = fabric_area_report(ArchitectureParams(width=3, height=3))
    assert fabric["plb_count"] == 9
    assert fabric["config_bits_total"] == fabric["config_bits_logic"] + fabric["config_bits_routing"]
    design = api.map_full_adder("qdi", options=FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False)).mapped
    report = design_area_report(design)
    assert report["les_used"] == 5
    assert report["plbs_used"] == 3


def test_figure_renderings_mention_parameters():
    fig2 = render_figure2_le()
    assert "LUT7-3" in fig2 and "LUT2" in fig2
    fig1 = render_figure1_plb()
    assert "Interconnection Matrix" in fig1 and "PDE" in fig1
    flow = CadFlow(ArchitectureParams(width=4, height=4))
    result = flow.run(qdi_full_adder())
    floorplan = render_fabric_floorplan(flow.fabric, result.placement)
    assert "4x4" in floorplan
    assert "plb0" in floorplan


def test_format_table():
    rows = [{"a": 1, "b": 0.5}, {"a": 22, "b": 1.25}]
    text = format_table(rows)
    assert "a" in text and "22" in text and "1.250" in text
    assert format_table([]) == "(no rows)"


# ----------------------------------------------------------------------
# High-level API
# ----------------------------------------------------------------------
def test_api_map_full_adder_styles():
    options = FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False)
    qdi = api.map_full_adder("qdi", options=options)
    mp = api.map_full_adder("micropipeline", options=options)
    one_of_four = api.map_full_adder("1-of-4", options=options)
    assert qdi.filling.per_le > mp.filling.per_le
    assert one_of_four.mapped.style is LogicStyle.QDI_ONE_OF_FOUR
    with pytest.raises(ValueError):
        api.map_full_adder("synchronous")


def test_api_reproduce_filling_ratios_table():
    rows = api.reproduce_filling_ratios()
    by_style = {row["style"]: row for row in rows}
    assert by_style["qdi-dual-rail"]["paper_filling_ratio"] == 0.76
    assert by_style["micropipeline"]["paper_filling_ratio"] == 0.51
    assert by_style["qdi-dual-rail"]["measured_filling_ratio"] > by_style["micropipeline"]["measured_filling_ratio"]


def test_api_simulate_circuit():
    assert api.simulate_circuit("qdi").correct
    assert api.simulate_circuit("micropipeline", use_mapped=True).correct
    outcome = api.simulate_circuit("qdi", vectors=[(1, 1, 1)], use_mapped=True)
    assert outcome.sums == [1] and outcome.carries == [1]
    with pytest.raises(ValueError):
        api.simulate_circuit("rtl")
