"""Tests for the architecture parameters, LUT models and the Logic Element."""

import pytest

from repro.core.le import LEConfig, LogicElement, ValiditySource, VALIDITY_SOURCE_INPUT, VALIDITY_SOURCE_LUT_OUTPUT
from repro.core.lut import LUT, MultiOutputLUT, pin_names
from repro.core.params import ArchitectureParams, LEParams, PLBParams, RoutingParams
from repro.logic.functions import and_table, c_element_table, or_table, xor_table
from repro.logic.truthtable import TruthTable


# ----------------------------------------------------------------------
# Parameters
# ----------------------------------------------------------------------
def test_default_le_matches_paper():
    le = LEParams()
    assert le.lut_inputs == 7
    assert le.lut_outputs == 3
    assert le.validity_lut_inputs == 2
    assert le.lut_config_bits == 3 * 128
    assert le.validity_lut_config_bits == 4
    assert le.total_inputs == 9 and le.total_outputs == 4
    assert le.config_bits == le.lut_config_bits + le.validity_lut_config_bits + le.validity_selector_bits


def test_default_plb_matches_paper():
    plb = PLBParams()
    assert plb.les_per_plb == 2
    assert plb.pde_taps >= 2
    assert plb.im_sources == plb.plb_inputs + 2 * 4 + 1
    assert plb.im_destinations == 2 * 9 + 1 + plb.plb_outputs
    assert plb.config_bits == 2 * plb.le.config_bits + plb.pde_config_bits + plb.im_config_bits


def test_architecture_counts_and_scaling():
    params = ArchitectureParams(width=4, height=5)
    assert params.plb_count == 20
    assert params.le_count == 40
    assert params.io_pad_count == 2 * (4 + 5) * params.routing.io_pads_per_side
    scaled = params.scaled(8, 8)
    assert scaled.plb_count == 64
    assert scaled.plb is params.plb


def test_parameter_validation():
    with pytest.raises(ValueError):
        LEParams(lut_inputs=0)
    with pytest.raises(ValueError):
        PLBParams(les_per_plb=0)
    with pytest.raises(ValueError):
        ArchitectureParams(width=0)
    with pytest.raises(ValueError):
        RoutingParams(fc_in=0.0)
    with pytest.raises(ValueError):
        RoutingParams(switchbox="magic")


def test_routing_tracks_per_pin():
    routing = RoutingParams(channel_width=8, fc_in=0.5)
    assert routing.tracks_per_pin(routing.fc_in) == 4
    assert routing.tracks_per_pin(0.01) == 1


# ----------------------------------------------------------------------
# LUT models
# ----------------------------------------------------------------------
def test_lut_configure_and_evaluate():
    lut = LUT(4)
    assert lut.pins == pin_names(4)
    assert lut.config_bits == 16
    table = and_table(inputs=("i0", "i1"))
    lut.configure(table)
    assert lut.configured
    assert lut.evaluate({"i0": 1, "i1": 1}) == 1
    assert lut.evaluate({"i0": 1, "i1": 0, "i2": 1, "i3": 1}) == 0
    assert lut.used_pins() == ("i0", "i1")
    assert len(lut.config_vector()) == 16
    lut.clear()
    assert lut.evaluate({"i0": 1, "i1": 1}) == 0
    assert lut.config_vector() == tuple([0] * 16)


def test_lut_rejects_foreign_pins():
    lut = LUT(3)
    with pytest.raises(ValueError):
        lut.configure(and_table(inputs=("a", "b")))


def test_lut_pin_prefix():
    lut = LUT(2, pin_prefix="v")
    assert lut.pins == ("v0", "v1")
    lut.configure(or_table(inputs=("v0", "v1")))
    assert lut.evaluate({"v0": 0, "v1": 1}) == 1


def test_multi_output_lut():
    mlut = MultiOutputLUT(7, 3)
    assert mlut.config_bits == 3 * 128
    assert mlut.output_names == ("o0", "o1", "o2")
    mlut.configure([xor_table(inputs=("i0", "i1", "i2")), and_table(inputs=("i0", "i3"))])
    values = {f"i{index}": 1 for index in range(7)}
    assert mlut.evaluate(values) == (1, 1, 0)
    assert mlut.used_outputs() == 2
    assert set(mlut.used_pins()) == {"i0", "i1", "i2", "i3"}
    assert len(mlut.config_vector()) == 3 * 128
    with pytest.raises(IndexError):
        mlut.configure_output(5, and_table(inputs=("i0", "i1")))
    with pytest.raises(ValueError):
        mlut.configure([None] * 4)


# ----------------------------------------------------------------------
# Logic Element
# ----------------------------------------------------------------------
def test_le_figure2_structure():
    le = LogicElement()
    assert le.input_pins == tuple(f"i{index}" for index in range(7))
    assert le.validity_pins == ("v0", "v1")
    assert le.output_names == ("o0", "o1", "o2", "ov")
    assert le.config_bits == LEParams().config_bits


def test_le_configure_and_evaluate_with_validity_from_lut_outputs():
    le = LogicElement()
    config = LEConfig(
        lut_tables=[
            xor_table(inputs=("i0", "i1", "i2")),
            and_table(inputs=("i0", "i1")),
            None,
        ],
        validity_table=or_table(inputs=("v0", "v1")),
        validity_sources=(
            ValiditySource(VALIDITY_SOURCE_LUT_OUTPUT, 0),
            ValiditySource(VALIDITY_SOURCE_LUT_OUTPUT, 1),
        ),
    )
    le.configure(config)
    outputs = le.evaluate({"i0": 1, "i1": 0, "i2": 0})
    assert outputs["o0"] == 1 and outputs["o1"] == 0
    assert outputs["ov"] == 1  # o0 | o1
    outputs = le.evaluate({"i0": 0, "i1": 0, "i2": 0})
    assert outputs["ov"] == 0


def test_le_validity_from_le_inputs():
    le = LogicElement()
    config = LEConfig(
        lut_tables=[and_table(inputs=("i0", "i1")), None, None],
        validity_table=or_table(inputs=("v0", "v1")),
        validity_sources=(
            ValiditySource(VALIDITY_SOURCE_INPUT, 3),
            ValiditySource(VALIDITY_SOURCE_INPUT, 4),
        ),
    )
    le.configure(config)
    outputs = le.evaluate({"i0": 0, "i1": 0, "i3": 1, "i4": 0})
    assert outputs["ov"] == 1


def test_le_validity_pins_driven_directly():
    le = LogicElement()
    le.configure(LEConfig(lut_tables=[None, None, None], validity_table=or_table(inputs=("v0", "v1"))))
    outputs = le.evaluate({"v0": 1, "v1": 0})
    assert outputs["ov"] == 1


def test_le_utilisation_counts():
    le = LogicElement()
    le.configure(
        LEConfig(
            lut_tables=[c_element_table(("i0", "i1"), state="i2"), None, None],
            validity_table=or_table(inputs=("v0", "v1")),
        )
    )
    usage = le.utilisation()
    assert usage["lut_inputs_used"] == 3
    assert usage["lut_outputs_used"] == 1
    assert usage["validity_outputs_used"] == 1
    assert len(le.config_vector()) == le.config_bits


def test_le_config_rejects_wrong_source_count():
    le = LogicElement()
    with pytest.raises(ValueError):
        le.configure(
            LEConfig(
                lut_tables=[None, None, None],
                validity_sources=(ValiditySource(VALIDITY_SOURCE_INPUT, 0),),
            )
        )


def test_validity_source_validation():
    with pytest.raises(ValueError):
        ValiditySource("bogus", 0)
    with pytest.raises(ValueError):
        ValiditySource(VALIDITY_SOURCE_INPUT, -1)
