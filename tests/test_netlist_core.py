"""Unit tests for the netlist substrate: cell types, netlist, builder."""

import pytest

from repro.logic.functions import and_table
from repro.netlist.celltypes import CellType, Library, STANDARD_LIBRARY, standard_library
from repro.netlist.netlist import Netlist, PortDirection, merge_netlists
from repro.netlist.builder import NetlistBuilder


# ----------------------------------------------------------------------
# Cell types / library
# ----------------------------------------------------------------------
def test_standard_library_contents():
    library = standard_library()
    for name in ("INV", "BUF", "AND2", "OR2", "XOR2", "XOR3", "MAJ3", "MUX2",
                 "C2", "C3", "C2R", "LATCH", "SRLATCH", "DELAY"):
        assert name in library, name
    assert library.get("C2").is_sequential
    assert library.get("LATCH").is_sequential
    assert not library.get("AND2").is_sequential
    assert {cell.name for cell in library.sequential_cells()} >= {"C2", "C3", "LATCH"}


def test_cell_type_validation():
    with pytest.raises(ValueError):
        CellType(name="BROKEN", inputs=("a",), outputs=("z",), tables={})
    with pytest.raises(ValueError):
        CellType(
            name="BROKEN2",
            inputs=("a",),
            outputs=("z",),
            tables={"z": and_table(inputs=("a", "b"))},  # 'b' is not a pin
        )


def test_library_duplicate_and_lookup():
    library = Library(name="test")
    cell = CellType(name="X", inputs=("a",), outputs=("z",), tables={"z": and_table(inputs=("a",))})
    library.add(cell)
    with pytest.raises(ValueError):
        library.add(cell)
    with pytest.raises(KeyError):
        library.get("UNKNOWN")
    assert "X" in library


def test_c2_uses_state():
    c2 = STANDARD_LIBRARY.get("C2")
    assert c2.uses_state("z")
    assert not STANDARD_LIBRARY.get("AND2").uses_state("z")


# ----------------------------------------------------------------------
# Netlist
# ----------------------------------------------------------------------
def _half_adder() -> Netlist:
    builder = NetlistBuilder("half_adder")
    a, b = builder.inputs("a", "b")
    builder.xor2(a, b, out="s")
    builder.and2(a, b, out="c")
    builder.outputs("s", "c")
    return builder.build()


def test_ports_and_stats():
    netlist = _half_adder()
    assert netlist.primary_inputs == ["a", "b"]
    assert netlist.primary_outputs == ["s", "c"]
    stats = netlist.stats()
    assert stats["cells"] == 2
    assert stats["sequential_cells"] == 0
    assert stats["histogram"] == {"AND2": 1, "XOR2": 1}


def test_single_driver_enforced():
    netlist = _half_adder()
    with pytest.raises(ValueError):
        netlist.add_cell("bad", "AND2", {"a0": "a", "a1": "b", "z": "s"})


def test_primary_input_cannot_be_driven():
    netlist = _half_adder()
    with pytest.raises(ValueError):
        netlist.add_cell("bad", "AND2", {"a0": "s", "a1": "c", "z": "a"})


def test_unconnected_pins_rejected():
    netlist = Netlist("n")
    with pytest.raises(ValueError):
        netlist.add_cell("g", "AND2", {"a0": "x", "z": "y"})


def test_unknown_pins_rejected():
    netlist = Netlist("n")
    with pytest.raises(ValueError):
        netlist.add_cell("g", "INV", {"a": "x", "zz": "y", "z": "w"})


def test_duplicate_cell_name_rejected():
    netlist = _half_adder()
    first = next(iter(netlist.cells))
    with pytest.raises(ValueError):
        netlist.add_cell(first, "INV", {"a": "a", "z": "fresh"})


def test_driver_and_sinks_queries():
    netlist = _half_adder()
    driver = netlist.driver_of("s")
    assert driver is not None and driver[0].type_name == "XOR2"
    assert netlist.driver_of("a") is None
    sinks = netlist.sinks_of("a")
    assert len(sinks) == 2


def test_fanin_fanout():
    netlist = _half_adder()
    xor_cell = [cell for cell in netlist.iter_cells() if cell.type_name == "XOR2"][0]
    assert netlist.fanin_cells(xor_cell) == []
    assert netlist.fanout_cells(xor_cell) == []


def test_topological_order_and_loop_detection():
    netlist = _half_adder()
    order = [cell.type_name for cell in netlist.topological_order()]
    assert sorted(order) == ["AND2", "XOR2"]

    # A purely combinational loop must be detected.
    looped = Netlist("loop")
    looped.add_port("i", PortDirection.INPUT)
    looped.add_cell("g1", "AND2", {"a0": "i", "a1": "w2", "z": "w1"})
    looped.add_cell("g2", "BUF", {"a": "w1", "z": "w2"})
    with pytest.raises(ValueError):
        looped.topological_order()


def test_sequential_feedback_loop_is_allowed():
    netlist = Netlist("celoop")
    netlist.add_port("a", PortDirection.INPUT)
    netlist.add_port("z", PortDirection.OUTPUT)
    netlist.add_cell("c", "C2", {"a0": "a", "a1": "z", "z": "z"})
    # The loop goes through a sequential cell, so ordering succeeds.
    assert len(netlist.topological_order()) == 1


def test_remove_cell():
    netlist = _half_adder()
    name = [cell.name for cell in netlist.iter_cells() if cell.type_name == "AND2"][0]
    netlist.remove_cell(name)
    assert netlist.cell_count("AND2") == 0
    assert netlist.net("c").driver is None


def test_copy_is_independent():
    netlist = _half_adder()
    clone = netlist.copy("clone")
    assert clone.stats()["cells"] == 2
    clone.remove_cell(next(iter(clone.cells)))
    assert netlist.stats()["cells"] == 2


def test_total_area_positive():
    assert _half_adder().total_area() > 0


def test_merge_netlists_shares_nets():
    first = NetlistBuilder("f")
    a, b = first.inputs("a", "b")
    first.and2(a, b, out="mid", name="g_and")
    first.output("mid")
    second = NetlistBuilder("g")
    second.input("mid")
    second.inv("mid", out="out", name="g_inv")
    second.output("out")
    merged = merge_netlists("merged", [first.build(), second.build()])
    assert "mid" in merged.nets
    assert merged.net("mid").driver is not None
    assert "out" in merged.primary_outputs
    # 'mid' is driven by part one, so it must not be a primary input.
    assert "mid" not in merged.primary_inputs


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def test_builder_auto_names_are_unique():
    builder = NetlistBuilder("t")
    a, b = builder.inputs("a", "b")
    nets = {builder.and2(a, b) for _ in range(5)}
    assert len(nets) == 5


def test_builder_gate_arity_check():
    builder = NetlistBuilder("t")
    a = builder.input("a")
    with pytest.raises(ValueError):
        builder.gate("AND2", [a])


def test_builder_or_tree_and_c_tree():
    builder = NetlistBuilder("t")
    inputs = builder.inputs("a", "b", "c", "d", "e")
    out = builder.or_tree(inputs, out="any")
    assert out == "any"
    cout = builder.c_tree(inputs[:3], out="call")
    assert cout == "call"
    netlist = builder.build()
    assert netlist.cell_count("OR2") >= 4
    assert netlist.cell_count("C2") >= 2
    with pytest.raises(ValueError):
        builder.or_tree([])
