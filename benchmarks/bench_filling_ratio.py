"""EXP-FR -- Section 5 headline: filling ratios of the two full adders.

Paper: "an overall filling ratio of 51% for the micropipeline circuits and
76% for the QDI circuits".  This bench regenerates the comparison table
(measured vs paper) and asserts the shape: QDI fills the logic elements
substantially better than micropipeline.
"""

from repro import api
from repro.analysis.tables import format_table


def test_filling_ratio_headline(benchmark):
    rows = benchmark.pedantic(api.reproduce_filling_ratios, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    by_style = {row["style"]: row for row in rows}
    qdi = by_style["qdi-dual-rail"]["measured_filling_ratio"]
    mp = by_style["micropipeline"]["measured_filling_ratio"]
    assert qdi > mp, "QDI must fill the LEs better than micropipeline (paper: 76% vs 51%)"
    assert qdi / mp > 1.15
    # Absolute values stay in the neighbourhood of the paper's numbers.
    assert 0.55 <= qdi <= 0.90
    assert 0.40 <= mp <= 0.65
