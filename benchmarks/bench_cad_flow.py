"""EXP-EXT4 -- CAD flow cost and quality scaling, plus the perf harness.

Two entry points share the instrumented flow runner below:

* **pytest-benchmark tests** (``test_*``): runtime-quality behaviour of the
  packer, placer and router as the design grows (QDI ripple adders of
  increasing width on a fabric sized to fit).
* **``python benchmarks/bench_cad_flow.py``**: the machine-readable perf
  harness.  It emits ``BENCH_cad.json`` — per-stage wall-clock, placement
  moves/sec, per-net cost evaluations saved by the incremental placer, nets
  re-routed per PathFinder iteration, A* node-pop reduction versus plain
  Dijkstra, and the timing-driven flow's cycle time and wall-clock versus
  the baseline flow — and, with ``--check-floor``, fails when placement
  move-throughput regresses more than ``regression_factor``× below the
  checked-in floor (``benchmarks/perf_floor.json``), the incremental
  placer's evaluation reduction drops under ``min_eval_reduction``, the A*
  router stops popping fewer nodes than Dijkstra on the largest fabric
  (``min_astar_pop_reduction``), the timing-driven flow's throughput on
  the largest design falls more than ``regression_factor``× below
  ``timing_driven_flows_per_s``, the router's serial wall-clock on the
  largest design exceeds ``router_route_s`` by more than the same factor,
  or the net-parallel router stops forming groups (``min_parallel_groups``).

Schema 4 extensions: ``--kernel {auto,python,numpy}`` selects the compute
backend (recorded per document and per record; both backends are
bit-identical, only speed differs), the place and serial-route stages are
timed **best-of-N** (``--rounds``, deterministic reruns — the minimum
filters out scheduler noise that otherwise swamps a 3× speedup), the route
stage is timed with ``parallel=False`` so kernel comparisons are not
confounded by group/replay overhead (a separate single parallel route
records ``parallel_groups`` / ``conflict_replays`` and asserts tree parity
with the serial router), and registry circuits (``qdi_multiplier_2x2``)
join the generated specs as full-flow records.  ``perf_floor.json`` may
carry per-kernel overrides under a ``"kernels"`` key so CI can ratchet the
numpy legs ~3× above the pure-python floors.
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.analysis.tables import format_table
from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.lemap import MappedDesign
from repro.cad.pack import pack_design
from repro.cad.place import place_design
from repro.cad.route import route_design
from repro.circuits.adders import qdi_ripple_adder
from repro.cad.kernels import resolve_kernel
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams, RoutingParams
from repro.core.rrgraph import cached_rr_graph

WIDTHS = (1, 2, 4)
HARNESS_WIDTHS = (1, 2, 4, 8)
#: Generator-family circuits the harness runs end to end (bitgen included)
#: on their recommended fabrics, alongside the adder ladder.
GENERATED_SPECS = ("gen:mult8x8@micropipeline",)
#: Registry circuits the harness runs as full flows — the multiplier is the
#: net-parallel router's acceptance bench (dirty-net count clears the
#: grouping threshold, so ``parallel_groups`` must come back nonzero).
REGISTRY_CIRCUITS = ("qdi_multiplier_2x2",)
BENCH_SCHEMA = 4
#: Deterministic stage reruns per timing measurement; the minimum is kept.
TIMING_ROUNDS = 5
DEFAULT_FLOOR_FILE = Path(__file__).with_name("perf_floor.json")


def _best_of(run, rounds: int):
    """``(result, seconds)`` of *run*, timed as the best of *rounds* calls.

    Every stage measured this way is deterministic (same seed, immutable
    graph), so each rerun returns a bit-identical result and the minimum
    wall-clock is an honest estimate with scheduler noise filtered out.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, int(rounds))):
        t0 = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return result, best


def instrumented_flow(
    bits: int, seed: int = 1, kernel: str = "python", rounds: int = TIMING_ROUNDS
) -> dict[str, object]:
    """Pack, place and route one synthetic adder, timing each stage.

    Returns a flat record of the stage wall-clocks plus the incremental
    placer/router counters — the unit of ``BENCH_cad.json``.  The place and
    route stages run under *kernel* and are timed best-of-*rounds*; the
    route stage is serial (``parallel=False``) so kernels compare cleanly,
    with a separate parallel route recording the grouping counters.
    """
    adder = qdi_ripple_adder(bits)
    design: MappedDesign = adder.mapped

    t0 = time.perf_counter()
    pack_design(design)
    t1 = time.perf_counter()

    side = max(4, int(len(design.plbs) ** 0.5) + 2)
    params = ArchitectureParams(
        width=side, height=side, routing=RoutingParams(channel_width=10, io_pads_per_side=6)
    )
    fabric = Fabric(params)
    graph = cached_rr_graph(fabric)

    placement, place_s = _best_of(
        lambda: place_design(design, fabric, seed=seed, kernel=kernel), rounds
    )
    routing, route_s = _best_of(
        lambda: route_design(design, placement, graph, kernel=kernel, parallel=False),
        rounds,
    )

    # Grouped routing: counters + bit-identity against the serial trees.
    t4 = time.perf_counter()
    parallel_routing = route_design(design, placement, graph, kernel=kernel, parallel=True)
    t5 = time.perf_counter()

    # A* counter reference: the identical route with the lower bound off.
    dijkstra = route_design(
        design, placement, graph, kernel=kernel, astar=False, parallel=False
    )
    t6 = time.perf_counter()

    # Timing quality + wall-clock: the full flow, baseline vs timing-driven.
    flow_options = dict(generate_bitstream=False, kernel=kernel)
    t7 = time.perf_counter()
    baseline_flow = CadFlow(params, FlowOptions(**flow_options)).run(adder)
    t8 = time.perf_counter()
    timing_flow = CadFlow(params, FlowOptions(timing_driven=True, **flow_options)).run(adder)
    t9 = time.perf_counter()
    baseline_s = t8 - t7
    timing_s = t9 - t8
    full_equiv_evals = placement.iterations * placement.net_count
    return {
        "name": f"qdi_ripple_adder_{bits}",
        "bits": bits,
        "grid": f"{side}x{side}",
        "les": len(design.les),
        "plbs": len(design.plbs),
        "kernel": kernel,
        "timing_rounds": max(1, int(rounds)),
        "stages_s": {
            "pack": round(t1 - t0, 6),
            "place": round(place_s, 6),
            "route": round(route_s, 6),
            "route_parallel": round(t5 - t4, 6),
        },
        "placement": {
            "cost": round(placement.cost, 1),
            "moves": placement.iterations,
            "moves_accepted": placement.moves_accepted,
            "moves_per_s": round(placement.iterations / place_s, 1) if place_s > 0 else 0.0,
            "net_count": placement.net_count,
            "net_evals": placement.net_evaluations,
            "full_recompute_evals": full_equiv_evals,
            "eval_reduction": (
                round(full_equiv_evals / placement.net_evaluations, 2)
                if placement.net_evaluations
                else 0.0
            ),
        },
        "routing": {
            "success": routing.success,
            "nets": len(routing.routed),
            "iterations": routing.iterations,
            "reroutes_per_iteration": list(routing.reroutes_per_iteration),
            "total_reroutes": routing.total_reroutes,
            "full_reroute_equiv": routing.iterations * len(routing.routed),
            "wirelength": routing.total_wirelength,
            "parallel_groups": parallel_routing.parallel_groups,
            "conflict_replays": parallel_routing.conflict_replays,
            "parallel_parity": parallel_routing.routed == routing.routed,
        },
        "astar": {
            "pops": routing.node_pops,
            "dijkstra_pops": dijkstra.node_pops,
            "pop_reduction": (
                round(dijkstra.node_pops / routing.node_pops, 2)
                if routing.node_pops
                else 0.0
            ),
            "dijkstra_route_s": round(t6 - t5, 6),
            "parity": routing.success == dijkstra.success,
        },
        "timing": {
            "cycle_time_ps": baseline_flow.summary().get("cycle_time_ps", 0),
            "timing_driven_cycle_time_ps": timing_flow.summary().get("cycle_time_ps", 0),
            "critical_nets_rerouted": timing_flow.summary().get(
                "critical_nets_rerouted", 0
            ),
            "baseline_flow_s": round(baseline_s, 6),
            "timing_driven_flow_s": round(timing_s, 6),
            "timing_driven_flows_per_s": (
                round(1.0 / timing_s, 3) if timing_s > 0 else 0.0
            ),
            "timing_driven_slowdown": (
                round(timing_s / baseline_s, 2) if baseline_s > 0 else 0.0
            ),
        },
    }


def _flow_record(
    name: str, bench, params: ArchitectureParams, seed: int, kernel: str
) -> dict[str, object]:
    """Full flow (bitstream included) of one circuit, with parallel counters."""
    t0 = time.perf_counter()
    result = CadFlow(params, FlowOptions(placement_seed=seed, kernel=kernel)).run(bench)
    flow_s = time.perf_counter() - t0
    summary = result.summary()
    return {
        "name": name,
        "grid": f"{params.width}x{params.height}",
        "channel_width": params.routing.channel_width,
        "les": summary["les"],
        "plbs": summary["plbs"],
        "kernel": kernel,
        "flow_s": round(flow_s, 6),
        "routing_success": summary.get("routing_success", False),
        "total_wirelength": summary.get("total_wirelength", 0),
        "cycle_time_ps": summary.get("cycle_time_ps", 0),
        "bitstream_bits_set": summary.get("bitstream_bits_set", 0),
        "parallel_groups": summary.get("router_parallel_groups", 0),
        "conflict_replays": summary.get("router_conflict_replays", 0),
    }


def generated_flow_record(
    spec_name: str, seed: int = 1, kernel: str = "python"
) -> dict[str, object]:
    """Full flow (bitstream included) of one generated circuit.

    The fabric comes from ``recommended_fabric``, so this also exercises the
    architecture-sizing heuristic (grid side, PDE tap widening, channel-width
    scaling) the generator layer ships with.
    """
    from repro.circuits.generate import recommended_fabric
    from repro.circuits.specs import build_from_spec

    bench = build_from_spec(spec_name)
    return _flow_record(spec_name, bench, recommended_fabric(bench), seed, kernel)


def registry_flow_record(
    name: str, seed: int = 1, kernel: str = "python"
) -> dict[str, object]:
    """Full flow of one registry circuit on the standard routable fabric."""
    from repro.circuits.registry import build_circuit

    params = ArchitectureParams(routing=RoutingParams(channel_width=10))
    return _flow_record(name, build_circuit(name), params, seed, kernel)


def run_harness(
    widths=HARNESS_WIDTHS,
    seed: int = 1,
    kernel: str = "auto",
    rounds: int = TIMING_ROUNDS,
) -> dict[str, object]:
    """The full ``BENCH_cad.json`` document for the given adder widths."""
    backend = resolve_kernel(kernel)
    designs = [
        instrumented_flow(bits, seed=seed, kernel=backend, rounds=rounds)
        for bits in widths
    ]
    registry = [
        registry_flow_record(name, seed=seed, kernel=backend)
        for name in REGISTRY_CIRCUITS
    ]
    generated = [
        generated_flow_record(spec, seed=seed, kernel=backend)
        for spec in GENERATED_SPECS
    ]
    largest = designs[-1]
    flow_records = registry + generated
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": "bench_cad_flow",
        "generated_unix": round(time.time(), 1),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seed": seed,
        "kernel": backend,
        "timing_rounds": max(1, int(rounds)),
        "designs": designs,
        "registry": registry,
        "generated": generated,
        "headline": {
            "largest_design": largest["name"],
            "kernel": backend,
            "placement_moves_per_s": largest["placement"]["moves_per_s"],
            "router_route_s": largest["stages_s"]["route"],
            "parallel_groups": sum(
                record["parallel_groups"] for record in flow_records
            ),
            "parallel_conflict_replays": sum(
                record["conflict_replays"] for record in flow_records
            ),
            "placement_eval_reduction": largest["placement"]["eval_reduction"],
            "router_total_reroutes": largest["routing"]["total_reroutes"],
            "router_full_reroute_equiv": largest["routing"]["full_reroute_equiv"],
            "astar_pop_reduction": largest["astar"]["pop_reduction"],
            "cycle_time_ps": largest["timing"]["cycle_time_ps"],
            "timing_driven_cycle_time_ps": largest["timing"][
                "timing_driven_cycle_time_ps"
            ],
            "timing_driven_flows_per_s": largest["timing"]["timing_driven_flows_per_s"],
            "timing_driven_slowdown": largest["timing"]["timing_driven_slowdown"],
        },
    }


def _floor_for_kernel(floor: dict[str, object], kernel: str) -> dict[str, object]:
    """Flatten per-kernel floor overrides into one floor mapping.

    The base keys are the pure-python floors; a ``"kernels"`` section may
    override any of them per backend (CI ratchets the numpy legs ~3× above
    python without needing two floor files).
    """
    merged = {key: value for key, value in floor.items() if key != "kernels"}
    overrides = floor.get("kernels", {})
    if isinstance(overrides, dict):
        merged.update(overrides.get(kernel, {}))
    return merged


def check_floor(document: dict[str, object], floor: dict[str, object]) -> list[str]:
    """Floor violations of a harness document (empty list == healthy).

    The floor file records an *expected* throughput; the check only fails
    when the measured value regresses more than ``regression_factor`` below
    it, so slower CI machines don't flap while a real algorithmic regression
    (the asymptotic kind this PR removed) still trips it.
    """
    floor = _floor_for_kernel(floor, str(document.get("kernel", "python")))
    problems: list[str] = []
    for design in document["designs"]:
        if not design["routing"]["success"]:
            problems.append(
                f"{design['name']} failed to route — the throughput numbers "
                "below would be measured on a broken router"
            )
        if not design["routing"].get("parallel_parity", True):
            problems.append(
                f"{design['name']}: grouped routing diverged from the serial "
                "trees — the net-parallel router must stay bit-identical"
            )
    for design in document.get("registry", []):
        if not design["routing_success"]:
            problems.append(f"{design['name']} failed to route")
    for design in document.get("generated", []):
        if not design["routing_success"]:
            problems.append(
                f"{design['name']} failed to route on its recommended fabric"
            )
    min_groups = int(floor.get("min_parallel_groups", 0))
    if min_groups > 0:
        for record in list(document.get("registry", [])) + list(
            document.get("generated", [])
        ):
            if int(record.get("parallel_groups", 0)) < min_groups:
                problems.append(
                    f"{record['name']}: router formed "
                    f"{record.get('parallel_groups', 0)} parallel group(s), "
                    f"floor requires >= {min_groups} (grouping disengaged?)"
                )
    headline = document["headline"]
    floor_moves = float(floor.get("placement_moves_per_s", 0.0))
    factor = float(floor.get("regression_factor", 3.0))
    measured = float(headline["placement_moves_per_s"])
    if floor_moves > 0 and measured * factor < floor_moves:
        problems.append(
            f"placement throughput {measured:.0f} moves/s is more than "
            f"{factor:g}x below the floor {floor_moves:.0f} moves/s"
        )
    min_reduction = float(floor.get("min_eval_reduction", 0.0))
    reduction = float(headline["placement_eval_reduction"])
    if reduction < min_reduction:
        problems.append(
            f"placement eval reduction {reduction:.2f}x is below the "
            f"required {min_reduction:g}x (incremental delta-HPWL broken?)"
        )
    min_pop_reduction = float(floor.get("min_astar_pop_reduction", 0.0))
    pop_reduction = float(headline.get("astar_pop_reduction", 0.0))
    if min_pop_reduction > 0 and pop_reduction < min_pop_reduction:
        problems.append(
            f"A* pop reduction {pop_reduction:.2f}x on the largest fabric is "
            f"below the required {min_pop_reduction:g}x (admissible lower "
            "bound broken or disabled?)"
        )
    floor_td = float(floor.get("timing_driven_flows_per_s", 0.0))
    measured_td = float(headline.get("timing_driven_flows_per_s", 0.0))
    if floor_td > 0 and measured_td * factor < floor_td:
        problems.append(
            f"timing-driven throughput {measured_td:.3f} flows/s is more than "
            f"{factor:g}x below the floor {floor_td:.3f} flows/s"
        )
    floor_route = float(floor.get("router_route_s", 0.0))
    measured_route = float(headline.get("router_route_s", 0.0))
    if floor_route > 0 and measured_route > floor_route * factor:
        problems.append(
            f"router wall-clock {measured_route:.4f}s on the largest design "
            f"is more than {factor:g}x above the floor {floor_route:.4f}s"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", type=Path, default=Path("BENCH_cad.json"),
        help="where to write the machine-readable results (default: %(default)s)",
    )
    parser.add_argument(
        "--widths", type=lambda text: tuple(int(part) for part in text.split(",")),
        default=HARNESS_WIDTHS, metavar="N,N,...",
        help="adder widths to run (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=1, help="placement seed")
    parser.add_argument(
        "--kernel", choices=("auto", "python", "numpy"), default="auto",
        help="compute backend for the place/route stages (default: auto = "
        "numpy when importable; both backends are bit-identical)",
    )
    parser.add_argument(
        "--rounds", type=int, default=TIMING_ROUNDS, metavar="N",
        help="deterministic reruns per place/route timing, best kept "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--check-floor", type=Path, nargs="?", const=DEFAULT_FLOOR_FILE, default=None,
        metavar="FLOOR.json",
        help="fail (exit 1) when throughput regresses below the checked-in floor",
    )
    args = parser.parse_args(argv)

    document = run_harness(
        widths=args.widths, seed=args.seed, kernel=args.kernel, rounds=args.rounds
    )
    args.json.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n", encoding="utf-8")

    rows = [
        {
            "design": design["name"],
            "grid": design["grid"],
            "place_s": design["stages_s"]["place"],
            "route_s": design["stages_s"]["route"],
            "moves/s": design["placement"]["moves_per_s"],
            "eval_reduction": f'{design["placement"]["eval_reduction"]}x',
            "astar_pops": f'{design["astar"]["pop_reduction"]}x',
            "cycle_ps": design["timing"]["cycle_time_ps"],
            "td_cycle_ps": design["timing"]["timing_driven_cycle_time_ps"],
            "td_slowdown": f'{design["timing"]["timing_driven_slowdown"]}x',
            "routed": design["routing"]["success"],
        }
        for design in document["designs"]
    ]
    print(format_table(rows))
    print(f"kernel: {document['kernel']} (best of {document['timing_rounds']} rounds)")
    for design in document["registry"]:
        print(
            f"registry {design['name']}: grid {design['grid']} "
            f"cw {design['channel_width']}, {design['les']} LEs / "
            f"{design['plbs']} PLBs, routed={design['routing_success']}, "
            f"{design['parallel_groups']} parallel group(s) / "
            f"{design['conflict_replays']} replay(s) in {design['flow_s']:.2f}s"
        )
    for design in document["generated"]:
        print(
            f"generated {design['name']}: grid {design['grid']} "
            f"cw {design['channel_width']}, {design['les']} LEs / "
            f"{design['plbs']} PLBs, routed={design['routing_success']}, "
            f"cycle {design['cycle_time_ps']} ps in {design['flow_s']:.2f}s"
        )
    print(f"wrote {args.json}")

    if args.check_floor is not None:
        floor = json.loads(args.check_floor.read_text(encoding="utf-8"))
        problems = check_floor(document, floor)
        for problem in problems:
            print(f"PERF FLOOR VIOLATION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"perf floor ok ({document['kernel']}): "
            f"{document['headline']['placement_moves_per_s']:.0f} moves/s, "
            f"route {document['headline']['router_route_s']:.4f}s, "
            f"{document['headline']['placement_eval_reduction']}x fewer net evals, "
            f"{document['headline']['astar_pop_reduction']}x fewer A* pops, "
            f"{document['headline']['parallel_groups']} parallel group(s), "
            f"timing-driven {document['headline']['timing_driven_flows_per_s']:.3f} flows/s"
        )
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark tests (CI's benchmark smoke)
# ----------------------------------------------------------------------
def test_cad_flow_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: [instrumented_flow(bits) for bits in WIDTHS], rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            [
                {
                    "bits": row["bits"],
                    "grid": row["grid"],
                    "plbs": row["plbs"],
                    "hpwl": row["placement"]["cost"],
                    "wirelength": row["routing"]["wirelength"],
                    "routed": row["routing"]["success"],
                }
                for row in rows
            ]
        )
    )
    assert all(row["routing"]["success"] for row in rows)
    wirelengths = [row["routing"]["wirelength"] for row in rows]
    assert wirelengths == sorted(wirelengths)


def test_placement_benchmark_small(benchmark):
    """Micro-benchmark of the annealer itself on the 4-bit adder."""
    adder = qdi_ripple_adder(2)
    pack_design(adder.mapped)
    fabric = Fabric(ArchitectureParams(width=6, height=6))
    placement = benchmark.pedantic(
        place_design, args=(adder.mapped, fabric), kwargs={"seed": 3}, rounds=1, iterations=1
    )
    assert len(placement.plb_sites) == len(adder.mapped.plbs)


def test_full_flow_benchmark(benchmark):
    """End-to-end flow latency for the paper's QDI full adder."""
    flow = CadFlow(ArchitectureParams(width=5, height=5), FlowOptions())

    from repro.circuits.fulladder import qdi_full_adder

    result = benchmark.pedantic(flow.run, args=(qdi_full_adder(),), rounds=1, iterations=1)
    assert result.routing is not None and result.routing.success


if __name__ == "__main__":
    raise SystemExit(main())
