"""EXP-EXT4 -- CAD flow cost and quality scaling.

Extension experiment: runtime-quality behaviour of the packer, placer and
router as the design grows (QDI ripple adders of increasing width on a fabric
sized to fit).  The shape: wirelength grows with design size, the router
converges, and the flow stays comfortably interactive for paper-scale inputs.
"""

from repro.analysis.tables import format_table
from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.lemap import MappedDesign
from repro.cad.pack import pack_design
from repro.cad.place import place_design
from repro.cad.route import route_design
from repro.circuits.adders import qdi_ripple_adder
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams, RoutingParams
from repro.core.rrgraph import RoutingResourceGraph

WIDTHS = (1, 2, 4)


def _flow_for(bits: int) -> dict[str, object]:
    adder = qdi_ripple_adder(bits)
    design: MappedDesign = adder.mapped
    pack_design(design)
    side = max(4, int(len(design.plbs) ** 0.5) + 2)
    params = ArchitectureParams(
        width=side, height=side, routing=RoutingParams(channel_width=10, io_pads_per_side=6)
    )
    fabric = Fabric(params)
    graph = RoutingResourceGraph(fabric)
    placement = place_design(design, fabric, seed=1)
    routing = route_design(design, placement, graph)
    return {
        "bits": bits,
        "les": len(design.les),
        "plbs": len(design.plbs),
        "grid": f"{side}x{side}",
        "hpwl": round(placement.cost, 1),
        "routed_nets": len(routing.routed),
        "wirelength": routing.total_wirelength,
        "router_iterations": routing.iterations,
        "routed": routing.success,
    }


def test_cad_flow_scaling(benchmark):
    rows = benchmark.pedantic(lambda: [_flow_for(bits) for bits in WIDTHS], rounds=1, iterations=1)
    print()
    print(format_table(rows))
    assert all(row["routed"] for row in rows)
    wirelengths = [row["wirelength"] for row in rows]
    assert wirelengths == sorted(wirelengths)


def test_placement_benchmark_small(benchmark):
    """Micro-benchmark of the annealer itself on the 4-bit adder."""
    adder = qdi_ripple_adder(2)
    pack_design(adder.mapped)
    fabric = Fabric(ArchitectureParams(width=6, height=6))
    placement = benchmark.pedantic(
        place_design, args=(adder.mapped, fabric), kwargs={"seed": 3}, rounds=1, iterations=1
    )
    assert len(placement.plb_sites) == len(adder.mapped.plbs)


def test_full_flow_benchmark(benchmark):
    """End-to-end flow latency for the paper's QDI full adder."""
    flow = CadFlow(ArchitectureParams(width=5, height=5), FlowOptions())

    from repro.circuits.fulladder import qdi_full_adder

    result = benchmark.pedantic(flow.run, args=(qdi_full_adder(),), rounds=1, iterations=1)
    assert result.routing is not None and result.routing.success
