"""EXP-EXT1 -- style scaling: N-bit ripple adders in QDI and micropipeline.

Extension experiment: how LE count, PLB count and filling ratio scale with the
operand width in each style.  The shape to observe: QDI costs ~5x the LEs of
bundled data (the price of delay insensitivity) but keeps a higher filling
ratio; both grow linearly.

The sweep is driven by the registry names through the batch sweep engine, so
this benchmark exercises the same orchestration path as production sweeps.
"""

import pytest

from repro.analysis.tables import format_table
from repro.cad.flow import FlowOptions
from repro.core.params import ArchitectureParams
from repro.sweep import SweepRunner, SweepSpec

BIT_WIDTHS = (2, 4, 8, 16)
STYLES = ("qdi", "micropipeline")


def _sweep():
    circuits = [
        f"{style}_ripple_adder_{bits}" for bits in BIT_WIDTHS for style in STYLES
    ]
    spec = SweepSpec.build(
        circuits,
        ArchitectureParams(),
        FlowOptions(run_placement=False, run_routing=False, generate_bitstream=False),
    )
    report = SweepRunner().run(spec)
    rows = []
    for outcome in report.outcomes:
        assert outcome.ok, outcome.error
        summary = outcome.summary
        style, _, bits = outcome.point.circuit.partition("_ripple_adder_")
        rows.append(
            {
                "bits": int(bits),
                "style": style,
                "les": summary["les"],
                "plbs": summary["plbs"],
                "pdes": summary["pdes"],
                "filling_ratio": summary["filling_ratio"],
            }
        )
    return rows


def test_adder_width_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    by_key = {(row["bits"], row["style"]): row for row in rows}
    for bits in BIT_WIDTHS:
        qdi = by_key[(bits, "qdi")]
        mp = by_key[(bits, "micropipeline")]
        assert qdi["les"] > mp["les"]
        assert qdi["filling_ratio"] > mp["filling_ratio"]
    # Linear growth in the QDI LE count.
    assert by_key[(16, "qdi")]["les"] == pytest.approx(
        8 * by_key[(2, "qdi")]["les"], rel=0.3
    )
