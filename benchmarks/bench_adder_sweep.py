"""EXP-EXT1 -- style scaling: N-bit ripple adders in QDI and micropipeline.

Extension experiment: how LE count, PLB count and filling ratio scale with the
operand width in each style.  The shape to observe: QDI costs ~5x the LEs of
bundled data (the price of delay insensitivity) but keeps a higher filling
ratio; both grow linearly.
"""

import pytest

from repro.analysis.tables import format_table
from repro.cad.metrics import filling_ratio
from repro.cad.pack import pack_design, packing_summary
from repro.circuits.adders import micropipeline_ripple_adder, qdi_ripple_adder

BIT_WIDTHS = (1, 2, 4, 8)


def _sweep():
    rows = []
    for bits in BIT_WIDTHS:
        for factory, style in ((qdi_ripple_adder, "qdi"), (micropipeline_ripple_adder, "micropipeline")):
            bench_circuit = factory(bits)
            pack_design(bench_circuit.mapped)
            report = filling_ratio(bench_circuit.mapped)
            summary = packing_summary(bench_circuit.mapped)
            rows.append(
                {
                    "bits": bits,
                    "style": style,
                    "les": len(bench_circuit.mapped.les),
                    "plbs": summary["plbs"],
                    "pdes": len(bench_circuit.mapped.pdes),
                    "filling_ratio": round(report.per_le, 4),
                }
            )
    return rows


def test_adder_width_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    by_key = {(row["bits"], row["style"]): row for row in rows}
    for bits in BIT_WIDTHS:
        qdi = by_key[(bits, "qdi")]
        mp = by_key[(bits, "micropipeline")]
        assert qdi["les"] > mp["les"]
        assert qdi["filling_ratio"] > mp["filling_ratio"]
    # Linear growth in the QDI LE count.
    assert by_key[(8, "qdi")]["les"] == pytest.approx(8 * by_key[(1, "qdi")]["les"], rel=0.3)
