"""EXP-F3a / EXP-F3b -- Figure 3: the full adder in both styles.

Runs the complete CAD flow (map -> pack -> place -> route -> bitstream) on the
micropipeline (Figure 3a) and QDI (Figure 3b) full adders and prints the
per-LE mapping (the dashed boxes of the figure), then benchmarks the flow.
"""

import pytest

from repro.analysis.tables import format_table
from repro.cad.flow import CadFlow
from repro.circuits.fulladder import micropipeline_full_adder, qdi_full_adder
from repro.core.params import ArchitectureParams


def _run_flow(circuit_factory):
    flow = CadFlow(ArchitectureParams(width=5, height=5))
    return flow.run(circuit_factory())


@pytest.mark.parametrize(
    "factory, expected_plbs, uses_pde",
    [
        pytest.param(micropipeline_full_adder, 1, True, id="fig3a-micropipeline"),
        pytest.param(qdi_full_adder, 3, False, id="fig3b-qdi"),
    ],
)
def test_fig3_full_adder_flow(benchmark, factory, expected_plbs, uses_pde):
    result = benchmark.pedantic(_run_flow, args=(factory,), rounds=1, iterations=1)
    print()
    print(result.report())
    rows = [
        {
            "le": le.name,
            "lut_functions": len(le.functions),
            "lut_inputs": len(le.lut_input_nets),
            "validity": le.validity is not None,
            "feedback_nets": ", ".join(le.feedback_nets),
        }
        for le in result.mapped.les
    ]
    print(format_table(rows))
    assert len(result.mapped.plbs) == expected_plbs
    assert (len(result.mapped.pdes) == 1) == uses_pde
    assert result.routing is not None and result.routing.success
    assert result.bitstream is not None and result.bitstream.used_bits() > 0
