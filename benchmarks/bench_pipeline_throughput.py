"""EXP-EXT3 -- pipeline throughput on the simulated fabric.

Extension experiment: stream tokens through WCHB FIFOs of increasing depth
(gate-level simulation with the architecture's delay model) and measure token
throughput and latency.  The shape: latency grows linearly with depth while
the streaming throughput stays roughly constant (half-buffer pipelines hold
one token per two stages).
"""

from repro.analysis.tables import format_table
from repro.asynclogic.tokens import throughput
from repro.circuits.fifo import wchb_fifo
from repro.sim import (
    FourPhaseDualRailConsumer,
    FourPhaseDualRailProducer,
    GateLevelSimulator,
    HandshakeHarness,
)

DEPTHS = (2, 4, 8)
TOKENS = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1]


def _measure(depth: int) -> dict[str, object]:
    fifo = wchb_fifo(depth)
    simulator = GateLevelSimulator(fifo.netlist)
    producer = FourPhaseDualRailProducer(fifo.channel("in"), TOKENS, "in_ack")
    consumer = FourPhaseDualRailConsumer(fifo.channel("out"), "out_ack")
    end_time = HandshakeHarness(simulator, [producer, consumer]).run()
    tokens = producer.tokens
    return {
        "depth": depth,
        "tokens": len(consumer.received),
        "correct": consumer.received == TOKENS,
        "sim_time_ps": end_time,
        "throughput_tokens_per_ns": round((throughput(tokens) or 0.0) * 1000, 4),
        "avg_cycle_ps": round(end_time / len(TOKENS), 1),
    }


def _sweep():
    return [_measure(depth) for depth in DEPTHS]


def test_wchb_fifo_throughput(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    assert all(row["correct"] for row in rows)
    assert all(row["tokens"] == len(TOKENS) for row in rows)
    # Total simulated time (and hence average cycle) grows with depth, while
    # throughput stays within a small factor (the environment is lock-step,
    # so deeper FIFOs pay proportionally more forward latency per token).
    times = [row["sim_time_ps"] for row in rows]
    assert times == sorted(times)
    rates = [row["throughput_tokens_per_ns"] for row in rows]
    assert max(rates) <= 4.0 * min(rates)
