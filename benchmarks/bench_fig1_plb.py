"""EXP-F1 -- Figure 1: the Programmable Logic Block.

Regenerates the content of Figure 1: the PLB's structure (two LEs, the
interconnection matrix, the programmable delay element) and its
configuration-bit budget, and benchmarks the behavioural PLB evaluation
(a memory element looped through the IM).
"""

from repro.analysis.figures import render_figure1_plb
from repro.core.im import IMConfig
from repro.core.le import LEConfig
from repro.core.params import ArchitectureParams
from repro.core.plb import PLB, PLBConfig
from repro.core.stats import plb_statistics
from repro.logic.functions import c_element_table


def test_fig1_plb_structure_and_bits(benchmark):
    params = ArchitectureParams()
    stats = benchmark(plb_statistics, params)
    print()
    print(render_figure1_plb(params))
    print({key: stats[key] for key in ("les_per_plb", "im_sources", "im_destinations",
                                       "im_config_bits", "le_config_bits", "pde_config_bits",
                                       "plb_config_bits")})
    assert stats["les_per_plb"] == 2
    assert stats["plb_config_bits"] == params.plb.config_bits


def test_fig1_plb_memory_element_evaluation(benchmark):
    """Evaluate a Muller C-element realised by looping an LE output via the IM."""
    plb = PLB()
    plb.configure(
        PLBConfig(
            le_configs=[LEConfig(lut_tables=[c_element_table(("i0", "i1"), state="i2"), None, None])],
            im_config=IMConfig(routes={"le0_i0": "in0", "le0_i1": "in1", "le0_i2": "le0_o0", "out0": "le0_o0"}),
        )
    )

    def run_handshake_cycle():
        state: dict = {}
        sequence = [(1, 1), (0, 1), (0, 0), (1, 0), (1, 1), (0, 0)]
        outputs = None
        for in0, in1 in sequence:
            outputs, state = plb.evaluate({"in0": in0, "in1": in1}, state)
        return outputs["out0"]

    result = benchmark(run_handshake_cycle)
    assert result == 0
