"""EXP-SYNC -- asynchronous logic on a synchronous LUT4 FPGA (ref. [3]).

The paper motivates a dedicated fabric by noting that commercial synchronous
FPGAs leave most of their resources unexploited when hosting asynchronous
logic.  This bench maps the full adders (and a ripple adder) onto both
fabrics and regenerates the comparison table.
"""

from repro.analysis.tables import format_table
from repro.baselines.compare import compare_with_sync_baseline
from repro.circuits.fifo import wchb_fifo
from repro.circuits.fulladder import micropipeline_full_adder, qdi_full_adder


def _compare():
    circuits = [
        qdi_full_adder(),
        qdi_full_adder(encoding="1-of-4", name="qdi_full_adder_1of4"),
        micropipeline_full_adder(),
        wchb_fifo(4),
    ]
    return compare_with_sync_baseline(circuits)


def test_sync_fpga_baseline_comparison(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    for row in rows:
        # The synchronous baseline never does better than the dedicated fabric
        # and wastes every flip-flop of the CLBs it occupies.
        assert row["sync_luts"] >= row["async_les"]
        assert row["sync_wasted_flip_flops"] > 0
    # For the paper's function blocks the gap is large (several LUT4s per LE).
    for row in rows:
        if "full_adder" in row["circuit"]:
            assert row["lut_per_le_ratio"] >= 2
