"""EXP-F2 -- Figure 2: the Logic Element (LUT7-3 + LUT2-1).

Regenerates the LE's structure and configuration cost and benchmarks LE
evaluation with a dual-rail function plus its validity output -- the usage
pattern the paper designed the LE for.
"""

from repro.analysis.figures import render_figure2_le
from repro.core.le import LEConfig, LogicElement
from repro.core.params import ArchitectureParams
from repro.core.stats import le_statistics
from repro.logic.functions import or_table
from repro.logic.truthtable import TruthTable


def test_fig2_le_structure_and_bits(benchmark):
    params = ArchitectureParams()
    stats = benchmark(le_statistics, params)
    print()
    print(render_figure2_le(params))
    print(stats)
    assert stats["lut_inputs"] == 7 and stats["lut_outputs"] == 3
    assert stats["validity_lut_inputs"] == 2


def test_fig2_le_dual_rail_evaluation(benchmark):
    """One LE computing a dual-rail sum rail + validity, evaluated repeatedly."""
    le = LogicElement()
    sum_t = TruthTable.from_function(
        tuple(f"i{k}" for k in range(7)),
        lambda i0, i1, i2, i3, i4, i5, i6: (i1 ^ i3 ^ i5) if (i0 | i1) and (i2 | i3) and (i4 | i5) else i6,
    )
    le.configure(
        LEConfig(
            lut_tables=[sum_t, None, None],
            validity_table=or_table(inputs=("v0", "v1")),
        )
    )

    vectors = []
    for value in range(64):
        vector = {f"i{k}": (value >> k) & 1 for k in range(6)}
        vector["i6"] = 0
        vectors.append(vector)

    def evaluate_all():
        total = 0
        for vector in vectors:
            total += le.evaluate(vector)["o0"]
        return total

    result = benchmark(evaluate_all)
    assert 0 <= result <= len(vectors)
