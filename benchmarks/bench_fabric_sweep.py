"""EXP-EXT2 -- fabric exploration: channel width and grid size.

Extension experiment: configuration-bit cost and routability of the QDI full
adder as the routing channel width varies, plus the config-bit scaling of the
fabric with grid size (the "architecture genericity" the paper advertises).
"""

from repro.analysis.tables import format_table
from repro.cad.flow import CadFlow, FlowOptions
from repro.cad.route import RoutingError
from repro.circuits.fulladder import qdi_full_adder
from repro.core.params import ArchitectureParams, RoutingParams
from repro.core.stats import fabric_statistics

CHANNEL_WIDTHS = (4, 8, 12)
GRIDS = ((4, 4), (6, 6), (8, 8))


def _channel_width_sweep():
    rows = []
    for width in CHANNEL_WIDTHS:
        params = ArchitectureParams(width=5, height=5, routing=RoutingParams(channel_width=width))
        flow = CadFlow(params, FlowOptions(generate_bitstream=False))
        try:
            result = flow.run(qdi_full_adder())
            success = bool(result.routing and result.routing.success)
            wirelength = result.routing.total_wirelength if result.routing else 0
        except RoutingError:
            success, wirelength = False, 0
        stats = fabric_statistics(params)
        rows.append(
            {
                "channel_width": width,
                "routed": success,
                "wirelength": wirelength,
                "config_bits_total": stats["config_bits_total"],
                "config_bits_routing": stats["config_bits_cbox"] + stats["config_bits_sbox"],
            }
        )
    return rows


def test_channel_width_sweep(benchmark):
    rows = benchmark.pedantic(_channel_width_sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    assert any(row["routed"] for row in rows)
    bits = [row["config_bits_routing"] for row in rows]
    assert bits == sorted(bits)  # wider channels cost more configuration


def test_grid_size_scaling(benchmark):
    def sweep():
        return [fabric_statistics(ArchitectureParams(width=w, height=h)) for w, h in GRIDS]

    stats = benchmark(sweep)
    rows = [
        {
            "grid": s["grid"],
            "plbs": s["plb_count"],
            "les": s["le_count"],
            "config_bits": s["config_bits_total"],
        }
        for s in stats
    ]
    print()
    print(format_table(rows))
    totals = [row["config_bits"] for row in rows]
    assert totals == sorted(totals)
    # Logic configuration dominates and scales with the PLB count.
    assert stats[-1]["config_bits_plb"] == stats[-1]["plb_count"] * ArchitectureParams().plb.config_bits
