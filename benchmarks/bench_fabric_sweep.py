"""EXP-EXT2 -- fabric exploration: channel width and grid size.

Extension experiment: configuration-bit cost and routability of the QDI full
adder as the routing channel width varies, plus the config-bit scaling of the
fabric with grid size (the "architecture genericity" the paper advertises).

The channel-width exploration runs through the batch sweep engine
(:class:`repro.sweep.SweepRunner`): one grid of architecture variants, with
routing failures captured per point instead of aborting the sweep.
"""

from repro.analysis.tables import format_table
from repro.cad.flow import FlowOptions
from repro.core.params import ArchitectureParams, RoutingParams
from repro.core.stats import fabric_statistics
from repro.sweep import SweepRunner, SweepSpec

CHANNEL_WIDTHS = (4, 8, 12)
GRIDS = ((4, 4), (6, 6), (8, 8))


def _channel_width_sweep():
    architectures = [
        ArchitectureParams(width=5, height=5, routing=RoutingParams(channel_width=width))
        for width in CHANNEL_WIDTHS
    ]
    spec = SweepSpec.build(
        ["qdi_full_adder"], architectures, FlowOptions(generate_bitstream=False)
    )
    report = SweepRunner().run(spec)
    rows = []
    for outcome in report.outcomes:
        summary = outcome.summary or {}
        stats = fabric_statistics(outcome.point.architecture)
        rows.append(
            {
                "channel_width": outcome.point.architecture.routing.channel_width,
                "routed": bool(summary.get("routing_success", False)),
                "wirelength": summary.get("total_wirelength", 0),
                "config_bits_total": stats["config_bits_total"],
                "config_bits_routing": stats["config_bits_cbox"] + stats["config_bits_sbox"],
            }
        )
    return rows


def test_channel_width_sweep(benchmark):
    rows = benchmark.pedantic(_channel_width_sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    assert any(row["routed"] for row in rows)
    bits = [row["config_bits_routing"] for row in rows]
    assert bits == sorted(bits)  # wider channels cost more configuration
    # sanity: the unmappable/unroutable variants (if any) were captured, not raised
    assert all(isinstance(row["wirelength"], int) for row in rows)


def test_incremental_reroute_channel_width_sweep(benchmark, tmp_path):
    # Channel-width exploration with a result store: placement depends on
    # none of the routing knobs, so every point after the first reuses the
    # cached placement and only re-routes (the incremental re-route path).
    architectures = [
        ArchitectureParams(width=5, height=5, routing=RoutingParams(channel_width=width))
        for width in (8, 10, 12)
    ]
    spec = SweepSpec.build(
        ["qdi_full_adder"], architectures, FlowOptions(generate_bitstream=False)
    )

    def sweep():
        return SweepRunner(store=tmp_path / "cache").run(spec)

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(report.rows()))
    hits = [outcome.summary["placement_cache_hit"] for outcome in report.outcomes]
    assert hits[0] is False and all(hits[1:])  # one placement, N-1 re-routes
    costs = {outcome.summary["placement_cost"] for outcome in report.outcomes}
    assert len(costs) == 1  # the shared placement really is the same one


def test_grid_size_scaling(benchmark):
    def sweep():
        return [fabric_statistics(ArchitectureParams(width=w, height=h)) for w, h in GRIDS]

    stats = benchmark(sweep)
    rows = [
        {
            "grid": s["grid"],
            "plbs": s["plb_count"],
            "les": s["le_count"],
            "config_bits": s["config_bits_total"],
        }
        for s in stats
    ]
    print()
    print(format_table(rows))
    totals = [row["config_bits"] for row in rows]
    assert totals == sorted(totals)
    # Logic configuration dominates and scales with the PLB count.
    assert stats[-1]["config_bits_plb"] == stats[-1]["plb_count"] * ArchitectureParams().plb.config_bits
