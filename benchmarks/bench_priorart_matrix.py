"""EXP-PRIOR -- the Section 1 comparison with prior asynchronous FPGAs.

The paper has no explicit table, but Section 1 enumerates MONTAGE, PGA-STC,
GALSA, STACC and PAPA and argues each is tied to one design style.  This
bench regenerates the style-support matrix and checks that only the paper's
architecture covers every supported style.
"""

from repro.analysis.tables import format_table
from repro.baselines.compare import prior_art_table
from repro.baselines.priorart import style_support_matrix, styles_supported_count


def test_prior_art_style_matrix(benchmark):
    rows = benchmark(prior_art_table)
    print()
    print(format_table(rows, columns=["architecture", "year", "base_fabric",
                                      "qdi-dual-rail", "qdi-1-of-4", "micropipeline",
                                      "wchb", "styles_supported"]))
    counts = styles_supported_count()
    ours = "Multi-style (this paper)"
    assert counts[ours] == 4
    assert all(count < counts[ours] for name, count in counts.items() if name != ours)
    matrix = style_support_matrix()
    assert not matrix["PAPA"]["micropipeline"]
    assert not matrix["GALSA"]["qdi-dual-rail"]
