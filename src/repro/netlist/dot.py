"""Graphviz (DOT) export of netlists.

Used by the examples to visualise the generated circuits (e.g. the Figure 3
full adders).  The output is plain DOT text; rendering is left to the user.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist

_STYLE_BY_PREFIX = {
    "C": ("box", "lightsalmon"),
    "LATCH": ("box", "lightyellow"),
    "SRLATCH": ("box", "lightyellow"),
}


def _node_style(type_name: str) -> tuple[str, str]:
    for prefix, style in _STYLE_BY_PREFIX.items():
        if type_name.startswith(prefix):
            return style
    return ("ellipse", "lightblue")


def to_dot(netlist: Netlist, include_net_labels: bool = True) -> str:
    """Render *netlist* as a DOT digraph (cells as nodes, nets as edges)."""
    lines = [f'digraph "{netlist.name}" {{', "  rankdir=LR;"]

    for name in netlist.primary_inputs:
        lines.append(f'  "pi_{name}" [label="{name}", shape=triangle, style=filled, fillcolor=palegreen];')
    for name in netlist.primary_outputs:
        lines.append(f'  "po_{name}" [label="{name}", shape=invtriangle, style=filled, fillcolor=khaki];')

    for cell in netlist.iter_cells():
        shape, colour = _node_style(cell.type_name)
        lines.append(
            f'  "{cell.name}" [label="{cell.name}\\n{cell.type_name}", shape={shape}, '
            f"style=filled, fillcolor={colour}];"
        )

    for net in netlist.iter_nets():
        label = f' [label="{net.name}"]' if include_net_labels else ""
        if net.driver is None:
            source = f"pi_{net.name}" if net.is_primary_input else None
        else:
            source = net.driver[0]
        if source is None:
            continue
        for sink_cell, _pin in sorted(net.sinks):
            lines.append(f'  "{source}" -> "{sink_cell}"{label};')
        if net.is_primary_output:
            lines.append(f'  "{source}" -> "po_{net.name}"{label};')

    lines.append("}")
    return "\n".join(lines)
