"""Flat gate-level netlists.

A :class:`Netlist` holds :class:`Cell` instances (instantiations of library
:class:`~repro.netlist.celltypes.CellType`) connected by :class:`Net` objects.
Top-level ports are modelled as named nets flagged as primary inputs or
outputs.

The representation is deliberately flat (no hierarchy): the designs the paper
considers are small, and the CAD flow operates on flat netlists anyway.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.core.schema import decoding, require_version
from repro.netlist.celltypes import CellType, Library, STANDARD_LIBRARY

#: Schema version of :meth:`Netlist.to_dict` payloads.
NETLIST_SCHEMA = 1


class PortDirection(enum.Enum):
    """Direction of a top-level port."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass
class Net:
    """A single-driver signal.

    ``driver`` is ``None`` for primary inputs and for not-yet-connected nets;
    otherwise it is a ``(cell_name, output_pin)`` tuple.  ``sinks`` is the set
    of ``(cell_name, input_pin)`` tuples reading the net.
    """

    name: str
    driver: tuple[str, str] | None = None
    sinks: set[tuple[str, str]] = field(default_factory=set)
    is_primary_input: bool = False
    is_primary_output: bool = False

    @property
    def fanout(self) -> int:
        return len(self.sinks) + (1 if self.is_primary_output else 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Net({self.name!r}, driver={self.driver}, sinks={sorted(self.sinks)})"


@dataclass
class Cell:
    """An instance of a library cell type.

    ``connections`` maps pin names (both inputs and outputs) to net names.
    """

    name: str
    cell_type: CellType
    connections: dict[str, str] = field(default_factory=dict)
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def type_name(self) -> str:
        return self.cell_type.name

    def input_nets(self) -> dict[str, str]:
        return {pin: self.connections[pin] for pin in self.cell_type.inputs if pin in self.connections}

    def output_nets(self) -> dict[str, str]:
        return {pin: self.connections[pin] for pin in self.cell_type.outputs if pin in self.connections}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cell({self.name!r}, {self.type_name})"


class Netlist:
    """A flat, single-driver-checked gate-level netlist."""

    def __init__(self, name: str, library: Library | None = None) -> None:
        self.name = name
        self.library = library if library is not None else STANDARD_LIBRARY
        self.cells: dict[str, Cell] = {}
        self.nets: dict[str, Net] = {}
        self._port_order: list[tuple[str, PortDirection]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_net(self, name: str) -> Net:
        """Create (or return the existing) net called *name*."""
        if name not in self.nets:
            self.nets[name] = Net(name=name)
        return self.nets[name]

    def add_port(self, name: str, direction: PortDirection) -> Net:
        """Declare a top-level port; the backing net is created if needed."""
        net = self.add_net(name)
        if direction is PortDirection.INPUT:
            if net.driver is not None:
                raise ValueError(f"net {name!r} already driven; cannot be a primary input")
            net.is_primary_input = True
        else:
            net.is_primary_output = True
        if (name, direction) not in self._port_order:
            self._port_order.append((name, direction))
        return net

    def add_cell(
        self,
        name: str,
        cell_type: CellType | str,
        connections: Mapping[str, str],
        **attributes: object,
    ) -> Cell:
        """Instantiate a cell and connect its pins to the named nets.

        All input and output pins of the cell type must be present in
        *connections*.  Nets are created on demand.
        """
        if name in self.cells:
            raise ValueError(f"duplicate cell name {name!r}")
        if isinstance(cell_type, str):
            cell_type = self.library.get(cell_type)
        missing = [
            pin
            for pin in tuple(cell_type.inputs) + tuple(cell_type.outputs)
            if pin not in connections
        ]
        if missing:
            raise ValueError(f"cell {name!r} ({cell_type.name}): unconnected pins {missing}")
        unknown = [pin for pin in connections if pin not in cell_type.inputs and pin not in cell_type.outputs]
        if unknown:
            raise ValueError(f"cell {name!r} ({cell_type.name}): unknown pins {unknown}")

        cell = Cell(name=name, cell_type=cell_type, connections=dict(connections), attributes=dict(attributes))
        self.cells[name] = cell

        for pin in cell_type.inputs:
            net = self.add_net(connections[pin])
            net.sinks.add((name, pin))
        for pin in cell_type.outputs:
            net = self.add_net(connections[pin])
            if net.driver is not None:
                raise ValueError(
                    f"net {net.name!r} already driven by {net.driver}; cannot also be driven by {name}.{pin}"
                )
            if net.is_primary_input:
                raise ValueError(f"net {net.name!r} is a primary input; it cannot be driven by {name}.{pin}")
            net.driver = (name, pin)
        return cell

    def remove_cell(self, name: str) -> None:
        """Remove a cell, detaching it from its nets (nets are kept)."""
        cell = self.cells.pop(name)
        for pin, net_name in cell.connections.items():
            net = self.nets[net_name]
            net.sinks.discard((name, pin))
            if net.driver == (name, pin):
                net.driver = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def primary_inputs(self) -> list[str]:
        return [name for name, direction in self._port_order if direction is PortDirection.INPUT]

    @property
    def primary_outputs(self) -> list[str]:
        return [name for name, direction in self._port_order if direction is PortDirection.OUTPUT]

    def net(self, name: str) -> Net:
        return self.nets[name]

    def cell(self, name: str) -> Cell:
        return self.cells[name]

    def driver_of(self, net_name: str) -> tuple[Cell, str] | None:
        """The (cell, output pin) driving a net, or ``None`` for primary inputs."""
        net = self.nets[net_name]
        if net.driver is None:
            return None
        cell_name, pin = net.driver
        return self.cells[cell_name], pin

    def sinks_of(self, net_name: str) -> list[tuple[Cell, str]]:
        net = self.nets[net_name]
        return [(self.cells[cell_name], pin) for cell_name, pin in sorted(net.sinks)]

    def cell_count(self, type_name: str | None = None) -> int:
        if type_name is None:
            return len(self.cells)
        return sum(1 for cell in self.cells.values() if cell.type_name == type_name)

    def cell_histogram(self) -> dict[str, int]:
        """Count of instances per cell type name."""
        histogram: dict[str, int] = {}
        for cell in self.cells.values():
            histogram[cell.type_name] = histogram.get(cell.type_name, 0) + 1
        return dict(sorted(histogram.items()))

    def sequential_cells(self) -> list[Cell]:
        return [cell for cell in self.cells.values() if cell.cell_type.is_sequential]

    def total_area(self) -> float:
        """Sum of the abstract area of every instance."""
        return sum(cell.cell_type.area for cell in self.cells.values())

    def iter_cells(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def iter_nets(self) -> Iterator[Net]:
        return iter(self.nets.values())

    # ------------------------------------------------------------------
    # Graph utilities
    # ------------------------------------------------------------------
    def fanin_cells(self, cell: Cell) -> list[Cell]:
        """Cells driving the inputs of *cell* (primary inputs excluded)."""
        result = []
        for net_name in cell.input_nets().values():
            driver = self.driver_of(net_name)
            if driver is not None:
                result.append(driver[0])
        return result

    def fanout_cells(self, cell: Cell) -> list[Cell]:
        """Cells reading any output of *cell*."""
        result = []
        for net_name in cell.output_nets().values():
            for sink_cell, _pin in self.sinks_of(net_name):
                result.append(sink_cell)
        return result

    def topological_order(self, ignore_sequential_feedback: bool = True) -> list[Cell]:
        """Cells in topological order of the combinational dependency graph.

        Sequential cells (C-elements, latches) naturally sit on feedback loops;
        when *ignore_sequential_feedback* is true their outputs are treated as
        graph sources so the remaining combinational logic can be ordered.  A
        purely combinational loop raises ``ValueError``.
        """
        indegree: dict[str, int] = {name: 0 for name in self.cells}
        dependents: dict[str, list[str]] = {name: [] for name in self.cells}

        for cell in self.cells.values():
            for net_name in cell.input_nets().values():
                driver = self.driver_of(net_name)
                if driver is None:
                    continue
                driver_cell, _pin = driver
                if ignore_sequential_feedback and driver_cell.cell_type.is_sequential:
                    continue
                indegree[cell.name] += 1
                dependents[driver_cell.name].append(cell.name)

        ready = sorted(name for name, degree in indegree.items() if degree == 0)
        order: list[Cell] = []
        while ready:
            name = ready.pop(0)
            order.append(self.cells[name])
            for dependent in dependents[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
            ready.sort()

        if len(order) != len(self.cells):
            remaining = sorted(set(self.cells) - {cell.name for cell in order})
            raise ValueError(f"combinational loop involving cells: {remaining}")
        return order

    def stats(self) -> dict[str, object]:
        """Summary statistics used by reports and tests."""
        return {
            "name": self.name,
            "cells": len(self.cells),
            "nets": len(self.nets),
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
            "sequential_cells": len(self.sequential_cells()),
            "area": self.total_area(),
            "histogram": self.cell_histogram(),
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe, schema-versioned rendering (inverse of :meth:`from_dict`).

        Cells reference their type by library name and their nets by name —
        no object identity crosses the boundary.  Cell attributes are stored
        verbatim, so they must be JSON-safe (the builders only ever attach
        scalars).  Nets carry no state beyond connectivity, so only the names
        of dangling (connection-free) nets need recording explicitly.
        """
        connected: set[str] = set()
        for cell in self.cells.values():
            connected.update(cell.connections.values())
        connected.update(name for name, _direction in self._port_order)
        return {
            "schema": NETLIST_SCHEMA,
            "name": self.name,
            "ports": [[name, direction.value] for name, direction in self._port_order],
            "cells": [
                {
                    "name": cell.name,
                    "type": cell.type_name,
                    "connections": dict(cell.connections),
                    "attributes": dict(cell.attributes),
                }
                for cell in self.cells.values()
            ],
            "dangling_nets": sorted(set(self.nets) - connected),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], library: Library | None = None) -> "Netlist":
        """Rebuild from :meth:`to_dict` output (cell types resolved in *library*)."""
        require_version(data, "netlist", NETLIST_SCHEMA)
        with decoding("netlist"):
            netlist = cls(str(data["name"]), library=library)
            ports: list[tuple[str, PortDirection]] = [
                (str(entry[0]), PortDirection(entry[1])) for entry in data["ports"]
            ]
            for port_name, direction in ports:
                if direction is PortDirection.INPUT:
                    netlist.add_port(port_name, direction)
            for entry in data["cells"]:
                attributes = dict(entry.get("attributes", {}))
                netlist.add_cell(
                    str(entry["name"]),
                    str(entry["type"]),
                    {str(pin): str(net) for pin, net in dict(entry["connections"]).items()},
                    **attributes,
                )
            # Output ports are declared after the cells so their driver checks
            # see the finished connectivity; _port_order is then restored to
            # the recorded interleaving.
            for port_name, direction in ports:
                if direction is PortDirection.OUTPUT:
                    netlist.add_port(port_name, direction)
            netlist._port_order = ports
            for net_name in data.get("dangling_nets", []):
                netlist.add_net(str(net_name))
            return netlist

    def copy(self, name: str | None = None) -> "Netlist":
        """A deep, independent copy of the netlist."""
        clone = Netlist(name or self.name, library=self.library)
        for port_name, direction in self._port_order:
            clone.add_port(port_name, direction)
        for cell in self.cells.values():
            clone.add_cell(cell.name, cell.cell_type, dict(cell.connections), **dict(cell.attributes))
        # Preserve nets with no connection (rare, but keep fidelity).
        for net_name in self.nets:
            clone.add_net(net_name)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Netlist({self.name!r}, cells={len(self.cells)}, nets={len(self.nets)})"


def merge_netlists(name: str, parts: Iterable[Netlist], prefix_nets: bool = False) -> Netlist:
    """Merge several netlists into one.

    Ports and nets with identical names are unified (this is how the circuit
    generators stitch stages together).  When *prefix_nets* is true, internal
    net and cell names are prefixed with the part's name to avoid collisions.
    """
    parts = list(parts)
    if not parts:
        raise ValueError("merge_netlists needs at least one part")
    merged = Netlist(name, library=parts[0].library)
    for part in parts:
        io_names = set(part.primary_inputs) | set(part.primary_outputs)
        rename = {}
        if prefix_nets:
            rename = {
                net_name: f"{part.name}.{net_name}"
                for net_name in part.nets
                if net_name not in io_names
            }
        for port_name in part.primary_inputs:
            if port_name not in merged.primary_outputs:
                # A port driven by another part becomes internal.
                driven_elsewhere = any(
                    port_name in other.primary_outputs for other in parts if other is not part
                )
                if not driven_elsewhere:
                    merged.add_port(port_name, PortDirection.INPUT)
        for port_name in part.primary_outputs:
            merged.add_port(port_name, PortDirection.OUTPUT)
        for cell in part.iter_cells():
            cell_name = f"{part.name}.{cell.name}" if prefix_nets else cell.name
            connections = {
                pin: rename.get(net_name, net_name) for pin, net_name in cell.connections.items()
            }
            merged.add_cell(cell_name, cell.cell_type, connections, **dict(cell.attributes))
    return merged
