"""Convenience builder for gate-level netlists.

:class:`NetlistBuilder` wraps :class:`~repro.netlist.netlist.Netlist` with one
method per common gate so circuit generators read naturally::

    b = NetlistBuilder("half_adder")
    a, bq = b.inputs("a", "b")
    s = b.xor2(a, bq, out="sum")
    c = b.and2(a, bq, out="carry")
    b.outputs("sum", "carry")
    netlist = b.build()

Every gate method returns the name of the output net, so calls compose.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.netlist.celltypes import Library, STANDARD_LIBRARY
from repro.netlist.netlist import Netlist, PortDirection


class NetlistBuilder:
    """Incrementally build a :class:`Netlist` with auto-generated names."""

    def __init__(self, name: str, library: Library | None = None) -> None:
        self.netlist = Netlist(name, library=library or STANDARD_LIBRARY)
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # Ports and nets
    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        self.netlist.add_port(name, PortDirection.INPUT)
        return name

    def inputs(self, *names: str) -> tuple[str, ...]:
        return tuple(self.input(name) for name in names)

    def output(self, name: str) -> str:
        self.netlist.add_port(name, PortDirection.OUTPUT)
        return name

    def outputs(self, *names: str) -> tuple[str, ...]:
        return tuple(self.output(name) for name in names)

    def net(self, name: str | None = None, hint: str = "n") -> str:
        """Return *name*, or a fresh unique net name derived from *hint*."""
        if name is not None:
            self.netlist.add_net(name)
            return name
        while True:
            candidate = f"{hint}{next(self._counter)}"
            if candidate not in self.netlist.nets:
                self.netlist.add_net(candidate)
                return candidate

    def _unique_cell_name(self, hint: str) -> str:
        while True:
            candidate = f"{hint}_{next(self._counter)}"
            if candidate not in self.netlist.cells:
                return candidate

    # ------------------------------------------------------------------
    # Generic gate instantiation
    # ------------------------------------------------------------------
    def gate(
        self,
        type_name: str,
        inputs: Sequence[str],
        out: str | None = None,
        name: str | None = None,
        **attributes: object,
    ) -> str:
        """Instantiate a single-output library gate and return its output net."""
        cell_type = self.netlist.library.get(type_name)
        if len(cell_type.outputs) != 1:
            raise ValueError(f"gate() only supports single-output cells, not {type_name}")
        if len(inputs) != len(cell_type.inputs):
            raise ValueError(
                f"{type_name} expects {len(cell_type.inputs)} inputs, got {len(inputs)}"
            )
        out_net = out if out is not None else self.net(hint=type_name.lower())
        if out is not None:
            self.netlist.add_net(out)
        cell_name = name if name is not None else self._unique_cell_name(type_name.lower())
        connections = dict(zip(cell_type.inputs, inputs))
        connections[cell_type.outputs[0]] = out_net
        self.netlist.add_cell(cell_name, cell_type, connections, **attributes)
        return out_net

    # ------------------------------------------------------------------
    # Named helpers for the common gates
    # ------------------------------------------------------------------
    def inv(self, a: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("INV", [a], out=out, name=name)

    def buf(self, a: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("BUF", [a], out=out, name=name)

    def and2(self, a: str, b: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("AND2", [a, b], out=out, name=name)

    def and3(self, a: str, b: str, c: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("AND3", [a, b, c], out=out, name=name)

    def or2(self, a: str, b: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("OR2", [a, b], out=out, name=name)

    def or3(self, a: str, b: str, c: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("OR3", [a, b, c], out=out, name=name)

    def or4(self, a: str, b: str, c: str, d: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("OR4", [a, b, c, d], out=out, name=name)

    def nand2(self, a: str, b: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("NAND2", [a, b], out=out, name=name)

    def nor2(self, a: str, b: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("NOR2", [a, b], out=out, name=name)

    def xor2(self, a: str, b: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("XOR2", [a, b], out=out, name=name)

    def xor3(self, a: str, b: str, c: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("XOR3", [a, b, c], out=out, name=name)

    def maj3(self, a: str, b: str, c: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("MAJ3", [a, b, c], out=out, name=name)

    def mux2(self, s: str, d0: str, d1: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("MUX2", [s, d0, d1], out=out, name=name)

    def c2(self, a: str, b: str, out: str | None = None, name: str | None = None) -> str:
        """Two-input Muller C-element."""
        return self.gate("C2", [a, b], out=out, name=name)

    def c3(self, a: str, b: str, c: str, out: str | None = None, name: str | None = None) -> str:
        """Three-input Muller C-element."""
        return self.gate("C3", [a, b, c], out=out, name=name)

    def c2r(self, a: str, b: str, reset: str, out: str | None = None, name: str | None = None) -> str:
        """Two-input C-element with dominant reset."""
        return self.gate("C2R", [a, b, reset], out=out, name=name)

    def latch(self, d: str, en: str, out: str | None = None, name: str | None = None) -> str:
        """Transparent latch (transparent when *en* is high)."""
        return self.gate("LATCH", [d, en], out=out, name=name)

    def sr_latch(self, s: str, r: str, out: str | None = None, name: str | None = None) -> str:
        return self.gate("SRLATCH", [s, r], out=out, name=name)

    def or_tree(self, nets: Iterable[str], out: str | None = None, hint: str = "ortree") -> str:
        """An OR reduction tree over an arbitrary number of nets."""
        nets = list(nets)
        if not nets:
            raise ValueError("or_tree needs at least one net")
        while len(nets) > 1:
            next_level = []
            for index in range(0, len(nets) - 1, 2):
                target = out if (len(nets) == 2 and out is not None) else None
                next_level.append(self.or2(nets[index], nets[index + 1], out=target))
            if len(nets) % 2:
                next_level.append(nets[-1])
            nets = next_level
        if out is not None and nets[0] != out:
            return self.buf(nets[0], out=out)
        return nets[0]

    def c_tree(self, nets: Iterable[str], out: str | None = None) -> str:
        """A Muller C-element reduction tree (joint completion of many signals)."""
        nets = list(nets)
        if not nets:
            raise ValueError("c_tree needs at least one net")
        while len(nets) > 1:
            next_level = []
            for index in range(0, len(nets) - 1, 2):
                target = out if (len(nets) == 2 and out is not None) else None
                next_level.append(self.c2(nets[index], nets[index + 1], out=target))
            if len(nets) % 2:
                next_level.append(nets[-1])
            nets = next_level
        if out is not None and nets[0] != out:
            return self.buf(nets[0], out=out)
        return nets[0]

    def build(self) -> Netlist:
        """Return the underlying netlist."""
        return self.netlist
