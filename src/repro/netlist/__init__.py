"""Gate-level netlist substrate.

The CAD flow and the simulators consume designs expressed as flat gate-level
netlists:

* :mod:`~repro.netlist.celltypes` -- the primitive gate library.  It contains
  ordinary combinational gates (AND/OR/XOR/...), and the asynchronous
  primitives the paper's styles rely on: Muller C-elements (symmetric and
  asymmetric), transparent latches and set/reset latches.  Sequential cells
  are described by next-state truth tables whose state variable is the cell's
  own output, mirroring how the target architecture implements them (a LUT
  output looped back through the PLB interconnection matrix).
* :mod:`~repro.netlist.netlist` -- :class:`Cell`, :class:`Net` and
  :class:`Netlist`, a flat multi-driver-checked netlist with named top-level
  ports.
* :mod:`~repro.netlist.builder` -- a convenience builder with one method per
  library gate.
* :mod:`~repro.netlist.verilog` -- structural-Verilog export (for inspection
  and interoperability).
* :mod:`~repro.netlist.dot` -- Graphviz export used by the examples.
* :mod:`~repro.netlist.validate` -- structural lint checks (dangling nets,
  multiple drivers, combinational loops outside state cells, ...).
"""

from repro.netlist.celltypes import CellType, Library, standard_library
from repro.netlist.netlist import Cell, Net, Netlist, PortDirection
from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import NetlistIssue, validate_netlist
from repro.netlist.verilog import to_verilog
from repro.netlist.dot import to_dot

__all__ = [
    "CellType",
    "Library",
    "standard_library",
    "Cell",
    "Net",
    "Netlist",
    "PortDirection",
    "NetlistBuilder",
    "NetlistIssue",
    "validate_netlist",
    "to_verilog",
    "to_dot",
]
