"""The primitive cell library.

Every :class:`CellType` describes one primitive: its input pins, its output
pins, one truth table per output, and whether it is *state holding*.  For
state-holding cells the truth table of the stateful output includes the output
itself among its inputs (the conventional ``y`` feedback variable); the
simulator and the technology mapper treat that variable specially.

The default :func:`standard_library` contains everything the style generators
in :mod:`repro.styles` emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.logic.functions import (
    and_table,
    buf_table,
    c_element_table,
    latch_table,
    majority_table,
    mux_table,
    nand_table,
    nor_table,
    not_table,
    or_table,
    sr_latch_table,
    xnor_table,
    xor_table,
)
from repro.logic.truthtable import TruthTable

#: Name used for the implicit feedback/state variable of sequential cells.
STATE_VARIABLE = "y"


@dataclass(frozen=True)
class CellType:
    """A primitive cell.

    Parameters
    ----------
    name:
        Library name, e.g. ``"AND2"`` or ``"C2"``.
    inputs:
        Ordered input pin names.
    outputs:
        Ordered output pin names.
    tables:
        One truth table per output pin.  For state-holding outputs the table
        may reference :data:`STATE_VARIABLE`, which resolves to that output's
        previous value.
    delay:
        Nominal propagation delay in picoseconds, used by the gate-level
        simulator and the timing model.
    is_sequential:
        True when at least one output table references the state variable.
    area:
        Abstract area cost (arbitrary units) used by the baselines' area model.
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    tables: Mapping[str, TruthTable]
    delay: int = 100
    is_sequential: bool = False
    area: float = 1.0

    def __post_init__(self) -> None:
        missing = [pin for pin in self.outputs if pin not in self.tables]
        if missing:
            raise ValueError(f"cell {self.name}: outputs without truth tables: {missing}")
        for pin, table in self.tables.items():
            if pin not in self.outputs:
                raise ValueError(f"cell {self.name}: table for unknown output {pin!r}")
            allowed = set(self.inputs) | {STATE_VARIABLE}
            unknown = [name for name in table.inputs if name not in allowed]
            if unknown:
                raise ValueError(
                    f"cell {self.name}: table of {pin!r} uses unknown inputs {unknown}"
                )

    @property
    def fanin(self) -> int:
        return len(self.inputs)

    def table_for(self, output: str) -> TruthTable:
        return self.tables[output]

    def uses_state(self, output: str) -> bool:
        """True when *output* is state holding (its table reads ``y``)."""
        return STATE_VARIABLE in self.tables[output].inputs


@dataclass
class Library:
    """A named collection of :class:`CellType` objects."""

    name: str
    cells: dict[str, CellType] = field(default_factory=dict)

    def add(self, cell: CellType) -> CellType:
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell type {cell.name!r} in library {self.name!r}")
        self.cells[cell.name] = cell
        return cell

    def get(self, name: str) -> CellType:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(f"unknown cell type {name!r} in library {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self):
        return iter(self.cells.values())

    def sequential_cells(self) -> list[CellType]:
        return [cell for cell in self.cells.values() if cell.is_sequential]


def _combinational(
    name: str, table: TruthTable, delay: int = 100, area: float = 1.0
) -> CellType:
    return CellType(
        name=name,
        inputs=table.inputs,
        outputs=("z",),
        tables={"z": table},
        delay=delay,
        is_sequential=False,
        area=area,
    )


def _sequential(
    name: str, table: TruthTable, delay: int = 120, area: float = 2.0
) -> CellType:
    data_inputs = tuple(pin for pin in table.inputs if pin != STATE_VARIABLE)
    return CellType(
        name=name,
        inputs=data_inputs,
        outputs=("z",),
        tables={"z": table.rename({STATE_VARIABLE: STATE_VARIABLE})},
        delay=delay,
        is_sequential=True,
        area=area,
    )


def standard_library() -> Library:
    """Build the default gate library used throughout the reproduction.

    The library contains:

    * inverters/buffers, 2- and 3-input AND/OR/NAND/NOR, 2/3-input XOR/XNOR,
      a 3-input majority gate, and a 2:1 mux;
    * Muller C-elements with 2 and 3 inputs (``C2``, ``C3``) plus
      reset-dominant variants (``C2R``);
    * transparent latch (``LATCH``) and set/reset latch (``SRLATCH``) used by
      the micropipeline style.
    """
    library = Library(name="repro-std")

    library.add(_combinational("BUF", buf_table("a"), delay=60, area=0.5))
    library.add(_combinational("INV", not_table("a"), delay=50, area=0.5))

    for arity in (2, 3, 4):
        names = tuple(f"a{i}" for i in range(arity))
        library.add(_combinational(f"AND{arity}", and_table(inputs=names), area=arity * 0.75))
        library.add(_combinational(f"OR{arity}", or_table(inputs=names), area=arity * 0.75))
        library.add(_combinational(f"NAND{arity}", nand_table(inputs=names), area=arity * 0.5))
        library.add(_combinational(f"NOR{arity}", nor_table(inputs=names), area=arity * 0.5))

    for arity in (2, 3):
        names = tuple(f"a{i}" for i in range(arity))
        library.add(_combinational(f"XOR{arity}", xor_table(inputs=names), delay=140, area=arity * 1.5))
        library.add(_combinational(f"XNOR{arity}", xnor_table(inputs=names), delay=140, area=arity * 1.5))

    library.add(_combinational("MAJ3", majority_table(inputs=("a0", "a1", "a2")), area=2.5))
    library.add(_combinational("MUX2", mux_table("s", "d0", "d1"), area=2.0))

    # Matched delay element (behaviourally a buffer with a large delay).  On
    # the target architecture this maps to the PLB's programmable delay
    # element; instances can override the delay via the ``delay`` attribute.
    library.add(_combinational("DELAY", buf_table("a"), delay=400, area=1.0))

    # Asynchronous primitives -------------------------------------------
    library.add(
        _sequential("C2", c_element_table(("a0", "a1")), delay=150, area=3.0)
    )
    library.add(
        _sequential("C3", c_element_table(("a0", "a1", "a2")), delay=170, area=4.0)
    )

    # Reset-dominant two-input C-element: extra input r forces the output low.
    base_c2 = c_element_table(("a0", "a1"))
    reset_c2 = TruthTable.from_function(
        ("a0", "a1", "r", STATE_VARIABLE),
        lambda a0, a1, r, y: 0 if r else base_c2.evaluate({"a0": a0, "a1": a1, STATE_VARIABLE: y}),
        name="c2r",
    )
    library.add(_sequential("C2R", reset_c2, delay=160, area=3.5))

    library.add(_sequential("LATCH", latch_table("d", "en"), delay=130, area=2.5))
    library.add(_sequential("SRLATCH", sr_latch_table("s", "r"), delay=130, area=2.5))

    return library


#: Module-level singleton used as the default everywhere.
STANDARD_LIBRARY = standard_library()
