"""Structural lint checks on netlists.

The checks here catch the mistakes that matter for the rest of the flow:
undriven nets feeding logic, dangling outputs, combinational loops that do not
go through a state-holding cell (those are almost always bugs -- intentional
memory-by-looping is expressed with the sequential library cells or, after
mapping, with explicit LE feedback), and unknown cell types.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class NetlistIssue:
    """One lint finding."""

    severity: str  # "error" or "warning"
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.code}: {self.message}"


def validate_netlist(netlist: Netlist, allow_dangling_outputs: bool = True) -> list[NetlistIssue]:
    """Run all structural checks and return the list of findings.

    Errors indicate the netlist cannot be meaningfully simulated or mapped;
    warnings are suspicious but tolerated constructs.
    """
    issues: list[NetlistIssue] = []

    issues.extend(_check_drivers(netlist))
    issues.extend(_check_dangling(netlist, allow_dangling_outputs))
    issues.extend(_check_ports(netlist))
    issues.extend(_check_combinational_loops(netlist))

    return issues


def has_errors(issues: list[NetlistIssue]) -> bool:
    return any(issue.severity == "error" for issue in issues)


def _check_drivers(netlist: Netlist) -> list[NetlistIssue]:
    issues = []
    for net in netlist.iter_nets():
        if net.driver is None and not net.is_primary_input and net.sinks:
            issues.append(
                NetlistIssue(
                    severity="error",
                    code="undriven-net",
                    message=f"net {net.name!r} has sinks but no driver and is not a primary input",
                )
            )
    return issues


def _check_dangling(netlist: Netlist, allow_dangling_outputs: bool) -> list[NetlistIssue]:
    issues = []
    for net in netlist.iter_nets():
        if net.driver is not None and not net.sinks and not net.is_primary_output:
            severity = "warning" if allow_dangling_outputs else "error"
            issues.append(
                NetlistIssue(
                    severity=severity,
                    code="dangling-net",
                    message=f"net {net.name!r} is driven but read by nothing",
                )
            )
    return issues


def _check_ports(netlist: Netlist) -> list[NetlistIssue]:
    issues = []
    for name in netlist.primary_outputs:
        net = netlist.net(name)
        if net.driver is None and not net.is_primary_input:
            issues.append(
                NetlistIssue(
                    severity="error",
                    code="undriven-output",
                    message=f"primary output {name!r} is not driven",
                )
            )
    for name in netlist.primary_inputs:
        net = netlist.net(name)
        if not net.sinks and not net.is_primary_output:
            issues.append(
                NetlistIssue(
                    severity="warning",
                    code="unused-input",
                    message=f"primary input {name!r} is not read",
                )
            )
    return issues


def _check_combinational_loops(netlist: Netlist) -> list[NetlistIssue]:
    try:
        netlist.topological_order(ignore_sequential_feedback=True)
    except ValueError as exc:
        return [
            NetlistIssue(
                severity="error",
                code="combinational-loop",
                message=str(exc),
            )
        ]
    return []
