"""Structural lint checks on netlists (compatibility shim).

The checks themselves now live in the rule-based verifier
(:mod:`repro.verify.netlist_rules`, rules ``NET001``–``NET005``); this
module keeps the historical entry points stable:

* :func:`validate_netlist` keeps its signature and the exact legacy codes
  and messages (``undriven-net``, ``dangling-net``, ``undriven-output``,
  ``unused-input``, ``combinational-loop``);
* :class:`NetlistIssue` additionally carries the stable rule code of the
  verifier rule that produced it (``issue.rule``, e.g. ``"NET001"``).

One behavioural improvement rides along: the combinational-loop finding now
reports the cycle's actual cell path (``u1 -> u2 -> u1``) instead of just
the set of cells stuck on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.netlist import Netlist

#: The verifier rules this shim exposes, in legacy reporting order.
_LEGACY_RULES = ("NET001", "NET002", "NET003", "NET004", "NET005")


@dataclass(frozen=True)
class NetlistIssue:
    """One lint finding."""

    severity: str  # "error" or "warning"
    code: str
    message: str
    #: Stable rule code in the :mod:`repro.verify` registry (e.g. "NET005").
    rule: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.code}: {self.message}"


def validate_netlist(netlist: Netlist, allow_dangling_outputs: bool = True) -> list[NetlistIssue]:
    """Run all structural checks and return the list of findings.

    Errors indicate the netlist cannot be meaningfully simulated or mapped;
    warnings are suspicious but tolerated constructs.
    """
    from repro.verify.core import LintConfig, LintContext, run_rules

    config = LintConfig(
        enabled=frozenset(_LEGACY_RULES),
        severity_overrides={} if allow_dangling_outputs else {"NET002": "error"},
    )
    report = run_rules(LintContext(name=netlist.name, netlist=netlist), config)
    order = {code: index for index, code in enumerate(_LEGACY_RULES)}
    findings = sorted(report.findings, key=lambda f: order.get(f.rule, len(order)))
    return [
        NetlistIssue(
            severity=finding.severity,
            code=finding.name,
            message=finding.message,
            rule=finding.rule,
        )
        for finding in findings
    ]


def has_errors(issues: list[NetlistIssue]) -> bool:
    return any(issue.severity == "error" for issue in issues)
