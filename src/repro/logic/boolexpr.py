"""A small Boolean-expression AST with a recursive-descent parser.

Expressions are used by tests, examples and the style generators to specify
functions symbolically; they can be lowered to
:class:`~repro.logic.truthtable.TruthTable` objects with
:meth:`Expr.to_truth_table`.

Grammar accepted by :func:`parse_expr` (usual precedence, ``!`` strongest)::

    expr    := xorterm ( ("|" | "+") xorterm )*
    xorterm := term ( "^" term )*
    term    := factor ( ("&" | "*") factor )*
    factor  := "!" factor | "(" expr ")" | "0" | "1" | identifier
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.logic.truthtable import TruthTable


class Expr:
    """Base class of all Boolean expression nodes."""

    def variables(self) -> tuple[str, ...]:
        """All variable names appearing in the expression, in first-seen order."""
        seen: list[str] = []
        self._collect(seen)
        return tuple(seen)

    def _collect(self, seen: list[str]) -> None:
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        raise NotImplementedError

    def to_truth_table(self, inputs: Sequence[str] | None = None, name: str = "") -> TruthTable:
        """Lower the expression to a truth table.

        When *inputs* is omitted the variables of the expression (in first-seen
        order) are used.
        """
        names = tuple(inputs) if inputs is not None else self.variables()
        missing = [v for v in self.variables() if v not in names]
        if missing:
            raise ValueError(f"inputs {names!r} missing expression variables {missing!r}")
        return TruthTable.from_function(
            names, lambda *values: self.evaluate(dict(zip(names, values))), name=name
        )

    # Operator sugar -----------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class Var(Expr):
    """A named Boolean variable."""

    name: str

    def _collect(self, seen: list[str]) -> None:
        if self.name not in seen:
            seen.append(self.name)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return 1 if assignment[self.name] else 0

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A constant 0 or 1."""

    value: int

    def _collect(self, seen: list[str]) -> None:
        return None

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return 1 if self.value else 0

    def __str__(self) -> str:
        return str(1 if self.value else 0)


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def _collect(self, seen: list[str]) -> None:
        self.operand._collect(seen)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return 1 - self.operand.evaluate(assignment)

    def __str__(self) -> str:
        return f"!{self.operand}"


class _NaryExpr(Expr):
    """Shared implementation of associative n-ary operators."""

    symbol = "?"

    def __init__(self, *operands: Expr) -> None:
        if len(operands) < 2:
            raise ValueError(f"{type(self).__name__} needs at least two operands")
        self.operands = tuple(operands)

    def _collect(self, seen: list[str]) -> None:
        for operand in self.operands:
            operand._collect(seen)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.operands == other.operands  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.operands))

    def __str__(self) -> str:
        return "(" + f" {self.symbol} ".join(str(op) for op in self.operands) + ")"


class And(_NaryExpr):
    symbol = "&"

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        for operand in self.operands:
            if not operand.evaluate(assignment):
                return 0
        return 1


class Or(_NaryExpr):
    symbol = "|"

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        for operand in self.operands:
            if operand.evaluate(assignment):
                return 1
        return 0


class Xor(_NaryExpr):
    symbol = "^"

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        result = 0
        for operand in self.operands:
            result ^= operand.evaluate(assignment)
        return result


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class _Tokenizer:
    """Tokenise a Boolean expression string."""

    symbols = {"(", ")", "!", "&", "*", "|", "+", "^"}

    def __init__(self, text: str) -> None:
        self.tokens = list(self._scan(text))
        self.position = 0

    def _scan(self, text: str) -> Iterator[str]:
        index = 0
        while index < len(text):
            char = text[index]
            if char.isspace():
                index += 1
                continue
            if char in self.symbols:
                yield char
                index += 1
                continue
            if char.isalnum() or char == "_":
                start = index
                while index < len(text) and (text[index].isalnum() or text[index] in "_.[]"):
                    index += 1
                yield text[start:index]
                continue
            raise ValueError(f"unexpected character {char!r} in expression {text!r}")

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def pop(self) -> str:
        token = self.peek()
        if token is None:
            raise ValueError("unexpected end of expression")
        self.position += 1
        return token


def parse_expr(text: str) -> Expr:
    """Parse a Boolean expression string into an :class:`Expr` tree."""
    tokenizer = _Tokenizer(text)
    expr = _parse_or(tokenizer)
    if tokenizer.peek() is not None:
        raise ValueError(f"trailing tokens after expression: {tokenizer.tokens[tokenizer.position:]}")
    return expr


def _parse_or(tok: _Tokenizer) -> Expr:
    operands = [_parse_xor(tok)]
    while tok.peek() in ("|", "+"):
        tok.pop()
        operands.append(_parse_xor(tok))
    return operands[0] if len(operands) == 1 else Or(*operands)


def _parse_xor(tok: _Tokenizer) -> Expr:
    operands = [_parse_and(tok)]
    while tok.peek() == "^":
        tok.pop()
        operands.append(_parse_and(tok))
    return operands[0] if len(operands) == 1 else Xor(*operands)


def _parse_and(tok: _Tokenizer) -> Expr:
    operands = [_parse_factor(tok)]
    while tok.peek() in ("&", "*"):
        tok.pop()
        operands.append(_parse_factor(tok))
    return operands[0] if len(operands) == 1 else And(*operands)


def _parse_factor(tok: _Tokenizer) -> Expr:
    token = tok.pop()
    if token == "!":
        return Not(_parse_factor(tok))
    if token == "(":
        inner = _parse_or(tok)
        closing = tok.pop()
        if closing != ")":
            raise ValueError(f"expected ')', got {closing!r}")
        return inner
    if token == "0":
        return Const(0)
    if token == "1":
        return Const(1)
    if token in _Tokenizer.symbols:
        raise ValueError(f"unexpected token {token!r}")
    return Var(token)
