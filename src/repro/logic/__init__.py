"""Boolean-logic substrate.

This package provides the small amount of Boolean machinery the rest of the
reproduction relies on:

* :class:`~repro.logic.truthtable.TruthTable` -- an immutable truth table over
  a named, ordered list of input variables.  LUT configurations in the fabric
  model (:mod:`repro.core`) are truth tables, and the technology mapper
  (:mod:`repro.cad.techmap`) manipulates them when it collapses gate cones
  into LUT7-3 functions.
* :mod:`~repro.logic.boolexpr` -- a tiny Boolean-expression AST with a parser,
  used by tests, examples and the style generators to describe functions
  symbolically.
* :mod:`~repro.logic.functions` -- a library of standard functions (AND, OR,
  XOR, majority, mux, Muller C-element next-state functions, ...).
* :mod:`~repro.logic.minimise` -- a small cube-based single-output two-level
  minimiser used for reporting and for hazard analysis (it exposes the prime
  implicants of a function).
"""

from repro.logic.truthtable import TruthTable
from repro.logic.boolexpr import (
    And,
    Const,
    Expr,
    Not,
    Or,
    Var,
    Xor,
    parse_expr,
)
from repro.logic.functions import (
    and_table,
    c_element_table,
    generalized_c_table,
    latch_table,
    majority_table,
    mux_table,
    nand_table,
    nor_table,
    not_table,
    or_table,
    xnor_table,
    xor_table,
)
from repro.logic.minimise import Cube, prime_implicants, minimise_sop

__all__ = [
    "TruthTable",
    "Expr",
    "Var",
    "Const",
    "And",
    "Or",
    "Not",
    "Xor",
    "parse_expr",
    "and_table",
    "or_table",
    "not_table",
    "nand_table",
    "nor_table",
    "xor_table",
    "xnor_table",
    "majority_table",
    "mux_table",
    "latch_table",
    "c_element_table",
    "generalized_c_table",
    "Cube",
    "prime_implicants",
    "minimise_sop",
]
