"""Library of standard Boolean functions as truth tables.

These helpers are used everywhere a LUT configuration or a gate behaviour is
needed: the gate library (:mod:`repro.netlist.celltypes`), the style
generators (:mod:`repro.styles`) and the technology mapper.

State-holding elements (Muller C-element, transparent latch) are expressed as
*next-state* functions: the current output appears as an explicit input
(conventionally called ``y``), which is exactly how the paper's architecture
realises them -- by looping a combinational LUT output back through the PLB's
interconnection matrix (Section 3 of the paper).
"""

from __future__ import annotations

from typing import Sequence

from repro.logic.truthtable import TruthTable


def _names(prefix: str, count: int) -> tuple[str, ...]:
    return tuple(f"{prefix}{index}" for index in range(count))


def and_table(arity: int = 2, inputs: Sequence[str] | None = None) -> TruthTable:
    """N-input AND."""
    names = tuple(inputs) if inputs is not None else _names("a", arity)
    return TruthTable.from_function(names, lambda *v: all(v), name=f"and{len(names)}")


def or_table(arity: int = 2, inputs: Sequence[str] | None = None) -> TruthTable:
    """N-input OR."""
    names = tuple(inputs) if inputs is not None else _names("a", arity)
    return TruthTable.from_function(names, lambda *v: any(v), name=f"or{len(names)}")


def nand_table(arity: int = 2, inputs: Sequence[str] | None = None) -> TruthTable:
    """N-input NAND."""
    names = tuple(inputs) if inputs is not None else _names("a", arity)
    return TruthTable.from_function(names, lambda *v: not all(v), name=f"nand{len(names)}")


def nor_table(arity: int = 2, inputs: Sequence[str] | None = None) -> TruthTable:
    """N-input NOR."""
    names = tuple(inputs) if inputs is not None else _names("a", arity)
    return TruthTable.from_function(names, lambda *v: not any(v), name=f"nor{len(names)}")


def xor_table(arity: int = 2, inputs: Sequence[str] | None = None) -> TruthTable:
    """N-input XOR (odd parity)."""
    names = tuple(inputs) if inputs is not None else _names("a", arity)
    return TruthTable.from_function(names, lambda *v: sum(v) % 2, name=f"xor{len(names)}")


def xnor_table(arity: int = 2, inputs: Sequence[str] | None = None) -> TruthTable:
    """N-input XNOR (even parity)."""
    names = tuple(inputs) if inputs is not None else _names("a", arity)
    return TruthTable.from_function(names, lambda *v: (sum(v) + 1) % 2, name=f"xnor{len(names)}")


def not_table(input_name: str = "a") -> TruthTable:
    """Inverter."""
    return TruthTable.from_function((input_name,), lambda a: 1 - a, name="not")


def buf_table(input_name: str = "a") -> TruthTable:
    """Non-inverting buffer."""
    return TruthTable.from_function((input_name,), lambda a: a, name="buf")


def majority_table(arity: int = 3, inputs: Sequence[str] | None = None) -> TruthTable:
    """Majority function (used for the full-adder carry)."""
    names = tuple(inputs) if inputs is not None else _names("a", arity)
    threshold = len(names) // 2 + 1
    return TruthTable.from_function(
        names, lambda *v: sum(v) >= threshold, name=f"maj{len(names)}"
    )


def mux_table(select: str = "s", zero: str = "d0", one: str = "d1") -> TruthTable:
    """2:1 multiplexer: output = d1 when s else d0."""
    return TruthTable.from_function(
        (select, zero, one), lambda s, d0, d1: d1 if s else d0, name="mux2"
    )


def c_element_table(
    inputs: Sequence[str] = ("a", "b"), state: str = "y"
) -> TruthTable:
    """Muller C-element next-state function.

    The output goes high when *all* inputs are high, goes low when all inputs
    are low, and otherwise holds its previous value (the *state* input).
    This is the canonical asynchronous memory element (Sparsø & Furber,
    "Principles of Asynchronous Circuit Design").
    """
    names = tuple(inputs) + (state,)

    def next_state(*values: int) -> int:
        data = values[:-1]
        previous = values[-1]
        if all(data):
            return 1
        if not any(data):
            return 0
        return previous

    return TruthTable.from_function(names, next_state, name=f"c{len(inputs)}")


def generalized_c_table(
    plus_inputs: Sequence[str],
    minus_inputs: Sequence[str],
    state: str = "y",
) -> TruthTable:
    """Asymmetric (generalised) C-element next-state function.

    The output rises when all ``plus`` inputs are 1 and falls when all
    ``minus`` inputs are 0; it holds otherwise.  Inputs listed in both groups
    behave like regular (symmetric) C-element inputs.
    """
    plus = tuple(plus_inputs)
    minus = tuple(minus_inputs)
    names: list[str] = []
    for name in plus + minus:
        if name not in names:
            names.append(name)
    names.append(state)

    def next_state(*values: int) -> int:
        assignment = dict(zip(names, values))
        previous = assignment[state]
        if all(assignment[name] for name in plus):
            return 1
        if not any(assignment[name] for name in minus):
            return 0
        return previous

    return TruthTable.from_function(tuple(names), next_state, name="gc")


def latch_table(data: str = "d", enable: str = "en", state: str = "y") -> TruthTable:
    """Transparent latch next-state function (transparent when *enable* = 1)."""
    return TruthTable.from_function(
        (data, enable, state),
        lambda d, en, y: d if en else y,
        name="latch",
    )


def sr_latch_table(set_name: str = "s", reset_name: str = "r", state: str = "y") -> TruthTable:
    """Set/reset latch next-state function (set dominant)."""
    return TruthTable.from_function(
        (set_name, reset_name, state),
        lambda s, r, y: 1 if s else (0 if r else y),
        name="sr_latch",
    )


def full_adder_sum_table(inputs: Sequence[str] = ("a", "b", "cin")) -> TruthTable:
    """Single-rail full-adder sum (3-input XOR)."""
    return xor_table(inputs=inputs)


def full_adder_carry_table(inputs: Sequence[str] = ("a", "b", "cin")) -> TruthTable:
    """Single-rail full-adder carry (3-input majority)."""
    return majority_table(inputs=inputs)
