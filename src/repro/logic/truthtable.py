"""Truth tables over named inputs.

A :class:`TruthTable` is the canonical representation of a single-output
Boolean function in this code base.  It stores the ordered list of input
variable names and a tuple of output bits indexed by the integer formed from
the input values, with ``inputs[0]`` the *least significant* bit of the index.

Truth tables are immutable and hashable so they can be used as dictionary keys
(e.g. when deduplicating LUT configurations in the bitstream generator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence


def _index_from_assignment(inputs: Sequence[str], assignment: Mapping[str, int]) -> int:
    """Return the row index of *assignment* with ``inputs[0]`` as LSB."""
    index = 0
    for position, name in enumerate(inputs):
        value = assignment[name]
        if value not in (0, 1):
            raise ValueError(f"value of {name!r} must be 0 or 1, got {value!r}")
        index |= (value & 1) << position
    return index


@dataclass(frozen=True)
class TruthTable:
    """An immutable single-output Boolean function.

    Parameters
    ----------
    inputs:
        Ordered input variable names.  ``inputs[0]`` is the least significant
        bit of the row index.
    bits:
        Tuple of ``2 ** len(inputs)`` output bits.
    name:
        Optional human-readable name used in reports.
    """

    inputs: tuple[str, ...]
    bits: tuple[int, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        expected = 1 << len(self.inputs)
        if len(self.bits) != expected:
            raise ValueError(
                f"truth table over {len(self.inputs)} inputs needs {expected} bits, "
                f"got {len(self.bits)}"
            )
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError(f"duplicate input names in {self.inputs!r}")
        for bit in self.bits:
            if bit not in (0, 1):
                raise ValueError(f"truth table bits must be 0/1, got {bit!r}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_function(
        cls,
        inputs: Sequence[str],
        function: Callable[..., int],
        name: str = "",
    ) -> "TruthTable":
        """Build a table by evaluating *function* on every input combination.

        The function is called with one positional ``int`` argument per input,
        in the order of *inputs*, and must return a value interpreted as a
        Boolean.
        """
        inputs = tuple(inputs)
        rows = 1 << len(inputs)
        bits = []
        for index in range(rows):
            args = [(index >> position) & 1 for position in range(len(inputs))]
            bits.append(1 if function(*args) else 0)
        return cls(inputs=inputs, bits=tuple(bits), name=name)

    @classmethod
    def from_minterms(
        cls, inputs: Sequence[str], minterms: Iterable[int], name: str = ""
    ) -> "TruthTable":
        """Build a table that is 1 exactly on the given row indices."""
        inputs = tuple(inputs)
        rows = 1 << len(inputs)
        wanted = set(minterms)
        out_of_range = [m for m in wanted if not 0 <= m < rows]
        if out_of_range:
            raise ValueError(f"minterms out of range for {len(inputs)} inputs: {out_of_range}")
        bits = tuple(1 if index in wanted else 0 for index in range(rows))
        return cls(inputs=inputs, bits=bits, name=name)

    @classmethod
    def constant(cls, value: int, inputs: Sequence[str] = (), name: str = "") -> "TruthTable":
        """A constant 0 or 1 function (optionally over dummy inputs)."""
        inputs = tuple(inputs)
        bits = tuple([1 if value else 0] * (1 << len(inputs)))
        return cls(inputs=inputs, bits=bits, name=name)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate the function for a full assignment of its inputs."""
        missing = [name for name in self.inputs if name not in assignment]
        if missing:
            raise KeyError(f"missing values for inputs {missing}")
        return self.bits[_index_from_assignment(self.inputs, assignment)]

    def __call__(self, **assignment: int) -> int:
        return self.evaluate(assignment)

    def evaluate_row(self, index: int) -> int:
        """Evaluate by raw row index (``inputs[0]`` is the LSB)."""
        return self.bits[index]

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.inputs)

    def minterms(self) -> list[int]:
        """Row indices where the function is 1."""
        return [index for index, bit in enumerate(self.bits) if bit]

    def is_constant(self) -> bool:
        return all(bit == self.bits[0] for bit in self.bits)

    def depends_on(self, variable: str) -> bool:
        """True if the output actually depends on *variable*."""
        if variable not in self.inputs:
            return False
        position = self.inputs.index(variable)
        mask = 1 << position
        for index in range(len(self.bits)):
            if index & mask:
                continue
            if self.bits[index] != self.bits[index | mask]:
                return True
        return False

    def support(self) -> tuple[str, ...]:
        """The subset of declared inputs the function really depends on."""
        return tuple(name for name in self.inputs if self.depends_on(name))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def cofactor(self, variable: str, value: int) -> "TruthTable":
        """Shannon cofactor with *variable* fixed to *value* (variable removed)."""
        if variable not in self.inputs:
            raise KeyError(f"{variable!r} is not an input of {self.inputs!r}")
        position = self.inputs.index(variable)
        remaining = tuple(name for name in self.inputs if name != variable)
        bits = []
        for new_index in range(1 << len(remaining)):
            low = new_index & ((1 << position) - 1)
            high = new_index >> position
            old_index = low | ((value & 1) << position) | (high << (position + 1))
            bits.append(self.bits[old_index])
        return TruthTable(inputs=remaining, bits=tuple(bits), name=self.name)

    def restrict(self, assignment: Mapping[str, int]) -> "TruthTable":
        """Cofactor against several variables at once."""
        table = self
        for variable, value in assignment.items():
            if variable in table.inputs:
                table = table.cofactor(variable, value)
        return table

    def remove_redundant_inputs(self) -> "TruthTable":
        """Drop declared inputs the function does not depend on."""
        table = self
        for variable in self.inputs:
            if not table.depends_on(variable) and variable in table.inputs:
                table = table.cofactor(variable, 0)
        return table

    def rename(self, mapping: Mapping[str, str]) -> "TruthTable":
        """Rename input variables; names not in *mapping* are kept."""
        new_inputs = tuple(mapping.get(name, name) for name in self.inputs)
        return TruthTable(inputs=new_inputs, bits=self.bits, name=self.name)

    def reorder(self, new_order: Sequence[str]) -> "TruthTable":
        """Return an equivalent table with inputs listed in *new_order*."""
        new_order = tuple(new_order)
        if set(new_order) != set(self.inputs) or len(new_order) != len(self.inputs):
            raise ValueError(
                f"new order {new_order!r} must be a permutation of {self.inputs!r}"
            )
        positions = [self.inputs.index(name) for name in new_order]
        bits = []
        for new_index in range(len(self.bits)):
            old_index = 0
            for new_position, old_position in enumerate(positions):
                bit = (new_index >> new_position) & 1
                old_index |= bit << old_position
            bits.append(self.bits[old_index])
        return TruthTable(inputs=new_order, bits=tuple(bits), name=self.name)

    def extend_inputs(self, inputs: Sequence[str]) -> "TruthTable":
        """Return an equivalent table declared over the superset *inputs*.

        The extra variables become don't-care inputs.  The relative order of
        the original variables inside *inputs* may differ; only membership is
        required.
        """
        inputs = tuple(inputs)
        missing = [name for name in self.inputs if name not in inputs]
        if missing:
            raise ValueError(f"target inputs {inputs!r} must contain {missing!r}")
        bits = []
        for index in range(1 << len(inputs)):
            assignment = {
                name: (index >> position) & 1 for position, name in enumerate(inputs)
            }
            bits.append(self.evaluate(assignment))
        return TruthTable(inputs=inputs, bits=tuple(bits), name=self.name)

    def compose(self, substitutions: Mapping[str, "TruthTable"]) -> "TruthTable":
        """Substitute input variables by whole functions.

        Variables not present in *substitutions* stay as free inputs.  The
        resulting input list is the union (in first-seen order) of the free
        inputs and the inputs of the substituted functions.
        """
        new_inputs: list[str] = []
        for name in self.inputs:
            if name in substitutions:
                for sub_name in substitutions[name].inputs:
                    if sub_name not in new_inputs:
                        new_inputs.append(sub_name)
            elif name not in new_inputs:
                new_inputs.append(name)

        def evaluate(*values: int) -> int:
            assignment = dict(zip(new_inputs, values))
            inner = {}
            for name in self.inputs:
                if name in substitutions:
                    inner[name] = substitutions[name].evaluate(assignment)
                else:
                    inner[name] = assignment[name]
            return self.evaluate(inner)

        return TruthTable.from_function(new_inputs, evaluate, name=self.name)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _binary(self, other: "TruthTable", op: Callable[[int, int], int], name: str) -> "TruthTable":
        union: list[str] = list(self.inputs)
        for variable in other.inputs:
            if variable not in union:
                union.append(variable)
        left = self.extend_inputs(union)
        right = other.extend_inputs(union)
        bits = tuple(op(a, b) for a, b in zip(left.bits, right.bits))
        return TruthTable(inputs=tuple(union), bits=bits, name=name)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, lambda a, b: a & b, "and")

    def __or__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, lambda a, b: a | b, "or")

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        return self._binary(other, lambda a, b: a ^ b, "xor")

    def __invert__(self) -> "TruthTable":
        return TruthTable(
            inputs=self.inputs,
            bits=tuple(1 - bit for bit in self.bits),
            name=f"not_{self.name}" if self.name else "not",
        )

    def equivalent(self, other: "TruthTable") -> bool:
        """Functional equivalence, ignoring input ordering and redundant inputs."""
        left = self.remove_redundant_inputs()
        right = other.remove_redundant_inputs()
        if set(left.support()) != set(right.support()):
            return False
        if not left.inputs:
            return left.bits == right.bits
        right = right.extend_inputs(left.inputs)
        return left.bits == right.bits

    # ------------------------------------------------------------------
    # Serialisation helpers
    # ------------------------------------------------------------------
    def to_config_bits(self) -> tuple[int, ...]:
        """The raw bits in LUT-configuration order (row 0 first)."""
        return self.bits

    def to_dict(self) -> dict:
        return {"inputs": list(self.inputs), "bits": list(self.bits), "name": self.name}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TruthTable":
        return cls(
            inputs=tuple(data["inputs"]),
            bits=tuple(int(b) for b in data["bits"]),
            name=str(data.get("name", "")),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "f"
        return f"{label}({', '.join(self.inputs)})={''.join(str(b) for b in self.bits)}"
