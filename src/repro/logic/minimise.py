"""A small cube-based two-level minimiser (Quine–McCluskey style).

The minimiser is intentionally simple -- the LUTs of the target architecture
are configured directly from truth tables so minimisation is never required
for correctness.  It is used by:

* the hazard analyser (:mod:`repro.sim.hazards`), which needs the prime
  implicants of a function to check for static-1 hazard cover, and
* the reporting code, which prints compact sum-of-products expressions for
  mapped LUT functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.logic.truthtable import TruthTable


@dataclass(frozen=True)
class Cube:
    """A product term over n variables.

    ``care`` has a 1 for every variable that appears in the term and ``value``
    gives the required polarity for those variables (bits of ``value`` outside
    ``care`` must be 0).
    """

    care: int
    value: int
    width: int

    def __post_init__(self) -> None:
        if self.value & ~self.care:
            raise ValueError("cube value has bits outside its care set")

    def covers(self, minterm: int) -> bool:
        """True if the cube contains the given minterm index."""
        return (minterm & self.care) == self.value

    def literal_count(self) -> int:
        return bin(self.care).count("1")

    def try_merge(self, other: "Cube") -> "Cube | None":
        """Combine two cubes differing in exactly one cared literal."""
        if self.width != other.width or self.care != other.care:
            return None
        difference = self.value ^ other.value
        if bin(difference).count("1") != 1:
            return None
        new_care = self.care & ~difference
        return Cube(care=new_care, value=self.value & new_care, width=self.width)

    def to_expression(self, inputs: Sequence[str]) -> str:
        """Render the cube as a product of literals over *inputs* (LSB first)."""
        literals = []
        for position, name in enumerate(inputs):
            mask = 1 << position
            if not self.care & mask:
                continue
            literals.append(name if self.value & mask else f"!{name}")
        return " & ".join(literals) if literals else "1"


def _initial_cubes(minterms: Iterable[int], width: int) -> list[Cube]:
    full_care = (1 << width) - 1
    return [Cube(care=full_care, value=minterm, width=width) for minterm in sorted(set(minterms))]


def prime_implicants(table: TruthTable) -> list[Cube]:
    """Compute all prime implicants of *table* (classic QM merging)."""
    width = table.arity
    current = _initial_cubes(table.minterms(), width)
    primes: list[Cube] = []
    while current:
        merged_flags = [False] * len(current)
        next_level: list[Cube] = []
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                merged = current[i].try_merge(current[j])
                if merged is None:
                    continue
                merged_flags[i] = True
                merged_flags[j] = True
                if merged not in next_level:
                    next_level.append(merged)
        for flag, cube in zip(merged_flags, current):
            if not flag and cube not in primes:
                primes.append(cube)
        current = next_level
    return primes


def minimise_sop(table: TruthTable) -> list[Cube]:
    """Greedy prime-implicant cover of the ON-set of *table*.

    Essential primes are selected first, then remaining minterms are covered
    greedily by the prime covering the most uncovered minterms.  The result is
    a valid (not necessarily globally minimal) cover.
    """
    minterms = set(table.minterms())
    if not minterms:
        return []
    primes = prime_implicants(table)

    cover_map = {prime: {m for m in minterms if prime.covers(m)} for prime in primes}

    chosen: list[Cube] = []
    uncovered = set(minterms)

    # Essential primes: minterms covered by exactly one prime.
    for minterm in sorted(minterms):
        covering = [prime for prime in primes if prime.covers(minterm)]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
            uncovered -= cover_map[covering[0]]

    # Greedy cover of the remainder.
    while uncovered:
        best = max(primes, key=lambda prime: (len(cover_map[prime] & uncovered), -prime.literal_count()))
        gained = cover_map[best] & uncovered
        if not gained:
            # Should not happen: every minterm is covered by at least one prime.
            raise RuntimeError("internal error: uncoverable minterm in minimise_sop")
        chosen.append(best)
        uncovered -= gained

    return chosen


def sop_expression(table: TruthTable) -> str:
    """A compact sum-of-products string for *table* (for reports)."""
    cubes = minimise_sop(table)
    if not cubes:
        return "0"
    if any(cube.care == 0 for cube in cubes):
        return "1"
    return " | ".join(f"({cube.to_expression(table.inputs)})" for cube in cubes)


def cover_is_hazard_free(table: TruthTable, cover: Sequence[Cube]) -> bool:
    """Check the static-1 hazard condition for a SOP cover.

    A single-input-change transition between two adjacent ON-set minterms is
    free of static-1 hazards iff some product term of the cover contains both
    endpoints.  This is the classic condition used when synthesising
    hazard-free asynchronous logic.
    """
    minterms = set(table.minterms())
    width = table.arity
    for minterm in minterms:
        for position in range(width):
            neighbour = minterm ^ (1 << position)
            if neighbour not in minterms or neighbour < minterm:
                continue
            if not any(cube.covers(minterm) and cube.covers(neighbour) for cube in cover):
                return False
    return True
