"""Differential fuzzer for the CAD flow (``repro-fuzz``).

The fuzzer generates seeded random gate netlists — bounded-width,
bounded-depth DAGs over the standard cell library — and pushes each one
through the whole backend pipeline::

    generic_map -> (decompose) -> pack -> place -> route -> timing -> bitgen

Two kinds of oracle run along the way:

* **Differential simulation equivalence**: the mapped LE network is simulated
  against the pre-map gate netlist (:func:`repro.sim.netsim.evaluate_combinational`
  as the golden model) over a deterministic vector set.  Any disagreement on
  a primary output is a mapping/decomposition/packing bug.
* **Stage invariants**: every stage artifact is checked structurally —
  ``MappedDesign.validate()`` is clean, LEs fit the LE budget, the placement
  covers exactly the design with no double-booked site or pad, every routed
  tree is connected and capacity-respecting and every net that leaves a block
  got routed, the timing DAG builds and yields a positive cycle time, and the
  bitstream generator accepts the result.

Failures **shrink** to a minimal reproducer (greedy cell removal while the
same stage/check keeps failing) and serialize to a corpus directory; corpus
entries replay as regression tests (``repro-fuzz replay`` or
``tests/test_fuzz.py``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Mapping, Sequence

from repro.cad.lemap import MappedDesign
from repro.cad.pack import pack_design
from repro.cad.place import Placement, place_design
from repro.cad.route import RoutingResult, route_design
from repro.cad.techmap import generic_map
from repro.cad.timing import analyse_timing
from repro.core.fabric import Fabric
from repro.core.rrgraph import RoutingResourceGraph
from repro.netlist.celltypes import STANDARD_LIBRARY
from repro.netlist.netlist import Netlist, PortDirection
from repro.sim.lesim import simulate_mapped_design
from repro.sim.netsim import evaluate_combinational
from repro.verify.invariants import (
    le_budget_problems,
    mapping_problems,
    packing_capacity_problems,
    packing_coverage_problem,
    placement_problem,
    routing_problem,
    timing_problem,
)

#: Serialization format version of corpus entries.
CORPUS_FORMAT = 1

#: Combinational cell types the generator draws from (sequential C-elements
#: are added with low probability, matched-delay cells likewise).
COMBINATIONAL_POOL = (
    "BUF", "INV",
    "AND2", "AND3", "AND4", "OR2", "OR3", "OR4",
    "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4",
    "XOR2", "XOR3", "XNOR2", "XNOR3",
    "MAJ3", "MUX2",
)
SEQUENTIAL_POOL = ("C2", "C3")


# ======================================================================
# Configuration / result records
# ======================================================================
@dataclass(frozen=True)
class FuzzConfig:
    """Bounds of the random netlist generator and the checking budget."""

    max_inputs: int = 6
    max_cells: int = 24
    #: Probability that a generated cell is a matched-delay element.
    p_delay: float = 0.06
    #: Probability that a generated cell is a Muller C-element.
    p_sequential: float = 0.08
    #: Probability that one extra primary input is also exported as a
    #: primary output (pad-to-pad pass-through, a known-degenerate shape).
    p_passthrough: float = 0.15
    #: Probability that a cell input repeats an already-picked net (drives
    #: constant-output cones like ``XOR(a, a)``).
    p_repeat_input: float = 0.1
    #: Random simulation vectors when the input count is too large to
    #: enumerate exhaustively.
    vectors: int = 16

    def to_dict(self) -> dict[str, object]:
        return {
            "max_inputs": self.max_inputs,
            "max_cells": self.max_cells,
            "p_delay": self.p_delay,
            "p_sequential": self.p_sequential,
            "p_passthrough": self.p_passthrough,
            "p_repeat_input": self.p_repeat_input,
            "vectors": self.vectors,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "FuzzConfig":
        known = {f: data[f] for f in FuzzConfig.__dataclass_fields__ if f in data}
        return FuzzConfig(**known)  # type: ignore[arg-type]


@dataclass
class FuzzFailure:
    """One pipeline check that did not hold for one netlist."""

    stage: str
    check: str
    message: str

    @property
    def signature(self) -> tuple[str, str]:
        """What the shrinker preserves: the failing stage and check."""
        return (self.stage, self.check)


@dataclass
class FuzzResult:
    """Outcome of pushing one netlist through the pipeline."""

    failure: FuzzFailure | None = None
    stages_run: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failure is None


# ======================================================================
# Netlist serialization (corpus format)
# ======================================================================
def netlist_to_dict(netlist: Netlist) -> dict[str, object]:
    """A JSON-safe structural description of *netlist*."""
    return {
        "name": netlist.name,
        "inputs": list(netlist.primary_inputs),
        "outputs": list(netlist.primary_outputs),
        "cells": [
            {
                "name": cell.name,
                "type": cell.type_name,
                "connections": dict(cell.connections),
                **({"attributes": dict(cell.attributes)} if cell.attributes else {}),
            }
            for cell in netlist.iter_cells()
        ],
    }


def netlist_from_dict(data: Mapping[str, object]) -> Netlist:
    """Rebuild a netlist from :func:`netlist_to_dict` output."""
    netlist = Netlist(str(data.get("name", "fuzz")), library=STANDARD_LIBRARY)
    for name in data.get("inputs", []):
        netlist.add_port(str(name), PortDirection.INPUT)
    for cell in data.get("cells", []):
        netlist.add_cell(
            str(cell["name"]),
            str(cell["type"]),
            {str(k): str(v) for k, v in cell["connections"].items()},
            **{str(k): v for k, v in cell.get("attributes", {}).items()},
        )
    for name in data.get("outputs", []):
        netlist.add_port(str(name), PortDirection.OUTPUT)
    return netlist


# ======================================================================
# Random netlist generation
# ======================================================================
def random_netlist(seed: int, config: FuzzConfig | None = None) -> Netlist:
    """A seeded random DAG over the supported cell types.

    Cells only read nets that already exist (primary inputs or earlier cell
    outputs), so the result is combinationally acyclic by construction.
    Degenerate shapes are produced on purpose: single-cell netlists,
    pad-to-pad pass-through nets, repeated cell inputs (constant cones) and
    fanout-free output cones all appear with tuned probabilities.
    """
    config = config if config is not None else FuzzConfig()
    rng = Random(seed)
    netlist = Netlist(f"fuzz_{seed}", library=STANDARD_LIBRARY)

    n_inputs = rng.randint(1, config.max_inputs)
    available = [f"i{k}" for k in range(n_inputs)]
    for name in available:
        netlist.add_port(name, PortDirection.INPUT)

    n_cells = rng.randint(1, config.max_cells)
    for index in range(n_cells):
        roll = rng.random()
        if roll < config.p_delay:
            type_name = "DELAY"
        elif roll < config.p_delay + config.p_sequential:
            type_name = rng.choice(SEQUENTIAL_POOL)
        else:
            type_name = rng.choice(COMBINATIONAL_POOL)
        cell_type = STANDARD_LIBRARY.get(type_name)
        output_net = f"n{index}"
        connections = {cell_type.outputs[0]: output_net}
        picked: list[str] = []
        for pin in cell_type.inputs:
            if picked and rng.random() < config.p_repeat_input:
                connections[pin] = rng.choice(picked)
            else:
                # Bias toward recent nets so depth actually grows.
                pool = available[-8:] if rng.random() < 0.6 else available
                connections[pin] = rng.choice(pool)
            picked.append(connections[pin])
        attributes: dict[str, object] = {}
        if type_name == "DELAY":
            attributes["delay"] = rng.randrange(100, 1300, 100)
        netlist.add_cell(f"u{index}", cell_type, connections, **attributes)
        available.append(output_net)

    # Primary outputs: every sink-less cell output (fanout-free cones stay),
    # plus occasionally an internal net with fanout and a pass-through input.
    internal = [f"n{index}" for index in range(n_cells)]
    sinkless = [net for net in internal if not netlist.nets[net].sinks]
    outputs = set(sinkless)
    with_fanout = [net for net in internal if net not in outputs]
    if with_fanout and rng.random() < 0.5:
        outputs.add(rng.choice(with_fanout))
    if rng.random() < config.p_passthrough:
        outputs.add(rng.choice(netlist.primary_inputs))
    if not outputs:
        outputs.add(rng.choice(internal))
    for net in sorted(outputs):
        netlist.add_port(net, PortDirection.OUTPUT)
    return netlist


def _simulation_vectors(netlist: Netlist, seed: int, config: FuzzConfig) -> list[dict[str, int]]:
    inputs = list(netlist.primary_inputs)
    if len(inputs) <= 4:
        return [
            {name: (row >> k) & 1 for k, name in enumerate(inputs)}
            for row in range(1 << len(inputs))
        ]
    rng = Random(seed ^ 0x5EED)
    vectors = [
        {name: 0 for name in inputs},
        {name: 1 for name in inputs},
    ]
    vectors.extend(
        {name: rng.randint(0, 1) for name in inputs} for _ in range(config.vectors)
    )
    return vectors


# ======================================================================
# Pipeline with invariant checks
# ======================================================================
def _fuzz_fabric(mapped: MappedDesign) -> "Fabric":
    """A deliberately generous fabric: routing failure then signals a bug."""
    from repro.circuits.generate import recommended_fabric

    arch = recommended_fabric(mapped, slack=2)
    return Fabric(arch)


def _race_free_outputs(netlist: Netlist) -> list[str]:
    """Primary outputs with no state-holding cell in their transitive fan-in.

    Only those have delay-independent values: a C-element's final state
    depends on the input arrival order, and remapping (cone collapse, LE
    delays) legitimately changes that order.  Sequential cones still run
    through every structural stage check; they are just excluded from the
    differential simulation oracle.
    """
    tainted: set[str] = set()
    frontier = deque(
        net for cell in netlist.sequential_cells() for net in cell.output_nets().values()
    )
    while frontier:
        net = frontier.popleft()
        if net in tainted:
            continue
        tainted.add(net)
        for cell_name, _pin in netlist.nets[net].sinks:
            frontier.extend(netlist.cell(cell_name).output_nets().values())
    return [net for net in netlist.primary_outputs if net not in tainted]


def _check_equivalence(
    netlist: Netlist, mapped: MappedDesign, seed: int, config: FuzzConfig
) -> str | None:
    """Compare mapped-LE simulation against the gate netlist; None when equal."""
    outputs = _race_free_outputs(netlist)
    if not outputs:
        return None
    for assignment in _simulation_vectors(netlist, seed, config):
        golden = evaluate_combinational(netlist, assignment)
        simulator = simulate_mapped_design(mapped)
        simulator.initialise()
        simulator.set_inputs({n: assignment[n] for n in mapped.primary_inputs})
        simulator.run()
        for net in outputs:
            got = simulator.value(net)
            if got != golden[net]:
                vector = "".join(str(assignment[n]) for n in netlist.primary_inputs)
                return (
                    f"output {net!r} = {got}, golden {golden[net]} "
                    f"(inputs {list(netlist.primary_inputs)} = {vector})"
                )
    return None


# The per-stage invariant checks live in :mod:`repro.verify.invariants`
# (shared with ``repro-lint`` and the ``verify_stages`` flow gate); these
# aliases keep the fuzzer's historical entry points importable.
_check_placement = placement_problem
_check_routing = routing_problem


def run_pipeline(
    netlist: Netlist,
    seed: int = 0,
    config: FuzzConfig | None = None,
    placement_seed: int = 1,
) -> FuzzResult:
    """Push *netlist* through the full backend, checking every stage."""
    config = config if config is not None else FuzzConfig()
    result = FuzzResult()

    def fail(stage: str, check: str, message: str) -> FuzzResult:
        result.failure = FuzzFailure(stage=stage, check=check, message=message)
        return result

    def guard(stage: str):
        result.stages_run.append(stage)

    guard("map")
    try:
        mapped = generic_map(netlist)
    except Exception:
        return fail("map", "exception", traceback.format_exc(limit=4))
    issues = mapping_problems(mapped)
    if issues:
        return fail("map", "validate", "; ".join(issues))
    budget_problems = le_budget_problems(mapped)
    if budget_problems:
        return fail("map", "le-budget", budget_problems[0])

    guard("equivalence")
    try:
        mismatch = _check_equivalence(netlist, mapped, seed, config)
    except Exception:
        return fail("equivalence", "exception", traceback.format_exc(limit=4))
    if mismatch:
        return fail("equivalence", "mismatch", mismatch)

    if not mapped.les:
        # A netlist of only DELAY cells maps to PDEs alone; there is nothing
        # to pack or place, which the backend rejects by design.
        return result

    guard("pack")
    try:
        pack_design(mapped)
    except Exception:
        return fail("pack", "exception", traceback.format_exc(limit=4))
    coverage = packing_coverage_problem(mapped)
    if coverage:
        return fail("pack", "coverage", coverage)
    capacity = packing_capacity_problems(mapped)
    if capacity:
        return fail("pack", "capacity", capacity[0])

    guard("place")
    try:
        fabric = _fuzz_fabric(mapped)
        placement = place_design(mapped, fabric, seed=placement_seed)
    except Exception:
        return fail("place", "exception", traceback.format_exc(limit=4))
    problem = placement_problem(mapped, placement, fabric)
    if problem:
        return fail("place", "legality", problem)

    guard("route")
    try:
        graph = RoutingResourceGraph(fabric)
        routing = route_design(mapped, placement, graph)
    except Exception:
        return fail("route", "exception", traceback.format_exc(limit=4))
    problem = routing_problem(mapped, placement, graph, routing)
    if problem:
        return fail("route", "invariant", problem)

    guard("timing")
    try:
        report = analyse_timing(mapped, routing=routing, graph=graph)
    except Exception:
        return fail("timing", "exception", traceback.format_exc(limit=4))
    problem = timing_problem(mapped, report)
    if problem:
        return fail("timing", "cycle-time", problem)

    guard("bitgen")
    try:
        from repro.cad.bitgen import generate_bitstream

        generate_bitstream(mapped, placement, fabric.params)
    except Exception:
        return fail("bitgen", "exception", traceback.format_exc(limit=4))

    return result


# ======================================================================
# Shrinking
# ======================================================================
def _dead_cell_elimination(netlist: Netlist) -> Netlist:
    """Drop cells whose outputs reach no primary output (iterated)."""
    data = netlist_to_dict(netlist)
    while True:
        rebuilt = netlist_from_dict(data)
        dead = [
            cell.name
            for cell in rebuilt.iter_cells()
            if all(
                not rebuilt.nets[net].sinks and not rebuilt.nets[net].is_primary_output
                for net in cell.output_nets().values()
            )
        ]
        if not dead:
            return rebuilt
        data["cells"] = [c for c in data["cells"] if c["name"] not in dead]


def _removal_candidates(netlist: Netlist) -> list[dict[str, object]]:
    """Variants of *netlist* with one cell removed (output promoted to a PI)."""
    base = netlist_to_dict(netlist)
    variants = []
    for removed in base["cells"]:
        cells = [c for c in base["cells"] if c["name"] != removed["name"]]
        out_nets = [
            net
            for pin, net in removed["connections"].items()
            if pin not in STANDARD_LIBRARY.get(removed["type"]).inputs
        ]
        inputs = list(base["inputs"])
        for net in out_nets:
            still_read = any(
                net in (c["connections"][p] for p in STANDARD_LIBRARY.get(c["type"]).inputs)
                for c in cells
            )
            if (still_read or net in base["outputs"]) and net not in inputs:
                inputs.append(net)
        variants.append(
            {"name": base["name"], "inputs": inputs, "outputs": list(base["outputs"]), "cells": cells}
        )
    return variants


def shrink(
    netlist: Netlist,
    signature: tuple[str, str],
    seed: int = 0,
    config: FuzzConfig | None = None,
    max_rounds: int = 40,
) -> Netlist:
    """Greedy minimisation: remove cells while the same stage/check fails.

    Removed cells have their output nets promoted to primary inputs so the
    remaining structure stays a valid netlist; unused primary inputs and
    unreferenced outputs are pruned at the end.
    """

    def still_fails(candidate: Netlist) -> bool:
        outcome = run_pipeline(candidate, seed=seed, config=config)
        return outcome.failure is not None and outcome.failure.signature == signature

    current = _dead_cell_elimination(netlist)
    if not still_fails(current):
        current = netlist  # the dead cone was load-bearing for the failure
    for _ in range(max_rounds):
        for variant in _removal_candidates(current):
            candidate = _dead_cell_elimination(netlist_from_dict(variant))
            if candidate.cells and still_fails(candidate):
                current = candidate
                break
        else:
            break
    # Prune primary inputs nothing reads (unless they pass straight through).
    data = netlist_to_dict(current)
    used = {
        net
        for cell in data["cells"]
        for pin, net in cell["connections"].items()
        if pin in STANDARD_LIBRARY.get(cell["type"]).inputs
    }
    pruned = [n for n in data["inputs"] if n in used or n in data["outputs"]]
    if pruned != data["inputs"]:
        data["inputs"] = pruned
        candidate = netlist_from_dict(data)
        if still_fails(candidate):
            current = candidate
    return current


# ======================================================================
# Corpus
# ======================================================================
def corpus_entry(
    netlist: Netlist,
    failure: FuzzFailure,
    seed: int,
    config: FuzzConfig,
) -> dict[str, object]:
    return {
        "format": CORPUS_FORMAT,
        "seed": seed,
        "config": config.to_dict(),
        "stage": failure.stage,
        "check": failure.check,
        "message": failure.message,
        "netlist": netlist_to_dict(netlist),
    }


def write_corpus_entry(directory: Path, entry: Mapping[str, object]) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    blob = json.dumps(entry, indent=2, sort_keys=True)
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]
    path = directory / f"{entry['stage']}_{entry['check']}_{digest}.json"
    path.write_text(blob + "\n", encoding="utf-8")
    return path


def replay_entry(entry: Mapping[str, object]) -> FuzzResult:
    """Re-run one corpus entry's netlist through the pipeline."""
    config = FuzzConfig.from_dict(entry.get("config", {}))
    netlist = netlist_from_dict(entry["netlist"])
    return run_pipeline(netlist, seed=int(entry.get("seed", 0)), config=config)


def replay_corpus(directory: Path) -> dict[str, FuzzResult]:
    """Replay every ``*.json`` entry under *directory* (sorted, recursive)."""
    results: dict[str, FuzzResult] = {}
    for path in sorted(directory.rglob("*.json")):
        entry = json.loads(path.read_text(encoding="utf-8"))
        results[str(path)] = replay_entry(entry)
    return results


# ======================================================================
# Campaign driver
# ======================================================================
def fuzz_campaign(
    count: int,
    seed_base: int = 0,
    config: FuzzConfig | None = None,
    corpus_dir: Path | None = None,
    progress=None,
) -> list[tuple[int, FuzzFailure, Netlist]]:
    """Run *count* seeded netlists; shrink and record every failure."""
    config = config if config is not None else FuzzConfig()
    failures: list[tuple[int, FuzzFailure, Netlist]] = []
    for offset in range(count):
        seed = seed_base + offset
        netlist = random_netlist(seed, config)
        outcome = run_pipeline(netlist, seed=seed, config=config)
        if outcome.ok:
            if progress:
                progress(seed, None)
            continue
        reduced = shrink(netlist, outcome.failure.signature, seed=seed, config=config)
        final = run_pipeline(reduced, seed=seed, config=config)
        failure = final.failure if final.failure is not None else outcome.failure
        failures.append((seed, failure, reduced))
        if corpus_dir is not None:
            write_corpus_entry(corpus_dir, corpus_entry(reduced, failure, seed, config))
        if progress:
            progress(seed, failure)
    return failures


# ======================================================================
# CLI
# ======================================================================
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential fuzzer for the async-FPGA CAD flow",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="fuzz N random netlists through the flow")
    run.add_argument("--count", type=int, default=50, help="netlists to generate")
    run.add_argument("--seed-base", type=int, default=0, help="first seed of the range")
    run.add_argument("--corpus", type=Path, default=None, help="directory for shrunk reproducers")
    run.add_argument("--max-cells", type=int, default=FuzzConfig.max_cells)
    run.add_argument("--max-inputs", type=int, default=FuzzConfig.max_inputs)
    run.add_argument("--vectors", type=int, default=FuzzConfig.vectors)
    run.set_defaults(handler=_cmd_run)

    replay = subparsers.add_parser("replay", help="re-run saved corpus reproducers")
    replay.add_argument("paths", nargs="+", type=Path, help="corpus directories or entry files")
    replay.set_defaults(handler=_cmd_replay)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = FuzzConfig(
        max_inputs=args.max_inputs, max_cells=args.max_cells, vectors=args.vectors
    )

    def progress(seed: int, failure: FuzzFailure | None) -> None:
        if failure is not None:
            print(f"seed {seed}: FAIL {failure.stage}/{failure.check}: {failure.message}")

    failures = fuzz_campaign(
        args.count,
        seed_base=args.seed_base,
        config=config,
        corpus_dir=args.corpus,
        progress=progress,
    )
    print(
        f"fuzzed {args.count} netlists (seeds {args.seed_base}.."
        f"{args.seed_base + args.count - 1}): {len(failures)} failure(s)"
    )
    if failures and args.corpus is not None:
        print(f"shrunk reproducers written to {args.corpus}")
    return 1 if failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    failed = 0
    total = 0
    for path in args.paths:
        if path.is_dir():
            results = replay_corpus(path)
        elif path.exists():
            results = {str(path): replay_entry(json.loads(path.read_text(encoding="utf-8")))}
        else:
            print(f"error: no such corpus path: {path}", file=sys.stderr)
            return 2
        for name, outcome in results.items():
            total += 1
            if outcome.ok:
                print(f"PASS {name}")
            else:
                failed += 1
                print(
                    f"FAIL {name}: {outcome.failure.stage}/{outcome.failure.check}: "
                    f"{outcome.failure.message}"
                )
    print(f"replayed {total} entries, {failed} failing")
    return 1 if failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
