"""The content-addressed stage-artifact store.

:class:`ArtifactStore` is a :class:`~repro.sweep.store.SweepResultStore`
specialisation: same sharded ``<key[:2]>/<key>.json`` layout, same atomic
writes, same flock-guarded maintenance, same fingerprint-retirement GC.  It
adds the one policy stage artifacts need that flow summaries do not: a
**size bound**.  Stage payloads (full routing trees, bitstream bytes) are
orders of magnitude bigger than sweep summaries, so every checkpointed flow
ends by calling :meth:`ArtifactStore.enforce_size_bound`, which evicts
oldest-mtime records until the store fits ``max_bytes`` — the store behaves
like a bounded LRU-by-write-time cache rather than an append-only log.
"""

from __future__ import annotations

import os

from repro.sweep.store import SweepResultStore

#: Default on-disk footprint bound — roomy enough for thousands of
#: small-fabric flow executions while keeping a forgotten store from
#: swallowing a disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class ArtifactStore(SweepResultStore):
    """A size-bounded store of per-stage flow artifacts.

    ``max_bytes=None`` disables the bound (the sweep store's behaviour).
    Eviction only ever costs a resume the re-computation of the evicted
    stage — correctness never depends on a record being present.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        create: bool = True,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
    ) -> None:
        super().__init__(root, create=create)
        self.max_bytes = max_bytes

    def gc(
        self,
        current_fingerprint: str | None = None,
        keep_latest: int = 0,
        dry_run: bool = False,
        max_bytes: int | None = None,
    ) -> dict[str, object]:
        """Fingerprint-retirement GC plus the store's own size bound.

        Identical policy to :meth:`SweepResultStore.gc`; the only difference
        is that the size bound defaults to this store's ``max_bytes`` instead
        of unbounded.
        """
        if max_bytes is None:
            max_bytes = self.max_bytes
        return super().gc(
            current_fingerprint=current_fingerprint,
            keep_latest=keep_latest,
            dry_run=dry_run,
            max_bytes=max_bytes,
        )

    def enforce_size_bound(self, dry_run: bool = False) -> tuple[int, int]:
        """Evict oldest-mtime records until the store fits ``max_bytes``.

        Returns ``(records_evicted, bytes_evicted)``; a no-op when the bound
        is disabled.  Runs under the store lock like every multi-file
        maintenance operation.
        """
        if self.max_bytes is None:
            return (0, 0)
        with self.lock():
            return self._evict_to_size_locked(self.max_bytes, dry_run)
