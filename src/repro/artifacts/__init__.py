"""Serializable stage artifacts: the store and schemas behind resumable flows.

Every stage boundary of :meth:`repro.cad.flow.CadFlow.run` — mapped design,
packed design, placement, routing, timing snapshot, bitstream — serializes
through a versioned ``to_dict``/``from_dict`` pair on the stage class itself.
This package provides the persistence layer on top:

* :class:`ArtifactStore` — a content-addressed, flock-guarded, size-bounded
  JSON store (the sweep store's discipline, specialised for bulky payloads);
* :func:`flow_artifact_key` / :func:`stage_key` — the addressing scheme
  (circuit + architecture + options + code fingerprint);
* :func:`load_flow_artifacts` — the read side: group a store's records into
  per-flow :class:`StoredFlowArtifacts` views for lint audits and bitstream
  re-rendering.

See ``docs/artifacts.md`` for the schema-version catalogue, the store
layout, the GC policy and the resume semantics.
"""

from repro.artifacts.schemas import (
    ARTIFACT_SCHEMA,
    STAGES,
    StoredFlowArtifacts,
    decode_envelope,
    encode_envelope,
    flow_artifact_key,
    load_flow_artifacts,
    stage_key,
)
from repro.artifacts.store import DEFAULT_MAX_BYTES, ArtifactStore
from repro.core.schema import ArtifactError, CorruptArtifactError, UnknownSchemaError

__all__ = [
    "ARTIFACT_SCHEMA",
    "STAGES",
    "ArtifactError",
    "ArtifactStore",
    "CorruptArtifactError",
    "DEFAULT_MAX_BYTES",
    "StoredFlowArtifacts",
    "UnknownSchemaError",
    "decode_envelope",
    "encode_envelope",
    "flow_artifact_key",
    "load_flow_artifacts",
    "stage_key",
]
