"""Keys, envelopes and loaders for stored stage artifacts.

Every artifact record in an :class:`~repro.artifacts.store.ArtifactStore` is
one stage boundary of one flow execution, wrapped in a small envelope:

.. code-block:: text

    {
      "schema":       <ARTIFACT_SCHEMA>,
      "kind":         "artifact",
      "stage":        "mapped" | "packed" | "placement" | "routing"
                      | "timing" | "bitstream",
      "flow_key":     <flow_artifact_key of the producing run>,
      "fingerprint":  <code_fingerprint that produced it>,
      "circuit":      <registry circuit name>,
      "architecture": <ArchitectureParams.to_dict()>,
      "options":      <FlowOptions.to_dict()>,
      "payload":      <the stage class's own to_dict()>,
    }

Addressing follows the sweep store's content-hash discipline: the *flow key*
hashes everything a flow's outputs depend on (circuit, architecture, options,
code fingerprint), and each stage record lives at ``stage_key(flow_key,
stage)``.  A behaviour-bearing source edit changes the fingerprint, silently
retiring every old record; :meth:`ArtifactStore.gc` reclaims them.

The envelope carries the full flow description so a store can be consumed
without out-of-band context — :func:`load_flow_artifacts` rebuilds complete
:class:`StoredFlowArtifacts` views (used by ``repro-lint --artifacts`` and
``repro-sweep export --bitstreams``) from the records alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.params import ArchitectureParams, stable_digest
from repro.core.schema import CorruptArtifactError, decoding, require_version
from repro.fingerprint import code_fingerprint

if TYPE_CHECKING:  # runtime imports stay lazy: cad imports this package
    from repro.artifacts.store import ArtifactStore
    from repro.cad.flow import FlowOptions
    from repro.cad.lemap import MappedDesign
    from repro.cad.place import Placement
    from repro.cad.route import RoutingResult
    from repro.cad.timing import TimingReport
    from repro.core.bitstream import Bitstream
    from repro.core.rrgraph import RoutingResourceGraph

#: The flow's stage boundaries, shallow to deep.  ``CadFlow.run`` checkpoints
#: after each and a resume consumes a contiguous prefix of them.
STAGES = ("mapped", "packed", "placement", "routing", "timing", "bitstream")

#: Schema version of the artifact *envelope* (each payload carries its own
#: stage schema version on top).
ARTIFACT_SCHEMA = 1


def flow_artifact_key(
    circuit: str,
    architecture: ArchitectureParams,
    options: "FlowOptions",
    fingerprint: str | None = None,
) -> str:
    """The content-address prefix shared by one flow execution's artifacts.

    Hashes everything the flow's outputs depend on — the circuit name, the
    architecture, the (cache-relevant) flow options and the code fingerprint
    — mirroring :meth:`repro.sweep.spec.SweepPoint.key`.  Execution-side
    knobs (``artifact_store`` itself, ``checkpoint_stages``) are excluded
    from ``FlowOptions.to_dict`` precisely so they cannot perturb this key.
    """
    return stable_digest(
        {
            "kind": "flow_artifacts",
            "circuit": circuit,
            "architecture": architecture.to_dict(),
            "options": options.to_dict(),
            "code_fingerprint": fingerprint if fingerprint is not None else code_fingerprint(),
        }
    )


def stage_key(flow_key: str, stage: str) -> str:
    """The store key of one stage record of one flow execution."""
    if stage not in STAGES:
        raise ValueError(f"unknown stage {stage!r} (expected one of {STAGES})")
    return stable_digest({"kind": "artifact", "flow_key": flow_key, "stage": stage})


def encode_envelope(
    stage: str,
    flow_key: str,
    circuit: str,
    architecture: ArchitectureParams,
    options: "FlowOptions",
    payload: Mapping[str, object],
) -> dict[str, object]:
    """Wrap one stage payload in the store envelope."""
    if stage not in STAGES:
        raise ValueError(f"unknown stage {stage!r} (expected one of {STAGES})")
    return {
        "schema": ARTIFACT_SCHEMA,
        "kind": "artifact",
        "stage": stage,
        "flow_key": flow_key,
        "fingerprint": code_fingerprint(),
        "circuit": circuit,
        "architecture": architecture.to_dict(),
        "options": options.to_dict(),
        "payload": dict(payload),
    }


def decode_envelope(record: Mapping[str, object], stage: str | None = None) -> dict[str, object]:
    """Validate an envelope and return its payload.

    Raises :class:`~repro.core.schema.UnknownSchemaError` /
    :class:`~repro.core.schema.CorruptArtifactError` like the stage codecs;
    pass *stage* to additionally pin the expected stage name.
    """
    require_version(record, "artifact envelope", ARTIFACT_SCHEMA)
    with decoding("artifact envelope"):
        if record["kind"] != "artifact":
            raise CorruptArtifactError(
                f"artifact envelope: kind {record['kind']!r} is not 'artifact'"
            )
        found = str(record["stage"])
        if stage is not None and found != stage:
            raise CorruptArtifactError(
                f"artifact envelope: stage {found!r} where {stage!r} was expected"
            )
        payload = record["payload"]
        if not isinstance(payload, Mapping):
            raise CorruptArtifactError("artifact envelope: payload is not a mapping")
        return dict(payload)


@dataclass
class StoredFlowArtifacts:
    """Every stored stage of one flow execution, decoded on demand.

    ``payloads`` maps stage name → raw payload dict; the accessor methods
    rebuild the stage objects through their ``from_dict`` codecs.  This is
    the read-side view behind ``repro-lint --artifacts`` and ``repro-sweep
    export --bitstreams``.
    """

    flow_key: str
    circuit: str
    architecture: ArchitectureParams
    options: "FlowOptions"
    payloads: dict[str, dict[str, object]] = field(default_factory=dict)

    @property
    def stages(self) -> tuple[str, ...]:
        return tuple(stage for stage in STAGES if stage in self.payloads)

    def label(self) -> str:
        arch = self.architecture
        return f"{self.circuit}@{arch.width}x{arch.height}/cw{arch.routing.channel_width}"

    def design(self) -> "MappedDesign | None":
        """The deepest stored design view: packed if present, else mapped."""
        from repro.cad.lemap import MappedDesign

        payload = self.payloads.get("packed") or self.payloads.get("mapped")
        return MappedDesign.from_dict(payload) if payload is not None else None

    def placement(self) -> "Placement | None":
        from repro.cad.place import Placement

        payload = self.payloads.get("placement")
        return Placement.from_dict(payload) if payload is not None else None

    def routing(self, graph: "RoutingResourceGraph") -> "RoutingResult | None":
        from repro.cad.route import RoutingResult

        payload = self.payloads.get("routing")
        if payload is None:
            return None
        return RoutingResult.from_dict(payload["routing"], graph)

    def timing(self) -> "TimingReport | None":
        from repro.cad.timing import TimingReport

        payload = self.payloads.get("timing")
        return TimingReport.from_dict(payload) if payload is not None else None

    def bitstream(self) -> "Bitstream | None":
        from repro.core.bitstream import Bitstream

        payload = self.payloads.get("bitstream")
        return Bitstream.from_dict(payload) if payload is not None else None

    def render_bitstream(self) -> "Bitstream | None":
        """The stored bitstream, or one re-rendered from packed + placement.

        Bitstream generation is pure, so re-rendering from the shallower
        artifacts is bit-identical to what the producing flow wrote — this is
        what lets ``repro-sweep export --bitstreams`` and the lint audit work
        from a store that only checkpointed the cheap boundaries.
        """
        stored = self.bitstream()
        if stored is not None:
            return stored
        design = self.design()
        placement = self.placement()
        if design is None or placement is None or not design.plbs:
            return None
        from repro.cad.bitgen import generate_bitstream

        bitstream, _configured = generate_bitstream(design, placement, self.architecture)
        return bitstream


def load_flow_artifacts(
    store: "ArtifactStore",
    circuit: str | None = None,
    fingerprint: str | None = None,
) -> list[StoredFlowArtifacts]:
    """Group a store's records into per-flow artifact views.

    Only records stamped with *fingerprint* (default: this process's
    :func:`~repro.fingerprint.code_fingerprint`) are returned — retired
    generations describe a different build's behaviour and are skipped, same
    as a cache miss.  Unreadable or foreign records are ignored.  The result
    is sorted by (circuit, flow key) for deterministic iteration.
    """
    from repro.cad.flow import FlowOptions

    if fingerprint is None:
        fingerprint = code_fingerprint()
    groups: dict[str, StoredFlowArtifacts] = {}
    for _key, record in store.records():
        if record.get("kind") != "artifact" or record.get("schema") != ARTIFACT_SCHEMA:
            continue
        if record.get("fingerprint") != fingerprint:
            continue
        if circuit is not None and record.get("circuit") != circuit:
            continue
        try:
            payload = decode_envelope(record)
            flow_key = str(record["flow_key"])
            stage = str(record["stage"])
            group = groups.get(flow_key)
            if group is None:
                group = StoredFlowArtifacts(
                    flow_key=flow_key,
                    circuit=str(record["circuit"]),
                    architecture=ArchitectureParams.from_dict(dict(record["architecture"])),
                    options=FlowOptions.from_dict(dict(record["options"])),
                )
                groups[flow_key] = group
            group.payloads[stage] = payload
        except (CorruptArtifactError, KeyError, TypeError, ValueError):
            continue
    return sorted(groups.values(), key=lambda group: (group.circuit, group.flow_key))
