"""Schema-version plumbing shared by every serializable stage artifact.

Every stage boundary of the CAD flow (mapped design, packed design,
placement, routing, timing snapshot, bitstream) serializes through a
versioned ``to_dict`` / ``from_dict`` pair.  The conventions, enforced by
the helpers in this module:

* ``to_dict`` output is JSON-safe (only dict/list/str/int/float/bool/None)
  and carries a ``"schema"`` integer naming the payload layout;
* ``from_dict`` validates the version before touching the payload —
  unknown versions raise :class:`UnknownSchemaError` instead of guessing;
* malformed payloads (missing keys, wrong types, dangling references)
  raise :class:`CorruptArtifactError` instead of mis-deserializing.

This module is a deliberate leaf: it imports nothing from ``repro`` so the
``cad``/``core``/``netlist`` layers can use it without import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping

#: Version reported for payloads that predate schema stamping (the PR-3
#: placement-cache records); readers that accept them opt in via ``legacy``.
LEGACY_VERSION = 0


class ArtifactError(ValueError):
    """Base class for every stage-artifact (de)serialization failure."""


class UnknownSchemaError(ArtifactError):
    """The payload declares a schema version this build cannot read."""


class CorruptArtifactError(ArtifactError):
    """The payload is structurally broken (keys, types, or references)."""


def require_version(
    data: object,
    kind: str,
    supported: int,
    *,
    legacy: bool = False,
) -> int:
    """Validate ``data["schema"]`` against the *supported* version.

    Returns the version found (``LEGACY_VERSION`` when the key is absent and
    *legacy* payloads are accepted).  Raises :class:`UnknownSchemaError` for
    versions this build cannot read and :class:`CorruptArtifactError` for
    payloads that are not even a mapping.
    """
    if not isinstance(data, Mapping):
        raise CorruptArtifactError(f"{kind}: payload is {type(data).__name__}, not a mapping")
    version = data.get("schema")
    if version is None:
        if legacy:
            return LEGACY_VERSION
        raise CorruptArtifactError(f"{kind}: payload has no schema version")
    if isinstance(version, bool) or not isinstance(version, int):
        raise CorruptArtifactError(f"{kind}: schema version {version!r} is not an integer")
    if version != supported:
        raise UnknownSchemaError(
            f"{kind}: schema version {version} unsupported (this build reads {supported})"
        )
    return version


@contextmanager
def decoding(kind: str) -> Iterator[None]:
    """Translate low-level decode failures into :class:`CorruptArtifactError`.

    ``from_dict`` bodies run inside this context so a missing key or a
    wrong-typed field surfaces as a typed artifact error (with the stage
    kind in the message) rather than a bare ``KeyError`` deep in a cache
    read path.  Typed artifact errors pass through unchanged.
    """
    try:
        yield
    except ArtifactError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        raise CorruptArtifactError(f"{kind}: corrupt payload ({exc!r})") from exc
