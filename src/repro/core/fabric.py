"""The island-style fabric.

The fabric is a ``width x height`` grid of PLB tiles "plunged into a routing
network" (Section 3): horizontal and vertical routing channels run between the
tiles, connection boxes attach PLB pins to channel tracks, and switch boxes
join channel segments at the grid corners.  IO pads line the perimeter.

Coordinate conventions (used consistently by the router and the bitstream):

* PLB tiles sit at integer coordinates ``(x, y)`` with ``0 <= x < width`` and
  ``0 <= y < height``.
* Horizontal channel segment ``h(x, y)`` runs along the *bottom* edge of tile
  ``(x, y)``; segments with ``y == height`` run above the top row.
* Vertical channel segment ``v(x, y)`` runs along the *left* edge of tile
  ``(x, y)``; segments with ``x == width`` run right of the last column.
* Switch boxes sit at the grid corners ``(x, y)`` with ``0 <= x <= width`` and
  ``0 <= y <= height`` and join the (up to) four incident channel segments.
* IO pads are attached to the boundary channel adjacent to their side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.core.params import ArchitectureParams
from repro.core.plb import PLB


class TileType(enum.Enum):
    PLB = "plb"
    IO = "io"


@dataclass(frozen=True)
class Tile:
    """One grid tile."""

    x: int
    y: int
    tile_type: TileType

    @property
    def name(self) -> str:
        return f"{self.tile_type.value}_{self.x}_{self.y}"


@dataclass(frozen=True)
class IOPad:
    """One perimeter IO pad.

    ``side`` is one of ``"north"``, ``"south"``, ``"east"``, ``"west"``;
    ``position`` is the tile index along that side and ``index`` the pad index
    within the tile's group.
    """

    side: str
    position: int
    index: int

    @property
    def name(self) -> str:
        return f"io_{self.side}_{self.position}_{self.index}"

    def adjacent_channel(self, width: int, height: int) -> tuple[str, int, int]:
        """The ``(orientation, x, y)`` of the channel segment the pad connects to."""
        if self.side == "south":
            return ("h", self.position, 0)
        if self.side == "north":
            return ("h", self.position, height)
        if self.side == "west":
            return ("v", 0, self.position)
        if self.side == "east":
            return ("v", width, self.position)
        raise ValueError(f"unknown side {self.side!r}")


class Fabric:
    """A fabric instance: grid geometry plus a reference PLB for pin naming."""

    def __init__(self, params: ArchitectureParams | None = None) -> None:
        self.params = params if params is not None else ArchitectureParams()
        self.reference_plb = PLB(self.params.plb, name="plb_ref")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.params.width

    @property
    def height(self) -> int:
        return self.params.height

    def tiles(self) -> Iterator[Tile]:
        for y in range(self.height):
            for x in range(self.width):
                yield Tile(x=x, y=y, tile_type=TileType.PLB)

    def tile_at(self, x: int, y: int) -> Tile:
        if not self.contains(x, y):
            raise KeyError(f"no PLB tile at ({x}, {y})")
        return Tile(x=x, y=y, tile_type=TileType.PLB)

    def contains(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def plb_sites(self) -> list[tuple[int, int]]:
        return [(tile.x, tile.y) for tile in self.tiles()]

    def io_pads(self) -> list[IOPad]:
        pads: list[IOPad] = []
        per_side = self.params.routing.io_pads_per_side
        for x in range(self.width):
            for index in range(per_side):
                pads.append(IOPad(side="south", position=x, index=index))
                pads.append(IOPad(side="north", position=x, index=index))
        for y in range(self.height):
            for index in range(per_side):
                pads.append(IOPad(side="west", position=y, index=index))
                pads.append(IOPad(side="east", position=y, index=index))
        return pads

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def horizontal_channels(self) -> Iterator[tuple[int, int]]:
        """All ``(x, y)`` of horizontal channel segments."""
        for y in range(self.height + 1):
            for x in range(self.width):
                yield (x, y)

    def vertical_channels(self) -> Iterator[tuple[int, int]]:
        for x in range(self.width + 1):
            for y in range(self.height):
                yield (x, y)

    def channel_segment_count(self) -> int:
        horizontal = (self.height + 1) * self.width
        vertical = (self.width + 1) * self.height
        return horizontal + vertical

    def wire_count(self) -> int:
        return self.channel_segment_count() * self.params.routing.channel_width

    def tile_adjacent_channels(self, x: int, y: int) -> list[tuple[str, int, int]]:
        """The four channel segments around PLB tile ``(x, y)``."""
        return [
            ("h", x, y),        # bottom
            ("h", x, y + 1),    # top
            ("v", x, y),        # left
            ("v", x + 1, y),    # right
        ]

    def switchbox_corners(self) -> Iterator[tuple[int, int]]:
        for y in range(self.height + 1):
            for x in range(self.width + 1):
                yield (x, y)

    def corner_incident_channels(self, x: int, y: int) -> list[tuple[str, int, int]]:
        """Channel segments meeting at corner ``(x, y)`` (2 to 4 of them)."""
        incident: list[tuple[str, int, int]] = []
        if x - 1 >= 0:
            incident.append(("h", x - 1, y))
        if x < self.width:
            incident.append(("h", x, y))
        if y - 1 >= 0:
            incident.append(("v", x, y - 1))
        if y < self.height:
            incident.append(("v", x, y))
        return incident

    # ------------------------------------------------------------------
    # Pin geometry
    # ------------------------------------------------------------------
    def plb_input_pins(self) -> tuple[str, ...]:
        return self.reference_plb.input_names()

    def plb_output_pins(self) -> tuple[str, ...]:
        return self.reference_plb.output_names()

    def pin_side(self, pin_index: int) -> int:
        """Distribute pins round-robin over the four sides (0..3)."""
        return pin_index % 4

    def pin_channel(self, x: int, y: int, pin_index: int) -> tuple[str, int, int]:
        """The channel segment a PLB pin's connection box sits on."""
        return self.tile_adjacent_channels(x, y)[self.pin_side(pin_index)]

    # ------------------------------------------------------------------
    # Distance helpers (placement cost)
    # ------------------------------------------------------------------
    @staticmethod
    def manhattan(a: tuple[int, int], b: tuple[int, int]) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fabric({self.width}x{self.height}, W={self.params.routing.channel_width})"
