"""Configuration bitstream model.

The bitstream is organised in named *regions*, one per configurable resource:

* one region per PLB tile (LUT truth tables, validity-LUT selectors, PDE tap,
  IM routing), laid out exactly as the corresponding ``config_vector``
  methods produce them;
* one region per connection-box pin (one bit per connectable track);
* one region per switch-box corner (one bit per track pair the box can join).

:class:`BitstreamBudget` computes the size of every region from the
architecture parameters alone (this is the "config-bit area" metric of the
architecture experiments), and :class:`Bitstream` holds actual bit values with
serialisation and round-trip support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams
from repro.core.schema import CorruptArtifactError, decoding, require_version

#: Schema version of :meth:`Bitstream.to_dict` payloads.
BITSTREAM_SCHEMA = 1


@dataclass(frozen=True)
class BitstreamRegion:
    """One named, fixed-size region of the bitstream."""

    name: str
    bits: int
    kind: str  # "plb", "cbox", "sbox", "io"


@dataclass
class BitstreamBudget:
    """The complete configuration-bit budget of a fabric."""

    params: ArchitectureParams
    regions: list[BitstreamRegion] = field(default_factory=list)

    @classmethod
    def for_architecture(cls, params: ArchitectureParams) -> "BitstreamBudget":
        fabric = Fabric(params)
        routing = params.routing
        regions: list[BitstreamRegion] = []

        plb_bits = params.plb.config_bits
        for x, y in fabric.plb_sites():
            regions.append(BitstreamRegion(name=f"plb_{x}_{y}", bits=plb_bits, kind="plb"))

        # Connection boxes: one bit per (pin, connectable track).
        fc_in_tracks = routing.tracks_per_pin(routing.fc_in)
        fc_out_tracks = routing.tracks_per_pin(routing.fc_out)
        cb_bits_per_plb = (
            params.plb.plb_inputs * fc_in_tracks + params.plb.plb_outputs * fc_out_tracks
        )
        for x, y in fabric.plb_sites():
            regions.append(BitstreamRegion(name=f"cbox_{x}_{y}", bits=cb_bits_per_plb, kind="cbox"))

        # Switch boxes: a disjoint box can join each incident segment pair per track.
        for corner_x, corner_y in fabric.switchbox_corners():
            incident = len(fabric.corner_incident_channels(corner_x, corner_y))
            pairs = incident * (incident - 1) // 2
            regions.append(
                BitstreamRegion(
                    name=f"sbox_{corner_x}_{corner_y}",
                    bits=pairs * routing.channel_width,
                    kind="sbox",
                )
            )

        # IO pads: one enable + one direction bit each.
        for pad in fabric.io_pads():
            regions.append(BitstreamRegion(name=f"io_{pad.name}", bits=2, kind="io"))

        return cls(params=params, regions=regions)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> int:
        return sum(region.bits for region in self.regions)

    def bits_by_kind(self) -> dict[str, int]:
        result: dict[str, int] = {}
        for region in self.regions:
            result[region.kind] = result.get(region.kind, 0) + region.bits
        return dict(sorted(result.items()))

    def region(self, name: str) -> BitstreamRegion:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"unknown bitstream region {name!r}")


class Bitstream:
    """Actual configuration data for one fabric instance."""

    def __init__(self, budget: BitstreamBudget) -> None:
        self.budget = budget
        self._data: dict[str, list[int]] = {
            region.name: [0] * region.bits for region in budget.regions
        }

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def set_region(self, name: str, bits: tuple[int, ...] | list[int]) -> None:
        region = self.budget.region(name)
        bits = list(bits)
        if len(bits) > region.bits:
            raise ValueError(
                f"region {name!r} holds {region.bits} bits; got {len(bits)}"
            )
        padded = bits + [0] * (region.bits - len(bits))
        self._data[name] = [1 if bit else 0 for bit in padded]

    def set_bit(self, name: str, index: int, value: int) -> None:
        region = self.budget.region(name)
        if not 0 <= index < region.bits:
            raise IndexError(f"bit {index} out of range for region {name!r} ({region.bits} bits)")
        self._data[name][index] = 1 if value else 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def region_bits(self, name: str) -> tuple[int, ...]:
        return tuple(self._data[name])

    def used_bits(self) -> int:
        return sum(sum(bits) for bits in self._data.values())

    @property
    def total_bits(self) -> int:
        return self.budget.total_bits

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Concatenate all regions (budget order) into a byte string, LSB first."""
        all_bits: list[int] = []
        for region in self.budget.regions:
            all_bits.extend(self._data[region.name])
        out = bytearray((len(all_bits) + 7) // 8)
        for index, bit in enumerate(all_bits):
            if bit:
                out[index // 8] |= 1 << (index % 8)
        return bytes(out)

    @classmethod
    def from_bytes(cls, budget: BitstreamBudget, data: bytes) -> "Bitstream":
        bitstream = cls(budget)
        total = budget.total_bits
        if len(data) * 8 < total:
            raise ValueError(f"bitstream data too short: {len(data) * 8} bits < {total}")
        cursor = 0
        for region in budget.regions:
            bits = []
            for _ in range(region.bits):
                bits.append((data[cursor // 8] >> (cursor % 8)) & 1)
                cursor += 1
            bitstream.set_region(region.name, bits)
        return bitstream

    def to_dict(self) -> dict[str, object]:
        """A JSON-safe, schema-versioned rendering (inverse of :meth:`from_dict`).

        The payload carries the architecture parameters alongside the raw
        bytes, so a reader can rebuild the :class:`BitstreamBudget` (and hence
        the region layout) without any out-of-band context.
        """
        return {
            "schema": BITSTREAM_SCHEMA,
            "architecture": self.budget.params.to_dict(),
            "total_bits": self.total_bits,
            "data": self.to_bytes().hex(),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], budget: BitstreamBudget | None = None
    ) -> "Bitstream":
        """Rebuild from :meth:`to_dict` output.

        Pass *budget* to reuse an already-computed budget; it must match the
        payload's ``total_bits`` (a mismatch means the payload belongs to a
        different architecture and raises :class:`CorruptArtifactError`).
        """
        require_version(data, "bitstream", BITSTREAM_SCHEMA)
        with decoding("bitstream"):
            if budget is None:
                params = ArchitectureParams.from_dict(data["architecture"])
                budget = BitstreamBudget.for_architecture(params)
            total_bits = int(data["total_bits"])
            if budget.total_bits != total_bits:
                raise CorruptArtifactError(
                    f"bitstream: payload has {total_bits} bits but the "
                    f"architecture budgets {budget.total_bits}"
                )
            return cls.from_bytes(budget, bytes.fromhex(str(data["data"])))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitstream):
            return NotImplemented
        return self._data == other._data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bitstream({self.total_bits} bits, {self.used_bits()} set)"
