"""Fabric-level statistics.

These numbers back the architecture experiments (EXP-F1, EXP-F2 and the
fabric-exploration extension): how large each block is in configuration bits,
how many wires and pins the routing network has, and how the totals scale
with the architecture parameters.
"""

from __future__ import annotations

from repro.core.bitstream import BitstreamBudget
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams
from repro.core.plb import PLB


def le_statistics(params: ArchitectureParams) -> dict[str, int]:
    """Figure 2 numbers: the LE's resources and configuration cost."""
    le = params.plb.le
    return {
        "lut_inputs": le.lut_inputs,
        "lut_outputs": le.lut_outputs,
        "validity_lut_inputs": le.validity_lut_inputs,
        "validity_lut_outputs": le.validity_lut_outputs,
        "lut_config_bits": le.lut_config_bits,
        "validity_lut_config_bits": le.validity_lut_config_bits,
        "total_inputs": le.total_inputs,
        "total_outputs": le.total_outputs,
    }


def plb_statistics(params: ArchitectureParams) -> dict[str, int]:
    """Figure 1 numbers: the PLB's structure and configuration cost."""
    plb = PLB(params.plb)
    breakdown = plb.config_bit_breakdown()
    return {
        "les_per_plb": params.plb.les_per_plb,
        "plb_inputs": params.plb.plb_inputs,
        "plb_outputs": params.plb.plb_outputs,
        "pde_taps": params.plb.pde_taps,
        "pde_step_ps": params.plb.pde_step_ps,
        "im_sources": len(plb.im.sources),
        "im_destinations": len(plb.im.destinations),
        "im_crosspoints": plb.im.crosspoints,
        "im_config_bits": plb.im.config_bits,
        "le_config_bits": sum(le.config_bits for le in plb.les),
        "pde_config_bits": plb.pde.config_bits,
        "plb_config_bits": plb.config_bits,
        **{f"breakdown_{key}": value for key, value in breakdown.items()},
    }


def fabric_statistics(params: ArchitectureParams | None = None) -> dict[str, object]:
    """Complete fabric inventory for one architecture instance."""
    params = params if params is not None else ArchitectureParams()
    fabric = Fabric(params)
    budget = BitstreamBudget.for_architecture(params)
    by_kind = budget.bits_by_kind()
    return {
        "name": params.name,
        "grid": f"{params.width}x{params.height}",
        "plb_count": params.plb_count,
        "le_count": params.le_count,
        "io_pad_count": len(fabric.io_pads()),
        "channel_width": params.routing.channel_width,
        "channel_segments": fabric.channel_segment_count(),
        "routing_wires": fabric.wire_count(),
        "switchbox_corners": (params.width + 1) * (params.height + 1),
        "config_bits_total": budget.total_bits,
        "config_bits_plb": by_kind.get("plb", 0),
        "config_bits_cbox": by_kind.get("cbox", 0),
        "config_bits_sbox": by_kind.get("sbox", 0),
        "config_bits_io": by_kind.get("io", 0),
        "le": le_statistics(params),
        "plb": plb_statistics(params),
    }
