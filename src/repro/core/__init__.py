"""The paper's contribution: the multi-style asynchronous FPGA architecture.

Everything in this package models Section 3 of the paper:

* :mod:`~repro.core.params` -- the architecture parameter set
  (:class:`ArchitectureParams`) describing the island-style grid, the PLB and
  the LE.  The defaults match the paper: two LEs per PLB, a LUT7-3 plus a
  LUT2-1 per LE, one programmable delay element per PLB.
* :mod:`~repro.core.lut` -- single- and multi-output LUT configuration models.
* :mod:`~repro.core.le` -- the Logic Element of Figure 2.
* :mod:`~repro.core.pde` -- the Programmable Delay Element.
* :mod:`~repro.core.im` -- the PLB-internal Interconnection Matrix (a
  crossbar), through which LUT outputs can be looped back to implement
  memory elements such as Muller gates.
* :mod:`~repro.core.plb` -- the Programmable Logic Block of Figure 1.
* :mod:`~repro.core.switchbox` / :mod:`~repro.core.connectionbox` -- the
  routing-network switch points.
* :mod:`~repro.core.fabric` -- the island-style fabric: a grid of PLB tiles
  surrounded by IO blocks, with horizontal/vertical routing channels.
* :mod:`~repro.core.rrgraph` -- the routing-resource graph derived from the
  fabric, consumed by the router.
* :mod:`~repro.core.bitstream` -- configuration-bit budgeting, encoding and
  decoding.
* :mod:`~repro.core.stats` -- fabric-level statistics used by the
  architecture-figure experiments.
"""

from repro.core.params import ArchitectureParams, LEParams, PLBParams, RoutingParams
from repro.core.lut import LUT, MultiOutputLUT
from repro.core.le import LEConfig, LogicElement
from repro.core.pde import PDEConfig, ProgrammableDelayElement
from repro.core.im import InterconnectionMatrix, IMConfig
from repro.core.plb import PLB, PLBConfig
from repro.core.fabric import Fabric, Tile, TileType
from repro.core.rrgraph import RoutingResourceGraph, RRNode, RRNodeType
from repro.core.bitstream import Bitstream, BitstreamBudget
from repro.core.stats import fabric_statistics

__all__ = [
    "ArchitectureParams",
    "LEParams",
    "PLBParams",
    "RoutingParams",
    "LUT",
    "MultiOutputLUT",
    "LogicElement",
    "LEConfig",
    "ProgrammableDelayElement",
    "PDEConfig",
    "InterconnectionMatrix",
    "IMConfig",
    "PLB",
    "PLBConfig",
    "Fabric",
    "Tile",
    "TileType",
    "RoutingResourceGraph",
    "RRNode",
    "RRNodeType",
    "Bitstream",
    "BitstreamBudget",
    "fabric_statistics",
]
