"""Architecture parameters.

The architecture is deliberately *generic* (the paper stresses that the
structure can be rebuilt and adapted to future asynchronous styles), so every
dimension is a parameter:

* the LE: number of LUT inputs/outputs of the multi-output LUT and of the
  validity LUT;
* the PLB: how many LEs, how many PLB-level inputs/outputs, the programmable
  delay element's tap count and step;
* the routing network: grid size, channel width, connection-box flexibility
  and switch-box topology.

The defaults reproduce the paper's description: a LUT7-3 plus LUT2-1 per LE,
two LEs and one PDE per PLB, island-style routing.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping


def _check_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def canonical_json(data: Any) -> str:
    """A canonical (sorted-key, minimal-separator) JSON rendering of *data*.

    Used as the stable serialization underneath every content-addressed hash
    in the sweep engine, so the same parameters always produce the same key
    across processes and sessions.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)


def stable_digest(data: Any) -> str:
    """A hex sha256 digest of :func:`canonical_json` of *data*."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


class SerializableParams:
    """Shared serialization for the frozen parameter dataclasses.

    Provides ``to_dict`` (recursive ``asdict``) and ``stable_hash`` (a content
    hash stable across processes, unlike ``hash()``); subclasses with nested
    parameter fields define their own ``from_dict`` to rebuild them.
    """

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]):
        return cls(**data)

    def stable_hash(self) -> str:
        return stable_digest(self.to_dict())


@dataclass(frozen=True)
class LEParams(SerializableParams):
    """Parameters of one Logic Element (Figure 2 of the paper)."""

    lut_inputs: int = 7
    lut_outputs: int = 3
    validity_lut_inputs: int = 2
    validity_lut_outputs: int = 1

    def __post_init__(self) -> None:
        _check_positive("lut_inputs", self.lut_inputs)
        _check_positive("lut_outputs", self.lut_outputs)
        _check_positive("validity_lut_inputs", self.validity_lut_inputs)
        _check_positive("validity_lut_outputs", self.validity_lut_outputs)

    @property
    def lut_config_bits(self) -> int:
        """Truth-table bits of the multi-output LUT."""
        return self.lut_outputs * (1 << self.lut_inputs)

    @property
    def validity_lut_config_bits(self) -> int:
        return self.validity_lut_outputs * (1 << self.validity_lut_inputs)

    @property
    def validity_selector_bits(self) -> int:
        """Bits selecting where each validity-LUT input comes from."""
        return self.validity_lut_inputs * math.ceil(
            math.log2(self.lut_inputs + self.lut_outputs)
        )

    @property
    def config_bits(self) -> int:
        """All configuration bits of one LE."""
        return self.lut_config_bits + self.validity_lut_config_bits + self.validity_selector_bits

    @property
    def total_outputs(self) -> int:
        return self.lut_outputs + self.validity_lut_outputs

    @property
    def total_inputs(self) -> int:
        return self.lut_inputs + self.validity_lut_inputs


@dataclass(frozen=True)
class PLBParams(SerializableParams):
    """Parameters of one Programmable Logic Block (Figure 1 of the paper)."""

    les_per_plb: int = 2
    plb_inputs: int = 16
    plb_outputs: int = 8
    pde_taps: int = 8
    pde_step_ps: int = 100
    le: LEParams = field(default_factory=LEParams)

    def __post_init__(self) -> None:
        _check_positive("les_per_plb", self.les_per_plb)
        _check_positive("plb_inputs", self.plb_inputs)
        _check_positive("plb_outputs", self.plb_outputs)
        _check_positive("pde_taps", self.pde_taps)
        _check_positive("pde_step_ps", self.pde_step_ps)

    @property
    def pde_config_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.pde_taps)))

    @property
    def le_output_count(self) -> int:
        """All LE outputs available inside the PLB (LUT7-3 + LUT2-1 outputs)."""
        return self.les_per_plb * self.le.total_outputs

    @property
    def le_input_count(self) -> int:
        return self.les_per_plb * self.le.total_inputs

    @property
    def im_sources(self) -> int:
        """Sources of the interconnection matrix: PLB inputs, LE outputs, PDE output."""
        return self.plb_inputs + self.le_output_count + 1

    @property
    def im_destinations(self) -> int:
        """Destinations of the matrix: LE inputs, PDE input, PLB outputs."""
        return self.le_input_count + 1 + self.plb_outputs

    @property
    def im_config_bits(self) -> int:
        """Bits of a mux-encoded full crossbar (one source selector per destination)."""
        selector = math.ceil(math.log2(self.im_sources + 1))
        return self.im_destinations * selector

    @property
    def config_bits(self) -> int:
        return (
            self.les_per_plb * self.le.config_bits
            + self.pde_config_bits
            + self.im_config_bits
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PLBParams":
        fields = dict(data)
        fields["le"] = LEParams.from_dict(fields.get("le", {}))
        return cls(**fields)


@dataclass(frozen=True)
class RoutingParams(SerializableParams):
    """Parameters of the island-style routing network."""

    # fc_in defaults to 1.0 (every input pin can reach every track of its
    # adjacent channel), which together with the disjoint switch box keeps the
    # fabric routable for any pin pairing; fc_out stays fractional.
    channel_width: int = 8
    fc_in: float = 1.0
    fc_out: float = 0.5
    switchbox: str = "disjoint"  # or "wilton"
    io_pads_per_side: int = 4

    def __post_init__(self) -> None:
        _check_positive("channel_width", self.channel_width)
        if not 0.0 < self.fc_in <= 1.0 or not 0.0 < self.fc_out <= 1.0:
            raise ValueError("fc_in / fc_out must be in (0, 1]")
        if self.switchbox not in ("disjoint", "wilton"):
            raise ValueError(f"unknown switchbox topology {self.switchbox!r}")
        _check_positive("io_pads_per_side", self.io_pads_per_side)

    def tracks_per_pin(self, fc: float) -> int:
        return max(1, round(fc * self.channel_width))


@dataclass(frozen=True)
class ArchitectureParams(SerializableParams):
    """Top-level description of a fabric instance."""

    width: int = 6
    height: int = 6
    plb: PLBParams = field(default_factory=PLBParams)
    routing: RoutingParams = field(default_factory=RoutingParams)
    name: str = "multi-style-async-fpga"

    def __post_init__(self) -> None:
        _check_positive("width", self.width)
        _check_positive("height", self.height)

    @property
    def plb_count(self) -> int:
        return self.width * self.height

    @property
    def le_count(self) -> int:
        return self.plb_count * self.plb.les_per_plb

    @property
    def io_pad_count(self) -> int:
        return 2 * (self.width + self.height) * self.routing.io_pads_per_side

    def scaled(self, width: int, height: int) -> "ArchitectureParams":
        """The same architecture on a different grid size."""
        return ArchitectureParams(
            width=width, height=height, plb=self.plb, routing=self.routing, name=self.name
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArchitectureParams":
        fields = dict(data)
        fields["plb"] = PLBParams.from_dict(fields.get("plb", {}))
        fields["routing"] = RoutingParams.from_dict(fields.get("routing", {}))
        return cls(**fields)


#: The reference architecture instance used by examples, tests and benchmarks.
DEFAULT_ARCHITECTURE = ArchitectureParams()
