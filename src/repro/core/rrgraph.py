"""Routing-resource graph construction.

The router operates on a flat graph whose nodes are the physical routing
resources of the fabric:

* ``OPIN`` -- a PLB (or IO pad) output pin,
* ``IPIN`` -- a PLB (or IO pad) input pin,
* ``WIRE`` -- one track of one channel segment.

Edges follow the island-style connectivity: output pins drive a subset of the
tracks of their adjacent channel (connection box, flexibility ``fc_out``),
tracks drive a subset of the input pins alongside them (``fc_in``), and tracks
meeting at a grid corner are joined by the switch box (disjoint or Wilton
pattern).  All wire-to-wire and wire-to-pin connections are modelled
bidirectionally, matching a pass-transistor style routing fabric.

Every node has unit capacity; the PathFinder router negotiates congestion on
top of this graph.
"""

from __future__ import annotations

import enum
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.fabric import Fabric, IOPad


class RRNodeType(enum.Enum):
    OPIN = "opin"
    IPIN = "ipin"
    WIRE = "wire"


@dataclass
class RRNode:
    """One routing resource."""

    node_id: int
    node_type: RRNodeType
    name: str
    x: int
    y: int
    track: int = -1
    capacity: int = 1
    base_cost: float = 1.0
    edges: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RRNode({self.node_id}, {self.node_type.value}, {self.name})"


class RoutingResourceGraph:
    """The routing-resource graph of one fabric instance.

    Besides the :class:`RRNode` object list the graph carries **flattened
    parallel arrays** (:attr:`base_cost`, :attr:`capacity`, :attr:`is_wire`
    and the CSR adjacency :attr:`edge_starts` / :attr:`edge_targets`), built
    once after construction.  The router's hot loops index these plain lists
    instead of chasing ``graph.node(i).attr`` per edge relaxation; the graph
    is immutable after ``__init__``, so the arrays never go stale.
    """

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self.nodes: list[RRNode] = []
        self._by_name: dict[str, int] = {}
        self._build()
        self._flatten()

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def _add_node(self, node_type: RRNodeType, name: str, x: int, y: int, track: int = -1, base_cost: float = 1.0) -> RRNode:
        if name in self._by_name:
            raise ValueError(f"duplicate RR node name {name!r}")
        node = RRNode(
            node_id=len(self.nodes),
            node_type=node_type,
            name=name,
            x=x,
            y=y,
            track=track,
            base_cost=base_cost,
        )
        self.nodes.append(node)
        self._by_name[name] = node.node_id
        return node

    def _add_edge(self, a: int, b: int) -> None:
        if b not in self.nodes[a].edges:
            self.nodes[a].edges.append(b)
        if a not in self.nodes[b].edges:
            self.nodes[b].edges.append(a)

    def node(self, node_id: int) -> RRNode:
        return self.nodes[node_id]

    def node_by_name(self, name: str) -> RRNode:
        return self.nodes[self._by_name[name]]

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(node.edges) for node in self.nodes) // 2

    # ------------------------------------------------------------------
    # Name helpers (the router and bitstream use these)
    # ------------------------------------------------------------------
    @staticmethod
    def wire_name(orientation: str, x: int, y: int, track: int) -> str:
        return f"wire_{orientation}_{x}_{y}_t{track}"

    @staticmethod
    def opin_name(x: int, y: int, pin: str) -> str:
        return f"opin_{x}_{y}_{pin}"

    @staticmethod
    def ipin_name(x: int, y: int, pin: str) -> str:
        return f"ipin_{x}_{y}_{pin}"

    @staticmethod
    def io_opin_name(pad: IOPad) -> str:
        return f"opin_{pad.name}"

    @staticmethod
    def io_ipin_name(pad: IOPad) -> str:
        return f"ipin_{pad.name}"

    def opin(self, x: int, y: int, pin: str) -> RRNode:
        return self.node_by_name(self.opin_name(x, y, pin))

    def ipin(self, x: int, y: int, pin: str) -> RRNode:
        return self.node_by_name(self.ipin_name(x, y, pin))

    def io_opin(self, pad: IOPad) -> RRNode:
        return self.node_by_name(self.io_opin_name(pad))

    def io_ipin(self, pad: IOPad) -> RRNode:
        return self.node_by_name(self.io_ipin_name(pad))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        fabric = self.fabric
        routing = fabric.params.routing
        channel_width = routing.channel_width

        # 1. Wire nodes.
        wire_ids: dict[tuple[str, int, int, int], int] = {}
        for x, y in fabric.horizontal_channels():
            for track in range(channel_width):
                node = self._add_node(RRNodeType.WIRE, self.wire_name("h", x, y, track), x, y, track)
                wire_ids[("h", x, y, track)] = node.node_id
        for x, y in fabric.vertical_channels():
            for track in range(channel_width):
                node = self._add_node(RRNodeType.WIRE, self.wire_name("v", x, y, track), x, y, track)
                wire_ids[("v", x, y, track)] = node.node_id

        # 2. Switch boxes: join tracks meeting at each corner.
        for corner_x, corner_y in fabric.switchbox_corners():
            incident = fabric.corner_incident_channels(corner_x, corner_y)
            for track in range(channel_width):
                segment_nodes = [wire_ids[(o, x, y, track)] for o, x, y in incident]
                if routing.switchbox == "disjoint":
                    for i in range(len(segment_nodes)):
                        for j in range(i + 1, len(segment_nodes)):
                            self._add_edge(segment_nodes[i], segment_nodes[j])
                else:  # wilton: rotate the track index between orthogonal segments
                    for i, (orient_a, _xa, _ya) in enumerate(incident):
                        for j in range(i + 1, len(incident)):
                            orient_b = incident[j][0]
                            if orient_a == orient_b:
                                self._add_edge(segment_nodes[i], segment_nodes[j])
                            else:
                                partner = (track + 1) % channel_width
                                other = wire_ids[(incident[j][0], incident[j][1], incident[j][2], partner)]
                                self._add_edge(segment_nodes[i], other)

        # 3. PLB pins and their connection boxes.
        fc_out_tracks = routing.tracks_per_pin(routing.fc_out)
        fc_in_tracks = routing.tracks_per_pin(routing.fc_in)
        for x, y in fabric.plb_sites():
            for pin_index, pin in enumerate(fabric.plb_output_pins()):
                node = self._add_node(RRNodeType.OPIN, self.opin_name(x, y, pin), x, y)
                orientation, cx, cy = fabric.pin_channel(x, y, pin_index)
                for offset in range(fc_out_tracks):
                    track = (pin_index + offset) % channel_width
                    self._add_edge(node.node_id, wire_ids[(orientation, cx, cy, track)])
            for pin_index, pin in enumerate(fabric.plb_input_pins()):
                node = self._add_node(RRNodeType.IPIN, self.ipin_name(x, y, pin), x, y)
                orientation, cx, cy = fabric.pin_channel(x, y, pin_index)
                for offset in range(fc_in_tracks):
                    track = (pin_index + offset) % channel_width
                    self._add_edge(node.node_id, wire_ids[(orientation, cx, cy, track)])

        # 4. IO pads: full connectivity to their boundary channel segment.
        for pad in fabric.io_pads():
            orientation, cx, cy = pad.adjacent_channel(fabric.width, fabric.height)
            opin = self._add_node(RRNodeType.OPIN, self.io_opin_name(pad), cx, cy)
            ipin = self._add_node(RRNodeType.IPIN, self.io_ipin_name(pad), cx, cy)
            for track in range(channel_width):
                wire = wire_ids[(orientation, cx, cy, track)]
                self._add_edge(opin.node_id, wire)
                self._add_edge(ipin.node_id, wire)

    def _flatten(self) -> None:
        """Build the flat parallel arrays the router's inner loops index.

        ``edge_starts[i]:edge_starts[i + 1]`` slices ``edge_targets`` into
        node *i*'s neighbours (classic CSR layout).
        """
        self.base_cost: list[float] = [node.base_cost for node in self.nodes]
        self.capacity: list[int] = [node.capacity for node in self.nodes]
        self.is_wire: list[bool] = [
            node.node_type is RRNodeType.WIRE for node in self.nodes
        ]
        # Node coordinates, flattened for the router's A* lower bound (one
        # switch-box or connection-box hop moves at most one unit in each
        # coordinate, so Manhattan distance / 2 under-counts the hops left).
        self.x: list[int] = [node.x for node in self.nodes]
        self.y: list[int] = [node.y for node in self.nodes]
        starts = [0]
        targets: list[int] = []
        for node in self.nodes:
            targets.extend(node.edges)
            starts.append(len(targets))
        self.edge_starts: list[int] = starts
        self.edge_targets: list[int] = targets

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        by_type = {node_type: 0 for node_type in RRNodeType}
        for node in self.nodes:
            by_type[node.node_type] += 1
        return {
            "nodes": len(self.nodes),
            "edges": self.edge_count,
            "wires": by_type[RRNodeType.WIRE],
            "opins": by_type[RRNodeType.OPIN],
            "ipins": by_type[RRNodeType.IPIN],
        }


#: Bound on the shared graph cache: a sweep's channel-width ladder touches a
#: handful of geometries at a time, and an RR graph of a large fabric is tens
#: of MB — keep the working set small and evict least-recently-used beyond it.
_RR_GRAPH_CACHE_LIMIT = 8
_rr_graph_cache: "OrderedDict[tuple[str, str], RoutingResourceGraph]" = OrderedDict()
_rr_graph_lock = threading.Lock()


def cached_rr_graph(fabric: Fabric) -> RoutingResourceGraph:
    """A shared :class:`RoutingResourceGraph` for *fabric*'s geometry.

    Graph construction is pure in the architecture parameters and the graph
    is immutable after ``__init__`` (the router keeps occupancy externally),
    so one instance can back every flow over the same geometry — a batch
    sweep amortizes construction and the kernel layer's attached arrays
    (:mod:`repro.cad.kernels.arrays`) across all of its points.

    The cache key pairs the parameters' stable hash with the repo's code
    fingerprint: an edited graph builder misses rather than serving a graph
    built by older code.  Entries are LRU-bounded by
    :data:`_RR_GRAPH_CACHE_LIMIT`.
    """
    from repro.fingerprint import code_fingerprint

    key = (fabric.params.stable_hash(), code_fingerprint())
    with _rr_graph_lock:
        cached = _rr_graph_cache.get(key)
        if cached is not None:
            _rr_graph_cache.move_to_end(key)
            return cached
    graph = RoutingResourceGraph(fabric)
    with _rr_graph_lock:
        existing = _rr_graph_cache.get(key)
        if existing is not None:
            # A concurrent build won the race; keep the first instance so
            # every caller shares one set of kernel arrays.
            _rr_graph_cache.move_to_end(key)
            return existing
        _rr_graph_cache[key] = graph
        while len(_rr_graph_cache) > _RR_GRAPH_CACHE_LIMIT:
            _rr_graph_cache.popitem(last=False)
    return graph
