"""The Programmable Logic Block (Figure 1 of the paper).

A PLB contains:

* an Interconnection Matrix (IM) -- a crossbar joining the PLB inputs, the
  LE inputs/outputs and the PDE;
* two Logic Elements (LEs), each a LUT7-3 plus a LUT2-1;
* one Programmable Delay Element (PDE).

Memory elements (Muller gates, latches) are built by routing an LE output
back to one of its own inputs through the IM; the behavioural evaluation in
:meth:`PLB.evaluate` therefore iterates to a fixed point while honouring the
previous internal state, which is exactly the semantics the event-driven
fabric simulator uses.

Signal naming inside the PLB:

* PLB inputs: ``in0 .. in<N-1>``; PLB outputs: ``out0 .. out<M-1>``.
* LE *j* LUT inputs ``le<j>_i0..i6``; validity-LUT inputs ``le<j>_v0/v1``;
  LUT outputs ``le<j>_o0..o2``; validity output ``le<j>_ov``.
* PDE input ``pde_in`` and output ``pde_out``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.im import IMConfig, InterconnectionMatrix
from repro.core.le import LEConfig, LogicElement
from repro.core.params import PLBParams
from repro.core.pde import PDEConfig, ProgrammableDelayElement


@dataclass
class PLBConfig:
    """Complete configuration of one PLB."""

    le_configs: list[LEConfig] = field(default_factory=list)
    pde_config: PDEConfig = field(default_factory=PDEConfig)
    im_config: IMConfig = field(default_factory=IMConfig)

    def used(self) -> bool:
        return any(config.used() for config in self.le_configs) or self.pde_config.used


class PLB:
    """A behavioural PLB instance."""

    def __init__(self, params: PLBParams | None = None, name: str = "plb") -> None:
        self.params = params if params is not None else PLBParams()
        self.name = name
        self.les = [
            LogicElement(self.params.le, name=f"{name}.le{index}")
            for index in range(self.params.les_per_plb)
        ]
        self.pde = ProgrammableDelayElement(
            self.params.pde_taps, self.params.pde_step_ps, name=f"{name}.pde"
        )
        self.im = InterconnectionMatrix(
            sources=self.im_source_names(),
            destinations=self.im_destination_names(),
            name=f"{name}.im",
        )

    # ------------------------------------------------------------------
    # Signal naming
    # ------------------------------------------------------------------
    def input_names(self) -> tuple[str, ...]:
        return tuple(f"in{index}" for index in range(self.params.plb_inputs))

    def output_names(self) -> tuple[str, ...]:
        return tuple(f"out{index}" for index in range(self.params.plb_outputs))

    def le_output_signals(self) -> tuple[str, ...]:
        names: list[str] = []
        for le_index, le in enumerate(self.les):
            for output in le.output_names:
                names.append(f"le{le_index}_{output}")
        return tuple(names)

    def le_input_signals(self) -> tuple[str, ...]:
        names: list[str] = []
        for le_index, le in enumerate(self.les):
            for pin in le.input_pins:
                names.append(f"le{le_index}_{pin}")
            for pin in le.validity_pins:
                names.append(f"le{le_index}_{pin}")
        return tuple(names)

    def im_source_names(self) -> tuple[str, ...]:
        return tuple(list(self.input_names()) + list(self.le_output_signals()) + ["pde_out"])

    def im_destination_names(self) -> tuple[str, ...]:
        return tuple(list(self.le_input_signals()) + ["pde_in"] + list(self.output_names()))

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, config: PLBConfig) -> None:
        if len(config.le_configs) > len(self.les):
            raise ValueError(
                f"{len(config.le_configs)} LE configurations for a PLB with {len(self.les)} LEs"
            )
        for le, le_config in zip(self.les, config.le_configs):
            le.configure(le_config)
        self.pde.configure(config.pde_config)
        self.im.clear()
        self.im.load(config.im_config)

    @property
    def config_bits(self) -> int:
        """Total configuration bits of the PLB."""
        return sum(le.config_bits for le in self.les) + self.pde.config_bits + self.im.config_bits

    def config_bit_breakdown(self) -> dict[str, int]:
        return {
            "le_lut_bits": sum(le.lut.config_bits for le in self.les),
            "le_validity_bits": sum(le.validity_lut.config_bits for le in self.les),
            "le_selector_bits": sum(
                le.config_bits - le.lut.config_bits - le.validity_lut.config_bits for le in self.les
            ),
            "pde_bits": self.pde.config_bits,
            "im_bits": self.im.config_bits,
            "total": self.config_bits,
        }

    # ------------------------------------------------------------------
    # Behavioural evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        inputs: Mapping[str, int],
        state: Mapping[str, int] | None = None,
        max_iterations: int = 16,
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Evaluate the PLB for one set of input values.

        Parameters
        ----------
        inputs:
            Values of the PLB input pins (``in0`` ...); missing pins read 0.
        state:
            Previous values of the internal LE/PDE output signals, needed for
            feedback loops (memory elements).  Missing signals start at 0.
        max_iterations:
            Fixed-point iteration limit; oscillation raises ``RuntimeError``.

        Returns
        -------
        (outputs, new_state):
            ``outputs`` maps PLB output pins to values; ``new_state`` holds
            the settled internal signal values to pass to the next call.
        """
        source_values: dict[str, int] = {name: 0 for name in self.im.sources}
        for name in self.input_names():
            source_values[name] = int(inputs.get(name, 0))
        if state:
            for name, value in state.items():
                if name in source_values:
                    source_values[name] = int(value)

        for _ in range(max_iterations):
            destination_values = self.im.propagate(source_values)

            new_values = dict(source_values)
            for le_index, le in enumerate(self.les):
                le_inputs: dict[str, int] = {}
                for pin in list(le.input_pins) + list(le.validity_pins):
                    le_inputs[pin] = destination_values[f"le{le_index}_{pin}"]
                outputs = le.evaluate(le_inputs)
                for output_name, value in outputs.items():
                    new_values[f"le{le_index}_{output_name}"] = value
            # The PDE is a pure delay: behaviourally its output follows its input.
            new_values["pde_out"] = destination_values["pde_in"]

            if new_values == source_values:
                break
            source_values = new_values
        else:
            raise RuntimeError(f"PLB {self.name} did not reach a fixed point (oscillation)")

        destination_values = self.im.propagate(source_values)
        outputs = {name: destination_values[name] for name in self.output_names()}
        new_state = {
            name: source_values[name]
            for name in list(self.le_output_signals()) + ["pde_out"]
        }
        return outputs, new_state

    # ------------------------------------------------------------------
    # Utilisation
    # ------------------------------------------------------------------
    def utilisation(self) -> dict[str, object]:
        per_le = [le.utilisation() for le in self.les]
        return {
            "les": per_le,
            "pde_used": self.pde.config.used,
            "im_destinations_used": self.im.used_destinations(),
            "im_destinations_total": len(self.im.destinations),
        }
