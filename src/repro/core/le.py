"""The Logic Element (Figure 2 of the paper).

An LE is a multi-output LUT (LUT7-3 by default) whose internal signals are
exported as auxiliary outputs, plus a small validity LUT (LUT2-1) "directly
plugged" to it.  The validity LUT's two inputs are selectable from either the
LE's own primary inputs or the multi-output LUT's outputs, which is what lets
an LE compute the data-validity (completion) function of the 1-of-N digit it
produces without spending main-LUT resources.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.lut import LUT, MultiOutputLUT, pin_names
from repro.core.params import LEParams
from repro.logic.truthtable import TruthTable

#: Validity-LUT input source kinds.
VALIDITY_SOURCE_INPUT = "input"      # one of the LE's primary input pins
VALIDITY_SOURCE_LUT_OUTPUT = "lut"   # one of the multi-output LUT's outputs


@dataclass(frozen=True)
class ValiditySource:
    """Where one validity-LUT input pin is connected."""

    kind: str
    index: int

    def __post_init__(self) -> None:
        if self.kind not in (VALIDITY_SOURCE_INPUT, VALIDITY_SOURCE_LUT_OUTPUT):
            raise ValueError(f"unknown validity source kind {self.kind!r}")
        if self.index < 0:
            raise ValueError("source index must be non-negative")


@dataclass
class LEConfig:
    """The complete configuration of one LE.

    Attributes
    ----------
    lut_tables:
        One optional truth table per multi-output-LUT output, expressed over
        the physical pins ``i0..i6``.
    validity_table:
        Optional truth table of the LUT2-1, over pins ``v0``/``v1``.
    validity_sources:
        Where ``v0``/``v1`` are connected (LE inputs or LUT outputs).
    """

    lut_tables: list[TruthTable | None] = field(default_factory=list)
    validity_table: TruthTable | None = None
    validity_sources: tuple[ValiditySource, ...] = ()

    def used(self) -> bool:
        return any(table is not None for table in self.lut_tables) or self.validity_table is not None


class LogicElement:
    """A behavioural LE instance."""

    def __init__(self, params: LEParams | None = None, name: str = "le") -> None:
        self.params = params if params is not None else LEParams()
        self.name = name
        self.lut = MultiOutputLUT(self.params.lut_inputs, self.params.lut_outputs, name=f"{name}.lut")
        self.validity_lut = LUT(self.params.validity_lut_inputs, name=f"{name}.vlut", pin_prefix="v")
        self.validity_sources: tuple[ValiditySource, ...] = tuple(
            ValiditySource(VALIDITY_SOURCE_LUT_OUTPUT, index)
            for index in range(self.params.validity_lut_inputs)
        )

    # ------------------------------------------------------------------
    # Pin/port naming
    # ------------------------------------------------------------------
    @property
    def input_pins(self) -> tuple[str, ...]:
        return pin_names(self.params.lut_inputs)

    @property
    def validity_pins(self) -> tuple[str, ...]:
        return pin_names(self.params.validity_lut_inputs, prefix="v")

    @property
    def output_names(self) -> tuple[str, ...]:
        """LUT outputs ``o0..o<m-1>`` followed by the validity output ``ov``."""
        return tuple(list(self.lut.output_names) + ["ov"])

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, config: LEConfig) -> None:
        for lut in self.lut.outputs:
            lut.clear()
        self.validity_lut.clear()
        self.lut.configure(list(config.lut_tables))
        if config.validity_table is not None:
            self.validity_lut.configure(config.validity_table)
        if config.validity_sources:
            if len(config.validity_sources) != self.params.validity_lut_inputs:
                raise ValueError(
                    f"expected {self.params.validity_lut_inputs} validity sources, "
                    f"got {len(config.validity_sources)}"
                )
            self.validity_sources = tuple(config.validity_sources)

    @property
    def config_bits(self) -> int:
        """Total configuration bits of this LE (LUTs + validity input selectors)."""
        selector_bits = self.params.validity_lut_inputs * math.ceil(
            math.log2(self.params.lut_inputs + self.params.lut_outputs)
        )
        return self.lut.config_bits + self.validity_lut.config_bits + selector_bits

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, input_values: Mapping[str, int]) -> dict[str, int]:
        """Evaluate all outputs for values of the LE input pins ``i0..``.

        Returns a mapping over :attr:`output_names`.
        """
        lut_outputs = self.lut.evaluate(input_values)

        validity_inputs: dict[str, int] = {}
        for pin, source in zip(self.validity_pins, self.validity_sources):
            if pin in input_values:
                # Direct drive of the validity pin (e.g. from the PLB's
                # interconnection matrix) overrides the internal selector.
                validity_inputs[pin] = input_values[pin]
            elif source.kind == VALIDITY_SOURCE_INPUT:
                validity_inputs[pin] = input_values.get(f"i{source.index}", 0)
            else:
                validity_inputs[pin] = lut_outputs[source.index] if source.index < len(lut_outputs) else 0
        validity_output = self.validity_lut.evaluate(validity_inputs)

        result = {name: value for name, value in zip(self.lut.output_names, lut_outputs)}
        result["ov"] = validity_output
        return result

    # ------------------------------------------------------------------
    # Utilisation queries (used by the filling-ratio metric)
    # ------------------------------------------------------------------
    def used_lut_outputs(self) -> int:
        return self.lut.used_outputs()

    def used_lut_input_pins(self) -> int:
        return len(self.lut.used_pins())

    def validity_used(self) -> bool:
        return self.validity_lut.configured

    def utilisation(self) -> dict[str, int]:
        return {
            "lut_inputs_used": self.used_lut_input_pins(),
            "lut_inputs_total": self.params.lut_inputs,
            "lut_outputs_used": self.used_lut_outputs(),
            "lut_outputs_total": self.params.lut_outputs,
            "validity_inputs_used": (
                len(self.validity_lut.used_pins()) if self.validity_lut.configured else 0
            ),
            "validity_inputs_total": self.params.validity_lut_inputs,
            "validity_outputs_used": 1 if self.validity_lut.configured else 0,
            "validity_outputs_total": self.params.validity_lut_outputs,
        }

    def config_vector(self) -> tuple[int, ...]:
        """Raw configuration bits: LUT7-3 bits, LUT2 bits, validity selectors."""
        bits = list(self.lut.config_vector())
        bits.extend(self.validity_lut.config_vector())
        selector_width = math.ceil(math.log2(self.params.lut_inputs + self.params.lut_outputs))
        for source in self.validity_sources:
            # Encode LE-input sources as [0, lut_inputs) and LUT outputs after them.
            code = source.index if source.kind == VALIDITY_SOURCE_INPUT else self.params.lut_inputs + source.index
            for bit_index in range(selector_width):
                bits.append((code >> bit_index) & 1)
        return tuple(bits)
