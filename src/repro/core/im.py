"""The PLB-internal Interconnection Matrix (IM).

The IM is a crossbar that "maps together PLB inputs, LE inputs and outputs,
and the PDE" (Section 3, Figure 1).  Crucially, because LE *outputs* are among
its sources and LE *inputs* among its destinations, combinational functions
can be looped back on themselves -- this is how the architecture implements
memory elements such as Muller gates without dedicated storage cells.

The model is a full crossbar: every destination has a multiplexer able to pick
any source (or none).  Configuration cost is therefore
``destinations * ceil(log2(sources + 1))`` bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass
class IMConfig:
    """Routing choices of the matrix: destination name -> source name."""

    routes: dict[str, str] = field(default_factory=dict)

    def copy(self) -> "IMConfig":
        return IMConfig(routes=dict(self.routes))


class InterconnectionMatrix:
    """A named full crossbar."""

    def __init__(self, sources: Iterable[str], destinations: Iterable[str], name: str = "im") -> None:
        self.sources = tuple(sources)
        self.destinations = tuple(destinations)
        self.name = name
        if len(set(self.sources)) != len(self.sources):
            raise ValueError("duplicate IM source names")
        if len(set(self.destinations)) != len(self.destinations):
            raise ValueError("duplicate IM destination names")
        self.config = IMConfig()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def connect(self, destination: str, source: str) -> None:
        """Route *source* to *destination* (one source per destination)."""
        if destination not in self.destinations:
            raise KeyError(f"unknown IM destination {destination!r}")
        if source not in self.sources:
            raise KeyError(f"unknown IM source {source!r}")
        self.config.routes[destination] = source

    def disconnect(self, destination: str) -> None:
        self.config.routes.pop(destination, None)

    def source_of(self, destination: str) -> str | None:
        return self.config.routes.get(destination)

    def load(self, config: IMConfig) -> None:
        for destination, source in config.routes.items():
            self.connect(destination, source)

    def clear(self) -> None:
        self.config = IMConfig()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def crosspoints(self) -> int:
        return len(self.sources) * len(self.destinations)

    @property
    def selector_bits(self) -> int:
        """Bits of one destination's source selector (+1 state for 'unconnected')."""
        return max(1, math.ceil(math.log2(len(self.sources) + 1)))

    @property
    def config_bits(self) -> int:
        return len(self.destinations) * self.selector_bits

    def used_destinations(self) -> int:
        return len(self.config.routes)

    def used_sources(self) -> set[str]:
        return set(self.config.routes.values())

    def utilisation(self) -> float:
        if not self.destinations:
            return 0.0
        return self.used_destinations() / len(self.destinations)

    # ------------------------------------------------------------------
    # Evaluation / encoding
    # ------------------------------------------------------------------
    def propagate(self, source_values: Mapping[str, int]) -> dict[str, int]:
        """Destination values given source values (unrouted destinations read 0)."""
        result: dict[str, int] = {}
        for destination in self.destinations:
            source = self.config.routes.get(destination)
            result[destination] = source_values.get(source, 0) if source is not None else 0
        return result

    def config_vector(self) -> tuple[int, ...]:
        """Raw bits: per destination, the selected source index + 1 (0 = unconnected)."""
        bits: list[int] = []
        for destination in self.destinations:
            source = self.config.routes.get(destination)
            code = 0 if source is None else self.sources.index(source) + 1
            for bit_index in range(self.selector_bits):
                bits.append((code >> bit_index) & 1)
        return tuple(bits)

    @classmethod
    def decode_config_vector(
        cls,
        sources: tuple[str, ...],
        destinations: tuple[str, ...],
        bits: tuple[int, ...],
    ) -> IMConfig:
        """Inverse of :meth:`config_vector` (used by bitstream round-trip tests)."""
        matrix = cls(sources, destinations)
        width = matrix.selector_bits
        if len(bits) != len(destinations) * width:
            raise ValueError("configuration vector length mismatch")
        routes: dict[str, str] = {}
        for index, destination in enumerate(destinations):
            code = 0
            for bit_index in range(width):
                code |= bits[index * width + bit_index] << bit_index
            if code:
                routes[destination] = sources[code - 1]
        return IMConfig(routes=routes)
