"""The Programmable Delay Element (PDE).

The PDE gives the PLB the ability to implement logic styles that need timing
assumptions (Section 3): in bundled-data / micropipeline circuits it realises
the matched delay that guarantees the request arrives after the data has
settled (Figure 3a).

The model is a tap-selectable delay line: the configuration chooses how many
delay taps the signal traverses, each contributing ``step_ps`` picoseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PDEConfig:
    """Configuration of one PDE: the selected tap (0 = minimum delay)."""

    tap: int = 0
    used: bool = False

    def __post_init__(self) -> None:
        if self.tap < 0:
            raise ValueError("PDE tap must be non-negative")


class ProgrammableDelayElement:
    """A tap-selectable delay line."""

    def __init__(self, taps: int = 8, step_ps: int = 100, name: str = "pde") -> None:
        if taps < 1:
            raise ValueError("a PDE needs at least one tap")
        if step_ps < 1:
            raise ValueError("the PDE step must be at least 1 ps")
        self.taps = taps
        self.step_ps = step_ps
        self.name = name
        self.config = PDEConfig()

    @property
    def config_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.taps)))

    @property
    def max_delay_ps(self) -> int:
        return self.taps * self.step_ps

    @property
    def min_delay_ps(self) -> int:
        return self.step_ps

    def configure(self, config: PDEConfig) -> None:
        if config.tap >= self.taps:
            raise ValueError(f"tap {config.tap} out of range (taps={self.taps})")
        self.config = config

    def configure_delay(self, delay_ps: int) -> PDEConfig:
        """Pick the smallest tap whose delay is at least *delay_ps*.

        Raises ``ValueError`` when the request exceeds the PDE's range -- the
        CAD flow reports this as an unrealisable timing assumption.
        """
        if delay_ps <= 0:
            raise ValueError("requested delay must be positive")
        tap = math.ceil(delay_ps / self.step_ps) - 1
        if tap >= self.taps:
            raise ValueError(
                f"requested delay {delay_ps} ps exceeds the PDE range "
                f"({self.taps} taps x {self.step_ps} ps = {self.max_delay_ps} ps)"
            )
        config = PDEConfig(tap=tap, used=True)
        self.configure(config)
        return config

    @property
    def delay_ps(self) -> int:
        """The currently configured propagation delay."""
        return (self.config.tap + 1) * self.step_ps

    def config_vector(self) -> tuple[int, ...]:
        bits = []
        for bit_index in range(self.config_bits):
            bits.append((self.config.tap >> bit_index) & 1)
        return tuple(bits)

    def achievable_delays(self) -> tuple[int, ...]:
        """Every delay the PDE can be programmed to, in ps."""
        return tuple((tap + 1) * self.step_ps for tap in range(self.taps))
