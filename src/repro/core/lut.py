"""Configurable LUT models.

A :class:`LUT` is a single-output look-up table with a fixed number of
physical input pins; a :class:`MultiOutputLUT` is the paper's LUT7-3: several
output functions sharing one set of physical input pins, with the internal
signals "made externally available" so that 1-of-N encoded functions can be
packed efficiently (Section 3).

Both wrap :class:`~repro.logic.truthtable.TruthTable` configurations, adding
the notion of *physical pin positions* (``i0`` ... ``i(k-1)``) so that the
CAD flow can reason about pin usage (the filling-ratio metric) and the
bitstream generator can lay the truth-table bits out deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.logic.truthtable import TruthTable


def pin_names(count: int, prefix: str = "i") -> tuple[str, ...]:
    """Physical pin names ``i0 .. i<count-1>``."""
    return tuple(f"{prefix}{index}" for index in range(count))


@dataclass
class LUT:
    """A single-output LUT with *k* physical input pins."""

    k: int
    table: TruthTable | None = None
    name: str = "lut"
    pin_prefix: str = "i"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("a LUT needs at least one input pin")
        if self.table is not None:
            self.configure(self.table)

    @property
    def pins(self) -> tuple[str, ...]:
        return pin_names(self.k, prefix=self.pin_prefix)

    @property
    def config_bits(self) -> int:
        return 1 << self.k

    @property
    def configured(self) -> bool:
        return self.table is not None

    def configure(self, table: TruthTable) -> None:
        """Load a function; it must fit the physical pin count.

        The table's inputs must be a subset of the physical pin names (the
        mapper assigns logical nets to pins before configuring).
        """
        unknown = [pin for pin in table.inputs if pin not in self.pins]
        if unknown:
            raise ValueError(
                f"LUT{self.k} cannot host a function over pins {unknown}; legal pins: {self.pins}"
            )
        self.table = table

    def clear(self) -> None:
        self.table = None

    def evaluate(self, pin_values: Mapping[str, int]) -> int:
        """Evaluate the configured function; unconfigured LUTs output 0."""
        if self.table is None:
            return 0
        return self.table.evaluate({pin: pin_values.get(pin, 0) for pin in self.table.inputs})

    def used_pins(self) -> tuple[str, ...]:
        """Pins the configured function actually depends on."""
        if self.table is None:
            return ()
        return tuple(pin for pin in self.table.inputs if self.table.depends_on(pin))

    def config_vector(self) -> tuple[int, ...]:
        """The raw configuration bits (all zeros when unconfigured)."""
        if self.table is None:
            return tuple([0] * self.config_bits)
        expanded = self.table.extend_inputs(self.pins)
        return expanded.bits


@dataclass
class MultiOutputLUT:
    """A multi-output LUT: *m* functions over *k* shared physical input pins.

    This models the paper's LUT7-3 (k=7, m=3): the auxiliary outputs expose
    internal signals so one LE can produce several rails of a 1-of-N code.
    """

    k: int = 7
    m: int = 3
    name: str = "lut7_3"
    outputs: list[LUT] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.k < 1 or self.m < 1:
            raise ValueError("MultiOutputLUT needs positive k and m")
        if not self.outputs:
            self.outputs = [LUT(self.k, name=f"{self.name}.o{index}") for index in range(self.m)]
        if len(self.outputs) != self.m:
            raise ValueError(f"expected {self.m} output LUTs, got {len(self.outputs)}")

    @property
    def pins(self) -> tuple[str, ...]:
        return pin_names(self.k)

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(f"o{index}" for index in range(self.m))

    @property
    def config_bits(self) -> int:
        return self.m * (1 << self.k)

    def configure_output(self, index: int, table: TruthTable) -> None:
        if not 0 <= index < self.m:
            raise IndexError(f"output index {index} out of range (m={self.m})")
        self.outputs[index].configure(table)

    def configure(self, tables: Sequence[TruthTable | None]) -> None:
        """Configure all outputs at once (``None`` leaves an output unused)."""
        if len(tables) > self.m:
            raise ValueError(f"cannot configure {len(tables)} outputs on a LUT{self.k}-{self.m}")
        for index, table in enumerate(tables):
            if table is not None:
                self.configure_output(index, table)

    def evaluate(self, pin_values: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(lut.evaluate(pin_values) for lut in self.outputs)

    def used_outputs(self) -> int:
        return sum(1 for lut in self.outputs if lut.configured)

    def used_pins(self) -> tuple[str, ...]:
        used: list[str] = []
        for lut in self.outputs:
            for pin in lut.used_pins():
                if pin not in used:
                    used.append(pin)
        return tuple(sorted(used, key=lambda pin: int(pin[1:])))

    def config_vector(self) -> tuple[int, ...]:
        bits: list[int] = []
        for lut in self.outputs:
            bits.extend(lut.config_vector())
        return tuple(bits)
