"""ASCII renderings of the paper's architecture figures.

:func:`render_figure1_plb` and :func:`render_figure2_le` reproduce the
*content* of Figure 1 (the PLB's internal view) and Figure 2 (the LE's
internal view) as annotated ASCII diagrams parameterised by the architecture
instance; :func:`render_fabric_floorplan` draws the island-style grid with a
placed design overlaid (used by the examples).
"""

from __future__ import annotations

from repro.cad.place import Placement
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams


def render_figure2_le(params: ArchitectureParams | None = None) -> str:
    """Figure 2: the Logic Element (multi-output LUT + validity LUT)."""
    params = params if params is not None else ArchitectureParams()
    le = params.plb.le
    k, m = le.lut_inputs, le.lut_outputs
    v = le.validity_lut_inputs
    lines = [
        f"Figure 2 -- Logic Element (LUT{k}-{m} + LUT{v}-{le.validity_lut_outputs})",
        "",
        f"  LE inputs (i0..i{k - 1})        auxiliary outputs",
        "        |                         ^",
        "        v                         |",
        "  +-----------------------------------+",
        f"  |        multi-output LUT{k}-{m}        |--> o0",
        "  |  (internal signals exported for   |--> o1",
        "  |   1-of-N / multi-rail encodings)  |--> o2"[: 39 + 7] + "",
        "  +-----------------------------------+",
        "        |  (selected signals)",
        "        v",
        "  +---------------+",
        f"  |   LUT{v}-{le.validity_lut_outputs}      |--> ov   (data validity / completion)",
        "  +---------------+",
        "",
        f"  configuration: {le.lut_config_bits} bits (LUT{k}-{m}) + "
        f"{le.validity_lut_config_bits} bits (LUT{v}) + {le.validity_selector_bits} bits (validity input selectors)",
        f"  total LE configuration: {le.config_bits} bits",
    ]
    return "\n".join(lines)


def render_figure1_plb(params: ArchitectureParams | None = None) -> str:
    """Figure 1: the PLB (interconnection matrix + two LEs + PDE)."""
    params = params if params is not None else ArchitectureParams()
    plb = params.plb
    from repro.core.plb import PLB  # local import to avoid a cycle at module load

    reference = PLB(plb)
    lines = [
        f"Figure 1 -- Programmable Logic Block ({plb.les_per_plb} LEs + PDE + IM)",
        "",
        f"  PLB inputs (in0..in{plb.plb_inputs - 1})",
        "        |",
        "        v",
        "  +-------------------------------------------------------------+",
        f"  |        Interconnection Matrix  ({len(reference.im.sources)} sources x "
        f"{len(reference.im.destinations)} destinations)      |",
        "  |   (LE outputs loop back through the IM -> memory elements)   |",
        "  +-------------------------------------------------------------+",
        "     |                |                 |                 ^",
        "     v                v                 v                 |",
        "  +--------+      +--------+      +-----------+           |",
        f"  |  LE 0  |      |  LE 1  |      |   PDE     |-----------+",
        f"  | LUT{plb.le.lut_inputs}-{plb.le.lut_outputs} |      | LUT{plb.le.lut_inputs}-{plb.le.lut_outputs} |      | {plb.pde_taps} taps x  |",
        f"  | +LUT{plb.le.validity_lut_inputs}  |      | +LUT{plb.le.validity_lut_inputs}  |      | {plb.pde_step_ps} ps    |",
        "  +--------+      +--------+      +-----------+",
        "     |                |",
        "     v                v",
        f"  PLB outputs (out0..out{plb.plb_outputs - 1})",
        "",
        f"  configuration: {plb.les_per_plb} x {plb.le.config_bits} (LE) + {plb.pde_config_bits} (PDE) + "
        f"{plb.im_config_bits} (IM) = {plb.config_bits} bits",
    ]
    return "\n".join(lines)


def render_fabric_floorplan(
    fabric: Fabric,
    placement: Placement | None = None,
    cell_width: int = 10,
) -> str:
    """The island-style grid, with placed PLB names overlaid when given."""
    occupied: dict[tuple[int, int], str] = {}
    if placement is not None:
        for name, site in placement.plb_sites.items():
            occupied[site] = name

    lines = [f"Fabric floorplan {fabric.width}x{fabric.height} "
             f"(channel width {fabric.params.routing.channel_width})"]
    horizontal_rule = "+" + "+".join(["-" * cell_width] * fabric.width) + "+"
    for y in reversed(range(fabric.height)):
        lines.append(horizontal_rule)
        row_cells = []
        for x in range(fabric.width):
            label = occupied.get((x, y), "")
            row_cells.append(label[:cell_width].center(cell_width))
        lines.append("|" + "|".join(row_cells) + "|")
    lines.append(horizontal_rule)
    if placement is not None:
        lines.append(f"placed PLBs: {len(placement.plb_sites)}; HPWL cost: {placement.cost:.1f}")
    return "\n".join(lines)
