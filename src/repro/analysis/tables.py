"""Tiny text-table formatter used by examples and benchmark output."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Iterable[str] | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render *rows* (dictionaries) as an aligned plain-text table.

    Column order follows *columns* when given, otherwise the key order of the
    first row.  Floats are formatted with *float_format*; everything else with
    ``str``.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    column_names = list(columns) if columns is not None else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(name, "")) for name in column_names] for row in rows]
    widths = [
        max(len(column_names[index]), max(len(line[index]) for line in rendered))
        for index in range(len(column_names))
    ]
    header = " | ".join(name.ljust(width) for name, width in zip(column_names, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered
    ]
    return "\n".join([header, separator] + body)
