"""Area models.

Two granularities:

* **configuration bits** -- the exact number of SRAM cells a block or fabric
  needs (derived from the architecture model), which is the primary area
  proxy used throughout the experiments;
* **transistor estimate** -- a coarse conversion (6T per config bit, plus
  per-block logic overheads) so results can also be quoted in "equivalent
  transistors", the unit older FPGA papers tend to use.
"""

from __future__ import annotations

from repro.cad.lemap import MappedDesign
from repro.core.bitstream import BitstreamBudget
from repro.core.params import ArchitectureParams, PLBParams

#: SRAM configuration cell cost.
TRANSISTORS_PER_CONFIG_BIT = 6
#: Logic overhead of one LE beyond its configuration storage (muxes, buffers).
TRANSISTORS_PER_LE_LOGIC = 420
#: Crossbar switch cost per IM crosspoint.
TRANSISTORS_PER_IM_CROSSPOINT = 2
#: Per-tap cost of the programmable delay element.
TRANSISTORS_PER_PDE_TAP = 12
#: Routing switch cost (per switch-box programmable point).
TRANSISTORS_PER_ROUTING_BIT = 8


def plb_area_estimate(params: PLBParams | None = None) -> dict[str, int]:
    """Configuration-bit and transistor estimate of one PLB."""
    params = params if params is not None else PLBParams()
    le_bits = params.les_per_plb * params.le.config_bits
    im_bits = params.im_config_bits
    pde_bits = params.pde_config_bits
    config_bits = le_bits + im_bits + pde_bits

    transistors = (
        config_bits * TRANSISTORS_PER_CONFIG_BIT
        + params.les_per_plb * TRANSISTORS_PER_LE_LOGIC
        + params.im_sources * params.im_destinations * TRANSISTORS_PER_IM_CROSSPOINT
        + params.pde_taps * TRANSISTORS_PER_PDE_TAP
    )
    return {
        "le_config_bits": le_bits,
        "im_config_bits": im_bits,
        "pde_config_bits": pde_bits,
        "plb_config_bits": config_bits,
        "plb_transistor_estimate": transistors,
    }


def fabric_area_report(params: ArchitectureParams | None = None) -> dict[str, int]:
    """Whole-fabric area: logic and routing configuration plus estimates."""
    params = params if params is not None else ArchitectureParams()
    budget = BitstreamBudget.for_architecture(params)
    by_kind = budget.bits_by_kind()
    plb = plb_area_estimate(params.plb)
    routing_bits = by_kind.get("cbox", 0) + by_kind.get("sbox", 0) + by_kind.get("io", 0)
    transistors = (
        params.plb_count * plb["plb_transistor_estimate"]
        + routing_bits * TRANSISTORS_PER_ROUTING_BIT
    )
    return {
        "plb_count": params.plb_count,
        "config_bits_total": budget.total_bits,
        "config_bits_logic": by_kind.get("plb", 0),
        "config_bits_routing": routing_bits,
        "transistor_estimate": transistors,
        "config_bits_per_plb": plb["plb_config_bits"],
    }


def design_area_report(design: MappedDesign) -> dict[str, object]:
    """Area actually consumed by a mapped design (occupied resources only)."""
    params = design.params
    le_bits_each = params.le.config_bits
    plb_area = plb_area_estimate(params)
    occupied_plbs = len(design.plbs) if design.plbs else None
    report: dict[str, object] = {
        "design": design.name,
        "les_used": len(design.les),
        "pdes_used": len(design.pdes),
        "le_config_bits_used": len(design.les) * le_bits_each,
    }
    if occupied_plbs is not None:
        report["plbs_used"] = occupied_plbs
        report["config_bits_occupied_plbs"] = occupied_plbs * plb_area["plb_config_bits"]
        report["transistor_estimate_occupied"] = (
            occupied_plbs * plb_area["plb_transistor_estimate"]
        )
    return report
