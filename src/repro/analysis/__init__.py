"""Analysis and reporting helpers.

* :mod:`~repro.analysis.area` -- configuration-bit and transistor-estimate
  area models for PLBs, fabrics and mapped designs.
* :mod:`~repro.analysis.figures` -- ASCII renderings of Figure 1 (the PLB) and
  Figure 2 (the LE), plus a fabric floorplan view of placed designs.
* :mod:`~repro.analysis.tables` -- small helpers to format result rows as
  aligned text tables (used by the examples and the benchmark harness).
"""

from repro.analysis.area import design_area_report, fabric_area_report, plb_area_estimate
from repro.analysis.figures import render_fabric_floorplan, render_figure1_plb, render_figure2_le
from repro.analysis.tables import format_table

__all__ = [
    "plb_area_estimate",
    "fabric_area_report",
    "design_area_report",
    "render_figure1_plb",
    "render_figure2_le",
    "render_fabric_floorplan",
    "format_table",
]
