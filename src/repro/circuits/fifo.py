"""FIFOs and rings for the pipeline-throughput experiments (EXP-EXT3).

The WCHB FIFO is a linear chain of weak-conditioned half buffers; the ring
closes the chain on itself with an initial token, which is the standard
self-oscillating structure used to measure pipeline cycle time.
"""

from __future__ import annotations

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import DualRailEncoding
from repro.netlist.netlist import Netlist, PortDirection
from repro.styles.base import LogicStyle, StyledCircuit
from repro.styles.wchb import wchb_buffer_stage, wchb_pipeline


def wchb_fifo(stages: int, width_bits: int = 1, name: str | None = None) -> StyledCircuit:
    """A linear WCHB FIFO (alias of :func:`repro.styles.wchb.wchb_pipeline`)."""
    return wchb_pipeline(name or f"wchb_fifo{stages}x{width_bits}", stages, width_bits)


def wchb_ring(stages: int, width_bits: int = 1, name: str | None = None) -> StyledCircuit:
    """A WCHB ring: the last stage's output feeds the first stage's input.

    The ring has no data ports; its only external wires are an observation tap
    on the first stage's output rails (primary outputs) so a test bench can
    count token revolutions.  At least three stages are required for a ring to
    oscillate (one token needs two empty stages to move into).
    """
    if stages < 3:
        raise ValueError("a WCHB ring needs at least three stages to oscillate")
    name = name or f"wchb_ring{stages}x{width_bits}"

    encoding = DualRailEncoding()
    channels = [Channel(f"r{index}", width_bits, encoding) for index in range(stages)]

    merged = Netlist(name)
    # Observation taps on channel r0.
    for wire in channels[0].data_wires():
        merged.add_port(wire, PortDirection.OUTPUT)
    merged.add_port(channels[0].ack_wire, PortDirection.OUTPUT)

    for index in range(stages):
        input_channel = channels[index]
        output_channel = channels[(index + 1) % stages]
        stage = wchb_buffer_stage(f"{name}_st{index}", input_channel, output_channel)
        interface = set(input_channel.data_wires()) | set(output_channel.data_wires())
        interface.add(input_channel.ack_wire)
        interface.add(output_channel.ack_wire)
        rename = {
            net: f"st{index}.{net}" for net in stage.netlist.nets if net not in interface
        }
        for cell in stage.netlist.iter_cells():
            connections = {
                pin: rename.get(net, net) for pin, net in cell.connections.items()
            }
            merged.add_cell(f"st{index}.{cell.name}", cell.cell_type, connections, **dict(cell.attributes))

    circuit = StyledCircuit(
        name=name,
        style=LogicStyle.WCHB,
        netlist=merged,
        input_channels=[],
        output_channels=[channels[0]],
        ack_nets={channels[0].name: channels[0].ack_wire},
        uses_delay_element=False,
        metadata={"stages": stages, "ring": True, "observation_channel": channels[0]},
    )
    return circuit
