"""A small registry of benchmark circuits.

The benchmark harness and the examples look circuits up by name so sweeps can
be written as plain lists of strings.  Every factory takes no arguments (the
parameterised variants encode their parameters in the registered name).
"""

from __future__ import annotations

from typing import Callable

from repro.circuits.adders import micropipeline_ripple_adder, qdi_ripple_adder
from repro.circuits.fifo import wchb_fifo
from repro.circuits.fulladder import micropipeline_full_adder, qdi_full_adder
from repro.circuits.multiplier import qdi_multiplier, qdi_multiplier_4x4


def circuit_registry() -> dict[str, Callable[[], object]]:
    """All registered benchmark circuits, keyed by name."""
    registry: dict[str, Callable[[], object]] = {
        "qdi_full_adder": lambda: qdi_full_adder(),
        "qdi_full_adder_1of4": lambda: qdi_full_adder(encoding="1-of-4"),
        "micropipeline_full_adder": lambda: micropipeline_full_adder(),
        # Both multipliers template-map on the default LE: their 9-input DIMS
        # rail functions are split by the mapper's wide-function decomposition
        # (repro.cad.decompose) instead of raising a MappingError.
        "qdi_multiplier_2x2": lambda: qdi_multiplier(2),
        "qdi_multiplier_4x4": lambda: qdi_multiplier_4x4(),
        "wchb_fifo_4": lambda: wchb_fifo(4),
        "wchb_fifo_8": lambda: wchb_fifo(8),
    }
    for bits in (2, 4, 8, 16):
        registry[f"qdi_ripple_adder_{bits}"] = (
            lambda bits=bits: qdi_ripple_adder(bits)
        )
        registry[f"micropipeline_ripple_adder_{bits}"] = (
            lambda bits=bits: micropipeline_ripple_adder(bits)
        )
    return registry


def build_circuit(name: str):
    """Instantiate a registered circuit by name."""
    registry = circuit_registry()
    if name not in registry:
        raise KeyError(f"unknown benchmark circuit {name!r}; known: {sorted(registry)}")
    return registry[name]()
