"""A small registry of benchmark circuits.

The benchmark harness and the examples look circuits up by name so sweeps can
be written as plain lists of strings.  Every factory takes no arguments (the
parameterised variants encode their parameters in the registered name).

Besides the hand-built circuits the registry folds in the default size
ladder of every generator family (``gen:mult4x4@qdi``-style names, see
:mod:`repro.circuits.specs`); :func:`build_circuit` additionally accepts any
well-formed ``gen:`` spec string, so sweeps can ask for sizes that are not
pre-registered.
"""

from __future__ import annotations

from typing import Callable

from repro.circuits.adders import micropipeline_ripple_adder, qdi_ripple_adder
from repro.circuits.fifo import wchb_fifo
from repro.circuits.fulladder import micropipeline_full_adder, qdi_full_adder
from repro.circuits.multiplier import qdi_multiplier, qdi_multiplier_4x4
from repro.circuits.specs import GENERATOR_PREFIX, build_from_spec, default_spec_names


def circuit_registry() -> dict[str, Callable[[], object]]:
    """All registered benchmark circuits, keyed by name."""
    registry: dict[str, Callable[[], object]] = {
        "qdi_full_adder": lambda: qdi_full_adder(),
        "qdi_full_adder_1of4": lambda: qdi_full_adder(encoding="1-of-4"),
        "micropipeline_full_adder": lambda: micropipeline_full_adder(),
        # Both multipliers template-map on the default LE: their 9-input DIMS
        # rail functions are split by the mapper's wide-function decomposition
        # (repro.cad.decompose) instead of raising a MappingError.
        "qdi_multiplier_2x2": lambda: qdi_multiplier(2),
        "qdi_multiplier_4x4": lambda: qdi_multiplier_4x4(),
        "wchb_fifo_4": lambda: wchb_fifo(4),
        "wchb_fifo_8": lambda: wchb_fifo(8),
    }
    for bits in (2, 4, 8, 16):
        registry[f"qdi_ripple_adder_{bits}"] = (
            lambda bits=bits: qdi_ripple_adder(bits)
        )
        registry[f"micropipeline_ripple_adder_{bits}"] = (
            lambda bits=bits: micropipeline_ripple_adder(bits)
        )
    for spec_name in default_spec_names():
        registry[spec_name] = lambda spec_name=spec_name: build_from_spec(spec_name)
    return registry


def build_circuit(name: str):
    """Instantiate a registered circuit by name.

    ``gen:`` spec strings outside the registered default-size ladder are
    parsed on the fly (``gen:mult8x8@micropipeline`` works without being
    pre-registered); malformed specs surface the parser's ``ValueError``.
    """
    registry = circuit_registry()
    if name in registry:
        return registry[name]()
    if name.startswith(GENERATOR_PREFIX):
        return build_from_spec(name)
    raise KeyError(f"unknown benchmark circuit {name!r}; known: {sorted(registry)}")
