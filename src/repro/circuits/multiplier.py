"""Small QDI multipliers.

A compact multiplier is a convenient second "real" workload for the filling
and scaling experiments: it is wider than the full adder (two multi-bit
operands), its outputs need more than one digit, and its DIMS expansion
exercises the 1-of-N support of the LE.  Its rail functions also exceed the
LUT7-3 input budget (9 inputs for the 2x2), which makes it the reference
workload for the mapper's wide-function decomposition.

For small operand widths the multiplier is generated as a single DIMS
function block (the product function over the operand channels); the direct
expansion is capped at 3x3 bits because the DIMS code-word product grows
quadratically.  Wider multipliers are *composed*: :func:`qdi_multiplier_4x4`
builds a 4x4 multiplier at the mapped-LE level from four 2x2 partial-product
blocks and a shift-and-add network of QDI half/full-adder blocks, the same
macro-style composition the ripple adders use.
"""

from __future__ import annotations

from typing import Mapping

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import DualRailEncoding, OneOfNEncoding
from repro.cad.lemap import merge_mapped_designs
from repro.cad.techmap import template_map
from repro.circuits.adders import BenchmarkCircuit, combine_acknowledges
from repro.core.params import PLBParams
from repro.styles.base import LogicStyle, StyledCircuit
from repro.styles.qdi import dims_function_block

#: Direct DIMS expansion is quadratic in code words; keep it to tiny operands.
MAX_DIRECT_BITS = 3


def qdi_multiplier(
    bits: int = 2,
    encoding: str = "dual-rail",
    name: str | None = None,
    a_name: str = "a",
    b_name: str = "b",
    product_prefix: str = "p",
    ack_net: str = "ack",
) -> StyledCircuit:
    """An ``bits x bits`` QDI multiplier as one DIMS function block.

    The result channel is ``2 * bits`` wide.  Raises ``ValueError`` for operand
    widths above :data:`MAX_DIRECT_BITS` (compose adders instead).  The channel
    and acknowledge names are parameters so composed circuits (e.g. the 4x4
    multiplier) can instantiate several blocks side by side.
    """
    if bits < 1:
        raise ValueError("operand width must be at least 1 bit")
    if bits > MAX_DIRECT_BITS:
        raise ValueError(
            f"direct DIMS expansion capped at {MAX_DIRECT_BITS}x{MAX_DIRECT_BITS} bits; "
            "build wider multipliers from adder slices"
        )
    name = name or f"qdi_multiplier{bits}x{bits}_{encoding}"

    if encoding == "dual-rail":
        enc = DualRailEncoding()
        style = LogicStyle.QDI_DUAL_RAIL
    elif encoding == "1-of-4":
        enc = OneOfNEncoding(4)
        style = LogicStyle.QDI_ONE_OF_FOUR
    else:
        raise ValueError(f"unsupported encoding {encoding!r}")

    a = Channel(a_name, bits, enc)
    b = Channel(b_name, bits, enc)
    product_bits = 2 * bits
    # The product is emitted one dual-rail bit per output channel so each
    # output digit's rail functions stay within the LUT7-3 input budget after
    # template mapping of per-bit slices is not required here (the DIMS gate
    # netlist is what the area/baseline experiments consume).
    outputs = [
        Channel(f"{product_prefix}{index}", 1, DualRailEncoding())
        for index in range(product_bits)
    ]

    def product(values: Mapping[str, int]) -> Mapping[str, int]:
        result = values[a_name] * values[b_name]
        return {
            f"{product_prefix}{index}": (result >> index) & 1
            for index in range(product_bits)
        }

    return dims_function_block(
        name,
        input_channels=[a, b],
        output_channels=outputs,
        function=product,
        style=style,
        ack_net=ack_net,
    )


# ----------------------------------------------------------------------
# Composed 4x4 multiplier (shift-and-add over 2x2 partial products)
# ----------------------------------------------------------------------
def _adder_block(
    inputs: tuple[str, ...], sum_net: str, carry_net: str, ack_net: str
) -> StyledCircuit:
    """A QDI half adder (two inputs) or full adder (three) over named
    1-bit dual-rail channels."""
    enc = DualRailEncoding()
    in_channels = [Channel(net, 1, enc) for net in inputs]
    out_channels = [Channel(sum_net, 1, enc), Channel(carry_net, 1, enc)]

    def add(values: Mapping[str, int]) -> Mapping[str, int]:
        total = sum(values[net] for net in inputs)
        return {sum_net: total & 1, carry_net: (total >> 1) & 1}

    kind = "fa" if len(inputs) == 3 else "ha"
    return dims_function_block(
        f"qdi_{kind}_{sum_net}",
        input_channels=in_channels,
        output_channels=out_channels,
        function=add,
        style=LogicStyle.QDI_DUAL_RAIL,
        ack_net=ack_net,
    )


def qdi_multiplier_4x4(
    params: PLBParams | None = None,
    name: str | None = None,
) -> BenchmarkCircuit:
    """A 4x4 QDI multiplier composed at the mapped-LE level.

    The operands arrive as 2-bit halves (channels ``al``/``ah`` and
    ``bl``/``bh``); four 2x2 DIMS partial-product blocks (each mapped through
    wide-function decomposition) feed a three-stage shift-and-add network of
    DIMS half/full-adder blocks:

    .. code-block:: text

        R = LL + (LH << 2)        S = R + (HL << 2)        P = S + (HH << 4)

    Per-block acknowledges are combined into one ``ack`` by a Muller C-element
    tree.  The product rails (LSB first) are listed in
    ``metadata["product_channels"]``; the low bits pass straight through from
    the partial products, so their nets keep the producing block's names.
    """
    params = params if params is not None else PLBParams()
    name = name or "qdi_multiplier4x4_dual-rail"

    blocks: list[StyledCircuit] = []
    ack_nets: list[str] = []

    def add_block(block: StyledCircuit, ack: str) -> None:
        blocks.append(block)
        ack_nets.append(ack)

    # Partial products: ll = al*bl, lh = al*bh, hl = ah*bl, hh = ah*bh.
    for prefix, (a_half, b_half) in (
        ("ll", ("al", "bl")),
        ("lh", ("al", "bh")),
        ("hl", ("ah", "bl")),
        ("hh", ("ah", "bh")),
    ):
        add_block(
            qdi_multiplier(
                2,
                name=f"{name}_{prefix}",
                a_name=a_half,
                b_name=b_half,
                product_prefix=prefix,
                ack_net=f"ack_{prefix}",
            ),
            f"ack_{prefix}",
        )

    # R = LL + (LH << 2): bits 0..1 pass through (ll0, ll1), bits 2..6 added.
    # S = R + (HL << 2):  bits 2..7.       P = S + (HH << 4): bits 4..7.
    adder_stages = (
        (("ll2", "lh0"), "r2", "k3"),
        (("ll3", "lh1", "k3"), "r3", "k4"),
        (("lh2", "k4"), "r4", "k5"),
        (("lh3", "k5"), "r5", "r6"),
        (("r2", "hl0"), "s2", "m3"),
        (("r3", "hl1", "m3"), "s3", "m4"),
        (("r4", "hl2", "m4"), "s4", "m5"),
        (("r5", "hl3", "m5"), "s5", "m6"),
        (("r6", "m6"), "s6", "s7"),
        (("s4", "hh0"), "p4", "n5"),
        (("s5", "hh1", "n5"), "p5", "n6"),
        (("s6", "hh2", "n6"), "p6", "n7"),
        # The final carry n8 is provably never asserted (15*15 < 256) but the
        # DIMS block still produces its rails; they stay internal and unused.
        (("s7", "hh3", "n7"), "p7", "n8"),
    )
    for inputs, sum_net, carry_net in adder_stages:
        add_block(
            _adder_block(inputs, sum_net, carry_net, f"ack_{sum_net}"),
            f"ack_{sum_net}",
        )

    mapped_blocks = [template_map(block, params) for block in blocks]
    # merge_mapped_designs also folds the blocks' decomposition counters
    # into the merged metadata.
    mapped = merge_mapped_designs(name, mapped_blocks)
    mapped.style = LogicStyle.QDI_DUAL_RAIL

    roots = combine_acknowledges(mapped, ack_nets)

    # Interface bookkeeping: nets produced by one block for another are
    # internal; the product is read LSB-first off these channels.
    product_channels = ["ll0", "ll1", "s2", "s3", "p4", "p5", "p6", "p7"]
    driven = mapped.all_output_nets()
    mapped.primary_inputs = [net for net in mapped.primary_inputs if net not in driven]
    outputs: list[str] = []
    for channel_name in product_channels:
        outputs.extend(Channel(channel_name, 1, DualRailEncoding()).data_wires())
    outputs.append(roots[0])
    mapped.primary_outputs = outputs

    return BenchmarkCircuit(
        name=name,
        style=LogicStyle.QDI_DUAL_RAIL,
        mapped=mapped,
        gate_circuit=None,
        metadata={
            "bits": 4,
            "product_channels": product_channels,
            "ack_net": roots[0],
        },
    )
