"""Small QDI multipliers.

A compact multiplier is a convenient second "real" workload for the filling
and scaling experiments: it is wider than the full adder (two multi-bit
operands), its outputs need more than one digit, and its DIMS expansion
exercises the 1-of-N support of the LE.

For small operand widths the multiplier is generated as a single DIMS
function block (the product function over the operand channels); for larger
widths the benchmarks compose adders instead, so this module intentionally
caps the direct expansion at 3x3 bits.
"""

from __future__ import annotations

from typing import Mapping

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import DualRailEncoding, OneOfNEncoding
from repro.styles.base import LogicStyle, StyledCircuit
from repro.styles.qdi import dims_function_block

#: Direct DIMS expansion is quadratic in code words; keep it to tiny operands.
MAX_DIRECT_BITS = 3


def qdi_multiplier(
    bits: int = 2,
    encoding: str = "dual-rail",
    name: str | None = None,
) -> StyledCircuit:
    """An ``bits x bits`` QDI multiplier as one DIMS function block.

    The result channel is ``2 * bits`` wide.  Raises ``ValueError`` for operand
    widths above :data:`MAX_DIRECT_BITS` (compose adders instead).
    """
    if bits < 1:
        raise ValueError("operand width must be at least 1 bit")
    if bits > MAX_DIRECT_BITS:
        raise ValueError(
            f"direct DIMS expansion capped at {MAX_DIRECT_BITS}x{MAX_DIRECT_BITS} bits; "
            "build wider multipliers from adder slices"
        )
    name = name or f"qdi_multiplier{bits}x{bits}_{encoding}"

    if encoding == "dual-rail":
        enc = DualRailEncoding()
        style = LogicStyle.QDI_DUAL_RAIL
    elif encoding == "1-of-4":
        enc = OneOfNEncoding(4)
        style = LogicStyle.QDI_ONE_OF_FOUR
    else:
        raise ValueError(f"unsupported encoding {encoding!r}")

    a = Channel("a", bits, enc)
    b = Channel("b", bits, enc)
    product_bits = 2 * bits
    # The product is emitted one dual-rail bit per output channel so each
    # output digit's rail functions stay within the LUT7-3 input budget after
    # template mapping of per-bit slices is not required here (the DIMS gate
    # netlist is what the area/baseline experiments consume).
    outputs = [Channel(f"p{index}", 1, DualRailEncoding()) for index in range(product_bits)]

    def product(values: Mapping[str, int]) -> Mapping[str, int]:
        result = values["a"] * values["b"]
        return {f"p{index}": (result >> index) & 1 for index in range(product_bits)}

    return dims_function_block(
        name,
        input_channels=[a, b],
        output_channels=outputs,
        function=product,
        style=style,
    )
