"""Declarative specs for the parameterised circuit-generator families.

A *generator family* is a size-parameterised recipe for a benchmark circuit
(an NxN multiplier, an N-bit ALU, ...) that can be rendered in either
supported logic style.  A :class:`CircuitSpec` names one concrete member of a
family; its canonical string form is what the CLI and the sweep engine use::

    gen:<family><size>@<style>        e.g.  gen:alu4@qdi
    gen:<family><N>x<N>@<style>       e.g.  gen:mult8x8@micropipeline

The families themselves live in :mod:`repro.circuits.generate` and register
here via :func:`register_family`; :func:`build_from_spec` turns a spec (or
its string form) into a ready-to-map
:class:`~repro.circuits.adders.BenchmarkCircuit`.  A default size ladder per
family is folded into :func:`repro.circuits.registry.circuit_registry`, and
``repro.circuits.registry.build_circuit`` falls back to this parser for any
``gen:`` name, so arbitrary sizes work in sweeps without pre-registration.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.circuits.adders import BenchmarkCircuit

#: Prefix marking a generated-circuit name.
GENERATOR_PREFIX = "gen:"

#: Logic styles every family must support.
GENERATOR_STYLES = ("qdi", "micropipeline")

_SPEC_PATTERN = re.compile(
    r"^(?P<family>[a-z]+)(?P<size>\d+)(?:x(?P<size2>\d+))?@(?P<style>[a-z_]+)$"
)


@dataclass(frozen=True)
class CircuitSpec:
    """One concrete generated circuit: a family member at a size, in a style."""

    family: str
    size: int
    style: str  # one of GENERATOR_STYLES

    def __post_init__(self) -> None:
        if self.style not in GENERATOR_STYLES:
            raise ValueError(
                f"unknown generator style {self.style!r}; supported: {GENERATOR_STYLES}"
            )
        if self.size < 1:
            raise ValueError(f"generator size must be positive, got {self.size}")

    def name(self) -> str:
        """The canonical ``gen:...`` string for this spec."""
        family = generator_families()[self.family]
        size = f"{self.size}x{self.size}" if family.square else str(self.size)
        return f"{GENERATOR_PREFIX}{self.family}{size}@{self.style}"


@dataclass(frozen=True)
class GeneratorFamily:
    """A registered generator family: its builder plus registry defaults."""

    name: str
    builder: Callable[[CircuitSpec], "BenchmarkCircuit"]
    description: str
    default_sizes: tuple[int, ...]
    #: Square families print their size as ``NxN`` (multipliers).
    square: bool = False
    min_size: int = 1


_FAMILIES: dict[str, GeneratorFamily] = {}


def register_family(
    name: str,
    builder: Callable[[CircuitSpec], "BenchmarkCircuit"],
    description: str,
    default_sizes: tuple[int, ...],
    square: bool = False,
    min_size: int = 1,
) -> GeneratorFamily:
    """Register a generator family (idempotent re-registration replaces)."""
    if not re.fullmatch(r"[a-z]+", name):
        raise ValueError(f"family names are lowercase letters only, got {name!r}")
    family = GeneratorFamily(
        name=name,
        builder=builder,
        description=description,
        default_sizes=tuple(default_sizes),
        square=square,
        min_size=min_size,
    )
    _FAMILIES[name] = family
    return family


def generator_families() -> dict[str, GeneratorFamily]:
    """All registered families, importing the built-in ones on first use."""
    import repro.circuits.generate  # noqa: F401  (registers built-in families)

    return dict(_FAMILIES)


def parse_spec(text: str) -> CircuitSpec:
    """Parse a ``gen:<family><size>@<style>`` string into a spec.

    Raises ``ValueError`` with the list of known families / styles on any
    malformed or unknown input, so CLI errors stay actionable.
    """
    if not text.startswith(GENERATOR_PREFIX):
        raise ValueError(f"generator specs start with {GENERATOR_PREFIX!r}, got {text!r}")
    families = generator_families()
    body = text[len(GENERATOR_PREFIX):]
    match = _SPEC_PATTERN.match(body)
    if match is None:
        raise ValueError(
            f"malformed generator spec {text!r}; expected "
            f"gen:<family><size>@<style> like gen:mult8x8@qdi "
            f"(families: {sorted(families)}, styles: {GENERATOR_STYLES})"
        )
    family_name = match.group("family")
    if family_name not in families:
        raise ValueError(
            f"unknown generator family {family_name!r}; known: {sorted(families)}"
        )
    family = families[family_name]
    size = int(match.group("size"))
    size2 = match.group("size2")
    if family.square:
        if size2 is not None and int(size2) != size:
            raise ValueError(
                f"family {family_name!r} generates square circuits; "
                f"got {size}x{size2} in {text!r}"
            )
    elif size2 is not None:
        raise ValueError(f"family {family_name!r} takes a single size, got {text!r}")
    style = match.group("style")
    if style not in GENERATOR_STYLES:
        raise ValueError(
            f"unknown generator style {style!r} in {text!r}; supported: {GENERATOR_STYLES}"
        )
    if size < family.min_size:
        raise ValueError(
            f"family {family_name!r} needs size >= {family.min_size}, got {size}"
        )
    return CircuitSpec(family=family_name, size=size, style=style)


def build_from_spec(spec: CircuitSpec | str) -> "BenchmarkCircuit":
    """Instantiate the circuit a spec (or its string form) describes."""
    if isinstance(spec, str):
        spec = parse_spec(spec)
    families = generator_families()
    if spec.family not in families:
        raise ValueError(
            f"unknown generator family {spec.family!r}; known: {sorted(families)}"
        )
    return families[spec.family].builder(spec)


def default_spec_names() -> list[str]:
    """Canonical names of the default size ladder of every family/style."""
    names: list[str] = []
    for family in generator_families().values():
        for size in family.default_sizes:
            for style in GENERATOR_STYLES:
                names.append(CircuitSpec(family.name, size, style).name())
    return names
