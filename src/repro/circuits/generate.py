"""Parameterised benchmark-circuit generator families.

Four size-parameterised families, each rendered in both logic styles, all
producing registry-compatible :class:`~repro.circuits.adders.BenchmarkCircuit`
objects (see :mod:`repro.circuits.specs` for the ``gen:...`` naming scheme):

``mult``
    NxN shift-and-add array multiplier: an AND partial-product plane reduced
    column by column with half/full adders (generalising the hand-built
    :func:`repro.circuits.multiplier.qdi_multiplier_4x4`).
``alu``
    N-bit ripple ALU with a 2-bit opcode channel (ADD, SUB via two's
    complement, AND, OR); the subtract borrow is folded into the carry chain
    by an opcode-driven carry-in generator.
``crc``
    CRC-4 / LFSR chain (polynomial x^4 + x + 1): N message bits folded into a
    4-bit running remainder, two XOR stages per message bit.
``mac``
    Systolic MAC row: N multiply(AND)-accumulate cells summing the popcount
    of ``x & w`` through a growing ripple-increment chain.

The QDI renderings compose DIMS function blocks at the mapped-LE level (the
macro-style composition the ripple adders and the 4x4 multiplier introduced);
the micropipeline renderings build one bundled-data stage whose datapath is a
combinational LUT network behind per-output transparent latches, with the
request matched-delay scaled to the network depth.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import BundledDataEncoding, DualRailEncoding
from repro.cad.lemap import (
    LEFunction,
    MappedDesign,
    MappedLE,
    MappedPDE,
    merge_mapped_designs,
)
from repro.cad.techmap import template_map
from repro.circuits.adders import BenchmarkCircuit, combine_acknowledges
from repro.circuits.specs import CircuitSpec, register_family
from repro.core.params import PLBParams
from repro.logic.truthtable import TruthTable
from repro.styles.base import LogicStyle, StyledCircuit
from repro.styles.micropipeline import DEFAULT_MATCHED_DELAY
from repro.styles.qdi import dims_function_block

#: Extra matched delay per combinational LUT level in the bundled datapath.
MATCHED_DELAY_PER_LEVEL = 300


# ======================================================================
# QDI composition helpers
# ======================================================================
def _qdi_block(
    name: str,
    inputs: Sequence[str | Channel],
    outputs: Mapping[str, Callable[[Mapping[str, int]], int]],
    ack_net: str,
) -> StyledCircuit:
    """A DIMS block over named channels computing one bit per output net.

    *inputs* are 1-bit dual-rail channel names (or explicit :class:`Channel`
    objects for wider operands such as an opcode); *outputs* maps 1-bit
    output channel names to functions of the input-value dict.
    """
    enc = DualRailEncoding()
    in_channels = [
        net if isinstance(net, Channel) else Channel(net, 1, enc) for net in inputs
    ]
    out_channels = [Channel(net, 1, enc) for net in outputs]

    def function(values: Mapping[str, int]) -> Mapping[str, int]:
        return {net: fn(values) & 1 for net, fn in outputs.items()}

    return dims_function_block(
        name,
        input_channels=in_channels,
        output_channels=out_channels,
        function=function,
        style=LogicStyle.QDI_DUAL_RAIL,
        ack_net=ack_net,
    )


def _qdi_adder_block(
    inputs: tuple[str, ...], sum_net: str, carry_net: str
) -> StyledCircuit:
    """A QDI half adder (two inputs) or full adder (three inputs)."""

    def total(values: Mapping[str, int]) -> int:
        return sum(values[net] for net in inputs)

    kind = "fa" if len(inputs) == 3 else "ha"
    return _qdi_block(
        f"qdi_{kind}_{sum_net}",
        inputs,
        {
            sum_net: lambda values: total(values) & 1,
            carry_net: lambda values: (total(values) >> 1) & 1,
        },
        ack_net=f"ack_{sum_net}",
    )


def _compose_qdi(
    name: str,
    blocks: Sequence[StyledCircuit],
    ack_nets: Sequence[str],
    output_channels: Sequence[str],
    params: PLBParams,
    metadata: Mapping[str, object],
) -> BenchmarkCircuit:
    """Template-map the blocks, merge, combine acks, fix up the interface.

    This is the mapped-LE-level macro composition shared by every QDI family:
    nets one block produces for another become internal, the remaining data
    rails plus the acknowledge-tree root form the primary outputs.  Output
    channels may name nets the composition passes straight through from the
    primary inputs (small CRC chains do); those rails stay primary inputs
    *and* appear among the primary outputs.
    """
    mapped_blocks = [template_map(block, params) for block in blocks]
    mapped = merge_mapped_designs(name, mapped_blocks)
    mapped.style = LogicStyle.QDI_DUAL_RAIL
    roots = combine_acknowledges(mapped, list(ack_nets))

    driven = mapped.all_output_nets()
    mapped.primary_inputs = [net for net in mapped.primary_inputs if net not in driven]
    outputs: list[str] = []
    for channel_name in output_channels:
        outputs.extend(Channel(channel_name, 1, DualRailEncoding()).data_wires())
    outputs.append(roots[0])
    # An output-channel wire no block drives is an environment-provided
    # pass-through (small CRC chains shift initial-vector bits straight out):
    # it must be a primary input even when no block consumes it either.
    for net in outputs:
        if net not in driven and net not in mapped.primary_inputs:
            mapped.primary_inputs.append(net)
    mapped.primary_outputs = outputs

    data = {"ack_net": roots[0], "output_channels": list(output_channels)}
    data.update(metadata)
    return BenchmarkCircuit(
        name=name,
        style=LogicStyle.QDI_DUAL_RAIL,
        mapped=mapped,
        gate_circuit=None,
        metadata=data,
    )


# ======================================================================
# Micropipeline composition helper
# ======================================================================
def _pack_functions(
    prefix: str, functions: Sequence[LEFunction], params: PLBParams
) -> list[MappedLE]:
    """Greedily pack LUT functions into LEs in order (first-fit, no reorder)."""
    les: list[MappedLE] = []
    current: list[LEFunction] = []
    for function in functions:
        trial = MappedLE(name=f"le_{prefix}{len(les)}", functions=current + [function])
        if not current:
            if not trial.fits(params):
                raise ValueError(
                    f"function {function.output_net!r} ({function.arity} inputs) "
                    "exceeds the LE budget on its own"
                )
            current = trial.functions
        elif trial.fits(params):
            current = trial.functions
        else:
            les.append(MappedLE(name=f"le_{prefix}{len(les)}", functions=current))
            current = [function]
    if current:
        les.append(MappedLE(name=f"le_{prefix}{len(les)}", functions=current))
    return les


def _compose_micropipeline(
    name: str,
    input_channel: Channel,
    output_channel: Channel,
    logic: Sequence[tuple[str, tuple[str, ...], Callable[..., int]]],
    output_sources: Sequence[str],
    params: PLBParams,
    matched_delay: int | None = None,
    metadata: Mapping[str, object] | None = None,
) -> BenchmarkCircuit:
    """One bundled-data stage: LUT network -> per-output latches -> controller.

    *logic* lists combinational LUT functions ``(net, inputs, fn)`` in
    topological order; *output_sources* names the net latched onto each
    output-channel data wire (an input wire is allowed: the latch then
    implements a registered pass-through).  The matched delay defaults to
    :data:`~repro.styles.micropipeline.DEFAULT_MATCHED_DELAY` plus
    :data:`MATCHED_DELAY_PER_LEVEL` per LUT level on the deepest cone.
    """
    in_wires = input_channel.data_wires()
    out_wires = output_channel.data_wires()
    if len(output_sources) != len(out_wires):
        raise ValueError(
            f"{name}: {len(out_wires)} output wires but {len(output_sources)} sources"
        )

    design = MappedDesign(name=name, params=params, style=LogicStyle.MICROPIPELINE)
    design.primary_inputs = list(in_wires) + [
        input_channel.req_wire,
        output_channel.ack_wire,
    ]
    design.primary_outputs = list(out_wires) + [
        input_channel.ack_wire,
        output_channel.req_wire,
    ]

    enable_net = output_channel.req_wire
    req_delayed = f"{name}_req_delayed"

    level: dict[str, int] = {}
    functions: list[LEFunction] = []
    for net, inputs, fn in logic:
        table = TruthTable.from_function(tuple(inputs), fn, name=net)
        functions.append(LEFunction(output_net=net, table=table, role="logic"))
        level[net] = 1 + max((level.get(parent, 0) for parent in inputs), default=0)

    latch_functions: list[LEFunction] = []
    for wire, source in zip(out_wires, output_sources):
        latch_inputs = (source, enable_net, wire)

        def latch_next(src: int, en: int, y: int) -> int:
            return y if en else src

        table = TruthTable.from_function(latch_inputs, latch_next, name=f"latch_{wire}")
        latch_functions.append(LEFunction(output_net=wire, table=table, role="latch"))

    les = _pack_functions(f"{name}_logic", functions, params)
    les += _pack_functions(f"{name}_latch", latch_functions, params)

    # Latch controller: the same structure every micropipeline stage uses.
    controller_inputs = (req_delayed, output_channel.ack_wire, enable_net)

    def controller_next(req: int, out_ack: int, enable: int) -> int:
        not_ack = 1 - out_ack
        if req and not_ack:
            return 1
        if not req and not not_ack:
            return 0
        return enable

    controller_table = TruthTable.from_function(
        controller_inputs, controller_next, name="controller"
    )
    in_ack_table = TruthTable.from_function(
        controller_inputs, controller_next, name="in_ack"
    )
    les.append(
        MappedLE(
            name=f"le_{name}_ctrl",
            functions=[
                LEFunction(output_net=enable_net, table=controller_table, role="controller"),
                LEFunction(
                    output_net=input_channel.ack_wire, table=in_ack_table, role="controller"
                ),
            ],
        )
    )

    depth = 1 + max((level.get(source, 0) for source in output_sources), default=0)
    matched = (
        matched_delay
        if matched_delay is not None
        else DEFAULT_MATCHED_DELAY + MATCHED_DELAY_PER_LEVEL * depth
    )

    design.les = les
    design.pdes = [
        MappedPDE(
            name=f"pde_{name}",
            input_net=input_channel.req_wire,
            output_net=req_delayed,
            delay_ps=matched,
        )
    ]

    data = {
        "matched_delay": matched,
        "datapath_depth": depth,
        "input_channel": input_channel,
        "output_channel": output_channel,
    }
    if metadata:
        data.update(metadata)
    return BenchmarkCircuit(
        name=name,
        style=LogicStyle.MICROPIPELINE,
        mapped=design,
        gate_circuit=None,
        metadata=data,
    )


# ======================================================================
# Shared column/chain arithmetic used by both styles
# ======================================================================
def _reduce_columns(
    columns: dict[int, list[str]],
    top: int,
    emit_adder: Callable[[tuple[str, ...], str, str], None],
) -> list[str]:
    """Column-by-column carry-save reduction to one bit per weight.

    ``emit_adder(inputs, sum_net, carry_net)`` materialises a half/full adder
    in whichever style the caller builds; carries ripple into the next
    column, the final carry out of the top column is provably zero and the
    caller leaves it internal/unused.  Returns the per-weight result nets.
    """
    result: list[str] = []
    fresh = 0
    for weight in range(top):
        bits = columns.get(weight, [])
        while len(bits) > 1:
            take = tuple(bits[:3] if len(bits) >= 3 else bits[:2])
            del bits[: len(take)]
            sum_net, carry_net = f"ms{weight}_{fresh}", f"mc{weight}_{fresh}"
            fresh += 1
            emit_adder(take, sum_net, carry_net)
            bits.append(sum_net)
            if weight + 1 < top:
                columns.setdefault(weight + 1, []).append(carry_net)
        if not bits:
            raise AssertionError(f"empty product column {weight}")
        result.append(bits[0])
    return result


def crc4_reference(init: int, message_bits: Sequence[int]) -> int:
    """The 4-bit running remainder the ``crc`` family computes (x^4+x+1)."""
    state = init & 0xF
    for bit in message_bits:
        feedback = ((state >> 3) & 1) ^ (bit & 1)
        state = (((state << 1) | feedback) & 0xF) ^ (feedback << 1)
    return state


def alu_reference(op: int, a: int, b: int, bits: int) -> tuple[int, int]:
    """The ``alu`` family's reference: returns (result, carry_out)."""
    mask = (1 << bits) - 1
    if op == 0:
        total = (a & mask) + (b & mask)
        return total & mask, (total >> bits) & 1
    if op == 1:
        total = (a & mask) + ((~b) & mask) + 1
        return total & mask, (total >> bits) & 1
    if op == 2:
        return a & b & mask, 0
    return (a | b) & mask, 0


# ======================================================================
# Family: mult (NxN array multiplier)
# ======================================================================
def generate_multiplier(spec: CircuitSpec, params: PLBParams | None = None) -> BenchmarkCircuit:
    n = spec.size
    if n < 2:
        raise ValueError("the mult family needs at least 2x2 bits")
    params = params if params is not None else PLBParams()
    name = spec.name()

    if spec.style == "qdi":
        blocks: list[StyledCircuit] = []
        acks: list[str] = []
        columns: dict[int, list[str]] = {}
        for i in range(n):
            for j in range(n):
                net = f"pp{i}_{j}"
                blocks.append(
                    _qdi_block(
                        f"qdi_pp{i}_{j}",
                        [f"a{i}", f"b{j}"],
                        {net: lambda v, ai=f"a{i}", bj=f"b{j}": v[ai] & v[bj]},
                        ack_net=f"ack_{net}",
                    )
                )
                acks.append(f"ack_{net}")
                columns.setdefault(i + j, []).append(net)

        def emit(inputs: tuple[str, ...], sum_net: str, carry_net: str) -> None:
            blocks.append(_qdi_adder_block(inputs, sum_net, carry_net))
            acks.append(f"ack_{sum_net}")

        product = _reduce_columns(columns, 2 * n, emit)
        return _compose_qdi(
            name,
            blocks,
            acks,
            product,
            params,
            {
                "bits": n,
                "product_channels": product,
                "a_channels": [f"a{i}" for i in range(n)],
                "b_channels": [f"b{j}" for j in range(n)],
            },
        )

    # Micropipeline: one bundled stage, AND plane + carry-save LUT network.
    encoding = BundledDataEncoding()
    input_channel = Channel("ops", 2 * n, encoding)  # a bits then b bits
    output_channel = Channel("res", 2 * n, encoding)
    in_wires = input_channel.data_wires()
    a_wires, b_wires = in_wires[:n], in_wires[n:]

    logic: list[tuple[str, tuple[str, ...], Callable[..., int]]] = []
    columns = {}
    for i in range(n):
        for j in range(n):
            net = f"pp{i}_{j}"
            logic.append((net, (a_wires[i], b_wires[j]), lambda a, b: a & b))
            columns.setdefault(i + j, []).append(net)

    def emit_lut(inputs: tuple[str, ...], sum_net: str, carry_net: str) -> None:
        if len(inputs) == 3:
            logic.append((sum_net, inputs, lambda a, b, c: a ^ b ^ c))
            logic.append((carry_net, inputs, lambda a, b, c: 1 if a + b + c >= 2 else 0))
        else:
            logic.append((sum_net, inputs, lambda a, b: a ^ b))
            logic.append((carry_net, inputs, lambda a, b: a & b))

    product = _reduce_columns(columns, 2 * n, emit_lut)
    return _compose_micropipeline(
        name, input_channel, output_channel, logic, product, params, metadata={"bits": n}
    )


# ======================================================================
# Family: alu (N-bit ripple ALU: ADD / SUB / AND / OR)
# ======================================================================
#: Opcode values of the ``alu`` family.
ALU_OPS = {"add": 0, "sub": 1, "and": 2, "or": 3}


def generate_alu(spec: CircuitSpec, params: PLBParams | None = None) -> BenchmarkCircuit:
    n = spec.size
    params = params if params is not None else PLBParams()
    name = spec.name()

    def bit_result(op: int, a: int, b: int, c: int) -> tuple[int, int]:
        """One slice: (result bit, carry out) under opcode *op*."""
        if op == 0:
            total = a + b + c
        elif op == 1:
            total = a + (1 - b) + c
        elif op == 2:
            return a & b, 0
        else:
            return a | b, 0
        return total & 1, (total >> 1) & 1

    if spec.style == "qdi":
        enc = DualRailEncoding()
        op_channel = Channel("op", 2, enc)
        blocks = [
            # Carry-in generator: SUB needs the +1 of the two's complement.
            _qdi_block(
                "qdi_alu_cin",
                [op_channel],
                {"c0": lambda v: 1 if v["op"] == 1 else 0},
                ack_net="ack_c0",
            )
        ]
        acks = ["ack_c0"]
        for i in range(n):
            sum_net, carry_net = f"r{i}", f"c{i + 1}"

            def slice_fn(values: Mapping[str, int], i: int = i) -> Mapping[str, int]:
                result, carry = bit_result(
                    values["op"], values[f"a{i}"], values[f"b{i}"], values[f"c{i}"]
                )
                return {f"r{i}": result, f"c{i + 1}": carry}

            enc = DualRailEncoding()
            blocks.append(
                dims_function_block(
                    f"qdi_alu_slice{i}",
                    input_channels=[
                        Channel(f"a{i}", 1, enc),
                        Channel(f"b{i}", 1, enc),
                        Channel(f"c{i}", 1, enc),
                        op_channel,
                    ],
                    output_channels=[
                        Channel(sum_net, 1, enc),
                        Channel(carry_net, 1, enc),
                    ],
                    function=slice_fn,
                    style=LogicStyle.QDI_DUAL_RAIL,
                    ack_net=f"ack_{sum_net}",
                )
            )
            acks.append(f"ack_{sum_net}")
        outputs = [f"r{i}" for i in range(n)] + [f"c{n}"]
        return _compose_qdi(
            name,
            blocks,
            acks,
            outputs,
            params,
            {
                "bits": n,
                "result_channels": outputs[:-1],
                "carry_channel": f"c{n}",
                "ops": dict(ALU_OPS),
            },
        )

    encoding = BundledDataEncoding()
    input_channel = Channel("ops", 2 * n + 2, encoding)  # a, b, op0, op1
    output_channel = Channel("res", n + 1, encoding)  # result bits + carry
    in_wires = input_channel.data_wires()
    a_wires, b_wires = in_wires[:n], in_wires[n : 2 * n]
    op_wires = in_wires[2 * n :]

    logic: list[tuple[str, tuple[str, ...], Callable[..., int]]] = [
        ("c0", tuple(op_wires), lambda op0, op1: 1 if (op0 + 2 * op1) == 1 else 0)
    ]
    sources: list[str] = []
    for i in range(n):
        inputs = (a_wires[i], b_wires[i], f"c{i}", op_wires[0], op_wires[1])
        logic.append(
            (
                f"r{i}",
                inputs,
                lambda a, b, c, op0, op1: bit_result(op0 + 2 * op1, a, b, c)[0],
            )
        )
        logic.append(
            (
                f"c{i + 1}",
                inputs,
                lambda a, b, c, op0, op1: bit_result(op0 + 2 * op1, a, b, c)[1],
            )
        )
        sources.append(f"r{i}")
    sources.append(f"c{n}")
    return _compose_micropipeline(
        name,
        input_channel,
        output_channel,
        logic,
        sources,
        params,
        metadata={"bits": n, "ops": dict(ALU_OPS)},
    )


# ======================================================================
# Family: crc (CRC-4 / LFSR chain, polynomial x^4 + x + 1)
# ======================================================================
def generate_crc(spec: CircuitSpec, params: PLBParams | None = None) -> BenchmarkCircuit:
    n = spec.size
    params = params if params is not None else PLBParams()
    name = spec.name()

    if spec.style == "qdi":
        blocks: list[StyledCircuit] = []
        acks: list[str] = []
        state = [f"iv{b}" for b in range(4)]
        for t in range(n):
            feedback, folded = f"fb{t}", f"sx{t}"
            for net, (left, right) in (
                (feedback, (state[3], f"m{t}")),
                (folded, (state[0], feedback)),
            ):
                blocks.append(
                    _qdi_block(
                        f"qdi_crc_{net}",
                        [left, right],
                        {net: lambda v, x=left, y=right: v[x] ^ v[y]},
                        ack_net=f"ack_{net}",
                    )
                )
                acks.append(f"ack_{net}")
            state = [feedback, folded, state[1], state[2]]
        return _compose_qdi(
            name,
            blocks,
            acks,
            state,
            params,
            {
                "bits": n,
                "state_channels": state,
                "iv_channels": [f"iv{b}" for b in range(4)],
                "message_channels": [f"m{t}" for t in range(n)],
            },
        )

    encoding = BundledDataEncoding()
    input_channel = Channel("msg", 4 + n, encoding)  # iv bits then message bits
    output_channel = Channel("crc", 4, encoding)
    in_wires = input_channel.data_wires()
    iv_wires, m_wires = in_wires[:4], in_wires[4:]

    logic: list[tuple[str, tuple[str, ...], Callable[..., int]]] = []
    state = list(iv_wires)
    for t in range(n):
        feedback, folded = f"fb{t}", f"sx{t}"
        logic.append((feedback, (state[3], m_wires[t]), lambda a, b: a ^ b))
        logic.append((folded, (state[0], feedback), lambda a, b: a ^ b))
        state = [feedback, folded, state[1], state[2]]
    return _compose_micropipeline(
        name, input_channel, output_channel, logic, state, params, metadata={"bits": n}
    )


# ======================================================================
# Family: mac (systolic multiply-accumulate row, popcount of x & w)
# ======================================================================
def generate_mac(spec: CircuitSpec, params: PLBParams | None = None) -> BenchmarkCircuit:
    n = spec.size
    params = params if params is not None else PLBParams()
    name = spec.name()

    def build(
        and_net: Callable[[int], str],
        emit_and: Callable[[str, int], None],
        emit_adder: Callable[[tuple[str, str], str, str], None],
    ) -> list[str]:
        """Shared cell chain; returns the final running-sum nets (LSB first)."""
        sums: list[str] = []
        for i in range(n):
            product = and_net(i)
            emit_and(product, i)
            if not sums:
                sums = [product]
                continue
            carry = product
            new_sums: list[str] = []
            for j, bit in enumerate(sums):
                sum_net, carry_net = f"acc{i}_{j}", f"cy{i}_{j}"
                emit_adder((bit, carry), sum_net, carry_net)
                new_sums.append(sum_net)
                carry = carry_net
            if (i + 1).bit_length() > len(sums):
                new_sums.append(carry)
            # otherwise the top carry is provably zero and stays unused.
            sums = new_sums
        return sums

    if spec.style == "qdi":
        blocks: list[StyledCircuit] = []
        acks: list[str] = []

        def emit_and(net: str, i: int) -> None:
            blocks.append(
                _qdi_block(
                    f"qdi_mac_{net}",
                    [f"x{i}", f"w{i}"],
                    {net: lambda v, x=f"x{i}", w=f"w{i}": v[x] & v[w]},
                    ack_net=f"ack_{net}",
                )
            )
            acks.append(f"ack_{net}")

        def emit_adder(inputs: tuple[str, str], sum_net: str, carry_net: str) -> None:
            blocks.append(_qdi_adder_block(inputs, sum_net, carry_net))
            acks.append(f"ack_{sum_net}")

        sums = build(lambda i: f"pd{i}", emit_and, emit_adder)
        return _compose_qdi(
            name,
            blocks,
            acks,
            sums,
            params,
            {
                "bits": n,
                "sum_channels": sums,
                "x_channels": [f"x{i}" for i in range(n)],
                "w_channels": [f"w{i}" for i in range(n)],
            },
        )

    encoding = BundledDataEncoding()
    input_channel = Channel("xw", 2 * n, encoding)  # x bits then w bits
    output_channel = Channel("acc", n.bit_length(), encoding)
    in_wires = input_channel.data_wires()
    x_wires, w_wires = in_wires[:n], in_wires[n:]

    logic: list[tuple[str, tuple[str, ...], Callable[..., int]]] = []

    def emit_and_lut(net: str, i: int) -> None:
        logic.append((net, (x_wires[i], w_wires[i]), lambda x, w: x & w))

    def emit_adder_lut(inputs: tuple[str, str], sum_net: str, carry_net: str) -> None:
        logic.append((sum_net, inputs, lambda a, b: a ^ b))
        logic.append((carry_net, inputs, lambda a, b: a & b))

    sums = build(lambda i: f"pd{i}", emit_and_lut, emit_adder_lut)
    return _compose_micropipeline(
        name, input_channel, output_channel, logic, sums, params, metadata={"bits": n}
    )


def recommended_fabric(
    circuit: BenchmarkCircuit | StyledCircuit,
    min_side: int = 3,
    slack: int = 1,
    channel_width: int | None = None,
) -> "ArchitectureParams":
    """A square fabric big enough to place, route and bit-gen *circuit*.

    Sizes the grid from the packed PLB count (plus *slack* rows/columns of
    headroom for the placer), scales the channel width with design size
    (dense DIMS designs congest the default 8-track channels), and widens the
    PDE tap count so every matched delay in the design fits the delay-line
    range — deep bundled datapaths exceed the default 8x100 ps line.
    """
    import math
    from dataclasses import replace

    from repro.cad.pack import pack_design
    from repro.core.params import ArchitectureParams

    mapped = getattr(circuit, "mapped", circuit)
    plb_count = len(pack_design(mapped).plbs)
    side = max(min_side, math.ceil(math.sqrt(plb_count)) + slack)
    plb_params = mapped.params
    max_delay = max((pde.delay_ps for pde in mapped.pdes), default=0)
    if max_delay > plb_params.pde_taps * plb_params.pde_step_ps:
        taps = math.ceil(max_delay / plb_params.pde_step_ps)
        plb_params = replace(plb_params, pde_taps=taps)
        # A longer delay line changes no mapping constraint, so the mapped
        # design stays valid for the widened parameters; restamp it so the
        # flow's stale-mapping check accepts the pairing.
        mapped.params = plb_params
    arch = ArchitectureParams(width=side, height=side, plb=plb_params)
    if channel_width is None:
        # Generous: the router converges faster with headroom, and channel
        # width is free in tests/benches.  Keep the default for small designs
        # so the minimum-width picture stays comparable with the hand-built
        # baselines.
        io_nets = len(mapped.primary_inputs) + len(mapped.primary_outputs)
        channel_width = max(
            arch.routing.channel_width,
            2 * math.ceil(len(mapped.les) / 8),
            # Bundled-data stages concentrate wide data channels on few PLBs,
            # so pad-side congestion scales with I/O count, not LE count.
            2 * math.ceil(io_nets / 3),
        )
    if channel_width != arch.routing.channel_width:
        arch = replace(arch, routing=replace(arch.routing, channel_width=channel_width))
    return arch


# ======================================================================
# Registration
# ======================================================================
register_family(
    "mult",
    generate_multiplier,
    "NxN shift-and-add array multiplier (AND plane + carry-save reduction)",
    default_sizes=(2, 4),
    square=True,
    min_size=2,
)
register_family(
    "alu",
    generate_alu,
    "N-bit ripple ALU with a 2-bit opcode (ADD/SUB/AND/OR)",
    default_sizes=(2, 4),
)
register_family(
    "crc",
    generate_crc,
    "CRC-4 (x^4+x+1) chain folding N message bits into a 4-bit remainder",
    default_sizes=(4, 8),
)
register_family(
    "mac",
    generate_mac,
    "systolic MAC row: popcount accumulation of x & w over N cells",
    default_sizes=(2, 4),
)
