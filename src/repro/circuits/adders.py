"""N-bit ripple-carry adders in the supported logic styles.

The multi-bit adders are built the way a macro-based asynchronous flow builds
them: bit slices are instantiated and stitched at the *mapped-LE* level, so
the resulting :class:`~repro.cad.lemap.MappedDesign` can go straight into the
packer, placer and router and into the filling-ratio / scaling experiments
(EXP-EXT1).  The QDI slices reuse the Figure 3b template; the micropipeline
adder is one bundled-data stage whose ripple-carry datapath is expressed as
one latch-LUT per output bit plus internal carry LUTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.asynclogic.channels import Channel
from repro.asynclogic.encodings import BundledDataEncoding, DualRailEncoding, OneOfNEncoding
from repro.cad.lemap import LEFunction, MappedDesign, MappedLE, MappedPDE, merge_mapped_designs
from repro.cad.techmap import template_map
from repro.core.params import PLBParams
from repro.logic.truthtable import TruthTable
from repro.styles.base import LogicStyle, StyledCircuit
from repro.styles.micropipeline import DEFAULT_MATCHED_DELAY
from repro.styles.qdi import dims_function_block


@dataclass
class BenchmarkCircuit:
    """A benchmark workload: its mapped design plus optional gate-level view."""

    name: str
    style: LogicStyle
    mapped: MappedDesign
    gate_circuit: StyledCircuit | None = None
    metadata: dict[str, object] = field(default_factory=dict)

    def summary(self) -> dict[str, object]:
        data = {"name": self.name, "style": self.style.value}
        data.update(self.mapped.summary())
        return data


def combine_acknowledges(
    mapped: MappedDesign, ack_nets: list[str], output: str = "ack"
) -> list[str]:
    """Reduce per-block acknowledges with a binary Muller C-element tree.

    Appends one looped-LUT C-element per tree node to ``mapped.les`` (the
    root drives *output*) and returns the remaining net list -- ``[output]``
    for more than one input, the untouched single net otherwise.  Shared by
    every mapped-LE-level circuit composition (ripple adders, the composed
    multipliers).
    """
    level = 0
    while len(ack_nets) > 1:
        next_level: list[str] = []
        for index in range(0, len(ack_nets) - 1, 2):
            node = output if len(ack_nets) == 2 else f"{output}_l{level}_{index // 2}"
            inputs = (ack_nets[index], ack_nets[index + 1], node)

            def c_next(a: int, b: int, y: int) -> int:
                if a and b:
                    return 1
                if not a and not b:
                    return 0
                return y

            table = TruthTable.from_function(inputs, c_next, name=f"ack_tree_{node}")
            mapped.les.append(
                MappedLE(
                    name=f"le_{node}",
                    functions=[LEFunction(output_net=node, table=table, role="ack")],
                )
            )
            next_level.append(node)
        if len(ack_nets) % 2:
            next_level.append(ack_nets[-1])
        ack_nets = next_level
        level += 1
    return ack_nets


# ----------------------------------------------------------------------
# QDI ripple adders (dual-rail and 1-of-4)
# ----------------------------------------------------------------------
def _qdi_full_adder_slice(bit: int, encoding: str) -> StyledCircuit:
    """One full-adder bit slice with per-bit channel names."""
    if encoding == "dual-rail":
        enc = DualRailEncoding()
        channels_in = [
            Channel(f"a{bit}", 1, enc),
            Channel(f"b{bit}", 1, enc),
            Channel(f"c{bit}", 1, enc),
        ]
    elif encoding == "1-of-4":
        channels_in = [
            Channel(f"ab{bit}", 2, OneOfNEncoding(4)),
            Channel(f"c{bit}", 1, DualRailEncoding()),
        ]
    else:
        raise ValueError(f"unsupported QDI encoding {encoding!r}")

    channels_out = [
        Channel(f"s{bit}", 1, DualRailEncoding()),
        Channel(f"c{bit + 1}", 1, DualRailEncoding()),
    ]

    def slice_function(values: Mapping[str, int]) -> Mapping[str, int]:
        if encoding == "dual-rail":
            total = values[f"a{bit}"] + values[f"b{bit}"] + values[f"c{bit}"]
        else:
            operands = values[f"ab{bit}"]
            total = (operands & 1) + ((operands >> 1) & 1) + values[f"c{bit}"]
        return {f"s{bit}": total & 1, f"c{bit + 1}": (total >> 1) & 1}

    return dims_function_block(
        f"qdi_fa_slice{bit}",
        input_channels=channels_in,
        output_channels=channels_out,
        function=slice_function,
        style=LogicStyle.QDI_DUAL_RAIL if encoding == "dual-rail" else LogicStyle.QDI_ONE_OF_FOUR,
        ack_net=f"ack{bit}",
    )


def qdi_ripple_adder(
    bits: int,
    encoding: str = "dual-rail",
    params: PLBParams | None = None,
    name: str | None = None,
) -> BenchmarkCircuit:
    """An N-bit QDI ripple-carry adder composed of Figure 3b bit slices.

    Per-bit acknowledge outputs are combined by a Muller C-element tree into a
    single ``ack`` output, so the adder presents the same interface as the
    1-bit block.
    """
    if bits < 1:
        raise ValueError("the adder needs at least one bit")
    params = params if params is not None else PLBParams()
    name = name or f"qdi_ripple_adder{bits}_{encoding}"

    slices = [_qdi_full_adder_slice(bit, encoding) for bit in range(bits)]
    mapped_slices = [template_map(circuit, params) for circuit in slices]
    mapped = merge_mapped_designs(name, mapped_slices)
    mapped.style = slices[0].style

    ack_nets = combine_acknowledges(mapped, [f"ack{bit}" for bit in range(bits)])

    # Interface bookkeeping: carries between slices are internal.
    driven = mapped.all_output_nets()
    mapped.primary_inputs = [net for net in mapped.primary_inputs if net not in driven]
    outputs: list[str] = []
    for bit in range(bits):
        sum_channel = Channel(f"s{bit}", 1, DualRailEncoding())
        outputs.extend(sum_channel.data_wires())
    outputs.extend(Channel(f"c{bits}", 1, DualRailEncoding()).data_wires())
    outputs.append(ack_nets[0] if bits > 1 else "ack0")
    mapped.primary_outputs = outputs

    return BenchmarkCircuit(
        name=name,
        style=mapped.style,
        mapped=mapped,
        gate_circuit=None,
        metadata={"bits": bits, "encoding": encoding, "ack_net": outputs[-1]},
    )


# ----------------------------------------------------------------------
# Micropipeline ripple adder
# ----------------------------------------------------------------------
def micropipeline_ripple_adder(
    bits: int,
    matched_delay: int | None = None,
    params: PLBParams | None = None,
    name: str | None = None,
) -> BenchmarkCircuit:
    """An N-bit bundled-data ripple adder as a single micropipeline stage.

    The datapath is one latch-absorbed LUT per sum bit plus one LUT per
    internal carry; the request path uses one programmable delay element whose
    delay scales with the carry-chain length (the timing assumption the PDE
    exists to implement).
    """
    if bits < 1:
        raise ValueError("the adder needs at least one bit")
    params = params if params is not None else PLBParams()
    name = name or f"micropipeline_ripple_adder{bits}"
    matched = matched_delay if matched_delay is not None else DEFAULT_MATCHED_DELAY + 150 * bits

    encoding = BundledDataEncoding()
    input_channel = Channel("ops", 2 * bits + 1, encoding)   # a bits, b bits, cin
    output_channel = Channel("res", bits + 1, encoding)      # sum bits, cout
    in_wires = input_channel.data_wires()
    out_wires = output_channel.data_wires()

    a_wires = in_wires[0:bits]
    b_wires = in_wires[bits : 2 * bits]
    cin_wire = in_wires[2 * bits]
    sum_wires = out_wires[0:bits]
    cout_wire = out_wires[bits]

    design = MappedDesign(name=name, params=params, style=LogicStyle.MICROPIPELINE)
    design.primary_inputs = list(in_wires) + [input_channel.req_wire, output_channel.ack_wire]
    design.primary_outputs = list(out_wires) + [input_channel.ack_wire, output_channel.req_wire]

    enable_net = output_channel.req_wire
    req_delayed = f"{name}_req_delayed"
    carry_nets = [cin_wire] + [f"{name}_carry{bit}" for bit in range(1, bits)] + [cout_wire]

    les: list[MappedLE] = []
    for bit in range(bits):
        a, b, c = a_wires[bit], b_wires[bit], carry_nets[bit]

        # Sum bit: transparent latch absorbing the XOR3 datapath.
        sum_net = sum_wires[bit]
        sum_inputs = (a, b, c, enable_net, sum_net)

        def sum_next(av: int, bv: int, cv: int, en: int, y: int) -> int:
            return y if en else (av ^ bv ^ cv)

        sum_table = TruthTable.from_function(sum_inputs, sum_next, name=f"sum{bit}")
        sum_function = LEFunction(output_net=sum_net, table=sum_table, role="latch")

        # Carry out of this bit (combinational for internal carries, latched
        # for the final carry so the output channel stays stable).
        carry_net = carry_nets[bit + 1]
        if bit == bits - 1:
            carry_inputs = (a, b, c, enable_net, carry_net)

            def carry_next(av: int, bv: int, cv: int, en: int, y: int) -> int:
                return y if en else (1 if av + bv + cv >= 2 else 0)

            carry_table = TruthTable.from_function(carry_inputs, carry_next, name=f"carry{bit}")
            carry_role = "latch"
        else:
            carry_inputs = (a, b, c)
            carry_table = TruthTable.from_function(
                carry_inputs, lambda av, bv, cv: 1 if av + bv + cv >= 2 else 0, name=f"carry{bit}"
            )
            carry_role = "logic"
        carry_function = LEFunction(output_net=carry_net, table=carry_table, role=carry_role)

        le = MappedLE(name=f"le_{name}_bit{bit}", functions=[sum_function, carry_function])
        if not le.fits(params):
            # Fall back to one function per LE if the shared LE does not fit.
            les.append(MappedLE(name=f"le_{name}_sum{bit}", functions=[sum_function]))
            les.append(MappedLE(name=f"le_{name}_carry{bit}", functions=[carry_function]))
        else:
            les.append(le)

    # Latch controller (same structure as the 1-bit stage).
    controller_inputs = (req_delayed, output_channel.ack_wire, enable_net)

    def controller_next(req: int, out_ack: int, enable: int) -> int:
        not_ack = 1 - out_ack
        if req and not_ack:
            return 1
        if not req and not not_ack:
            return 0
        return enable

    controller_table = TruthTable.from_function(controller_inputs, controller_next, name="controller")
    in_ack_table = TruthTable.from_function(controller_inputs, controller_next, name="in_ack")
    les.append(
        MappedLE(
            name=f"le_{name}_ctrl",
            functions=[
                LEFunction(output_net=enable_net, table=controller_table, role="controller"),
                LEFunction(output_net=input_channel.ack_wire, table=in_ack_table, role="controller"),
            ],
        )
    )

    design.les = les
    design.pdes = [
        MappedPDE(
            name=f"pde_{name}",
            input_net=input_channel.req_wire,
            output_net=req_delayed,
            delay_ps=matched,
        )
    ]

    return BenchmarkCircuit(
        name=name,
        style=LogicStyle.MICROPIPELINE,
        mapped=design,
        gate_circuit=None,
        metadata={
            "bits": bits,
            "matched_delay": matched,
            "input_channel": input_channel,
            "output_channel": output_channel,
        },
    )
