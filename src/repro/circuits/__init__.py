"""Benchmark circuits.

This package packages the paper's example (the 1-bit full adder in QDI and
micropipeline styles, Section 4 / Figure 3) and the larger workloads used by
the extension experiments:

* :mod:`~repro.circuits.fulladder` -- the two full adders of Figure 3 plus a
  single-rail reference netlist.
* :mod:`~repro.circuits.adders` -- N-bit ripple-carry adders in QDI dual-rail,
  QDI 1-of-4 and micropipeline styles (composed bit by bit at the mapped-LE
  level, the way a macro-based flow would).
* :mod:`~repro.circuits.multiplier` -- small QDI array multipliers.
* :mod:`~repro.circuits.fifo` -- WCHB FIFOs and rings for the throughput
  experiments.
* :mod:`~repro.circuits.registry` -- a name -> factory registry used by the
  benchmark harness.
"""

from repro.circuits.fulladder import (
    full_adder_reference_netlist,
    micropipeline_full_adder,
    qdi_full_adder,
)
from repro.circuits.adders import (
    BenchmarkCircuit,
    micropipeline_ripple_adder,
    qdi_ripple_adder,
)
from repro.circuits.multiplier import qdi_multiplier
from repro.circuits.fifo import wchb_fifo, wchb_ring
from repro.circuits.registry import circuit_registry, build_circuit

__all__ = [
    "qdi_full_adder",
    "micropipeline_full_adder",
    "full_adder_reference_netlist",
    "BenchmarkCircuit",
    "qdi_ripple_adder",
    "micropipeline_ripple_adder",
    "qdi_multiplier",
    "wchb_fifo",
    "wchb_ring",
    "circuit_registry",
    "build_circuit",
]
