"""The paper's example circuit: the 1-bit full adder (Section 4, Figure 3).

Three views are provided:

* :func:`qdi_full_adder` -- the QDI dual-rail (or 1-of-4) implementation of
  Figure 3b;
* :func:`micropipeline_full_adder` -- the bundled-data implementation of
  Figure 3a with its matched delay;
* :func:`full_adder_reference_netlist` -- a plain single-rail synchronous-style
  netlist (XOR3 + MAJ3), used as the functional reference and by the
  synchronous-FPGA baseline.
"""

from __future__ import annotations

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist
from repro.styles.base import StyledCircuit
from repro.styles.micropipeline import DEFAULT_MATCHED_DELAY, micropipeline_full_adder_stage
from repro.styles.qdi import qdi_full_adder_block


def qdi_full_adder(encoding: str = "dual-rail", name: str = "qdi_full_adder") -> StyledCircuit:
    """The QDI full adder of Figure 3b.

    ``encoding`` selects ``"dual-rail"`` (the paper's demonstration) or
    ``"1-of-4"`` (operands grouped into one multi-rail digit, exercising the
    LE's auxiliary outputs).
    """
    return qdi_full_adder_block(name=name, encoding=encoding)


def micropipeline_full_adder(
    matched_delay: int = DEFAULT_MATCHED_DELAY, name: str = "micropipeline_full_adder"
) -> StyledCircuit:
    """The micropipeline (bundled-data) full adder of Figure 3a."""
    return micropipeline_full_adder_stage(name=name, matched_delay=matched_delay)


def full_adder_reference_netlist(name: str = "full_adder_ref") -> Netlist:
    """A single-rail combinational full adder (sum = XOR3, carry = MAJ3)."""
    builder = NetlistBuilder(name)
    a, b, cin = builder.inputs("a", "b", "cin")
    builder.xor3(a, b, cin, out="sum")
    builder.maj3(a, b, cin, out="cout")
    builder.outputs("sum", "cout")
    return builder.build()


def reference_sum_carry(a: int, b: int, cin: int) -> tuple[int, int]:
    """Golden full-adder function used throughout the tests."""
    total = a + b + cin
    return total & 1, (total >> 1) & 1
