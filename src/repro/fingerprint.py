"""Code fingerprinting for behaviour-sensitive cache keys.

The sweep result store is content-addressed: a record's key is a hash of the
sweep point's *description* (circuit name, architecture, flow options).  The
description alone does not capture the *code* that executes the point, so a
mapper bugfix would otherwise keep serving stale cached results -- exactly the
ambiguity class the caching literature warns about: results must be keyed by
the semantics that produced them.

:func:`code_fingerprint` folds the package version and a stable hash of the
behaviour-bearing package sources (everything in :data:`FINGERPRINT_PACKAGES`:
:mod:`repro.artifacts`, :mod:`repro.asynclogic`, :mod:`repro.cad`,
:mod:`repro.circuits`, :mod:`repro.core`, :mod:`repro.logic`,
:mod:`repro.netlist`, :mod:`repro.styles`) into one short digest.  Any edit
to those sources changes
the digest, every sweep key embedding it, and therefore retires every cached
record produced by the old code -- no manual schema-version bump needed.

The walk is filesystem-based (sorted ``*.py`` files under each package's
directory) so the fingerprint is identical across processes, which is what
lets parallel sweep workers share one cache.

The default fingerprint is captured **once per process**, lazily on the
first :func:`code_fingerprint` call -- i.e. when the first cache key is
computed.  Importing this module stays side-effect free: sweep workers
(which never compute keys) pay nothing, and a broken or racing source tree
surfaces as an error in the sweep that asked for a key rather than poisoning
package import.  The residual gap is inherent to file-based fingerprinting:
a process that edits sources on disk after importing them and before its
first key computation hashes the post-edit files while executing the
pre-edit modules.  Run sweeps from fresh processes (the normal workflow) for
an exact code-to-key correspondence.
"""

from __future__ import annotations

import hashlib
import importlib
from pathlib import Path
from typing import Iterable

import repro

#: Packages whose sources determine what a cached flow summary means: the
#: flow and circuit factories plus everything they build on (truth tables,
#: netlists/gate library, channels/encodings, style generators, parameters).
FINGERPRINT_PACKAGES = (
    "repro.artifacts",
    "repro.asynclogic",
    "repro.cad",
    "repro.circuits",
    "repro.core",
    "repro.logic",
    "repro.netlist",
    "repro.styles",
)

def hash_sources(paths: Iterable[Path]) -> str:
    """A hex sha256 over the names and contents of the given source files."""
    digest = hashlib.sha256()
    for path in paths:
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def package_source_files(package: str) -> list[Path]:
    """Sorted ``*.py`` files of an importable package, subpackages included."""
    module = importlib.import_module(package)
    locations = list(getattr(module, "__path__", []))
    files: list[Path] = []
    for location in locations:
        files.extend(sorted(Path(location).rglob("*.py")))
    return files


def compute_fingerprint(packages: tuple[str, ...] = FINGERPRINT_PACKAGES) -> str:
    """A short stable digest of the package version plus package sources."""
    digest = hashlib.sha256()
    digest.update(repro.__version__.encode("utf-8"))
    digest.update(b"\x00")
    for package in packages:
        digest.update(package.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(hash_sources(package_source_files(package)).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


_process_fingerprint: str | None = None


def code_fingerprint() -> str:
    """The default-package fingerprint, captured once per process."""
    global _process_fingerprint
    if _process_fingerprint is None:
        _process_fingerprint = compute_fingerprint()
    return _process_fingerprint
