"""Lint orchestration: build a :class:`LintContext` from circuits or flows.

Two entry points:

* :func:`lint_circuit` — lint a registry circuit (by name or object), a
  styled circuit, a raw netlist or a mapped design.  With ``stages=True``
  the full CAD flow runs on a :func:`repro.circuits.generate.recommended_fabric`
  so the stage and bitstream tiers get real artifacts to audit.
* :func:`lint_flow_artifacts` — audit the artifacts of an already executed
  :class:`~repro.cad.flow.FlowResult`; this is what the
  ``FlowOptions.verify_stages`` gate calls at the end of ``CadFlow.run``.
* :func:`lint_stored_artifacts` — audit a
  :class:`~repro.artifacts.StoredFlowArtifacts` view rehydrated from an
  artifact store, re-deriving the fabric, RR graph, bitstream and per-PLB
  configurations from the stored payloads; this is what ``repro-lint
  --artifacts DIR`` runs.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import TYPE_CHECKING

from repro.verify.core import LintConfig, LintContext, LintReport, run_rules

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.artifacts import StoredFlowArtifacts
    from repro.cad.flow import CadFlow, FlowResult
    from repro.styles.base import StyledCircuit


def _resolve(circuit):
    """Accept a registry name or any circuit-like object."""
    if isinstance(circuit, str):
        from repro.circuits.registry import build_circuit

        return build_circuit(circuit)
    return circuit


def build_context(circuit, name: str | None = None) -> LintContext:
    """A static (no-flow) :class:`LintContext` for *circuit*.

    Styled circuits contribute their gate netlist; benchmark circuits
    contribute their mapped design plus the gate-level view when one is
    attached; raw netlists and mapped designs contribute themselves.
    """
    from repro.cad.lemap import MappedDesign
    from repro.netlist.netlist import Netlist
    from repro.styles.base import StyledCircuit

    circuit = _resolve(circuit)
    context = LintContext(name=name or getattr(circuit, "name", str(circuit)))
    if isinstance(circuit, StyledCircuit):
        context.styled = circuit
        context.netlist = circuit.netlist
    elif isinstance(circuit, Netlist):
        context.netlist = circuit
    elif isinstance(circuit, MappedDesign):
        context.mapped = circuit
    elif hasattr(circuit, "mapped"):
        context.mapped = circuit.mapped
        gate = getattr(circuit, "gate_circuit", None)
        if isinstance(gate, StyledCircuit):
            context.styled = gate
            context.netlist = gate.netlist
    else:
        raise TypeError(f"cannot lint object of type {type(circuit).__name__}")
    if context.mapped is not None and not context.mapped.plbs:
        from repro.cad.pack import pack_design

        pack_design(context.mapped)
    return context


def _stage_flow(circuit, context: LintContext) -> "tuple[CadFlow, FlowResult]":
    """Run the full flow on a generously sized fabric for *circuit*."""
    from repro.cad.flow import CadFlow, FlowOptions
    from repro.cad.techmap import generic_map, template_map
    from repro.circuits.generate import recommended_fabric
    from repro.netlist.netlist import Netlist
    from repro.styles.base import StyledCircuit

    if hasattr(circuit, "mapped"):
        sized = circuit
    elif isinstance(circuit, StyledCircuit):
        sized = SimpleNamespace(mapped=template_map(circuit))
    elif isinstance(circuit, Netlist):
        sized = SimpleNamespace(mapped=generic_map(circuit))
    else:
        sized = SimpleNamespace(mapped=circuit)
    architecture = recommended_fabric(sized, slack=2)
    flow = CadFlow(architecture, FlowOptions())
    result = flow.run(circuit)
    return flow, result


def _fill_from_flow(context: LintContext, flow: "CadFlow", result: "FlowResult") -> None:
    context.mapped = result.mapped
    context.architecture = flow.architecture
    context.fabric = flow.fabric
    context.placement = result.placement
    context.routing = result.routing
    if result.routing is not None:
        context.graph = flow.rr_graph
    context.timing = result.timing
    context.bitstream = result.bitstream
    context.configured_plbs = result.configured_plbs or None


def lint_circuit(
    circuit,
    config: LintConfig | None = None,
    stages: bool = False,
    name: str | None = None,
) -> LintReport:
    """Lint one circuit; with ``stages=True`` also run and audit the flow."""
    resolved = _resolve(circuit)
    context = build_context(resolved, name=name)
    if stages:
        flow, result = _stage_flow(resolved, context)
        _fill_from_flow(context, flow, result)
    return run_rules(context, config)


def lint_flow_artifacts(
    result: "FlowResult",
    flow: "CadFlow",
    styled: "StyledCircuit | None" = None,
    config: LintConfig | None = None,
) -> LintReport:
    """Audit an executed flow's stage artifacts and bitstream.

    The netlist tier runs too when the flow's input had a gate-level view
    (*styled*); otherwise only the stage and bitstream tiers apply.
    """
    context = LintContext(name=result.circuit_name)
    if styled is not None:
        context.styled = styled
        context.netlist = styled.netlist
    _fill_from_flow(context, flow, result)
    return run_rules(context, config)


def lint_stored_artifacts(
    view: "StoredFlowArtifacts",
    config: LintConfig | None = None,
) -> LintReport:
    """Audit one stored flow's stage artifacts without re-running the flow.

    Everything transient is re-derived from the payloads: the fabric and RR
    graph from the stored architecture, the per-PLB configurations from the
    packed design (``configure_plb`` is pure), and — when no bitstream was
    checkpointed — the bitstream itself from packed + placement.  Rules
    whose inputs are absent from the store are skipped as usual, so a
    shallow checkpoint (e.g. ``mapped`` only) lints what it can.
    """
    from repro.cad.bitgen import configure_plb
    from repro.core.fabric import Fabric
    from repro.core.rrgraph import RoutingResourceGraph

    context = LintContext(name=view.circuit)
    context.mapped = view.design()
    context.architecture = view.architecture
    fabric = Fabric(view.architecture)
    context.fabric = fabric
    context.placement = view.placement()
    if "routing" in view.payloads:
        graph = RoutingResourceGraph(fabric)
        context.graph = graph
        context.routing = view.routing(graph)
    context.timing = view.timing()
    context.bitstream = view.render_bitstream()
    if (
        context.bitstream is not None
        and context.mapped is not None
        and context.mapped.plbs
    ):
        context.configured_plbs = {
            plb.name: configure_plb(plb, view.architecture)
            for plb in context.mapped.plbs
        }
    return run_rules(context, config)
