"""``repro-lint``: rule-based static verification of netlists and flow artifacts.

The package is organised as a small static-analysis engine plus three rule
tiers:

* :mod:`repro.verify.core` -- the engine: :class:`Finding` records with
  stable rule codes, the :class:`LintRule` protocol, per-rule
  enable/suppress via :class:`LintConfig`, and the :class:`LintReport`
  text/JSON reporters;
* :mod:`repro.verify.netlist_rules` -- the **netlist tier** (``NET*``,
  ``QDI*``, ``MP*``): the structural checks historically in
  :mod:`repro.netlist.validate` plus the paper-specific asynchronous
  invariants (dual-rail coherence, completion coverage, acknowledge
  reachability, isochronic forks, hazard-prone gates, matched delays);
* :mod:`repro.verify.invariants` -- the **stage tier** (``STG*``): the
  per-stage artifact checks shared with ``repro-fuzz`` (mapping, packing,
  placement, routing, timing);
* :mod:`repro.verify.bitaudit` -- the **bitstream tier** (``BIT*``): decode
  a :class:`~repro.core.bitstream.Bitstream` and cross-check LUT contents,
  PDE taps and IM routes against the packed design and the routed trees,
  without simulating anything.

:mod:`repro.verify.lint` orchestrates the tiers over circuits and flow
results; :mod:`repro.verify.cli` exposes everything as the ``repro-lint``
console script; :mod:`repro.verify.mutate` is the seeded-mutation harness
proving every rule fires on the defect class it exists for.
"""

from __future__ import annotations

from repro.verify.core import (
    Finding,
    LintConfig,
    LintContext,
    LintReport,
    LintRule,
    rule_registry,
    run_rules,
)
from repro.verify.lint import lint_circuit, lint_flow_artifacts

__all__ = [
    "Finding",
    "LintConfig",
    "LintContext",
    "LintReport",
    "LintRule",
    "lint_circuit",
    "lint_flow_artifacts",
    "rule_registry",
    "run_rules",
]
