"""Stage-artifact invariants, shared by ``repro-fuzz`` and ``repro-lint``.

The plain functions in this module are the single source of truth for the
per-stage structural checks: :mod:`repro.fuzz` calls them between pipeline
stages (preserving its historical failure signatures and messages byte for
byte, so the shrunk corpus under ``tests/corpus/`` still replays), and the
``STG*`` lint rules below wrap the same functions for ``repro-lint`` and
the ``FlowOptions.verify_stages`` gate.

Each function returns a list of problem strings (empty = the invariant
holds) or ``None``/``str`` for single-shot checks; they never raise on a
violation.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator

from repro.verify.core import ERROR, Finding, LintConfig, LintContext, LintRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cad.lemap import MappedDesign
    from repro.cad.place import Placement
    from repro.cad.route import RoutingResult
    from repro.cad.timing import TimingReport
    from repro.core.fabric import Fabric
    from repro.core.rrgraph import RoutingResourceGraph


# ======================================================================
# Shared invariant checks (messages are part of the fuzz-corpus contract)
# ======================================================================
def mapping_problems(mapped: "MappedDesign") -> list[str]:
    """``MappedDesign.validate()`` findings, stringified."""
    return [str(issue) for issue in mapped.validate()]


def le_budget_problems(mapped: "MappedDesign") -> list[str]:
    """LEs that do not fit the architecture's LUT/validity budget."""
    return [
        f"LE {le.name} exceeds the LE budget"
        for le in mapped.les
        if not le.fits(mapped.params)
    ]


def packing_coverage_problem(mapped: "MappedDesign") -> str | None:
    """Every LE packed into exactly one PLB."""
    packed_les = [le.name for plb in mapped.plbs for le in plb.les]
    if sorted(packed_les) != sorted(le.name for le in mapped.les):
        return "packed PLBs do not cover the LEs exactly once"
    return None


def packing_capacity_problems(mapped: "MappedDesign") -> list[str]:
    """PLBs holding more LEs than the architecture allows."""
    return [
        f"PLB {plb.name} holds {len(plb.les)} LEs"
        for plb in mapped.plbs
        if len(plb.les) > mapped.params.les_per_plb
    ]


def placement_problem(
    design: "MappedDesign", placement: "Placement", fabric: "Fabric"
) -> str | None:
    """The placement legally covers the packed design (no double bookings)."""
    if not placement.matches_design(design, fabric):
        return "placement does not legally cover the packed design"
    return None


def routing_problem(
    design: "MappedDesign",
    placement: "Placement",
    graph: "RoutingResourceGraph",
    result: "RoutingResult",
) -> str | None:
    """Routed trees are complete, connected and capacity-respecting."""
    from repro.cad.route import _collect_net_endpoints

    if not result.success:
        return f"routing failed with {result.overused_nodes} overused nodes on a generous fabric"
    sources, sinks, _ = _collect_net_endpoints(design, placement, graph)
    missing = sorted(set(sources) - set(result.routed))
    if missing:
        return f"nets with endpoints never routed: {missing}"
    usage: dict[int, int] = {}
    for routed in result.routed.values():
        tree = set(routed.nodes)
        if routed.source_node not in tree:
            return f"net {routed.net!r}: routed tree misses its source node"
        for sink in routed.sink_nodes:
            if sink not in tree:
                return f"net {routed.net!r}: routed tree misses sink node {sink}"
        # Connectivity: every tree node reachable from the source inside the tree.
        reached = {routed.source_node}
        frontier = deque(reached)
        while frontier:
            node = frontier.popleft()
            for neighbour in graph.node(node).edges:
                if neighbour in tree and neighbour not in reached:
                    reached.add(neighbour)
                    frontier.append(neighbour)
        if reached != tree:
            return f"net {routed.net!r}: routed tree is disconnected"
        for node in routed.nodes:
            usage[node] = usage.get(node, 0) + 1
    for node, count in usage.items():
        if count > graph.node(node).capacity:
            return (
                f"node {graph.node(node).name!r} used by {count} nets "
                f"(capacity {graph.node(node).capacity})"
            )
    return None


def timing_problem(mapped: "MappedDesign", report: "TimingReport") -> str | None:
    """A mapped design with logic must report a positive cycle time."""
    if mapped.les and report.cycle_time_ps <= 0:
        return f"non-positive cycle time {report.cycle_time_ps}"
    return None


# ======================================================================
# Stage-tier lint rules (STG*)
# ======================================================================
@register
class MapValidRule(LintRule):
    code = "STG001"
    name = "map-valid"
    tier = "stage"
    severity = ERROR
    description = "MappedDesign.validate() reports no structural issues."
    requires = ("mapped",)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        for problem in mapping_problems(context.mapped):
            yield self.finding(problem)


@register
class LEBudgetRule(LintRule):
    code = "STG002"
    name = "le-budget"
    tier = "stage"
    severity = ERROR
    description = "Every mapped LE fits the architecture's LUT/validity budget."
    requires = ("mapped",)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        for problem in le_budget_problems(context.mapped):
            yield self.finding(problem)


@register
class PackCoverageRule(LintRule):
    code = "STG003"
    name = "pack-coverage"
    tier = "stage"
    severity = ERROR
    description = "Packed PLBs cover the mapped LEs exactly once."
    requires = ("mapped",)

    def applies(self, context: LintContext) -> bool:
        return bool(context.mapped.plbs)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        problem = packing_coverage_problem(context.mapped)
        if problem:
            yield self.finding(problem)


@register
class PackCapacityRule(LintRule):
    code = "STG004"
    name = "pack-capacity"
    tier = "stage"
    severity = ERROR
    description = "No PLB holds more LEs than the architecture allows."
    requires = ("mapped",)

    def applies(self, context: LintContext) -> bool:
        return bool(context.mapped.plbs)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        for problem in packing_capacity_problems(context.mapped):
            yield self.finding(problem)


@register
class PlacementLegalRule(LintRule):
    code = "STG005"
    name = "place-legal"
    tier = "stage"
    severity = ERROR
    description = "The placement legally covers the packed design."
    requires = ("mapped", "placement", "fabric")

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        problem = placement_problem(context.mapped, context.placement, context.fabric)
        if problem:
            yield self.finding(problem)


@register
class RoutingInvariantRule(LintRule):
    code = "STG006"
    name = "route-invariant"
    tier = "stage"
    severity = ERROR
    description = "Routed trees are complete, connected and capacity-respecting."
    requires = ("mapped", "placement", "graph", "routing")

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        problem = routing_problem(
            context.mapped, context.placement, context.graph, context.routing
        )
        if problem:
            yield self.finding(problem)


@register
class CycleTimeRule(LintRule):
    code = "STG007"
    name = "cycle-time"
    tier = "stage"
    severity = ERROR
    description = "Timing analysis reports a positive cycle time."
    requires = ("mapped", "timing")

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        problem = timing_problem(context.mapped, context.timing)
        if problem:
            yield self.finding(problem)
