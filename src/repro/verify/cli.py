"""The ``repro-lint`` console script.

Exit codes: ``0`` when no rule reported an error (warnings are tolerated
unless ``--strict``), ``1`` when findings fail the run, ``2`` on usage
errors (unknown circuit, no circuit selected, bad flags).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.verify.core import LintConfig, LintReport, rule_registry
from repro.verify.lint import lint_circuit

#: Version stamp of the ``--json`` report envelope.
JSON_FORMAT = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Rule-based static verifier for QDI/micropipeline netlists and "
            "CAD flow artifacts"
        ),
    )
    parser.add_argument(
        "circuits",
        nargs="*",
        help="registry circuit names (including gen:<family><size>@<style> specs)",
    )
    parser.add_argument(
        "--all", action="store_true", help="lint every circuit in the registry"
    )
    parser.add_argument(
        "--stages",
        action="store_true",
        help="also run the full CAD flow and audit every stage artifact and the bitstream",
    )
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=None,
        metavar="DIR",
        help="audit stored stage artifacts from this artifact-store directory "
        "instead of running flows (bitstreams are re-rendered from the "
        "stored stages when not checkpointed; positional names filter by "
        "circuit, default: every stored flow)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 1) on warnings too, not just errors",
    )
    parser.add_argument(
        "--enable",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these rules (code or name; repeatable)",
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="RULE",
        help="skip these rules (code or name; repeatable)",
    )
    parser.add_argument(
        "--fanout-limit",
        type=int,
        default=LintConfig.isochronic_fanout_limit,
        help="isochronic-fork fanout bound checked by NET008",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSON report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _list_rules() -> int:
    for code, rule in rule_registry().items():
        print(f"{code}  {rule.name:<20} {rule.tier:<9} {rule.severity:<7} {rule.description}")
    return 0


def _known_rule_keys() -> set[str]:
    keys: set[str] = set()
    for code, rule in rule_registry().items():
        keys.add(code)
        keys.add(rule.name)
    return keys


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    known = _known_rule_keys()
    for key in list(args.enable) + list(args.suppress):
        if key not in known:
            print(f"error: unknown rule {key!r}", file=sys.stderr)
            return 2

    config = LintConfig(
        enabled=frozenset(args.enable) if args.enable else None,
        suppressed=frozenset(args.suppress),
        isochronic_fanout_limit=args.fanout_limit,
    )

    reports: list[LintReport] = []
    if args.artifacts is not None:
        from repro.artifacts import ArtifactStore, load_flow_artifacts
        from repro.verify.lint import lint_stored_artifacts

        try:
            store = ArtifactStore(args.artifacts, create=False)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        wanted = set(args.circuits)
        views = load_flow_artifacts(store)
        if wanted:
            views = [view for view in views if view.circuit in wanted]
            missing = wanted - {view.circuit for view in views}
            if missing:
                print(
                    "error: no stored artifacts for "
                    f"{', '.join(sorted(repr(name) for name in missing))} "
                    "(current code fingerprint)",
                    file=sys.stderr,
                )
                return 2
        if not views:
            print(
                "error: the artifact store holds no flows for the current "
                "code fingerprint",
                file=sys.stderr,
            )
            return 2
        for view in views:
            report = lint_stored_artifacts(view, config=config)
            reports.append(report)
            print(report.render_text())
    else:
        names = list(args.circuits)
        if args.all:
            from repro.circuits.registry import circuit_registry

            names.extend(sorted(n for n in circuit_registry() if n not in names))
        if not names:
            parser.print_usage(sys.stderr)
            print("error: no circuits given (name some or pass --all)", file=sys.stderr)
            return 2

        for name in names:
            try:
                # Report under the name the user asked for (registry keys can
                # differ from the built circuit's own name).
                report = lint_circuit(name, config=config, stages=args.stages, name=name)
            except KeyError:
                print(f"error: unknown circuit {name!r}", file=sys.stderr)
                return 2
            reports.append(report)
            print(report.render_text())

    errors = sum(report.error_count for report in reports)
    warnings = sum(report.warning_count for report in reports)
    print(f"linted {len(reports)} circuit(s): {errors} error(s), {warnings} warning(s)")

    if args.json is not None:
        envelope = {
            "format": JSON_FORMAT,
            "stages": bool(args.stages),
            "errors": errors,
            "warnings": warnings,
            "reports": [report.to_json() for report in reports],
        }
        blob = json.dumps(envelope, indent=2, sort_keys=True)
        if str(args.json) == "-":
            print(blob)
        else:
            args.json.write_text(blob + "\n", encoding="utf-8")

    if errors or (args.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
