"""Netlist-tier lint rules: ``NET*`` structure, ``QDI*`` protocol, ``MP*`` timing.

The ``NET*`` rules absorb the historical :mod:`repro.netlist.validate`
checks (which now delegate here through a compatibility shim) and add the
dataflow cones; the ``QDI*`` rules encode the paper's quasi-delay-
insensitive structural discipline; ``MP001`` bounds every micropipeline
matched delay against a static estimate of the logic depth it covers.
"""

from __future__ import annotations

from collections import deque
from itertools import product
from typing import TYPE_CHECKING, Iterator

from repro.asynclogic.protocols import TimingClass
from repro.netlist.celltypes import STATE_VARIABLE
from repro.styles.base import LogicStyle
from repro.verify.core import (
    ERROR,
    WARNING,
    Finding,
    LintConfig,
    LintContext,
    LintRule,
    register,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netlist.celltypes import CellType
    from repro.netlist.netlist import Netlist
    from repro.styles.base import StyledCircuit


# ======================================================================
# Shared helpers
# ======================================================================
def _fanin_nets(netlist: "Netlist", roots: set[str]) -> set[str]:
    """All nets in the transitive fan-in of *roots* (roots included)."""
    seen: set[str] = set()
    frontier = deque(root for root in roots if root in netlist.nets)
    while frontier:
        net = frontier.popleft()
        if net in seen:
            continue
        seen.add(net)
        driver = netlist.driver_of(net)
        if driver is None:
            continue
        cell, _pin = driver
        frontier.extend(cell.input_nets().values())
    return seen


def _cells_reaching(netlist: "Netlist", targets: set[str]) -> set[str]:
    """Names of cells whose output cone reaches some net in *targets*."""
    reaching: set[str] = set()
    frontier = deque(net for net in targets if net in netlist.nets)
    seen_nets: set[str] = set()
    while frontier:
        net = frontier.popleft()
        if net in seen_nets:
            continue
        seen_nets.add(net)
        driver = netlist.driver_of(net)
        if driver is None:
            continue
        cell, _pin = driver
        if cell.name not in reaching:
            reaching.add(cell.name)
            frontier.extend(cell.input_nets().values())
    return reaching


def _combinational_cycle(netlist: "Netlist") -> list[str]:
    """One actual cycle (cell-name path) of the combinational graph, or [].

    Mirrors the edge semantics of ``Netlist.topological_order``: outputs of
    sequential cells are graph sources, so only purely combinational loops
    count.
    """
    indegree: dict[str, int] = {name: 0 for name in netlist.cells}
    successors: dict[str, list[str]] = {name: [] for name in netlist.cells}
    for cell in netlist.cells.values():
        for net_name in cell.input_nets().values():
            driver = netlist.driver_of(net_name)
            if driver is None:
                continue
            driver_cell, _pin = driver
            if driver_cell.cell_type.is_sequential:
                continue
            indegree[cell.name] += 1
            successors[driver_cell.name].append(cell.name)
    ready = deque(sorted(name for name, degree in indegree.items() if degree == 0))
    visited = 0
    while ready:
        name = ready.popleft()
        visited += 1
        for successor in successors[name]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
    remaining = {name for name, degree in indegree.items() if degree > 0}
    if visited == len(netlist.cells) or not remaining:
        return []
    # Walk successor edges inside the remaining set until a cell repeats;
    # the suffix from its first occurrence is a genuine cycle.
    path: list[str] = []
    index_of: dict[str, int] = {}
    current = min(remaining)
    while current not in index_of:
        index_of[current] = len(path)
        path.append(current)
        current = min(s for s in successors[current] if s in remaining)
    return path[index_of[current] :]


def _binate_pins(cell_type: "CellType") -> set[str]:
    """Input pins of *cell_type* that are binate in some output function."""
    binate: set[str] = set()
    for table in cell_type.tables.values():
        names = [name for name in table.inputs if name != STATE_VARIABLE]
        for pin in names:
            others = [name for name in table.inputs if name != pin]
            positive = True
            negative = True
            for bits in product((0, 1), repeat=len(others)):
                assignment = dict(zip(others, bits))
                low = table.evaluate({**assignment, pin: 0})
                high = table.evaluate({**assignment, pin: 1})
                if low > high:
                    positive = False
                if high > low:
                    negative = False
            if not positive and not negative:
                binate.add(pin)
    return binate


_BINATE_CACHE: dict[str, set[str]] = {}


def binate_pins(cell_type: "CellType") -> set[str]:
    if cell_type.name not in _BINATE_CACHE:
        _BINATE_CACHE[cell_type.name] = _binate_pins(cell_type)
    return _BINATE_CACHE[cell_type.name]


def _is_qdi(styled: "StyledCircuit") -> bool:
    return styled.info.timing_class is TimingClass.QDI


def _delay_of(cell) -> int:
    """Effective delay of a cell instance (``delay`` attribute wins)."""
    return int(cell.attributes.get("delay", cell.cell_type.delay))


# ======================================================================
# NET*: structural rules (the historical validate.py set + dataflow cones)
# ======================================================================
@register
class UndrivenNetRule(LintRule):
    code = "NET001"
    name = "undriven-net"
    tier = "netlist"
    severity = ERROR
    description = "Every net with sinks is driven by a cell or a primary input."
    requires = ("netlist",)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        for net in context.netlist.iter_nets():
            if net.driver is None and not net.is_primary_input and net.sinks:
                yield self.finding(
                    f"net {net.name!r} has sinks but no driver and is not a primary input",
                    location=f"net {net.name}",
                )


@register
class DanglingNetRule(LintRule):
    code = "NET002"
    name = "dangling-net"
    tier = "netlist"
    severity = WARNING
    description = "Driven nets are read by something or exported as outputs."
    requires = ("netlist",)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        for net in context.netlist.iter_nets():
            if net.driver is not None and not net.sinks and not net.is_primary_output:
                yield self.finding(
                    f"net {net.name!r} is driven but read by nothing",
                    location=f"net {net.name}",
                )


@register
class UndrivenOutputRule(LintRule):
    code = "NET003"
    name = "undriven-output"
    tier = "netlist"
    severity = ERROR
    description = "Every primary output is driven (or fed through from an input)."
    requires = ("netlist",)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        for name in context.netlist.primary_outputs:
            net = context.netlist.net(name)
            if net.driver is None and not net.is_primary_input:
                yield self.finding(
                    f"primary output {name!r} is not driven",
                    location=f"port {name}",
                )


@register
class UnusedInputRule(LintRule):
    code = "NET004"
    name = "unused-input"
    tier = "netlist"
    severity = WARNING
    description = "Every primary input is read by some cell or exported."
    requires = ("netlist",)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        for name in context.netlist.primary_inputs:
            net = context.netlist.net(name)
            if not net.sinks and not net.is_primary_output:
                yield self.finding(
                    f"primary input {name!r} is not read",
                    location=f"port {name}",
                )


@register
class CombinationalLoopRule(LintRule):
    code = "NET005"
    name = "combinational-loop"
    tier = "netlist"
    severity = ERROR
    description = "No combinational cycle bypasses every state-holding cell."
    requires = ("netlist",)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        cycle = _combinational_cycle(context.netlist)
        if cycle:
            path = " -> ".join(cycle + [cycle[0]])
            yield self.finding(
                f"combinational loop: {path}",
                location=f"cell {cycle[0]}",
            )


@register
class ConstantConeRule(LintRule):
    code = "NET006"
    name = "constant-cone"
    tier = "netlist"
    severity = WARNING
    description = "No combinational cell computes a constant from live inputs."
    requires = ("netlist",)

    #: Bail-out bound on distinct unknown input nets per cell (library
    #: arity is <= 4, so this is never hit in practice).
    max_unknowns = 6

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        netlist = context.netlist
        try:
            order = netlist.topological_order(ignore_sequential_feedback=True)
        except ValueError:
            return  # NET005 owns combinational loops
        constants: dict[str, int] = {}
        for cell in order:
            if cell.cell_type.is_sequential:
                continue
            input_nets = cell.input_nets()
            unknowns = sorted(
                {net for net in input_nets.values() if net not in constants}
            )
            if len(unknowns) > self.max_unknowns:
                continue
            outputs_constant = True
            for pin, table in cell.cell_type.tables.items():
                values: set[int] = set()
                for bits in product((0, 1), repeat=len(unknowns)):
                    net_value = dict(zip(unknowns, bits))
                    net_value.update(constants)
                    assignment = {
                        name: net_value[input_nets[name]] for name in table.inputs
                    }
                    values.add(table.evaluate(assignment))
                    if len(values) > 1:
                        break
                if len(values) == 1:
                    constants[cell.connections[pin]] = values.pop()
                else:
                    outputs_constant = False
            if outputs_constant and unknowns:
                yield self.finding(
                    f"cell {cell.name} ({cell.type_name}) computes a constant "
                    "despite non-constant inputs",
                    location=f"cell {cell.name}",
                )


@register
class UnreachableConeRule(LintRule):
    code = "NET007"
    name = "unreachable-cone"
    tier = "netlist"
    severity = WARNING
    description = "Every cell's output cone reaches some primary output."
    requires = ("netlist",)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        netlist = context.netlist
        targets = set(netlist.primary_outputs)
        reaching = _cells_reaching(netlist, targets)
        for name in sorted(set(netlist.cells) - reaching):
            yield self.finding(
                f"cell {name} reaches no primary output",
                location=f"cell {name}",
            )


@register
class IsochronicForkRule(LintRule):
    code = "NET008"
    name = "isochronic-fork"
    tier = "netlist"
    severity = WARNING
    description = (
        "Net fanout stays within the isochronic-fork bound (wide forks make "
        "the QDI isochronicity assumption physically implausible)."
    )
    requires = ("netlist",)

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        limit = config.isochronic_fanout_limit
        for net in context.netlist.iter_nets():
            if len(net.sinks) > limit:
                yield self.finding(
                    f"net {net.name!r} forks to {len(net.sinks)} sinks "
                    f"(isochronic bound {limit})",
                    location=f"net {net.name}",
                )


# ======================================================================
# QDI*: quasi-delay-insensitive protocol rules
# ======================================================================
class QDIRule(LintRule):
    tier = "netlist"
    requires = ("netlist", "styled")

    def applies(self, context: LintContext) -> bool:
        return _is_qdi(context.styled)


@register
class DualRailPairRule(QDIRule):
    code = "QDI001"
    name = "dual-rail-pair"
    severity = ERROR
    description = (
        "Every data rail of every channel exists and is driven or a primary "
        "input, so no codeword can be half-present."
    )

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        netlist = context.netlist
        styled = context.styled
        for channel in list(styled.input_channels) + list(styled.output_channels):
            for wire in channel.data_wires():
                if wire not in netlist.nets:
                    yield self.finding(
                        f"channel {channel.name}: data rail {wire!r} is not a net",
                        location=f"channel {channel.name}",
                    )
                    continue
                net = netlist.net(wire)
                if net.driver is None and not net.is_primary_input:
                    yield self.finding(
                        f"channel {channel.name}: data rail {wire!r} is neither "
                        "driven nor a primary input",
                        location=f"net {wire}",
                    )


@register
class CompletionCoverageRule(QDIRule):
    code = "QDI002"
    name = "completion-coverage"
    severity = ERROR
    description = (
        "Every generated acknowledge depends (transitively) on every output "
        "data rail — completion detection covers the whole codeword."
    )

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        netlist = context.netlist
        styled = context.styled
        required = {
            wire
            for channel in styled.output_channels
            for wire in channel.data_wires()
            if wire in netlist.nets
        }
        if not required:
            return
        generated = sorted(
            {
                ack
                for ack in styled.ack_nets.values()
                if ack in netlist.nets and netlist.driver_of(ack) is not None
            }
        )
        for ack in generated:
            fanin = _fanin_nets(netlist, {ack})
            missing = sorted(required - fanin)
            if missing:
                yield self.finding(
                    f"ack net {ack!r}: completion detection misses output "
                    f"rails {missing}",
                    location=f"net {ack}",
                )


@register
class AckReachabilityRule(QDIRule):
    code = "QDI003"
    name = "ack-reachability"
    severity = ERROR
    description = (
        "Every cell reaches a primary output or a generated acknowledge/"
        "request net; anything else is dead handshake logic."
    )

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        netlist = context.netlist
        styled = context.styled
        targets = set(netlist.primary_outputs)
        for net in list(styled.ack_nets.values()) + list(styled.req_nets.values()):
            if net in netlist.nets and netlist.driver_of(net) is not None:
                targets.add(net)
        reaching = _cells_reaching(netlist, targets)
        for name in sorted(set(netlist.cells) - reaching):
            yield self.finding(
                f"cell {name} reaches no primary output or handshake net",
                location=f"cell {name}",
            )


@register
class HazardGateRule(QDIRule):
    code = "QDI004"
    name = "hazard-gate"
    severity = WARNING
    description = (
        "QDI logic avoids binate (non-monotonic) gates outside state-holding "
        "cells — XOR-class gates can glitch during a codeword transition."
    )

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        for cell in context.netlist.iter_cells():
            if cell.cell_type.is_sequential:
                continue
            pins = binate_pins(cell.cell_type)
            if pins:
                yield self.finding(
                    f"cell {cell.name} ({cell.type_name}) is binate in "
                    f"pin(s) {sorted(pins)} and may glitch",
                    location=f"cell {cell.name}",
                )


# ======================================================================
# MP*: micropipeline (bundled-data) rules
# ======================================================================
@register
class MatchedDelayRule(LintRule):
    code = "MP001"
    name = "matched-delay"
    tier = "netlist"
    severity = ERROR
    description = (
        "Every matched-delay element is at least as slow as the statically "
        "estimated depth of the datapath logic it covers."
    )
    requires = ("netlist", "styled")

    #: Latch input pins that carry control, not data.
    control_pins = frozenset({"en"})

    def applies(self, context: LintContext) -> bool:
        return context.styled.style is LogicStyle.MICROPIPELINE

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        netlist = context.netlist
        try:
            order = netlist.topological_order(ignore_sequential_feedback=True)
        except ValueError:
            return  # NET005 owns combinational loops
        arrival: dict[str, float] = {name: 0.0 for name in netlist.primary_inputs}
        for cell in order:
            if cell.cell_type.is_sequential or cell.type_name == "DELAY":
                for net in cell.output_nets().values():
                    arrival[net] = 0.0
                continue
            depth = max(
                (arrival.get(net, 0.0) for net in cell.input_nets().values()),
                default=0.0,
            ) + cell.cell_type.delay
            for net in cell.output_nets().values():
                arrival[net] = depth
        data_depths = [
            arrival.get(net, 0.0)
            for cell in netlist.iter_cells()
            if cell.cell_type.is_sequential
            for pin, net in cell.input_nets().items()
            if pin not in self.control_pins
        ]
        if not data_depths:
            data_depths = [arrival.get(net, 0.0) for net in netlist.primary_outputs]
        data_depth = max(data_depths, default=0.0)
        for cell in netlist.iter_cells():
            if cell.type_name != "DELAY":
                continue
            delay = _delay_of(cell)
            if delay < data_depth:
                yield self.finding(
                    f"matched delay {delay} ps on cell {cell.name} is below "
                    f"the estimated datapath depth {data_depth:.0f} ps",
                    location=f"cell {cell.name}",
                )
