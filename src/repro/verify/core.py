"""The lint engine: findings, rules, configuration and reports.

Design notes
------------

* Every rule has a **stable code** (``NET005``, ``STG006``, ``BIT002``...)
  and a human-oriented kebab name (``combinational-loop``).  Codes never
  change meaning once shipped; suppressions and enables accept either form.
* Rules are cheap, side-effect-free objects registered at import time.  A
  rule declares which :class:`LintContext` artifacts it ``requires``; the
  runner silently skips rules whose inputs are absent (a netlist-only lint
  run does not "fail" the routing rules -- it never runs them).
* Severities are ``"error"`` and ``"warning"``.  The CLI exit code and the
  flow gate count both, but only errors are fatal by default: the paper's
  structural warnings (isochronic forks, dangling diagnostic nets) are
  expected on real circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.cad.bitgen import ConfiguredPLB
    from repro.cad.lemap import MappedDesign
    from repro.cad.place import Placement
    from repro.cad.route import RoutingResult
    from repro.cad.timing import TimingReport
    from repro.core.bitstream import Bitstream
    from repro.core.fabric import Fabric
    from repro.core.params import ArchitectureParams
    from repro.core.rrgraph import RoutingResourceGraph
    from repro.netlist.netlist import Netlist
    from repro.styles.base import StyledCircuit

ERROR = "error"
WARNING = "warning"

#: The three rule tiers, in reporting order.
TIERS: tuple[str, ...] = ("netlist", "stage", "bitstream")


@dataclass(frozen=True)
class Finding:
    """One lint finding: a rule that did not hold at one location."""

    rule: str  # stable code, e.g. "NET001"
    name: str  # kebab-case rule name, e.g. "undriven-net"
    severity: str  # "error" or "warning"
    tier: str  # "netlist", "stage" or "bitstream"
    message: str
    location: str = ""  # e.g. "net 's_t'", "cell u3", "plb_2_1"

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.rule} {self.severity}: {self.message}{where}"

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "tier": self.tier,
            "message": self.message,
            "location": self.location,
        }


@dataclass
class LintContext:
    """Everything a lint run may inspect.

    All artifact fields are optional; each rule declares what it needs via
    :attr:`LintRule.requires` and is skipped when an input is missing.
    """

    name: str = ""
    netlist: "Netlist | None" = None
    styled: "StyledCircuit | None" = None
    mapped: "MappedDesign | None" = None
    architecture: "ArchitectureParams | None" = None
    fabric: "Fabric | None" = None
    placement: "Placement | None" = None
    graph: "RoutingResourceGraph | None" = None
    routing: "RoutingResult | None" = None
    timing: "TimingReport | None" = None
    bitstream: "Bitstream | None" = None
    configured_plbs: "dict[str, ConfiguredPLB] | None" = None

    def has(self, attribute: str) -> bool:
        return getattr(self, attribute, None) is not None


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule selection and tuning knobs.

    ``enabled`` restricts the run to the listed rules (``None`` = all);
    ``suppressed`` removes rules from whatever is enabled.  Both accept
    stable codes (``"NET008"``) and kebab names (``"isochronic-fork"``).
    """

    enabled: frozenset[str] | None = None
    suppressed: frozenset[str] = frozenset()
    #: Fanout bound of the isochronic-fork heuristic (NET008).
    isochronic_fanout_limit: int = 8
    #: Severity overrides keyed by rule code or name (the
    #: :func:`repro.netlist.validate.validate_netlist` compatibility shim
    #: uses this to escalate dangling nets when requested).
    severity_overrides: Mapping[str, str] = field(default_factory=dict)

    def selects(self, rule: "LintRule") -> bool:
        keys = {rule.code, rule.name}
        if self.enabled is not None and not (keys & set(self.enabled)):
            return False
        return not (keys & set(self.suppressed))

    def severity_for(self, rule: "LintRule") -> str:
        for key in (rule.code, rule.name):
            if key in self.severity_overrides:
                return str(self.severity_overrides[key])
        return rule.severity


class LintRule:
    """Base class of every lint rule.

    Subclasses set the class attributes and implement :meth:`check`, which
    yields :class:`Finding` records (typically via :meth:`finding`).
    """

    code: str = ""
    name: str = ""
    tier: str = "netlist"
    severity: str = ERROR
    description: str = ""
    #: LintContext attributes that must be non-None for the rule to run.
    requires: tuple[str, ...] = ()

    def applies(self, context: LintContext) -> bool:
        """Whether the rule's inputs are available (beyond ``requires``)."""
        return True

    def check(
        self, context: LintContext, config: LintConfig
    ) -> Iterator[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # makes every override a generator even when empty

    def finding(
        self, message: str, location: str = "", severity: str | None = None
    ) -> Finding:
        return Finding(
            rule=self.code,
            name=self.name,
            severity=severity if severity is not None else self.severity,
            tier=self.tier,
            message=message,
            location=location,
        )


_REGISTRY: dict[str, LintRule] = {}


def register(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding one rule instance to the global registry."""
    instance = cls()
    if not instance.code or not instance.name:
        raise ValueError(f"rule {cls.__name__} needs a code and a name")
    if instance.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {instance.code!r}")
    if instance.tier not in TIERS:
        raise ValueError(f"rule {instance.code}: unknown tier {instance.tier!r}")
    _REGISTRY[instance.code] = instance
    return cls


def rule_registry() -> dict[str, LintRule]:
    """All registered rules keyed by stable code (imports the rule modules)."""
    # Importing the tier modules populates the registry as a side effect.
    import repro.verify.bitaudit  # noqa: F401
    import repro.verify.invariants  # noqa: F401
    import repro.verify.netlist_rules  # noqa: F401

    return dict(sorted(_REGISTRY.items()))


@dataclass
class LintReport:
    """The outcome of one lint run over one context."""

    name: str
    findings: list[Finding] = field(default_factory=list)
    rules_run: list[str] = field(default_factory=list)

    @property
    def error_count(self) -> int:
        return sum(1 for finding in self.findings if finding.severity == ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for finding in self.findings if finding.severity == WARNING)

    @property
    def ok(self) -> bool:
        """No errors (warnings are tolerated)."""
        return self.error_count == 0

    def codes(self) -> set[str]:
        return {finding.rule for finding in self.findings}

    def findings_for(self, code: str) -> list[Finding]:
        return [finding for finding in self.findings if finding.rule == code]

    def tiers_fired(self) -> set[str]:
        return {finding.tier for finding in self.findings}

    # ------------------------------------------------------------------
    # Reporters
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, object]:
        """The JSON reporter schema (stable; see ``docs/lint.md``)."""
        return {
            "name": self.name,
            "errors": self.error_count,
            "warnings": self.warning_count,
            "rules_run": list(self.rules_run),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render_text(self, verbose: bool = False) -> str:
        lines = []
        for finding in self.findings:
            lines.append(f"{self.name}: {finding}")
        summary = (
            f"{self.name}: {self.error_count} error(s), "
            f"{self.warning_count} warning(s), {len(self.rules_run)} rule(s) run"
        )
        if verbose or self.findings:
            lines.append(summary)
        else:
            lines = [summary]
        return "\n".join(lines)


def run_rules(
    context: LintContext,
    config: LintConfig | None = None,
    tiers: Iterable[str] | None = None,
) -> LintReport:
    """Run every applicable registered rule over *context*."""
    config = config if config is not None else LintConfig()
    wanted = set(tiers) if tiers is not None else set(TIERS)
    report = LintReport(name=context.name)
    for code, rule in rule_registry().items():
        if rule.tier not in wanted or not config.selects(rule):
            continue
        if any(not context.has(attribute) for attribute in rule.requires):
            continue
        if not rule.applies(context):
            continue
        report.rules_run.append(code)
        severity = config.severity_for(rule)
        for finding in rule.check(context, config):
            if finding.severity == rule.severity and severity != rule.severity:
                finding = Finding(
                    rule=finding.rule,
                    name=finding.name,
                    severity=severity,
                    tier=finding.tier,
                    message=finding.message,
                    location=finding.location,
                )
            report.findings.append(finding)
    severity_rank = {ERROR: 0, WARNING: 1}
    report.findings.sort(key=lambda f: (severity_rank.get(f.severity, 2), f.rule))
    return report
