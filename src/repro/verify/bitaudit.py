"""Bitstream-tier lint rules (``BIT*``): static audit of a generated bitstream.

The audit *decodes* each PLB region back into its components (per-LE LUT /
validity / selector segments, PDE tap, IM routes) using the architecture's
``config_vector`` layouts, then cross-checks them against the packed design,
the placement and the routed trees — no simulation anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.verify.core import ERROR, Finding, LintConfig, LintContext, LintRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.im import IMConfig
    from repro.core.params import ArchitectureParams


@dataclass
class DecodedPLBRegion:
    """One PLB bitstream region split back into its components."""

    name: str
    le_segments: list[tuple[int, ...]] = field(default_factory=list)
    pde_bits: tuple[int, ...] = ()
    pde_tap: int = 0
    im_bits: tuple[int, ...] = ()
    im_config: "IMConfig | None" = None


def decode_plb_region(
    params: "ArchitectureParams", bits: tuple[int, ...], name: str = "plb"
) -> DecodedPLBRegion:
    """Split a PLB region's raw bits per the ``config_vector`` layout."""
    from repro.core.im import InterconnectionMatrix
    from repro.core.plb import PLB

    reference = PLB(params.plb)
    decoded = DecodedPLBRegion(name=name)
    cursor = 0
    for le in reference.les:
        width = le.config_bits
        decoded.le_segments.append(tuple(bits[cursor : cursor + width]))
        cursor += width
    pde_width = reference.pde.config_bits
    decoded.pde_bits = tuple(bits[cursor : cursor + pde_width])
    cursor += pde_width
    tap = 0
    for index, bit in enumerate(decoded.pde_bits):
        tap |= (1 if bit else 0) << index
    decoded.pde_tap = tap
    im_width = reference.im.config_bits
    decoded.im_bits = tuple(bits[cursor : cursor + im_width])
    try:
        decoded.im_config = InterconnectionMatrix.decode_config_vector(
            reference.im_source_names(),
            reference.im_destination_names(),
            decoded.im_bits,
        )
    except (ValueError, IndexError):
        # Selector codes beyond the source count: corrupt bits.  Leave the
        # config as None so the IM rule reports it instead of crashing.
        decoded.im_config = None
    return decoded


def _expected_region_bits(
    params: "ArchitectureParams", config
) -> tuple[list[tuple[int, ...]], tuple[int, ...], tuple[int, ...]]:
    """Re-encode a PLBConfig exactly as ``generate_bitstream`` does."""
    from repro.core.plb import PLB

    hardware = PLB(params.plb)
    hardware.configure(config)
    le_bits = [tuple(le.config_vector()) for le in hardware.les]
    return le_bits, tuple(hardware.pde.config_vector()), tuple(hardware.im.config_vector())


def _plb_of_site(context: LintContext) -> dict[tuple[int, int], str]:
    return {site: name for name, site in context.placement.plb_sites.items()}


class BitstreamRule(LintRule):
    tier = "bitstream"
    severity = ERROR
    requires = ("bitstream", "placement")


@register
class RegionLivenessRule(BitstreamRule):
    code = "BIT001"
    name = "region-liveness"
    description = (
        "Occupied PLB sites have programmed regions; empty sites and routing "
        "regions the generator never writes stay all-zero."
    )

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        bitstream = context.bitstream
        occupied = _plb_of_site(context)
        for region in bitstream.budget.regions:
            bits = bitstream.region_bits(region.name)
            live = any(bits)
            if region.kind != "plb":
                if live:
                    yield self.finding(
                        f"region {region.name!r} is never written by the "
                        "generator but holds set bits",
                        location=region.name,
                    )
                continue
            _, x, y = region.name.split("_")
            plb_name = occupied.get((int(x), int(y)))
            if plb_name is None and live:
                yield self.finding(
                    f"region {region.name!r} holds set bits but no PLB is "
                    "placed at that site",
                    location=region.name,
                )
            elif plb_name is not None and not live:
                yield self.finding(
                    f"region {region.name!r} is all-zero but PLB {plb_name} "
                    "is placed at that site",
                    location=region.name,
                )


class ConfiguredRegionRule(BitstreamRule):
    """Shared iteration: (mapped PLB, configured PLB, decoded region)."""

    requires = ("bitstream", "placement", "mapped", "architecture", "configured_plbs")

    def _regions(self, context: LintContext):
        for plb in context.mapped.plbs:
            configured = context.configured_plbs.get(plb.name)
            if configured is None:
                continue
            try:
                x, y = context.placement.site_of(plb.name)
            except KeyError:
                continue
            region_name = f"plb_{x}_{y}"
            try:
                bits = context.bitstream.region_bits(region_name)
            except KeyError:
                continue
            decoded = decode_plb_region(context.architecture, bits, name=region_name)
            yield plb, configured, decoded


@register
class LUTConfigRule(ConfiguredRegionRule):
    code = "BIT002"
    name = "lut-config"
    description = (
        "Every placed PLB's LE segments (LUT truth tables, validity LUT, "
        "validity selectors) re-encode to exactly the stored bits."
    )

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        for plb, configured, decoded in self._regions(context):
            expected_les, _pde, _im = _expected_region_bits(
                context.architecture, configured.config
            )
            for index, (expected, actual) in enumerate(
                zip(expected_les, decoded.le_segments)
            ):
                if expected != actual:
                    diff = sum(1 for a, b in zip(expected, actual) if a != b)
                    yield self.finding(
                        f"PLB {plb.name} ({decoded.name}): LE {index} segment "
                        f"differs from the packed configuration in {diff} bit(s)",
                        location=decoded.name,
                    )


@register
class PDETapRule(ConfiguredRegionRule):
    code = "BIT003"
    name = "pde-tap"
    description = (
        "The stored PDE tap matches the configuration and realises at least "
        "the mapped matched delay; PLBs without a PDE keep tap 0."
    )

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        step_ps = context.architecture.plb.pde_step_ps
        for plb, configured, decoded in self._regions(context):
            expected_tap = configured.config.pde_config.tap
            if decoded.pde_tap != expected_tap:
                yield self.finding(
                    f"PLB {plb.name} ({decoded.name}): stored PDE tap "
                    f"{decoded.pde_tap} differs from configured tap {expected_tap}",
                    location=decoded.name,
                )
                continue
            if plb.pde is not None:
                realised = (decoded.pde_tap + 1) * step_ps
                if realised < plb.pde.delay_ps:
                    yield self.finding(
                        f"PLB {plb.name} ({decoded.name}): PDE tap "
                        f"{decoded.pde_tap} realises {realised} ps, below the "
                        f"mapped matched delay {plb.pde.delay_ps} ps",
                        location=decoded.name,
                    )
            elif decoded.pde_tap != 0:
                yield self.finding(
                    f"PLB {plb.name} ({decoded.name}): PDE tap "
                    f"{decoded.pde_tap} set but the PLB maps no delay element",
                    location=decoded.name,
                )


@register
class IMConfigRule(ConfiguredRegionRule):
    code = "BIT004"
    name = "im-config"
    description = (
        "The stored IM routes decode to exactly the configured crossbar, and "
        "the PLB's pin bindings agree with the routed trees' endpoints."
    )

    def check(self, context: LintContext, config: LintConfig) -> Iterator[Finding]:
        for plb, configured, decoded in self._regions(context):
            if decoded.im_config is None:
                yield self.finding(
                    f"PLB {plb.name} ({decoded.name}): IM segment does not "
                    "decode (selector code beyond the source count)",
                    location=decoded.name,
                )
                continue
            stored = decoded.im_config.routes
            expected = dict(configured.config.im_config.routes)
            if stored != expected:
                missing = sorted(set(expected) - set(stored))
                extra = sorted(set(stored) - set(expected))
                changed = sorted(
                    dest
                    for dest in set(stored) & set(expected)
                    if stored[dest] != expected[dest]
                )
                yield self.finding(
                    f"PLB {plb.name} ({decoded.name}): stored IM routes differ "
                    f"from the configuration (missing {missing}, extra {extra}, "
                    f"changed {changed})",
                    location=decoded.name,
                )
            if context.routing is None:
                continue
            routed_in = {
                assignment.net
                for assignment in context.routing.pin_assignments
                if assignment.block == plb.name and not assignment.is_driver
            }
            bound_in = set(configured.input_pin_of_net)
            if routed_in != bound_in:
                yield self.finding(
                    f"PLB {plb.name} ({decoded.name}): routed sink nets "
                    f"{sorted(routed_in)} disagree with the IM's input-pin "
                    f"bindings {sorted(bound_in)}",
                    location=decoded.name,
                )
            routed_out = {
                assignment.net
                for assignment in context.routing.pin_assignments
                if assignment.block == plb.name and assignment.is_driver
            }
            bound_out = set(configured.output_pin_of_net)
            if not routed_out <= bound_out:
                unbound = sorted(routed_out - bound_out)
                yield self.finding(
                    f"PLB {plb.name} ({decoded.name}): nets {unbound} are "
                    "routed from this PLB but bound to no output pin",
                    location=decoded.name,
                )
