"""Seeded-mutation harness: prove every lint rule fires on its defect class.

Each entry of :data:`MUTATORS` builds a *clean* context from a registry
circuit, injects exactly one defect of the class its rule exists to catch,
and returns the mutated :class:`~repro.verify.core.LintContext`.  The test
suite asserts, for every registered rule, that the rule fires on its
mutant and that no rule of a *different* tier fires (one defect may
legitimately trip several rules of the same tier — removing an ack driver
both breaks completion coverage and strands the completion detectors).
"""

from __future__ import annotations

from typing import Callable

from repro.verify.core import LintContext
from repro.verify.lint import build_context, lint_circuit, _fill_from_flow, _stage_flow

#: Small circuits the mutators start from.
QDI_SEED = "qdi_full_adder"
MP_SEED = "micropipeline_full_adder"


# ======================================================================
# Context builders
# ======================================================================
def _netlist_context(seed: str = QDI_SEED) -> LintContext:
    """A fresh netlist-tier context (registry factories build new objects)."""
    return build_context(seed)


def _flow_context(seed: str = QDI_SEED) -> LintContext:
    """A fresh full-flow context: netlist + stage artifacts + bitstream."""
    from repro.circuits.registry import build_circuit

    circuit = build_circuit(seed)
    context = build_context(circuit)
    flow, result = _stage_flow(circuit, context)
    _fill_from_flow(context, flow, result)
    return context


# ======================================================================
# Netlist-tier mutators
# ======================================================================
def _mut_undriven_net() -> LintContext:
    context = _netlist_context()
    context.netlist.add_cell(
        "mut_reader", "BUF", {"a": "mut_floating_in", "z": "mut_floating_out"}
    )
    return context


def _mut_dangling_net() -> LintContext:
    context = _netlist_context()
    source = context.netlist.primary_inputs[0]
    context.netlist.add_cell("mut_tap", "BUF", {"a": source, "z": "mut_dangling"})
    return context


def _mut_undriven_output() -> LintContext:
    from repro.netlist.netlist import PortDirection

    context = _netlist_context()
    context.netlist.add_port("mut_phantom_out", PortDirection.OUTPUT)
    return context


def _mut_unused_input() -> LintContext:
    from repro.netlist.netlist import PortDirection

    context = _netlist_context()
    context.netlist.add_port("mut_unread_in", PortDirection.INPUT)
    return context


def _mut_combinational_loop() -> LintContext:
    context = _netlist_context()
    context.netlist.add_cell("mut_l1", "INV", {"a": "mut_n2", "z": "mut_n1"})
    context.netlist.add_cell("mut_l2", "INV", {"a": "mut_n1", "z": "mut_n2"})
    return context


def _mut_constant_cone() -> LintContext:
    context = _netlist_context()
    source = context.netlist.primary_inputs[0]
    context.netlist.add_cell(
        "mut_const", "XOR2", {"a0": source, "a1": source, "z": "mut_zero"}
    )
    return context


def _mut_unreachable_cone() -> LintContext:
    context = _netlist_context()
    source = context.netlist.primary_inputs[0]
    context.netlist.add_cell("mut_c1", "BUF", {"a": source, "z": "mut_r1"})
    context.netlist.add_cell("mut_c2", "INV", {"a": "mut_r1", "z": "mut_r2"})
    return context


def _mut_isochronic_fork() -> LintContext:
    context = _netlist_context()
    source = context.netlist.primary_inputs[0]
    fanout = len(context.netlist.net(source).sinks)
    for index in range(9 - min(fanout, 9) + 1):
        context.netlist.add_cell(
            f"mut_fork{index}", "BUF", {"a": source, "z": f"mut_forked{index}"}
        )
    return context


def _mut_dual_rail_pair() -> LintContext:
    context = _netlist_context()
    rail = context.styled.output_channels[0].data_wires()[0]
    driver, _pin = context.netlist.driver_of(rail)
    context.netlist.remove_cell(driver.name)
    return context


def _mut_completion_coverage() -> LintContext:
    context = _netlist_context()
    netlist = context.netlist
    ack = next(
        net
        for net in context.styled.ack_nets.values()
        if netlist.driver_of(net) is not None
    )
    driver, _pin = netlist.driver_of(ack)
    netlist.remove_cell(driver.name)
    rail = context.styled.output_channels[0].data_wires()[0]
    netlist.add_cell("mut_halfack", "BUF", {"a": rail, "z": ack})
    return context


def _mut_ack_reachability() -> LintContext:
    context = _netlist_context()
    context.netlist.add_cell("mut_q1", "C2", {"a0": "mut_sb", "a1": "mut_sb", "z": "mut_sa"})
    context.netlist.add_cell("mut_q2", "C2", {"a0": "mut_sa", "a1": "mut_sa", "z": "mut_sb"})
    return context


def _mut_hazard_gate() -> LintContext:
    context = _netlist_context()
    victim = next(
        cell for cell in context.netlist.iter_cells() if cell.type_name == "OR2"
    )
    connections = {
        "a0": victim.connections["a0"],
        "a1": victim.connections["a1"],
        "z": victim.connections["z"],
    }
    context.netlist.remove_cell(victim.name)
    context.netlist.add_cell("mut_glitchy", "XOR2", connections)
    return context


def _mut_matched_delay() -> LintContext:
    context = _netlist_context(MP_SEED)
    context.netlist.cell("matched_delay").attributes["delay"] = 50
    return context


# ======================================================================
# Stage-tier mutators
# ======================================================================
def _mut_map_valid() -> LintContext:
    context = _flow_context()
    context.mapped.primary_outputs.append("mut_phantom")
    return context


def _mut_le_budget() -> LintContext:
    from repro.cad.lemap import LEFunction

    context = _flow_context()
    le = context.mapped.les[0]
    while len(le.functions) <= context.mapped.params.le.lut_outputs:
        template = le.functions[0]
        le.functions.append(
            LEFunction(f"mut_extra{len(le.functions)}", template.table, template.role)
        )
    return context


def _mut_pack_coverage() -> LintContext:
    context = _flow_context()
    context.mapped.plbs[0].les.pop()
    return context


def _mut_pack_capacity() -> LintContext:
    context = _flow_context()
    plbs = context.mapped.plbs
    donor = next(plb for plb in plbs[1:] if plb.les)
    while len(plbs[0].les) <= context.mapped.params.les_per_plb:
        plbs[0].les.append(donor.les[0])
    return context


def _mut_place_legal() -> LintContext:
    context = _flow_context()
    sites = context.placement.plb_sites
    names = sorted(sites)
    sites[names[0]] = sites[names[1]]  # double-book one site
    # A corrupt placement desyncs the bitstream's region layout by
    # construction; drop the bitstream artifacts so only the placement
    # defect is under test.
    context.bitstream = None
    context.configured_plbs = None
    return context


def _mut_route_invariant() -> LintContext:
    context = _flow_context()
    routed = context.routing.routed[sorted(context.routing.routed)[0]]
    routed.nodes = [routed.source_node]  # drop the tree below the source
    return context


def _mut_cycle_time() -> LintContext:
    context = _flow_context()
    context.timing.cycle_time_ps = 0
    return context


# ======================================================================
# Bitstream-tier mutators
# ======================================================================
def _mut_region_liveness() -> LintContext:
    context = _flow_context()
    occupied = {site for site in context.placement.plb_sites.values()}
    region = next(
        region
        for region in context.bitstream.budget.regions
        if region.kind == "plb"
        and tuple(int(part) for part in region.name.split("_")[1:]) not in occupied
    )
    context.bitstream.set_bit(region.name, 0, 1)
    return context


def _mut_lut_config() -> LintContext:
    context = _flow_context()
    plb_name = context.mapped.plbs[0].name
    x, y = context.placement.site_of(plb_name)
    region = f"plb_{x}_{y}"
    bit = context.bitstream.region_bits(region)[0]
    context.bitstream.set_bit(region, 0, 1 - bit)  # inside LE 0's LUT segment
    return context


def _mut_pde_tap() -> LintContext:
    from repro.core.plb import PLB

    context = _flow_context(MP_SEED)  # micropipelines map a real PDE
    plb = next(p for p in context.mapped.plbs if p.pde is not None)
    x, y = context.placement.site_of(plb.name)
    region = f"plb_{x}_{y}"
    reference = PLB(context.architecture.plb)
    offset = sum(le.config_bits for le in reference.les)
    for index in range(reference.pde.config_bits):
        context.bitstream.set_bit(region, offset + index, 0)  # zero the tap
    return context


def _mut_im_config() -> LintContext:
    from repro.core.plb import PLB

    context = _flow_context()
    plb_name = context.mapped.plbs[0].name
    x, y = context.placement.site_of(plb_name)
    region = f"plb_{x}_{y}"
    reference = PLB(context.architecture.plb)
    offset = sum(le.config_bits for le in reference.les) + reference.pde.config_bits
    width = reference.im.selector_bits
    bits = context.bitstream.region_bits(region)
    # Route a destination that is unconnected (all-zero selector): the new
    # code 1 is always a valid source index, so the segment still decodes.
    for index in range(len(reference.im.destinations)):
        start = offset + index * width
        if not any(bits[start : start + width]):
            context.bitstream.set_bit(region, start, 1)
            return context
    raise AssertionError("no unconnected IM destination to corrupt")


#: One mutator per registered rule code.
MUTATORS: dict[str, Callable[[], LintContext]] = {
    "NET001": _mut_undriven_net,
    "NET002": _mut_dangling_net,
    "NET003": _mut_undriven_output,
    "NET004": _mut_unused_input,
    "NET005": _mut_combinational_loop,
    "NET006": _mut_constant_cone,
    "NET007": _mut_unreachable_cone,
    "NET008": _mut_isochronic_fork,
    "QDI001": _mut_dual_rail_pair,
    "QDI002": _mut_completion_coverage,
    "QDI003": _mut_ack_reachability,
    "QDI004": _mut_hazard_gate,
    "MP001": _mut_matched_delay,
    "STG001": _mut_map_valid,
    "STG002": _mut_le_budget,
    "STG003": _mut_pack_coverage,
    "STG004": _mut_pack_capacity,
    "STG005": _mut_place_legal,
    "STG006": _mut_route_invariant,
    "STG007": _mut_cycle_time,
    "BIT001": _mut_region_liveness,
    "BIT002": _mut_lut_config,
    "BIT003": _mut_pde_tap,
    "BIT004": _mut_im_config,
}
