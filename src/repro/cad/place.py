"""Placement: assigning packed PLBs to fabric sites and primary IOs to pads.

The placer is a classic simulated-annealing engine over a **pluggable per-net
cost** of the inter-block nets:

* the default objective is pure half-perimeter wirelength (HPWL);
* :class:`TimingObjective` blends it with a criticality-weighted bounding-box
  delay — ``(1 - tradeoff) * hpwl + tradeoff * crit * bbox_delay`` — which is
  how the timing-driven flow pulls critical connections short.

Cost evaluation is **incremental** (VPR-style) on two levels.  A per-net cost
cache plus a block→nets index mean that a move or swap re-evaluates only the
nets touching the moved blocks; and each net's bounding box is updated
*incrementally* from the moved terminal's old/new coordinates (per-edge
occupancy counts), so a touched net is only rescanned terminal-by-terminal
when a terminal moves off a bounding-box edge it alone defined.  Site and pad
bookkeeping is O(1) per move (occupancy maps with swap-pop free lists), and
the acceptance test uses a per-batch precomputed inverse temperature.

Determinism: for a given seed the anneal draws one fixed RNG stream —
per-net costs are exact in the default objective (HPWL sums of integer-valued
coordinates, well below 2**53, so float addition is exact in any order) and
therefore the delta path accepts exactly the moves a full-recompute path
would.  The invariant ``NetCostCache.total == full recompute`` holds
throughout the anneal and is enforced by tests (and on demand via
``place_design(..., audit_interval=N)``); blended objectives multiply by
non-integer weights, so their audit uses a tight relative tolerance instead
of exact equality.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.cad.kernels import resolve_kernel
from repro.cad.lemap import MappedDesign
from repro.core.fabric import Fabric, IOPad
from repro.core.schema import decoding, require_version

#: Schema version of :meth:`Placement.to_dict` payloads (version 0 = the
#: unstamped PR-3 placement-cache layout, still accepted on read).
PLACEMENT_SCHEMA = 1

#: Moves per temperature step: the annealer precomputes ``1 / temperature``
#: once per batch and keeps it fixed for the whole batch.
TEMPERATURE_BATCH = 32

#: Per-move geometric cooling rate (applied batch-wise as ``rate ** batch``).
COOLING_RATE = 0.999

#: Cooling floor: on very long schedules (huge designs or high effort) the
#: geometric decay would underflow to exactly 0.0 and 1/temperature would
#: raise; clamping here keeps ``exp(-delta * inv_temperature)`` at 0.0 for
#: any worsening move, which is the old ``temperature <= 0`` behaviour.
MIN_TEMPERATURE = 1e-300


class PlacementError(RuntimeError):
    """Raised when the design does not fit on the fabric."""


@dataclass
class Placement:
    """The result of placement.

    ``plb_sites`` maps packed-PLB names to ``(x, y)`` tile coordinates;
    ``io_sites`` maps primary input/output net names to IO pads.

    ``iterations`` counts proposed annealing moves, ``moves_accepted`` the
    accepted ones, and ``net_evaluations`` every full per-net terminal scan
    (including the ``net_count`` scans of the initial sweep) — the
    incremental placer's headline counter: a full-recompute annealer would
    have spent ``iterations * net_count`` of them, and incremental
    bounding-box updates (counted in ``bbox_updates``) avoid most of the
    rest.  ``cost`` is the final objective value (equal to ``wirelength``
    under the default HPWL objective); ``wirelength`` is always the pure
    HPWL, whatever objective annealed.

    Placements serialize (:meth:`to_dict` / :meth:`from_dict`) so the sweep
    engine can cache them on disk and re-inject them into
    :meth:`repro.cad.flow.CadFlow.run` — the incremental re-route path: a
    routing-only parameter change reuses the placement instead of re-annealing.
    """

    plb_sites: dict[str, tuple[int, int]] = field(default_factory=dict)
    io_sites: dict[str, IOPad] = field(default_factory=dict)
    cost: float = 0.0
    iterations: int = 0
    initial_cost: float = 0.0
    moves_accepted: int = 0
    net_evaluations: int = 0
    net_count: int = 0
    wirelength: float = 0.0
    bbox_updates: int = 0

    def site_of(self, plb_name: str) -> tuple[int, int]:
        return self.plb_sites[plb_name]

    def pad_of(self, net: str) -> IOPad:
        return self.io_sites[net]

    # ------------------------------------------------------------------
    # Serialization (for the sweep engine's placement cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """A JSON-serializable rendering (inverse of :meth:`from_dict`)."""
        return {
            "schema": PLACEMENT_SCHEMA,
            "plb_sites": {name: list(site) for name, site in self.plb_sites.items()},
            "io_sites": {
                net: {"side": pad.side, "position": pad.position, "index": pad.index}
                for net, pad in self.io_sites.items()
            },
            "cost": self.cost,
            "iterations": self.iterations,
            "initial_cost": self.initial_cost,
            "moves_accepted": self.moves_accepted,
            "net_evaluations": self.net_evaluations,
            "net_count": self.net_count,
            "wirelength": self.wirelength,
            "bbox_updates": self.bbox_updates,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Placement":
        # legacy=True: PR-3 placement-cache records predate schema stamping
        # and are still readable (version 0 and 1 share the payload layout).
        require_version(data, "placement", PLACEMENT_SCHEMA, legacy=True)
        with decoding("placement"):
            return cls._from_payload(data)

    @classmethod
    def _from_payload(cls, data: Mapping[str, object]) -> "Placement":
        plb_sites = {
            str(name): (int(site[0]), int(site[1]))
            for name, site in dict(data["plb_sites"]).items()
        }
        io_sites = {
            str(net): IOPad(
                side=str(pad["side"]), position=int(pad["position"]), index=int(pad["index"])
            )
            for net, pad in dict(data["io_sites"]).items()
        }
        return cls(
            plb_sites=plb_sites,
            io_sites=io_sites,
            cost=float(data.get("cost", 0.0)),
            iterations=int(data.get("iterations", 0)),
            initial_cost=float(data.get("initial_cost", 0.0)),
            moves_accepted=int(data.get("moves_accepted", 0)),
            net_evaluations=int(data.get("net_evaluations", 0)),
            net_count=int(data.get("net_count", 0)),
            wirelength=float(data.get("wirelength", data.get("cost", 0.0))),
            bbox_updates=int(data.get("bbox_updates", 0)),
        )

    def matches_design(self, design: MappedDesign, fabric: Fabric) -> bool:
        """Whether this placement covers exactly *design* on *fabric*.

        Used as a safety check before reusing a cached placement: the cache
        key already encodes everything placement depends on, so a mismatch
        means a corrupt or mis-keyed record — the flow then falls back to
        placing from scratch rather than routing a wrong placement.
        """
        if {plb.name for plb in design.plbs} != set(self.plb_sites):
            return False
        io_nets = set(design.primary_inputs) | set(design.primary_outputs)
        if io_nets != set(self.io_sites):
            return False
        sites = set(fabric.plb_sites())
        if not all(site in sites for site in self.plb_sites.values()):
            return False
        if len(set(self.plb_sites.values())) != len(self.plb_sites):
            return False  # two PLBs on one tile: physically invalid
        pad_names = {pad.name for pad in fabric.io_pads()}
        if not all(pad.name in pad_names for pad in self.io_sites.values()):
            return False
        used_pads = [pad.name for pad in self.io_sites.values()]
        return len(set(used_pads)) == len(used_pads)


def _build_net_terminals(design: MappedDesign) -> dict[str, list[str]]:
    """For every net spanning blocks: the block/terminal names it touches.

    Terminals are packed-PLB names or ``io:<net>`` pseudo-blocks for primary
    inputs/outputs.
    """
    terminals: dict[str, list[str]] = {}

    def add(net: str, terminal: str) -> None:
        bucket = terminals.setdefault(net, [])
        if terminal not in bucket:
            bucket.append(terminal)

    driver_plb: dict[str, str] = {}
    for plb in design.plbs:
        for net in plb.output_nets:
            driver_plb[net] = plb.name

    for plb in design.plbs:
        for net in plb.external_input_nets:
            add(net, plb.name)
            if net in driver_plb:
                add(net, driver_plb[net])
    for net in design.primary_inputs:
        add(net, f"io:{net}")
    for net in design.primary_outputs:
        add(net, f"io:{net}")
        if net in driver_plb:
            add(net, driver_plb[net])

    # Only nets touching at least two distinct terminals matter for placement.
    return {net: terms for net, terms in terminals.items() if len(terms) >= 2}


def _pad_position(pad: IOPad, fabric: Fabric) -> tuple[float, float]:
    if pad.side == "south":
        return (pad.position, -1.0)
    if pad.side == "north":
        return (pad.position, float(fabric.height))
    if pad.side == "west":
        return (-1.0, pad.position)
    return (float(fabric.width), pad.position)


def _hpwl(
    nets: dict[str, list[str]],
    plb_sites: dict[str, tuple[int, int]],
    io_positions: dict[str, tuple[float, float]],
) -> float:
    """Full (non-incremental) HPWL: the reference the cache is audited against."""
    total = 0.0
    for terminals in nets.values():
        xs: list[float] = []
        ys: list[float] = []
        for terminal in terminals:
            if terminal.startswith("io:"):
                position = io_positions.get(terminal[3:])
                if position is None:
                    continue
                xs.append(position[0])
                ys.append(position[1])
            else:
                x, y = plb_sites[terminal]
                xs.append(float(x))
                ys.append(float(y))
        if len(xs) >= 2:
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


# ----------------------------------------------------------------------
# Objectives: what one net's bounding box costs
# ----------------------------------------------------------------------
class WirelengthObjective:
    """The default per-net cost: half-perimeter wirelength ``dx + dy``."""

    #: Whether per-net costs are exact floats (integer-valued sums), which
    #: lets the audit demand exact equality with a full recompute.
    exact = True

    def bind(self, net_names: Sequence[str]) -> None:
        """Called once by the cache with the net order (hook for subclasses)."""

    def net_cost(self, index: int, dx: float, dy: float) -> float:
        return dx + dy


class TimingObjective(WirelengthObjective):
    """Blend wirelength with criticality-weighted bounding-box delay.

    ``cost = (1 - tradeoff) * (dx + dy) + tradeoff * crit * delay_norm`` where
    ``delay_norm`` is the net's bounding-box delay estimate normalised by the
    wire-segment delay, keeping both terms in HPWL units.  ``criticalities``
    come from :class:`repro.cad.timing.TimingEngine`; the delay parameters
    are passed as plain numbers so this module needs no timing import.
    """

    exact = False

    def __init__(
        self,
        criticalities: Mapping[str, float],
        tradeoff: float = 0.5,
        wire_segment_delay_ps: int = 80,
        switch_delay_ps: int = 20,
        cbox_delay_ps: int = 30,
    ) -> None:
        if not 0.0 <= tradeoff <= 1.0:
            raise ValueError(f"tradeoff must be in [0, 1], got {tradeoff}")
        self.criticalities = dict(criticalities)
        self.tradeoff = tradeoff
        wire = float(wire_segment_delay_ps)
        # bbox delay of a net spanning s hops ~ 2*cbox + (s+1)*wire + s*switch
        # (repro.cad.timing.TimingModel.bbox_net_delay), normalised by wire.
        self._per_hop = (wire_segment_delay_ps + switch_delay_ps) / wire
        self._base = (2 * cbox_delay_ps + wire_segment_delay_ps) / wire
        self._crit: list[float] = []

    def bind(self, net_names: Sequence[str]) -> None:
        self._crit = [self.criticalities.get(net, 0.0) for net in net_names]

    def net_cost(self, index: int, dx: float, dy: float) -> float:
        span = dx + dy
        crit = self._crit[index]
        return (1.0 - self.tradeoff) * span + self.tradeoff * crit * (
            self._base + span * self._per_hop
        )


#: Per-net bounding box: extremes plus how many terminals sit on each extreme
#: (the occupancy counts that make shrinking moves detectable in O(1)).
#: ``None`` marks nets with fewer than two positioned terminals (cost 0).
_Box = list  # [xmin, xmax, ymin, ymax, n_xmin, n_xmax, n_ymin, n_ymax]


class NetCostCache:
    """Per-net costs with delta evaluation for annealing moves.

    The cache holds live references to the caller's ``plb_sites`` and
    ``io_positions`` dicts.  Two proposal paths exist:

    * :meth:`propose` (the original API) re-scans every affected net's
      terminals against the already-mutated position dicts;
    * :meth:`propose_moves` takes the moved terminals' old/new coordinates
      and updates each affected net's bounding box **incrementally** — a full
      terminal scan only happens when a terminal moves off a box edge it
      alone occupied.

    Either way the new per-net costs are held pending until :meth:`commit`
    or :meth:`reject`; :attr:`total` is unchanged until then.

    Under the default :class:`WirelengthObjective` all terminal coordinates
    are integer-valued, so per-net costs and the running :attr:`total` are
    exact floats: ``total`` equals a full recompute at every step, not just
    approximately.
    """

    def __init__(
        self,
        nets: dict[str, list[str]],
        plb_sites: dict[str, tuple[int, int]],
        io_positions: dict[str, tuple[float, float]],
        objective: WirelengthObjective | None = None,
    ) -> None:
        self.nets = nets
        self.net_names: list[str] = list(nets.keys())
        self.terminals: list[list[str]] = list(nets.values())
        self.plb_sites = plb_sites
        self.io_positions = io_positions
        self.objective = objective if objective is not None else WirelengthObjective()
        self.objective.bind(self.net_names)
        buckets: dict[str, list[int]] = {}
        for index, terminals in enumerate(self.terminals):
            for terminal in terminals:
                buckets.setdefault(terminal, []).append(index)
        self._nets_of: dict[str, tuple[int, ...]] = {
            terminal: tuple(indices) for terminal, indices in buckets.items()
        }
        self.evaluations = 0
        self.bbox_updates = 0
        self.boxes: list[_Box | None] = [
            self._scan_box(index) for index in range(len(self.terminals))
        ]
        self.costs: list[float] = [
            self._box_cost(index, box) for index, box in enumerate(self.boxes)
        ]
        self.total: float = sum(self.costs)
        self._pending: list[tuple[int, _Box | None, float]] = []

    @property
    def net_count(self) -> int:
        return len(self.terminals)

    def nets_of(self, *terminals: str) -> list[int]:
        """Indices of the nets touching any of *terminals* (stable, deduped)."""
        if len(terminals) == 1:
            return list(self._nets_of.get(terminals[0], ()))
        seen: set[int] = set()
        affected: list[int] = []
        for terminal in terminals:
            for index in self._nets_of.get(terminal, ()):
                if index not in seen:
                    seen.add(index)
                    affected.append(index)
        return affected

    # ------------------------------------------------------------------
    # Bounding boxes
    # ------------------------------------------------------------------
    def _term_position(self, terminal: str) -> tuple[float, float] | None:
        if terminal.startswith("io:"):
            return self.io_positions.get(terminal[3:])
        x, y = self.plb_sites[terminal]
        return (float(x), float(y))

    def _scan_box(self, index: int) -> _Box | None:
        """Full terminal scan of one net (the costly path the counts avoid)."""
        self.evaluations += 1
        xs: list[float] = []
        ys: list[float] = []
        for terminal in self.terminals[index]:
            position = self._term_position(terminal)
            if position is None:
                continue
            xs.append(position[0])
            ys.append(position[1])
        if len(xs) < 2:
            return None
        xmin, xmax = min(xs), max(xs)
        ymin, ymax = min(ys), max(ys)
        return [
            xmin,
            xmax,
            ymin,
            ymax,
            xs.count(xmin),
            xs.count(xmax),
            ys.count(ymin),
            ys.count(ymax),
        ]

    def _box_cost(self, index: int, box: _Box | None) -> float:
        if box is None:
            return 0.0
        return self.objective.net_cost(index, box[1] - box[0], box[3] - box[2])

    @staticmethod
    def _shift_axis(box: _Box, low: int, high: int, old: float, new: float) -> bool:
        """Move one terminal's coordinate on one axis; ``False`` needs a rescan.

        ``low``/``high`` index the extreme slots (counts sit 4 positions
        later).  Removing the old coordinate first, then inserting the new
        one, keeps the counts exact; the only unresolvable case is removing
        the last terminal from an extreme, which requires finding the
        runner-up — that is the full-rescan path.
        """
        if new == old:
            return True
        # Remove the old coordinate.
        if old == box[low]:
            if box[low + 4] == 1:
                return False
            box[low + 4] -= 1
        if old == box[high]:
            if box[high + 4] == 1:
                return False
            box[high + 4] -= 1
        # Insert the new coordinate.
        if new < box[low]:
            box[low] = new
            box[low + 4] = 1
        elif new == box[low]:
            box[low + 4] += 1
        if new > box[high]:
            box[high] = new
            box[high + 4] = 1
        elif new == box[high]:
            box[high + 4] += 1
        return True

    # ------------------------------------------------------------------
    # Proposals
    # ------------------------------------------------------------------
    def propose(self, affected: Iterable[int]) -> float:
        """Cost delta of re-scanning *affected* nets against mutated positions."""
        pending = [
            (index, box, self._box_cost(index, box))
            for index, box in ((index, self._scan_box(index)) for index in affected)
        ]
        self._pending = pending
        return sum(cost for _index, _box, cost in pending) - sum(
            self.costs[index] for index, _box, _cost in pending
        )

    def propose_moves(
        self, moves: Sequence[tuple[str, tuple[float, float], tuple[float, float]]]
    ) -> float:
        """Cost delta of moving terminals ``(terminal, old_xy, new_xy)``.

        Bounding boxes are updated incrementally from the coordinate change;
        the position dicts must already reflect the new coordinates (they are
        only consulted when an update degenerates into a rescan).
        """
        pending_boxes: dict[int, _Box | None] = {}
        order: list[int] = []
        # Nets whose pending box came from a full rescan: the scan read the
        # *final* (already fully mutated) positions, so later moves touching
        # the same net are already folded in and must not re-apply.
        final: set[int] = set()
        for terminal, old, new in moves:
            for index in self._nets_of.get(terminal, ()):
                if index in final:
                    continue
                if index in pending_boxes:
                    base = pending_boxes[index]
                else:
                    base = self.boxes[index]
                    order.append(index)
                if base is None:
                    pending_boxes[index] = self._scan_box(index)
                    final.add(index)
                    continue
                candidate = list(base)
                if self._shift_axis(candidate, 0, 1, old[0], new[0]) and self._shift_axis(
                    candidate, 2, 3, old[1], new[1]
                ):
                    self.bbox_updates += 1
                    pending_boxes[index] = candidate
                else:
                    pending_boxes[index] = self._scan_box(index)
                    final.add(index)
        pending = [
            (index, pending_boxes[index], self._box_cost(index, pending_boxes[index]))
            for index in order
        ]
        self._pending = pending
        return sum(cost for _index, _box, cost in pending) - sum(
            self.costs[index] for index, _box, _cost in pending
        )

    def commit(self) -> None:
        """Fold the pending per-net costs into the cache and the total."""
        for index, box, cost in self._pending:
            self.total += cost - self.costs[index]
            self.costs[index] = cost
            self.boxes[index] = box
        self._pending = []

    def reject(self) -> None:
        """Drop the pending evaluation (caller has reverted the positions)."""
        self._pending = []

    # ------------------------------------------------------------------
    # Reference recomputes (audits / tests)
    # ------------------------------------------------------------------
    def full_recompute(self) -> float:
        """The objective summed from fresh terminal scans (no state change)."""
        total = 0.0
        for index in range(len(self.terminals)):
            xs: list[float] = []
            ys: list[float] = []
            for terminal in self.terminals[index]:
                position = self._term_position(terminal)
                if position is None:
                    continue
                xs.append(position[0])
                ys.append(position[1])
            if len(xs) >= 2:
                total += self.objective.net_cost(
                    index, max(xs) - min(xs), max(ys) - min(ys)
                )
        return total

    def wirelength(self) -> float:
        """Pure HPWL over the current positions, whatever the objective."""
        return _hpwl(self.nets, self.plb_sites, self.io_positions)

    def audit_matches(self) -> bool:
        """Whether :attr:`total` matches a full recompute (exact when possible)."""
        reference = self.full_recompute()
        if self.objective.exact:
            return self.total == reference
        return math.isclose(self.total, reference, rel_tol=1e-9, abs_tol=1e-6)


#: Backwards-compatible name: the original HPWL-only cache is the generic
#: cache under its default objective.
HpwlCache = NetCostCache


class _FreeList:
    """An O(1) pick/remove/add pool (list + index map, swap-pop removal)."""

    def __init__(self, items: Iterable[object], key=lambda item: item) -> None:
        self.items = list(items)
        self._key = key
        self._index = {key(item): position for position, item in enumerate(self.items)}

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def take(self, item: object) -> None:
        position = self._index.pop(self._key(item))
        last = self.items.pop()
        if position < len(self.items):
            self.items[position] = last
            self._index[self._key(last)] = position

    def add(self, item: object) -> None:
        self._index[self._key(item)] = len(self.items)
        self.items.append(item)


def place_design(
    design: MappedDesign,
    fabric: Fabric,
    seed: int = 1,
    effort: float = 1.0,
    audit_interval: int = 0,
    objective: WirelengthObjective | None = None,
    initial: Placement | None = None,
    temperature_factor: float = 0.2,
    kernel: str = "python",
) -> Placement:
    """Place a packed design on *fabric* with simulated annealing.

    Parameters
    ----------
    seed:
        RNG seed (placement is deterministic for a given seed).
    effort:
        Scales the number of annealing moves (1.0 is the default schedule).
    audit_interval:
        When ``> 0``, assert every N proposed moves that the incremental
        cost cache equals a full recompute (tests/debugging; the default
        skips the O(nets) audit entirely).
    objective:
        The per-net cost (default: pure HPWL).  The timing-driven flow
        passes a :class:`TimingObjective` built from the timing engine's
        criticalities.
    initial:
        Warm-start the anneal from this placement instead of a random one
        (must cover exactly this design on this fabric).  Combined with a
        small *temperature_factor* and reduced *effort* this is the
        timing-driven flow's **polish** pass: it nudges an already-good
        layout toward the blended objective without tearing it up.
    temperature_factor:
        The starting temperature as a fraction of the initial cost (0.2 is
        the classic full-anneal schedule; polish passes use ~0.02).
    kernel:
        Cost-cache backend (see :mod:`repro.cad.kernels`): ``"python"``
        is the reference :class:`NetCostCache`, ``"numpy"`` the
        array-backed cache, ``"auto"`` picks numpy when installed.  Both
        anneal bit-identically for a given seed.
    """
    if not design.plbs:
        raise PlacementError("design has no packed PLBs; run pack_design first")

    rng = random.Random(seed)
    sites = fabric.plb_sites()
    if len(design.plbs) > len(sites):
        raise PlacementError(
            f"design needs {len(design.plbs)} PLBs but the fabric only has {len(sites)}"
        )

    io_nets = list(design.primary_inputs) + [
        net for net in design.primary_outputs if net not in design.primary_inputs
    ]
    pads = fabric.io_pads()
    if len(io_nets) > len(pads):
        raise PlacementError(
            f"design needs {len(io_nets)} IO pads but the fabric only has {len(pads)}"
        )

    if initial is not None:
        if not initial.matches_design(design, fabric):
            raise PlacementError(
                "initial placement does not cover this design on this fabric"
            )
        plb_sites = dict(initial.plb_sites)
        pads_by_name = {pad.name: pad for pad in pads}
        io_sites = {net: pads_by_name[pad.name] for net, pad in initial.io_sites.items()}
    else:
        # Initial placement: PLBs on shuffled sites, IOs round-robin over the pads.
        shuffled_sites = list(sites)
        rng.shuffle(shuffled_sites)
        plb_sites = {
            plb.name: shuffled_sites[index] for index, plb in enumerate(design.plbs)
        }
        io_sites = {net: pads[index] for index, net in enumerate(io_nets)}
    io_positions = {net: _pad_position(pad, fabric) for net, pad in io_sites.items()}

    if resolve_kernel(kernel) == "numpy":
        from repro.cad.kernels.placement import NumpyNetCostCache

        cache_cls: type[NetCostCache] = NumpyNetCostCache
    else:
        cache_cls = NetCostCache
    cache = cache_cls(
        _build_net_terminals(design), plb_sites, io_positions, objective=objective
    )
    initial_cost = cache.total

    moves = max(200, int(effort * 100 * (len(design.plbs) + len(io_nets)) ** 1.3))
    temperature = max(1.0, cache.total * temperature_factor)
    plb_names = [plb.name for plb in design.plbs]

    occupied = set(plb_sites.values())
    free_sites = _FreeList(site for site in sites if site not in occupied)
    used_pad_names = {pad.name for pad in io_sites.values()}
    free_pads = _FreeList(
        (pad for pad in pads if pad.name not in used_pad_names),
        key=lambda pad: pad.name,
    )

    iterations = 0
    moves_accepted = 0
    inv_temperature = 1.0 / temperature

    # Site coordinates as floats, precomputed once (the anneal reads them
    # on every PLB move); hot callables hoisted to locals for the loop.
    # ``randbelow`` draws exactly like ``rng.choice`` does internally
    # (``seq[rng._randbelow(len(seq))]``), keeping the pick sequence
    # byte-identical while skipping the wrapper frame.
    pos_of = {site: (float(site[0]), float(site[1])) for site in sites}
    rng_random = rng.random
    randbelow = rng._randbelow
    exp = math.exp
    propose_moves = cache.propose_moves
    cache_commit = cache.commit
    cache_reject = cache.reject

    while iterations < moves:
        batch = min(TEMPERATURE_BATCH, moves - iterations)
        temperature = max(temperature * COOLING_RATE ** batch, MIN_TEMPERATURE)
        inv_temperature = 1.0 / temperature
        for _ in range(batch):
            iterations += 1
            if audit_interval > 0 and iterations % audit_interval == 0:
                assert cache.audit_matches(), (
                    f"incremental cost drifted at move {iterations}: "
                    f"cached {cache.total} != full {cache.full_recompute()}"
                )
            if rng_random() < 0.7 and plb_names:
                # Move or swap a PLB.
                name = plb_names[randbelow(len(plb_names))]
                old_site = plb_sites[name]
                if free_sites.items and rng_random() < 0.5:
                    items = free_sites.items
                    new_site = items[randbelow(len(items))]
                    plb_sites[name] = new_site
                    delta = propose_moves(
                        [(name, pos_of[old_site], pos_of[new_site])]
                    )
                    # Metropolis criterion at the current batch temperature
                    # (inlined at each proposal site below).
                    if delta <= 0 or rng_random() < exp(-delta * inv_temperature):
                        cache_commit()
                        moves_accepted += 1
                        free_sites.take(new_site)
                        free_sites.add(old_site)
                    else:
                        cache_reject()
                        plb_sites[name] = old_site
                else:
                    other = plb_names[randbelow(len(plb_names))]
                    if other == name:
                        continue
                    other_site = plb_sites[other]
                    plb_sites[name], plb_sites[other] = other_site, old_site
                    delta = propose_moves(
                        [
                            (name, pos_of[old_site], pos_of[other_site]),
                            (other, pos_of[other_site], pos_of[old_site]),
                        ]
                    )
                    if delta <= 0 or rng_random() < exp(-delta * inv_temperature):
                        cache_commit()
                        moves_accepted += 1
                    else:
                        cache_reject()
                        plb_sites[name], plb_sites[other] = old_site, other_site
            else:
                # Swap two IO pads (or move one to a free pad).
                if not io_nets:
                    continue
                net = io_nets[randbelow(len(io_nets))]
                if free_pads.items and rng_random() < 0.6:
                    old_pad = io_sites[net]
                    old_position = io_positions[net]
                    items = free_pads.items
                    new_pad = items[randbelow(len(items))]
                    new_position = _pad_position(new_pad, fabric)
                    io_sites[net] = new_pad
                    io_positions[net] = new_position
                    delta = propose_moves([(f"io:{net}", old_position, new_position)])
                    if delta <= 0 or rng_random() < exp(-delta * inv_temperature):
                        cache_commit()
                        moves_accepted += 1
                        free_pads.take(new_pad)
                        free_pads.add(old_pad)
                    else:
                        cache_reject()
                        io_sites[net] = old_pad
                        io_positions[net] = old_position
                else:
                    other = io_nets[randbelow(len(io_nets))]
                    if other == net:
                        continue
                    net_position = io_positions[net]
                    other_position = io_positions[other]
                    io_sites[net], io_sites[other] = io_sites[other], io_sites[net]
                    io_positions[net] = other_position
                    io_positions[other] = net_position
                    delta = propose_moves(
                        [
                            (f"io:{net}", net_position, other_position),
                            (f"io:{other}", other_position, net_position),
                        ]
                    )
                    if delta <= 0 or rng_random() < exp(-delta * inv_temperature):
                        cache_commit()
                        moves_accepted += 1
                    else:
                        cache_reject()
                        io_sites[net], io_sites[other] = io_sites[other], io_sites[net]
                        io_positions[net] = net_position
                        io_positions[other] = other_position

    return Placement(
        plb_sites=dict(plb_sites),
        io_sites=dict(io_sites),
        cost=cache.total,
        iterations=iterations,
        initial_cost=initial_cost,
        moves_accepted=moves_accepted,
        net_evaluations=cache.evaluations,
        net_count=cache.net_count,
        wirelength=cache.wirelength(),
        bbox_updates=cache.bbox_updates,
    )
