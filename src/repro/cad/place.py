"""Placement: assigning packed PLBs to fabric sites and primary IOs to pads.

The placer is a classic simulated-annealing engine over the half-perimeter
wirelength (HPWL) of the inter-block nets.  Cost evaluation is **incremental**
(VPR-style): a per-net cost cache plus a block→nets index mean that a move or
swap re-evaluates only the nets touching the moved blocks, so the cost of one
move is proportional to the moved blocks' fan-out, not to the design's net
count.  Site and pad bookkeeping is O(1) per move (occupancy maps with
swap-pop free lists) instead of list scans, and the acceptance test uses a
per-batch precomputed inverse temperature.

Determinism: for a given seed the anneal draws one fixed RNG stream —
per-net costs are exact (HPWL sums of integer-valued coordinates, well below
2**53, so float addition is exact in any order) and therefore the delta path
accepts exactly the moves a full-recompute path would.  The invariant
``HpwlCache.total == _hpwl(...)`` holds throughout the anneal and is enforced
by tests (and on demand via ``place_design(..., audit_interval=N)``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.cad.lemap import MappedDesign
from repro.core.fabric import Fabric, IOPad

#: Moves per temperature step: the annealer precomputes ``1 / temperature``
#: once per batch and keeps it fixed for the whole batch.
TEMPERATURE_BATCH = 32

#: Per-move geometric cooling rate (applied batch-wise as ``rate ** batch``).
COOLING_RATE = 0.999

#: Cooling floor: on very long schedules (huge designs or high effort) the
#: geometric decay would underflow to exactly 0.0 and 1/temperature would
#: raise; clamping here keeps ``exp(-delta * inv_temperature)`` at 0.0 for
#: any worsening move, which is the old ``temperature <= 0`` behaviour.
MIN_TEMPERATURE = 1e-300


class PlacementError(RuntimeError):
    """Raised when the design does not fit on the fabric."""


@dataclass
class Placement:
    """The result of placement.

    ``plb_sites`` maps packed-PLB names to ``(x, y)`` tile coordinates;
    ``io_sites`` maps primary input/output net names to IO pads.

    ``iterations`` counts proposed annealing moves, ``moves_accepted`` the
    accepted ones, and ``net_evaluations`` every per-net HPWL bounding-box
    computation (including the ``net_count`` evaluations of the initial full
    sweep) — the incremental placer's headline counter: a full-recompute
    annealer would have spent ``iterations * net_count`` evaluations.

    Placements serialize (:meth:`to_dict` / :meth:`from_dict`) so the sweep
    engine can cache them on disk and re-inject them into
    :meth:`repro.cad.flow.CadFlow.run` — the incremental re-route path: a
    routing-only parameter change reuses the placement instead of re-annealing.
    """

    plb_sites: dict[str, tuple[int, int]] = field(default_factory=dict)
    io_sites: dict[str, IOPad] = field(default_factory=dict)
    cost: float = 0.0
    iterations: int = 0
    initial_cost: float = 0.0
    moves_accepted: int = 0
    net_evaluations: int = 0
    net_count: int = 0

    def site_of(self, plb_name: str) -> tuple[int, int]:
        return self.plb_sites[plb_name]

    def pad_of(self, net: str) -> IOPad:
        return self.io_sites[net]

    # ------------------------------------------------------------------
    # Serialization (for the sweep engine's placement cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """A JSON-serializable rendering (inverse of :meth:`from_dict`)."""
        return {
            "plb_sites": {name: list(site) for name, site in self.plb_sites.items()},
            "io_sites": {
                net: {"side": pad.side, "position": pad.position, "index": pad.index}
                for net, pad in self.io_sites.items()
            },
            "cost": self.cost,
            "iterations": self.iterations,
            "initial_cost": self.initial_cost,
            "moves_accepted": self.moves_accepted,
            "net_evaluations": self.net_evaluations,
            "net_count": self.net_count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Placement":
        plb_sites = {
            str(name): (int(site[0]), int(site[1]))
            for name, site in dict(data["plb_sites"]).items()
        }
        io_sites = {
            str(net): IOPad(
                side=str(pad["side"]), position=int(pad["position"]), index=int(pad["index"])
            )
            for net, pad in dict(data["io_sites"]).items()
        }
        return cls(
            plb_sites=plb_sites,
            io_sites=io_sites,
            cost=float(data.get("cost", 0.0)),
            iterations=int(data.get("iterations", 0)),
            initial_cost=float(data.get("initial_cost", 0.0)),
            moves_accepted=int(data.get("moves_accepted", 0)),
            net_evaluations=int(data.get("net_evaluations", 0)),
            net_count=int(data.get("net_count", 0)),
        )

    def matches_design(self, design: MappedDesign, fabric: Fabric) -> bool:
        """Whether this placement covers exactly *design* on *fabric*.

        Used as a safety check before reusing a cached placement: the cache
        key already encodes everything placement depends on, so a mismatch
        means a corrupt or mis-keyed record — the flow then falls back to
        placing from scratch rather than routing a wrong placement.
        """
        if {plb.name for plb in design.plbs} != set(self.plb_sites):
            return False
        io_nets = set(design.primary_inputs) | set(design.primary_outputs)
        if io_nets != set(self.io_sites):
            return False
        sites = set(fabric.plb_sites())
        if not all(site in sites for site in self.plb_sites.values()):
            return False
        if len(set(self.plb_sites.values())) != len(self.plb_sites):
            return False  # two PLBs on one tile: physically invalid
        pad_names = {pad.name for pad in fabric.io_pads()}
        if not all(pad.name in pad_names for pad in self.io_sites.values()):
            return False
        used_pads = [pad.name for pad in self.io_sites.values()]
        return len(set(used_pads)) == len(used_pads)


def _build_net_terminals(design: MappedDesign) -> dict[str, list[str]]:
    """For every net spanning blocks: the block/terminal names it touches.

    Terminals are packed-PLB names or ``io:<net>`` pseudo-blocks for primary
    inputs/outputs.
    """
    terminals: dict[str, list[str]] = {}

    def add(net: str, terminal: str) -> None:
        bucket = terminals.setdefault(net, [])
        if terminal not in bucket:
            bucket.append(terminal)

    driver_plb: dict[str, str] = {}
    for plb in design.plbs:
        for net in plb.output_nets:
            driver_plb[net] = plb.name

    for plb in design.plbs:
        for net in plb.external_input_nets:
            add(net, plb.name)
            if net in driver_plb:
                add(net, driver_plb[net])
    for net in design.primary_inputs:
        add(net, f"io:{net}")
    for net in design.primary_outputs:
        add(net, f"io:{net}")
        if net in driver_plb:
            add(net, driver_plb[net])

    # Only nets touching at least two distinct terminals matter for placement.
    return {net: terms for net, terms in terminals.items() if len(terms) >= 2}


def _pad_position(pad: IOPad, fabric: Fabric) -> tuple[float, float]:
    if pad.side == "south":
        return (pad.position, -1.0)
    if pad.side == "north":
        return (pad.position, float(fabric.height))
    if pad.side == "west":
        return (-1.0, pad.position)
    return (float(fabric.width), pad.position)


def _hpwl(
    nets: dict[str, list[str]],
    plb_sites: dict[str, tuple[int, int]],
    io_positions: dict[str, tuple[float, float]],
) -> float:
    """Full (non-incremental) HPWL: the reference the cache is audited against."""
    total = 0.0
    for terminals in nets.values():
        xs: list[float] = []
        ys: list[float] = []
        for terminal in terminals:
            if terminal.startswith("io:"):
                position = io_positions.get(terminal[3:])
                if position is None:
                    continue
                xs.append(position[0])
                ys.append(position[1])
            else:
                x, y = plb_sites[terminal]
                xs.append(float(x))
                ys.append(float(y))
        if len(xs) >= 2:
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


class HpwlCache:
    """Per-net HPWL costs with delta evaluation for annealing moves.

    The cache holds live references to the caller's ``plb_sites`` and
    ``io_positions`` dicts.  A move is evaluated in three steps: the caller
    mutates the positions, calls :meth:`propose` with the affected net
    indices (from :meth:`nets_of`), and then either :meth:`commit`\\ s the
    pending per-net costs or reverts the positions and :meth:`reject`\\ s.

    All terminal coordinates are integer-valued, so per-net costs and the
    running :attr:`total` are exact floats: ``total`` equals a full
    :func:`_hpwl` recompute at every step, not just approximately.
    """

    def __init__(
        self,
        nets: dict[str, list[str]],
        plb_sites: dict[str, tuple[int, int]],
        io_positions: dict[str, tuple[float, float]],
    ) -> None:
        self.nets = nets
        self.terminals: list[list[str]] = list(nets.values())
        self.plb_sites = plb_sites
        self.io_positions = io_positions
        buckets: dict[str, list[int]] = {}
        for index, terminals in enumerate(self.terminals):
            for terminal in terminals:
                buckets.setdefault(terminal, []).append(index)
        self._nets_of: dict[str, tuple[int, ...]] = {
            terminal: tuple(indices) for terminal, indices in buckets.items()
        }
        self.evaluations = 0
        self.costs: list[float] = [
            self._net_cost(index) for index in range(len(self.terminals))
        ]
        self.total: float = sum(self.costs)
        self._pending: list[tuple[int, float]] = []

    @property
    def net_count(self) -> int:
        return len(self.terminals)

    def nets_of(self, *terminals: str) -> list[int]:
        """Indices of the nets touching any of *terminals* (stable, deduped)."""
        if len(terminals) == 1:
            return list(self._nets_of.get(terminals[0], ()))
        seen: set[int] = set()
        affected: list[int] = []
        for terminal in terminals:
            for index in self._nets_of.get(terminal, ()):
                if index not in seen:
                    seen.add(index)
                    affected.append(index)
        return affected

    def _net_cost(self, index: int) -> float:
        self.evaluations += 1
        xs: list[float] = []
        ys: list[float] = []
        for terminal in self.terminals[index]:
            if terminal.startswith("io:"):
                position = self.io_positions.get(terminal[3:])
                if position is None:
                    continue
                xs.append(position[0])
                ys.append(position[1])
            else:
                x, y = self.plb_sites[terminal]
                xs.append(float(x))
                ys.append(float(y))
        if len(xs) >= 2:
            return (max(xs) - min(xs)) + (max(ys) - min(ys))
        return 0.0

    def propose(self, affected: Iterable[int]) -> float:
        """Cost delta of re-evaluating *affected* nets against mutated positions.

        The new per-net costs are held pending until :meth:`commit` or
        :meth:`reject`; :attr:`total` is unchanged until then.
        """
        pending = [(index, self._net_cost(index)) for index in affected]
        self._pending = pending
        return sum(new for _index, new in pending) - sum(
            self.costs[index] for index, _new in pending
        )

    def commit(self) -> None:
        """Fold the pending per-net costs into the cache and the total."""
        for index, new in self._pending:
            self.total += new - self.costs[index]
            self.costs[index] = new
        self._pending = []

    def reject(self) -> None:
        """Drop the pending evaluation (caller has reverted the positions)."""
        self._pending = []

    def full_recompute(self) -> float:
        """Reference :func:`_hpwl` over the current positions (audits/tests)."""
        return _hpwl(self.nets, self.plb_sites, self.io_positions)


class _FreeList:
    """An O(1) pick/remove/add pool (list + index map, swap-pop removal)."""

    def __init__(self, items: Iterable[object], key=lambda item: item) -> None:
        self.items = list(items)
        self._key = key
        self._index = {key(item): position for position, item in enumerate(self.items)}

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def take(self, item: object) -> None:
        position = self._index.pop(self._key(item))
        last = self.items.pop()
        if position < len(self.items):
            self.items[position] = last
            self._index[self._key(last)] = position

    def add(self, item: object) -> None:
        self._index[self._key(item)] = len(self.items)
        self.items.append(item)


def place_design(
    design: MappedDesign,
    fabric: Fabric,
    seed: int = 1,
    effort: float = 1.0,
    audit_interval: int = 0,
) -> Placement:
    """Place a packed design on *fabric* with simulated annealing.

    Parameters
    ----------
    seed:
        RNG seed (placement is deterministic for a given seed).
    effort:
        Scales the number of annealing moves (1.0 is the default schedule).
    audit_interval:
        When ``> 0``, assert every N proposed moves that the incremental
        cost cache equals a full :func:`_hpwl` recompute (tests/debugging;
        the default skips the O(nets) audit entirely).
    """
    if not design.plbs:
        raise PlacementError("design has no packed PLBs; run pack_design first")

    rng = random.Random(seed)
    sites = fabric.plb_sites()
    if len(design.plbs) > len(sites):
        raise PlacementError(
            f"design needs {len(design.plbs)} PLBs but the fabric only has {len(sites)}"
        )

    io_nets = list(design.primary_inputs) + [
        net for net in design.primary_outputs if net not in design.primary_inputs
    ]
    pads = fabric.io_pads()
    if len(io_nets) > len(pads):
        raise PlacementError(
            f"design needs {len(io_nets)} IO pads but the fabric only has {len(pads)}"
        )

    # Initial placement: PLBs on shuffled sites, IOs round-robin over the pads.
    shuffled_sites = list(sites)
    rng.shuffle(shuffled_sites)
    plb_sites = {plb.name: shuffled_sites[index] for index, plb in enumerate(design.plbs)}
    io_sites = {net: pads[index] for index, net in enumerate(io_nets)}
    io_positions = {net: _pad_position(pad, fabric) for net, pad in io_sites.items()}

    cache = HpwlCache(_build_net_terminals(design), plb_sites, io_positions)
    initial_cost = cache.total

    moves = max(200, int(effort * 100 * (len(design.plbs) + len(io_nets)) ** 1.3))
    temperature = max(1.0, cache.total * 0.2)
    plb_names = [plb.name for plb in design.plbs]

    occupied = set(plb_sites.values())
    free_sites = _FreeList(site for site in sites if site not in occupied)
    used_pad_names = {pad.name for pad in io_sites.values()}
    free_pads = _FreeList(
        (pad for pad in pads if pad.name not in used_pad_names),
        key=lambda pad: pad.name,
    )

    iterations = 0
    moves_accepted = 0
    inv_temperature = 1.0 / temperature

    def accepts(delta: float) -> bool:
        """Metropolis criterion at the current batch temperature."""
        return delta <= 0 or rng.random() < math.exp(-delta * inv_temperature)

    while iterations < moves:
        batch = min(TEMPERATURE_BATCH, moves - iterations)
        temperature = max(temperature * COOLING_RATE ** batch, MIN_TEMPERATURE)
        inv_temperature = 1.0 / temperature
        for _ in range(batch):
            iterations += 1
            if audit_interval > 0 and iterations % audit_interval == 0:
                assert cache.total == cache.full_recompute(), (
                    f"incremental HPWL drifted at move {iterations}: "
                    f"cached {cache.total} != full {cache.full_recompute()}"
                )
            if rng.random() < 0.7 and plb_names:
                # Move or swap a PLB.
                name = rng.choice(plb_names)
                old_site = plb_sites[name]
                if free_sites and rng.random() < 0.5:
                    new_site = rng.choice(free_sites.items)
                    plb_sites[name] = new_site
                    delta = cache.propose(cache.nets_of(name))
                    if accepts(delta):
                        cache.commit()
                        moves_accepted += 1
                        free_sites.take(new_site)
                        free_sites.add(old_site)
                    else:
                        cache.reject()
                        plb_sites[name] = old_site
                else:
                    other = rng.choice(plb_names)
                    if other == name:
                        continue
                    plb_sites[name], plb_sites[other] = plb_sites[other], plb_sites[name]
                    delta = cache.propose(cache.nets_of(name, other))
                    if accepts(delta):
                        cache.commit()
                        moves_accepted += 1
                    else:
                        cache.reject()
                        plb_sites[name], plb_sites[other] = (
                            plb_sites[other],
                            plb_sites[name],
                        )
            else:
                # Swap two IO pads (or move one to a free pad).
                if not io_nets:
                    continue
                net = rng.choice(io_nets)
                if free_pads and rng.random() < 0.6:
                    old_pad = io_sites[net]
                    new_pad = rng.choice(free_pads.items)
                    io_sites[net] = new_pad
                    io_positions[net] = _pad_position(new_pad, fabric)
                    delta = cache.propose(cache.nets_of(f"io:{net}"))
                    if accepts(delta):
                        cache.commit()
                        moves_accepted += 1
                        free_pads.take(new_pad)
                        free_pads.add(old_pad)
                    else:
                        cache.reject()
                        io_sites[net] = old_pad
                        io_positions[net] = _pad_position(old_pad, fabric)
                else:
                    other = rng.choice(io_nets)
                    if other == net:
                        continue
                    io_sites[net], io_sites[other] = io_sites[other], io_sites[net]
                    io_positions[net] = _pad_position(io_sites[net], fabric)
                    io_positions[other] = _pad_position(io_sites[other], fabric)
                    delta = cache.propose(cache.nets_of(f"io:{net}", f"io:{other}"))
                    if accepts(delta):
                        cache.commit()
                        moves_accepted += 1
                    else:
                        cache.reject()
                        io_sites[net], io_sites[other] = io_sites[other], io_sites[net]
                        io_positions[net] = _pad_position(io_sites[net], fabric)
                        io_positions[other] = _pad_position(io_sites[other], fabric)

    return Placement(
        plb_sites=dict(plb_sites),
        io_sites=dict(io_sites),
        cost=cache.total,
        iterations=iterations,
        initial_cost=initial_cost,
        moves_accepted=moves_accepted,
        net_evaluations=cache.evaluations,
        net_count=cache.net_count,
    )
