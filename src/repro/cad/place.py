"""Placement: assigning packed PLBs to fabric sites and primary IOs to pads.

The placer is a classic simulated-annealing engine over the half-perimeter
wirelength (HPWL) of the inter-block nets.  For the small designs of the paper
this converges in well under a second; the CAD-scaling benchmark exercises it
on larger synthetic designs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from repro.cad.lemap import MappedDesign
from repro.core.fabric import Fabric, IOPad


class PlacementError(RuntimeError):
    """Raised when the design does not fit on the fabric."""


@dataclass
class Placement:
    """The result of placement.

    ``plb_sites`` maps packed-PLB names to ``(x, y)`` tile coordinates;
    ``io_sites`` maps primary input/output net names to IO pads.

    Placements serialize (:meth:`to_dict` / :meth:`from_dict`) so the sweep
    engine can cache them on disk and re-inject them into
    :meth:`repro.cad.flow.CadFlow.run` — the incremental re-route path: a
    routing-only parameter change reuses the placement instead of re-annealing.
    """

    plb_sites: dict[str, tuple[int, int]] = field(default_factory=dict)
    io_sites: dict[str, IOPad] = field(default_factory=dict)
    cost: float = 0.0
    iterations: int = 0
    initial_cost: float = 0.0

    def site_of(self, plb_name: str) -> tuple[int, int]:
        return self.plb_sites[plb_name]

    def pad_of(self, net: str) -> IOPad:
        return self.io_sites[net]

    # ------------------------------------------------------------------
    # Serialization (for the sweep engine's placement cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """A JSON-serializable rendering (inverse of :meth:`from_dict`)."""
        return {
            "plb_sites": {name: list(site) for name, site in self.plb_sites.items()},
            "io_sites": {
                net: {"side": pad.side, "position": pad.position, "index": pad.index}
                for net, pad in self.io_sites.items()
            },
            "cost": self.cost,
            "iterations": self.iterations,
            "initial_cost": self.initial_cost,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Placement":
        plb_sites = {
            str(name): (int(site[0]), int(site[1]))
            for name, site in dict(data["plb_sites"]).items()
        }
        io_sites = {
            str(net): IOPad(
                side=str(pad["side"]), position=int(pad["position"]), index=int(pad["index"])
            )
            for net, pad in dict(data["io_sites"]).items()
        }
        return cls(
            plb_sites=plb_sites,
            io_sites=io_sites,
            cost=float(data.get("cost", 0.0)),
            iterations=int(data.get("iterations", 0)),
            initial_cost=float(data.get("initial_cost", 0.0)),
        )

    def matches_design(self, design: MappedDesign, fabric: Fabric) -> bool:
        """Whether this placement covers exactly *design* on *fabric*.

        Used as a safety check before reusing a cached placement: the cache
        key already encodes everything placement depends on, so a mismatch
        means a corrupt or mis-keyed record — the flow then falls back to
        placing from scratch rather than routing a wrong placement.
        """
        if {plb.name for plb in design.plbs} != set(self.plb_sites):
            return False
        io_nets = set(design.primary_inputs) | set(design.primary_outputs)
        if io_nets != set(self.io_sites):
            return False
        sites = set(fabric.plb_sites())
        if not all(site in sites for site in self.plb_sites.values()):
            return False
        if len(set(self.plb_sites.values())) != len(self.plb_sites):
            return False  # two PLBs on one tile: physically invalid
        pad_names = {pad.name for pad in fabric.io_pads()}
        if not all(pad.name in pad_names for pad in self.io_sites.values()):
            return False
        used_pads = [pad.name for pad in self.io_sites.values()]
        return len(set(used_pads)) == len(used_pads)


def _build_net_terminals(design: MappedDesign) -> dict[str, list[str]]:
    """For every net spanning blocks: the block/terminal names it touches.

    Terminals are packed-PLB names or ``io:<net>`` pseudo-blocks for primary
    inputs/outputs.
    """
    terminals: dict[str, list[str]] = {}

    def add(net: str, terminal: str) -> None:
        bucket = terminals.setdefault(net, [])
        if terminal not in bucket:
            bucket.append(terminal)

    driver_plb: dict[str, str] = {}
    for plb in design.plbs:
        for net in plb.output_nets:
            driver_plb[net] = plb.name

    for plb in design.plbs:
        for net in plb.external_input_nets:
            add(net, plb.name)
            if net in driver_plb:
                add(net, driver_plb[net])
    for net in design.primary_inputs:
        add(net, f"io:{net}")
    for net in design.primary_outputs:
        add(net, f"io:{net}")
        if net in driver_plb:
            add(net, driver_plb[net])
    for net in design.primary_inputs:
        for plb in design.plbs:
            if net in plb.external_input_nets:
                add(net, plb.name)

    # Only nets touching at least two distinct terminals matter for placement.
    return {net: terms for net, terms in terminals.items() if len(terms) >= 2}


def _pad_position(pad: IOPad, fabric: Fabric) -> tuple[float, float]:
    if pad.side == "south":
        return (pad.position, -1.0)
    if pad.side == "north":
        return (pad.position, float(fabric.height))
    if pad.side == "west":
        return (-1.0, pad.position)
    return (float(fabric.width), pad.position)


def _hpwl(
    nets: dict[str, list[str]],
    plb_sites: dict[str, tuple[int, int]],
    io_positions: dict[str, tuple[float, float]],
) -> float:
    total = 0.0
    for terminals in nets.values():
        xs: list[float] = []
        ys: list[float] = []
        for terminal in terminals:
            if terminal.startswith("io:"):
                position = io_positions.get(terminal[3:])
                if position is None:
                    continue
                xs.append(position[0])
                ys.append(position[1])
            else:
                x, y = plb_sites[terminal]
                xs.append(float(x))
                ys.append(float(y))
        if len(xs) >= 2:
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def place_design(
    design: MappedDesign,
    fabric: Fabric,
    seed: int = 1,
    effort: float = 1.0,
) -> Placement:
    """Place a packed design on *fabric* with simulated annealing.

    Parameters
    ----------
    seed:
        RNG seed (placement is deterministic for a given seed).
    effort:
        Scales the number of annealing moves (1.0 is the default schedule).
    """
    if not design.plbs:
        raise PlacementError("design has no packed PLBs; run pack_design first")

    rng = random.Random(seed)
    sites = fabric.plb_sites()
    if len(design.plbs) > len(sites):
        raise PlacementError(
            f"design needs {len(design.plbs)} PLBs but the fabric only has {len(sites)}"
        )

    io_nets = list(design.primary_inputs) + [
        net for net in design.primary_outputs if net not in design.primary_inputs
    ]
    pads = fabric.io_pads()
    if len(io_nets) > len(pads):
        raise PlacementError(
            f"design needs {len(io_nets)} IO pads but the fabric only has {len(pads)}"
        )

    # Initial placement: PLBs on the first sites, IOs round-robin over the pads.
    shuffled_sites = list(sites)
    rng.shuffle(shuffled_sites)
    plb_sites = {plb.name: shuffled_sites[index] for index, plb in enumerate(design.plbs)}
    io_sites = {net: pads[index] for index, net in enumerate(io_nets)}
    io_positions = {net: _pad_position(pad, fabric) for net, pad in io_sites.items()}

    nets = _build_net_terminals(design)
    cost = _hpwl(nets, plb_sites, io_positions)
    initial_cost = cost

    moves = max(200, int(effort * 100 * (len(design.plbs) + len(io_nets)) ** 1.3))
    temperature = max(1.0, cost * 0.2)
    plb_names = [plb.name for plb in design.plbs]
    free_sites = [site for site in sites if site not in plb_sites.values()]

    iterations = 0
    for move_index in range(moves):
        iterations += 1
        temperature *= 0.999
        if rng.random() < 0.7 and len(plb_names) >= 1:
            # Move or swap a PLB.
            name = rng.choice(plb_names)
            old_site = plb_sites[name]
            if free_sites and rng.random() < 0.5:
                new_site = rng.choice(free_sites)
                plb_sites[name] = new_site
                new_cost = _hpwl(nets, plb_sites, io_positions)
                if new_cost <= cost or rng.random() < _accept(cost, new_cost, temperature, rng):
                    cost = new_cost
                    free_sites.remove(new_site)
                    free_sites.append(old_site)
                else:
                    plb_sites[name] = old_site
            else:
                other = rng.choice(plb_names)
                if other == name:
                    continue
                plb_sites[name], plb_sites[other] = plb_sites[other], plb_sites[name]
                new_cost = _hpwl(nets, plb_sites, io_positions)
                if new_cost <= cost or rng.random() < _accept(cost, new_cost, temperature, rng):
                    cost = new_cost
                else:
                    plb_sites[name], plb_sites[other] = plb_sites[other], plb_sites[name]
        else:
            # Swap two IO pads (or move one to a free pad).
            if len(io_nets) < 1:
                continue
            net = rng.choice(io_nets)
            used_pads = set(pad.name for pad in io_sites.values())
            free_pads = [pad for pad in pads if pad.name not in used_pads]
            saved = dict(io_sites)
            if free_pads and rng.random() < 0.6:
                io_sites[net] = rng.choice(free_pads)
            else:
                other = rng.choice(io_nets)
                if other == net:
                    continue
                io_sites[net], io_sites[other] = io_sites[other], io_sites[net]
            new_positions = {n: _pad_position(p, fabric) for n, p in io_sites.items()}
            new_cost = _hpwl(nets, plb_sites, new_positions)
            if new_cost <= cost or rng.random() < _accept(cost, new_cost, temperature, rng):
                cost = new_cost
                io_positions = new_positions
            else:
                io_sites.clear()
                io_sites.update(saved)

    return Placement(
        plb_sites=dict(plb_sites),
        io_sites=dict(io_sites),
        cost=cost,
        iterations=iterations,
        initial_cost=initial_cost,
    )


def _accept(old_cost: float, new_cost: float, temperature: float, rng: random.Random) -> float:
    """Metropolis acceptance probability for a worsening move."""
    if temperature <= 0:
        return 0.0
    import math

    return math.exp(-(new_cost - old_cost) / temperature)
