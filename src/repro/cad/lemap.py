"""The LE-level intermediate representation (IR) of a mapped design.

After technology mapping a design is a collection of:

* :class:`LEFunction` -- one logical LUT output: a truth table over *net
  names*, possibly including the function's own output net (feedback through
  the PLB interconnection matrix, i.e. a memory element);
* :class:`MappedLE` -- up to three LEFunctions sharing one LUT7-3 plus an
  optional validity function on the LUT2-1;
* :class:`MappedPDE` -- a matched-delay assignment onto a programmable delay
  element;
* :class:`MappedPLB` -- the result of packing (two LEs + optional PDE);
* :class:`MappedDesign` -- the whole design plus its primary inputs/outputs.

The IR is what the packer, placer, router, bitstream generator, metrics and
the LE-level simulator all consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.params import PLBParams
from repro.core.schema import CorruptArtifactError, decoding, require_version
from repro.logic.truthtable import TruthTable
from repro.styles.base import LogicStyle

#: Schema version of :meth:`MappedDesign.to_dict` payloads.  The same codec
#: serves both the "mapped" boundary (``plbs`` empty) and the "packed"
#: boundary (``plbs`` populated): packing only groups existing LEs/PDEs.
MAPPED_DESIGN_SCHEMA = 1


@dataclass
class LEFunction:
    """One logical LUT output function.

    ``table`` is expressed over logical net names; if ``output_net`` appears
    among the table inputs the function is state holding and the mapper must
    arrange feedback through the interconnection matrix.
    """

    output_net: str
    table: TruthTable
    # "logic", "validity", "ack", "latch", "controller", or "decomp" (an
    # intermediate emitted by repro.cad.decompose on a synthetic net).
    role: str = "logic"

    @property
    def input_nets(self) -> tuple[str, ...]:
        return self.table.inputs

    @property
    def arity(self) -> int:
        return len(self.table.inputs)

    @property
    def has_feedback(self) -> bool:
        return self.output_net in self.table.inputs

    @property
    def external_inputs(self) -> tuple[str, ...]:
        return tuple(net for net in self.table.inputs if net != self.output_net)

    def to_dict(self) -> dict[str, object]:
        return {
            "output_net": self.output_net,
            "table": self.table.to_dict(),
            "role": self.role,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LEFunction":
        return cls(
            output_net=str(data["output_net"]),
            table=TruthTable.from_dict(data["table"]),
            role=str(data.get("role", "logic")),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        feedback = "+fb" if self.has_feedback else ""
        return f"LEFunction({self.output_net!r}, {self.arity} inputs{feedback}, role={self.role})"


@dataclass
class MappedLE:
    """One Logic Element after mapping."""

    name: str
    functions: list[LEFunction] = field(default_factory=list)
    validity: LEFunction | None = None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def lut_input_nets(self) -> tuple[str, ...]:
        """Distinct nets needed on the LUT7-3 physical pins (feedback included)."""
        nets: list[str] = []
        for function in self.functions:
            for net in function.input_nets:
                if net not in nets:
                    nets.append(net)
        return tuple(nets)

    @property
    def validity_input_nets(self) -> tuple[str, ...]:
        if self.validity is None:
            return ()
        return self.validity.input_nets

    @property
    def output_nets(self) -> tuple[str, ...]:
        nets = [function.output_net for function in self.functions]
        if self.validity is not None:
            nets.append(self.validity.output_net)
        return tuple(nets)

    @property
    def external_input_nets(self) -> tuple[str, ...]:
        """Nets that must arrive from outside this LE (feedback excluded)."""
        own = set(self.output_nets)
        nets: list[str] = []
        for net in self.lut_input_nets + self.validity_input_nets:
            if net not in own and net not in nets:
                nets.append(net)
        return tuple(nets)

    @property
    def feedback_nets(self) -> tuple[str, ...]:
        """Own outputs that are also read as inputs (memory-by-looping)."""
        own = set(self.output_nets)
        used = set(self.lut_input_nets) | set(self.validity_input_nets)
        return tuple(sorted(own & used))

    def fits(self, params: PLBParams) -> bool:
        """Check the LE's physical constraints."""
        le = params.le
        if len(self.functions) > le.lut_outputs:
            return False
        if len(self.lut_input_nets) > le.lut_inputs:
            return False
        if self.validity is not None and self.validity.arity > le.validity_lut_inputs:
            return False
        return True

    def utilisation(self, params: PLBParams) -> dict[str, int]:
        le = params.le
        return {
            "lut_inputs_used": len(self.lut_input_nets),
            "lut_inputs_total": le.lut_inputs,
            "lut_outputs_used": len(self.functions),
            "lut_outputs_total": le.lut_outputs,
            "validity_inputs_used": len(self.validity_input_nets),
            "validity_inputs_total": le.validity_lut_inputs,
            "validity_outputs_used": 1 if self.validity is not None else 0,
            "validity_outputs_total": le.validity_lut_outputs,
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "functions": [function.to_dict() for function in self.functions],
            "validity": self.validity.to_dict() if self.validity is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MappedLE":
        validity = data.get("validity")
        return cls(
            name=str(data["name"]),
            functions=[LEFunction.from_dict(entry) for entry in data["functions"]],
            validity=LEFunction.from_dict(validity) if validity is not None else None,
        )


@dataclass
class MappedPDE:
    """A matched delay mapped onto a programmable delay element."""

    name: str
    input_net: str
    output_net: str
    delay_ps: int

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "input_net": self.input_net,
            "output_net": self.output_net,
            "delay_ps": self.delay_ps,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MappedPDE":
        return cls(
            name=str(data["name"]),
            input_net=str(data["input_net"]),
            output_net=str(data["output_net"]),
            delay_ps=int(data["delay_ps"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MappedPDE({self.input_net!r} -> {self.output_net!r}, {self.delay_ps} ps)"


@dataclass
class MappedPLB:
    """One packed PLB: up to ``les_per_plb`` LEs plus an optional PDE."""

    name: str
    les: list[MappedLE] = field(default_factory=list)
    pde: MappedPDE | None = None

    @property
    def output_nets(self) -> tuple[str, ...]:
        nets: list[str] = []
        for le in self.les:
            nets.extend(le.output_nets)
        if self.pde is not None:
            nets.append(self.pde.output_net)
        return tuple(nets)

    @property
    def external_input_nets(self) -> tuple[str, ...]:
        """Nets that must be routed into this PLB from the fabric."""
        own = set(self.output_nets)
        nets: list[str] = []
        for le in self.les:
            for net in le.external_input_nets:
                if net not in own and net not in nets:
                    nets.append(net)
        if self.pde is not None and self.pde.input_net not in own:
            if self.pde.input_net not in nets:
                nets.append(self.pde.input_net)
        return tuple(nets)

    def fits(self, params: PLBParams) -> bool:
        if len(self.les) > params.les_per_plb:
            return False
        if any(not le.fits(params) for le in self.les):
            return False
        if len(self.external_input_nets) > params.plb_inputs:
            return False
        exported = [net for net in self.output_nets]
        if len(exported) > params.plb_outputs + 0:
            # Not every internal net must leave the PLB, but the conservative
            # check keeps packing safely within the output budget.
            return len(self.externally_visible_outputs(set())) <= params.plb_outputs
        return True

    def externally_visible_outputs(self, consumed_elsewhere: set[str]) -> tuple[str, ...]:
        """Outputs read outside this PLB (or that are primary outputs)."""
        return tuple(net for net in self.output_nets if net in consumed_elsewhere)


@dataclass
class MappedDesign:
    """A fully mapped (and optionally packed) design."""

    name: str
    params: PLBParams
    les: list[MappedLE] = field(default_factory=list)
    pdes: list[MappedPDE] = field(default_factory=list)
    plbs: list[MappedPLB] = field(default_factory=list)
    primary_inputs: list[str] = field(default_factory=list)
    primary_outputs: list[str] = field(default_factory=list)
    style: LogicStyle | None = None
    metadata: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Net-level queries
    # ------------------------------------------------------------------
    def all_output_nets(self) -> set[str]:
        nets: set[str] = set()
        for le in self.les:
            nets.update(le.output_nets)
        for pde in self.pdes:
            nets.add(pde.output_net)
        return nets

    def net_consumers(self) -> dict[str, list[str]]:
        """Net name -> list of LE/PDE names reading it."""
        consumers: dict[str, list[str]] = {}
        for le in self.les:
            for net in set(le.external_input_nets):
                consumers.setdefault(net, []).append(le.name)
        for pde in self.pdes:
            consumers.setdefault(pde.input_net, []).append(pde.name)
        return consumers

    def net_driver(self) -> dict[str, str]:
        """Net name -> name of the LE/PDE driving it (primary inputs absent)."""
        drivers: dict[str, str] = {}
        for le in self.les:
            for net in le.output_nets:
                drivers[net] = le.name
        for pde in self.pdes:
            drivers[pde.output_net] = pde.name
        return drivers

    def validate(self) -> list[str]:
        """Structural sanity checks; returns a list of problem descriptions."""
        problems: list[str] = []
        drivers = self.net_driver()
        seen_outputs: dict[str, str] = {}
        for le in self.les:
            if not le.fits(self.params):
                problems.append(f"LE {le.name} violates the LE constraints")
            for net in le.output_nets:
                if net in seen_outputs:
                    problems.append(f"net {net!r} driven by both {seen_outputs[net]} and {le.name}")
                seen_outputs[net] = le.name
        for pde in self.pdes:
            if pde.output_net in seen_outputs:
                problems.append(
                    f"net {pde.output_net!r} driven by both {seen_outputs[pde.output_net]} and {pde.name}"
                )
            seen_outputs[pde.output_net] = pde.name
        available = set(drivers) | set(self.primary_inputs)
        for le in self.les:
            for net in le.external_input_nets:
                if net not in available:
                    problems.append(f"LE {le.name} reads undriven net {net!r}")
        for pde in self.pdes:
            if pde.input_net not in available:
                problems.append(f"PDE {pde.name} reads undriven net {pde.input_net!r}")
        for net in self.primary_outputs:
            if net not in available:
                problems.append(f"primary output {net!r} is not driven")
        return problems

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        return {
            "name": self.name,
            "style": self.style.value if self.style is not None else None,
            "les": len(self.les),
            "lut_functions": sum(len(le.functions) for le in self.les),
            "validity_functions": sum(1 for le in self.les if le.validity is not None),
            "pdes": len(self.pdes),
            "plbs": len(self.plbs),
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
        }

    # ------------------------------------------------------------------
    # Serialization (the "mapped" and "packed" stage artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """A JSON-safe, schema-versioned rendering (inverse of :meth:`from_dict`).

        PLBs reference LEs/PDEs *by name* — the payload carries no duplicated
        objects, and :meth:`from_dict` restores the identity sharing the
        packer establishes (a PLB's LEs are the same objects as the design's).
        """
        return {
            "schema": MAPPED_DESIGN_SCHEMA,
            "name": self.name,
            "params": self.params.to_dict(),
            "les": [le.to_dict() for le in self.les],
            "pdes": [pde.to_dict() for pde in self.pdes],
            "plbs": [
                {
                    "name": plb.name,
                    "les": [le.name for le in plb.les],
                    "pde": plb.pde.name if plb.pde is not None else None,
                }
                for plb in self.plbs
            ],
            "primary_inputs": list(self.primary_inputs),
            "primary_outputs": list(self.primary_outputs),
            "style": self.style.value if self.style is not None else None,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MappedDesign":
        require_version(data, "mapped design", MAPPED_DESIGN_SCHEMA)
        with decoding("mapped design"):
            les = [MappedLE.from_dict(entry) for entry in data["les"]]
            pdes = [MappedPDE.from_dict(entry) for entry in data["pdes"]]
            le_by_name = {le.name: le for le in les}
            pde_by_name = {pde.name: pde for pde in pdes}
            plbs: list[MappedPLB] = []
            for entry in data["plbs"]:
                member_names = [str(name) for name in entry["les"]]
                missing = [name for name in member_names if name not in le_by_name]
                pde_name = entry.get("pde")
                if pde_name is not None and pde_name not in pde_by_name:
                    missing.append(str(pde_name))
                if missing:
                    raise CorruptArtifactError(
                        f"mapped design: PLB {entry['name']!r} references unknown members {missing}"
                    )
                plbs.append(
                    MappedPLB(
                        name=str(entry["name"]),
                        les=[le_by_name[name] for name in member_names],
                        pde=pde_by_name[str(pde_name)] if pde_name is not None else None,
                    )
                )
            style = data.get("style")
            return cls(
                name=str(data["name"]),
                params=PLBParams.from_dict(data["params"]),
                les=les,
                pdes=pdes,
                plbs=plbs,
                primary_inputs=[str(net) for net in data["primary_inputs"]],
                primary_outputs=[str(net) for net in data["primary_outputs"]],
                style=LogicStyle(style) if style is not None else None,
                metadata=dict(data.get("metadata", {})),
            )


def merge_mapped_designs(name: str, designs: Iterable[MappedDesign]) -> MappedDesign:
    """Concatenate several mapped designs into one (used by circuit composition).

    Nets with identical names are shared; primary inputs that another part
    drives become internal nets.  Per-part decomposition counters are folded
    into the merged design's metadata so composed circuits report them the
    same way monolithic mappings do.
    """
    # Local import: repro.cad.decompose imports this module at top level.
    from repro.cad.decompose import DecompositionStats

    designs = list(designs)
    if not designs:
        raise ValueError("merge_mapped_designs needs at least one design")
    params = designs[0].params
    merged = MappedDesign(name=name, params=params, style=designs[0].style)
    stats = DecompositionStats()
    for design in designs:
        merged.les.extend(design.les)
        merged.pdes.extend(design.pdes)
        part = design.metadata.get("decomposition")
        if part:
            stats.merge(DecompositionStats(**part))
    if stats.active:
        merged.metadata["decomposition"] = stats.as_dict()
    driven = merged.all_output_nets()
    for design in designs:
        for net in design.primary_inputs:
            if net not in driven and net not in merged.primary_inputs:
                merged.primary_inputs.append(net)
        for net in design.primary_outputs:
            if net not in merged.primary_outputs:
                merged.primary_outputs.append(net)
    return merged
