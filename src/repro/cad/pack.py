"""Packing: grouping mapped LEs into PLBs.

The packer fills PLBs with up to ``les_per_plb`` LEs each, under the PLB-level
constraints (number of PLB input pins, one PDE per PLB).  It is
affinity-driven: LEs that share nets are packed together first, which both
reduces external routing and mirrors the paper's Figure 3 groupings (the two
halves of a dual-rail pair, or a datapath latch next to its controller).

Delay elements are attached to the PLB that already hosts a consumer of the
delayed signal when possible, otherwise to any PLB with a free PDE.
"""

from __future__ import annotations

from repro.cad.lemap import MappedDesign, MappedLE, MappedPLB
from repro.core.params import PLBParams


class PackingError(RuntimeError):
    """Raised when a design cannot be packed under the PLB constraints."""


def _affinity(a: MappedLE, b: MappedLE) -> int:
    """Number of nets shared between two LEs (inputs or outputs)."""
    nets_a = set(a.external_input_nets) | set(a.output_nets)
    nets_b = set(b.external_input_nets) | set(b.output_nets)
    return len(nets_a & nets_b)


def _try_add(plb: MappedPLB, le: MappedLE, params: PLBParams) -> MappedPLB | None:
    """A new PLB with *le* added, or ``None`` if the constraints break."""
    candidate = MappedPLB(name=plb.name, les=plb.les + [le], pde=plb.pde)
    if len(candidate.les) > params.les_per_plb:
        return None
    if len(candidate.external_input_nets) > params.plb_inputs:
        return None
    if len(candidate.output_nets) > params.plb_outputs + params.les_per_plb:
        # Allow a small slack because not every LE output needs to leave the
        # PLB; the definitive check happens at pin assignment time.
        return None
    return candidate


def pack_design(design: MappedDesign, params: PLBParams | None = None) -> MappedDesign:
    """Pack ``design.les`` / ``design.pdes`` into ``design.plbs`` (in place).

    Returns the same design object for chaining.
    """
    params = params if params is not None else design.params

    for le in design.les:
        if not le.fits(params):
            raise PackingError(
                f"LE {le.name} does not satisfy the LE constraints "
                f"({len(le.lut_input_nets)} inputs, {len(le.functions)} functions)"
            )

    remaining = list(design.les)
    plbs: list[MappedPLB] = []

    while remaining:
        seed = remaining.pop(0)
        plb = MappedPLB(name=f"plb{len(plbs)}", les=[seed])
        # Greedily add the most-affine LEs that still fit.
        while len(plb.les) < params.les_per_plb and remaining:
            best_index = -1
            best_candidate: MappedPLB | None = None
            best_score = -1
            for index, le in enumerate(remaining):
                candidate = _try_add(plb, le, params)
                if candidate is None:
                    continue
                score = sum(_affinity(le, packed) for packed in plb.les)
                if score > best_score:
                    best_score = score
                    best_index = index
                    best_candidate = candidate
            if best_candidate is None:
                break
            plb = best_candidate
            remaining.pop(best_index)
        plbs.append(plb)

    # Attach delay elements.
    for pde in design.pdes:
        consumers = [
            plb
            for plb in plbs
            if pde.output_net in plb.external_input_nets
            or any(pde.output_net in le.external_input_nets for le in plb.les)
        ]
        target = None
        for plb in consumers:
            if plb.pde is None:
                target = plb
                break
        if target is None:
            for plb in plbs:
                if plb.pde is None:
                    target = plb
                    break
        if target is None:
            target = MappedPLB(name=f"plb{len(plbs)}")
            plbs.append(target)
        target.pde = pde

    design.plbs = plbs
    return design


def packing_summary(design: MappedDesign) -> dict[str, object]:
    """Counts used by reports and by the filling-ratio experiment."""
    params = design.params
    le_slots = len(design.plbs) * params.les_per_plb
    return {
        "plbs": len(design.plbs),
        "les_used": sum(len(plb.les) for plb in design.plbs),
        "le_slots": le_slots,
        "pdes_used": sum(1 for plb in design.plbs if plb.pde is not None),
        "le_occupancy": (
            sum(len(plb.les) for plb in design.plbs) / le_slots if le_slots else 0.0
        ),
        "max_external_inputs": max(
            (len(plb.external_input_nets) for plb in design.plbs), default=0
        ),
        # LUT functions living on decomposition-made synthetic nets (0 for
        # designs the mapper fit without splitting anything).
        "decomp_functions": sum(
            1
            for plb in design.plbs
            for le in plb.les
            for function in le.functions
            if function.role == "decomp"
        ),
    }
