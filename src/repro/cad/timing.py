"""Timing analysis of mapped / routed designs.

Asynchronous circuits have no clock, so "timing" means two things here:

* **connection delays** -- how long a signal takes from the output of one LE
  (or IO pad) to the input of another, through the interconnection matrix and
  the routed wires;
* **handshake cycle time** -- an estimate of the time one 4-phase handshake
  takes, derived from the forward/backward path delays of the mapped design.
  For bundled-data designs the analysis also checks (and if needed sizes) the
  matched delay against the worst-case datapath delay -- this is the timing
  assumption the PLB's programmable delay element implements.

The numbers come from a simple, explicit delay model
(:class:`TimingModel`); they are architecture-relative, not silicon-accurate,
which is all the shape-level experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cad.lemap import MappedDesign
from repro.cad.route import RoutingResult
from repro.core.params import SerializableParams
from repro.core.rrgraph import RoutingResourceGraph, RRNodeType


@dataclass(frozen=True)
class TimingModel(SerializableParams):
    """Delay model parameters (picoseconds)."""

    le_delay_ps: int = 250
    im_delay_ps: int = 50
    wire_segment_delay_ps: int = 80
    switch_delay_ps: int = 20
    cbox_delay_ps: int = 30
    io_delay_ps: int = 100

    def routed_net_delay(self, graph: RoutingResourceGraph, node_ids: list[int]) -> int:
        """Delay of one routed tree (conservatively: its total segment count)."""
        wires = sum(1 for node_id in node_ids if graph.node(node_id).node_type is RRNodeType.WIRE)
        switches = max(0, wires - 1)
        return (
            self.cbox_delay_ps * 2
            + wires * self.wire_segment_delay_ps
            + switches * self.switch_delay_ps
        )


@dataclass
class TimingReport:
    """Result of :func:`analyse_timing`."""

    net_delays_ps: dict[str, int] = field(default_factory=dict)
    max_net_delay_ps: int = 0
    le_levels: int = 0
    forward_latency_ps: int = 0
    cycle_time_ps: int = 0
    matched_delays: dict[str, dict[str, int]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def as_row(self) -> dict[str, object]:
        return {
            "max_net_delay_ps": self.max_net_delay_ps,
            "le_levels": self.le_levels,
            "forward_latency_ps": self.forward_latency_ps,
            "cycle_time_ps": self.cycle_time_ps,
        }


def _logic_depth(design: MappedDesign) -> int:
    """Longest acyclic LE-to-LE chain (feedback edges ignored)."""
    drivers = design.net_driver()
    le_by_name = {le.name: le for le in design.les}

    depth_cache: dict[str, int] = {}
    in_progress: set[str] = set()

    def depth_of(le_name: str) -> int:
        if le_name in depth_cache:
            return depth_cache[le_name]
        if le_name in in_progress:
            return 0  # feedback loop; treat as a cut
        in_progress.add(le_name)
        le = le_by_name.get(le_name)
        best = 0
        if le is not None:
            for net in le.external_input_nets:
                driver = drivers.get(net)
                if driver is not None and driver in le_by_name:
                    best = max(best, depth_of(driver))
        in_progress.discard(le_name)
        depth_cache[le_name] = best + 1
        return best + 1

    return max((depth_of(le.name) for le in design.les), default=0)


def analyse_timing(
    design: MappedDesign,
    routing: RoutingResult | None = None,
    graph: RoutingResourceGraph | None = None,
    model: TimingModel | None = None,
) -> TimingReport:
    """Estimate connection delays and the handshake cycle time.

    Without routing information every inter-LE connection is charged one
    average wire delay; with a routing result the actual routed tree lengths
    are used.
    """
    model = model if model is not None else TimingModel()
    report = TimingReport()

    if routing is not None and graph is not None:
        for net, routed in routing.routed.items():
            report.net_delays_ps[net] = model.routed_net_delay(graph, routed.nodes)
    else:
        for le in design.les:
            for net in le.external_input_nets:
                report.net_delays_ps.setdefault(net, model.wire_segment_delay_ps + model.cbox_delay_ps)

    report.max_net_delay_ps = max(report.net_delays_ps.values(), default=0)
    report.le_levels = _logic_depth(design)

    average_net = (
        sum(report.net_delays_ps.values()) / len(report.net_delays_ps)
        if report.net_delays_ps
        else model.wire_segment_delay_ps
    )
    per_level = model.le_delay_ps + model.im_delay_ps + average_net
    report.forward_latency_ps = int(report.le_levels * per_level)

    # One 4-phase handshake needs a forward (set) traversal, an acknowledge,
    # a return-to-zero traversal and an acknowledge release: approximately
    # four traversals of the forward path for function blocks.
    report.cycle_time_ps = int(4 * report.forward_latency_ps) if report.le_levels else 0

    # Matched-delay adequacy for bundled-data designs.
    for pde in design.pdes:
        datapath_delay = int((report.le_levels or 1) * (model.le_delay_ps + model.im_delay_ps))
        adequate = pde.delay_ps >= datapath_delay
        report.matched_delays[pde.name] = {
            "configured_ps": pde.delay_ps,
            "required_ps": datapath_delay,
            "adequate": int(adequate),
        }
        if not adequate:
            report.notes.append(
                f"matched delay {pde.name} ({pde.delay_ps} ps) is below the estimated "
                f"datapath delay ({datapath_delay} ps)"
            )

    return report
