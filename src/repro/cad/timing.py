"""Static timing analysis: the cost engine of the timing-driven flow.

Asynchronous circuits have no clock, so "timing" means two things here:

* **connection delays** -- how long a signal takes from the output of one LE
  (or IO pad) to the input of another, through the interconnection matrix and
  the routed wires;
* **handshake cycle time** -- an estimate of the time one 4-phase handshake
  takes, derived from the forward/backward path delays of the mapped design.
  For bundled-data designs the analysis also checks (and if needed sizes) the
  matched delay against the worst-case datapath delay -- this is the timing
  assumption the PLB's programmable delay element implements.

Historically this module was a passive post-route reporter.  It is now an
**incremental static-timing engine** (:class:`TimingEngine`) that the placer
and router consume *while they optimise*:

* before placement, net delays default to one average wire traversal, which
  already yields structural (depth-based) per-net criticalities the annealer's
  blended cost can use;
* after placement, :meth:`TimingEngine.estimate_from_placement` re-estimates
  every inter-block net from its bounding box (geometry, no routing needed);
* after routing, :meth:`TimingEngine.update_from_routing` swaps in the exact
  routed-tree delays.

Each update just marks the engine dirty; arrival/required times over the
LE-level timing DAG (feedback edges cut, topological order computed once) are
recomputed lazily in O(V + E) on the next query, so criticality is cheap to
refresh mid-flow -- :attr:`TimingEngine.recomputes` counts how often that
actually happened.

Per-net **criticality** is the classic ratio: the longest path *through* the
net divided by the critical-path delay, clamped to [0, 1].  The nets on the
handshake-cycle critical path have criticality 1.0.

The numbers come from a simple, explicit delay model
(:class:`TimingModel`); they are architecture-relative, not silicon-accurate,
which is all the shape-level experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.cad.lemap import MappedDesign
from repro.core.params import SerializableParams
from repro.core.rrgraph import RoutingResourceGraph
from repro.core.schema import decoding, require_version

if TYPE_CHECKING:  # imported only for type checking: route imports this module
    from repro.cad.place import Placement
    from repro.cad.route import RoutingResult
    from repro.core.fabric import Fabric


@dataclass(frozen=True)
class TimingModel(SerializableParams):
    """Delay model parameters (picoseconds)."""

    le_delay_ps: int = 250
    im_delay_ps: int = 50
    wire_segment_delay_ps: int = 80
    switch_delay_ps: int = 20
    cbox_delay_ps: int = 30
    io_delay_ps: int = 100

    def routed_net_delay(self, graph: RoutingResourceGraph, node_ids: Iterable[int]) -> int:
        """Delay of one routed tree (conservatively: its total segment count)."""
        is_wire = graph.is_wire
        wires = sum(1 for node_id in node_ids if is_wire[node_id])
        switches = max(0, wires - 1)
        return (
            self.cbox_delay_ps * 2
            + wires * self.wire_segment_delay_ps
            + switches * self.switch_delay_ps
        )

    def bbox_net_delay(self, span: float) -> int:
        """Pre-route delay estimate of a net spanning *span* channel hops.

        *span* is the half-perimeter of the net's terminal bounding box; the
        estimate charges one wire segment per hop plus one to enter the
        channel, with a switch between consecutive segments -- the same
        formula :meth:`routed_net_delay` applies to the real tree.
        """
        segments = int(round(span)) + 1
        return (
            self.cbox_delay_ps * 2
            + segments * self.wire_segment_delay_ps
            + (segments - 1) * self.switch_delay_ps
        )

    @property
    def default_net_delay_ps(self) -> int:
        """The flat per-net charge used before any geometry is known."""
        return self.wire_segment_delay_ps + self.cbox_delay_ps


#: Schema version of :meth:`TimingReport.to_dict` payloads.
TIMING_SCHEMA = 1


@dataclass
class TimingReport:
    """Result of :func:`analyse_timing`."""

    net_delays_ps: dict[str, int] = field(default_factory=dict)
    max_net_delay_ps: int = 0
    le_levels: int = 0
    forward_latency_ps: int = 0
    cycle_time_ps: int = 0
    matched_delays: dict[str, dict[str, int]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: Per-net criticality (longest path through the net / critical path).
    criticalities: dict[str, float] = field(default_factory=dict)
    #: The handshake-relevant forward critical path (equals
    #: ``forward_latency_ps``; kept as its own field for clarity at call sites
    #: that reason about paths rather than latencies).
    critical_path_ps: int = 0

    def as_row(self) -> dict[str, object]:
        return {
            "max_net_delay_ps": self.max_net_delay_ps,
            "le_levels": self.le_levels,
            "forward_latency_ps": self.forward_latency_ps,
            "cycle_time_ps": self.cycle_time_ps,
        }

    # ------------------------------------------------------------------
    # Serialization (the "timing" stage artifact)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "schema": TIMING_SCHEMA,
            "net_delays_ps": dict(self.net_delays_ps),
            "max_net_delay_ps": self.max_net_delay_ps,
            "le_levels": self.le_levels,
            "forward_latency_ps": self.forward_latency_ps,
            "cycle_time_ps": self.cycle_time_ps,
            "matched_delays": {net: dict(entry) for net, entry in self.matched_delays.items()},
            "notes": list(self.notes),
            "criticalities": dict(self.criticalities),
            "critical_path_ps": self.critical_path_ps,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TimingReport":
        require_version(data, "timing", TIMING_SCHEMA)
        with decoding("timing"):
            return cls(
                net_delays_ps={str(net): int(d) for net, d in dict(data["net_delays_ps"]).items()},
                max_net_delay_ps=int(data["max_net_delay_ps"]),
                le_levels=int(data["le_levels"]),
                forward_latency_ps=int(data["forward_latency_ps"]),
                cycle_time_ps=int(data["cycle_time_ps"]),
                matched_delays={
                    str(net): {str(k): int(v) for k, v in dict(entry).items()}
                    for net, entry in dict(data["matched_delays"]).items()
                },
                notes=[str(note) for note in data["notes"]],
                criticalities={
                    str(net): float(c) for net, c in dict(data["criticalities"]).items()
                },
                critical_path_ps=int(data["critical_path_ps"]),
            )


def _logic_depth(design: MappedDesign) -> int:
    """Longest acyclic LE-to-LE chain (feedback edges ignored)."""
    drivers = design.net_driver()
    le_by_name = {le.name: le for le in design.les}

    depth_cache: dict[str, int] = {}
    in_progress: set[str] = set()

    def depth_of(le_name: str) -> int:
        if le_name in depth_cache:
            return depth_cache[le_name]
        if le_name in in_progress:
            return 0  # feedback loop; treat as a cut
        in_progress.add(le_name)
        le = le_by_name.get(le_name)
        best = 0
        if le is not None:
            for net in le.external_input_nets:
                driver = drivers.get(net)
                if driver is not None and driver in le_by_name:
                    best = max(best, depth_of(driver))
        in_progress.discard(le_name)
        depth_cache[le_name] = best + 1
        return best + 1

    return max((depth_of(le.name) for le in design.les), default=0)


#: Source-side pseudo node of a primary input in the timing DAG.
_PI = "pi"


@dataclass(frozen=True)
class _TimingEdge:
    """One connection of the timing DAG: ``pred --net--> succ``.

    ``pred`` is an LE name or :data:`_PI` (primary input); ``succ`` is an LE
    name or ``None`` for the primary-output end of a path.
    """

    pred: str
    succ: str | None
    net: str


class TimingEngine:
    """Incremental static timing over the LE-level connection DAG.

    The DAG is built **once** from the mapped design (feedback edges cut the
    same deterministic way :func:`_logic_depth` cuts them); only per-net
    delays change afterwards.  Queries (:meth:`criticality`,
    :attr:`critical_path_ps`, :attr:`cycle_time_ps`) lazily re-run the
    arrival/required sweeps when a delay update dirtied the engine.
    """

    def __init__(self, design: MappedDesign, model: TimingModel | None = None) -> None:
        self.design = design
        self.model = model if model is not None else TimingModel()
        self.net_delays_ps: dict[str, int] = {}
        self.recomputes = 0
        self._dirty = True
        self._critical_path_ps = 0
        self._criticalities: dict[str, float] = {}
        self._build_dag()

    # ------------------------------------------------------------------
    # DAG construction (once)
    # ------------------------------------------------------------------
    def _build_dag(self) -> None:
        design = self.design
        drivers = design.net_driver()
        le_by_name = {le.name: le for le in design.les}
        primary_inputs = set(design.primary_inputs)

        order: list[str] = []  # topological (preds before succs)
        state: dict[str, int] = {}  # 0 = on the DFS stack, 1 = done
        in_edges: dict[str, list[_TimingEdge]] = {name: [] for name in le_by_name}

        def visit(le_name: str) -> None:
            if state.get(le_name) == 1:
                return
            state[le_name] = 0
            le = le_by_name[le_name]
            for net in le.external_input_nets:
                driver = drivers.get(net)
                if driver is not None and driver in le_by_name and driver != le_name:
                    if state.get(driver) == 0:
                        continue  # feedback edge: cut, exactly like _logic_depth
                    visit(driver)
                    in_edges[le_name].append(_TimingEdge(driver, le_name, net))
                elif net in primary_inputs:
                    in_edges[le_name].append(_TimingEdge(_PI, le_name, net))
            state[le_name] = 1
            order.append(le_name)

        for le in design.les:
            visit(le.name)

        out_edges: dict[str, list[_TimingEdge]] = {name: [] for name in le_by_name}
        for edges in in_edges.values():
            for edge in edges:
                if edge.pred != _PI:
                    out_edges[edge.pred].append(edge)
        # Primary-output half-edges terminate paths at the fabric boundary.
        po_edges: dict[str, list[_TimingEdge]] = {name: [] for name in le_by_name}
        for net in design.primary_outputs:
            driver = drivers.get(net)
            if driver is not None and driver in le_by_name:
                po_edges[driver].append(_TimingEdge(driver, None, net))

        self._order = order
        self._in_edges = in_edges
        self._out_edges = out_edges
        self._po_edges = po_edges
        self._le_levels = _logic_depth(design)

    # ------------------------------------------------------------------
    # Delay updates (cheap: mark dirty, recompute lazily)
    # ------------------------------------------------------------------
    def set_net_delays(self, delays: Mapping[str, int]) -> None:
        """Merge per-net delays (ps) and mark the engine for recomputation."""
        if delays:
            self.net_delays_ps.update(delays)
            self._dirty = True

    def set_net_delay(self, net: str, delay_ps: int) -> None:
        if self.net_delays_ps.get(net) != delay_ps:
            self.net_delays_ps[net] = delay_ps
            self._dirty = True

    def estimate_from_placement(
        self, placement: "Placement", fabric: "Fabric"
    ) -> dict[str, int]:
        """Per-net delay estimates from placement geometry (no routing yet).

        Every net spanning blocks is charged by the half-perimeter of its
        terminal bounding box (:meth:`TimingModel.bbox_net_delay`); the
        estimates are folded into the engine and also returned.
        """
        from repro.cad.place import _build_net_terminals, _pad_position

        io_positions = {
            net: _pad_position(pad, fabric) for net, pad in placement.io_sites.items()
        }
        estimates: dict[str, int] = {}
        for net, terminals in _build_net_terminals(self.design).items():
            xs: list[float] = []
            ys: list[float] = []
            for terminal in terminals:
                if terminal.startswith("io:"):
                    position = io_positions.get(terminal[3:])
                    if position is None:
                        continue
                    xs.append(position[0])
                    ys.append(position[1])
                else:
                    x, y = placement.plb_sites[terminal]
                    xs.append(float(x))
                    ys.append(float(y))
            if len(xs) >= 2:
                span = (max(xs) - min(xs)) + (max(ys) - min(ys))
            else:
                span = 1.0
            estimates[net] = self.model.bbox_net_delay(span)
        self.set_net_delays(estimates)
        return estimates

    def update_from_routing(
        self, routing: "RoutingResult", graph: RoutingResourceGraph
    ) -> dict[str, int]:
        """Swap in exact routed-tree delays for every routed net."""
        delays = {
            net: self.model.routed_net_delay(graph, routed.nodes)
            for net, routed in routing.routed.items()
        }
        self.set_net_delays(delays)
        return delays

    # ------------------------------------------------------------------
    # Queries (lazily recomputed)
    # ------------------------------------------------------------------
    def _net_delay(self, net: str) -> int:
        return self.net_delays_ps.get(net, self.model.default_net_delay_ps)

    def _edge_delay(self, edge: _TimingEdge) -> int:
        if edge.pred == _PI:
            return self.model.io_delay_ps + self._net_delay(edge.net)
        return self.model.le_delay_ps + self.model.im_delay_ps + self._net_delay(edge.net)

    def _recompute(self) -> None:
        self.recomputes += 1
        self._dirty = False
        model = self.model
        terminal = model.le_delay_ps + model.im_delay_ps

        arrival: dict[str, int] = {}
        for name in self._order:
            best = 0
            for edge in self._in_edges[name]:
                pred_arrival = 0 if edge.pred == _PI else arrival[edge.pred]
                best = max(best, pred_arrival + self._edge_delay(edge))
            arrival[name] = best

        tail: dict[str, int] = {}
        for name in reversed(self._order):
            # Every LE at least pays its own compute + matrix delay at the
            # end of a path; onward edges extend that.
            best = terminal
            for edge in self._po_edges[name]:
                best = max(best, terminal + self._net_delay(edge.net))
            for edge in self._out_edges[name]:
                best = max(best, self._edge_delay(edge) + tail[edge.succ])
            tail[name] = best

        critical = max(
            (arrival[name] + tail[name] for name in self._order), default=0
        )

        worst_by_net: dict[str, int] = {}
        for name in self._order:
            for edge in self._in_edges[name]:
                pred_arrival = 0 if edge.pred == _PI else arrival[edge.pred]
                path = pred_arrival + self._edge_delay(edge) + tail[name]
                if path > worst_by_net.get(edge.net, 0):
                    worst_by_net[edge.net] = path
            for edge in self._po_edges[name]:
                path = arrival[name] + terminal + self._net_delay(edge.net)
                if path > worst_by_net.get(edge.net, 0):
                    worst_by_net[edge.net] = path

        self._critical_path_ps = critical
        if critical > 0:
            self._criticalities = {
                net: min(1.0, path / critical) for net, path in worst_by_net.items()
            }
        else:
            self._criticalities = {net: 0.0 for net in worst_by_net}

    def _refresh(self) -> None:
        if self._dirty:
            self._recompute()

    @property
    def le_levels(self) -> int:
        return self._le_levels

    @property
    def critical_path_ps(self) -> int:
        """The worst forward path (LE, matrix and net delays summed)."""
        self._refresh()
        return self._critical_path_ps

    @property
    def cycle_time_ps(self) -> int:
        """Handshake cycle time: four traversals of the forward path.

        One 4-phase handshake needs a forward (set) traversal, an
        acknowledge, a return-to-zero traversal and an acknowledge release --
        approximately four traversals of the forward path for function
        blocks.
        """
        if not self._order:
            return 0
        return 4 * self.critical_path_ps

    def criticalities(self, exponent: float = 1.0) -> dict[str, float]:
        """Per-net criticality in [0, 1] (1.0 == on the critical path).

        Shallow-but-wide asynchronous netlists compress raw criticality into
        a narrow band near 1.0 (most nets lie on *some* near-critical path);
        *exponent* > 1 sharpens the distribution VPR-style (``crit ** exp``)
        so optimisation pressure concentrates on the truly critical nets
        while the rest keep negotiating congestion.
        """
        self._refresh()
        if exponent == 1.0:
            return dict(self._criticalities)
        return {net: crit**exponent for net, crit in self._criticalities.items()}

    def criticality(self, net: str) -> float:
        self._refresh()
        return self._criticalities.get(net, 0.0)


def analyse_timing(
    design: MappedDesign,
    routing: "RoutingResult | None" = None,
    graph: RoutingResourceGraph | None = None,
    model: TimingModel | None = None,
    placement: "Placement | None" = None,
    fabric: "Fabric | None" = None,
    engine: TimingEngine | None = None,
) -> TimingReport:
    """Estimate connection delays and the handshake cycle time.

    Without routing information every inter-LE connection is charged one
    average wire delay (or, when *placement* and *fabric* are given, its
    bounding-box estimate); with a routing result the actual routed tree
    lengths are used.  Pass an existing :class:`TimingEngine` to reuse its
    DAG and delay state instead of rebuilding.
    """
    model = model if model is not None else TimingModel()
    if engine is None:
        engine = TimingEngine(design, model)
    report = TimingReport()

    if routing is not None and graph is not None:
        report.net_delays_ps = engine.update_from_routing(routing, graph)
    elif placement is not None and fabric is not None:
        report.net_delays_ps = engine.estimate_from_placement(placement, fabric)
    else:
        for le in design.les:
            for net in le.external_input_nets:
                report.net_delays_ps.setdefault(net, model.default_net_delay_ps)

    report.max_net_delay_ps = max(report.net_delays_ps.values(), default=0)
    report.le_levels = engine.le_levels
    report.critical_path_ps = engine.critical_path_ps
    report.forward_latency_ps = engine.critical_path_ps
    report.cycle_time_ps = engine.cycle_time_ps if report.le_levels else 0
    report.criticalities = engine.criticalities()

    # Matched-delay adequacy for bundled-data designs.
    for pde in design.pdes:
        datapath_delay = int((report.le_levels or 1) * (model.le_delay_ps + model.im_delay_ps))
        adequate = pde.delay_ps >= datapath_delay
        report.matched_delays[pde.name] = {
            "configured_ps": pde.delay_ps,
            "required_ps": datapath_delay,
            "adequate": int(adequate),
        }
        if not adequate:
            report.notes.append(
                f"matched delay {pde.name} ({pde.delay_ps} ps) is below the estimated "
                f"datapath delay ({datapath_delay} ps)"
            )

    return report
