"""Utilisation metrics, including the paper's *filling ratio*.

The paper's single quantitative claim (Section 5) is the overall filling ratio
of the example full adders: 51 % for the micropipeline implementation and 76 %
for the QDI one.  The paper does not define the metric formally, so this
module computes it under an explicit, documented definition (and a couple of
variants so the sensitivity is visible):

* ``per_le`` (primary, as defined in DESIGN.md): over the LEs actually used by
  the design, the fraction of LE resources consumed.  Each used LE offers
  ``lut_inputs + lut_outputs + validity_inputs + validity_outputs`` resource
  units (7 + 3 + 2 + 1 = 13 for the paper's LE); each used programmable delay
  element offers (and consumes) one additional unit.
* ``per_plb``: same numerator, but the capacity is counted over every LE slot
  of the *occupied PLBs* (unused LEs in a partially filled PLB count as wasted
  capacity).
* ``lut_inputs_only``: the fraction of LUT7-3 input pins used in the used LEs
  (the narrowest reading of "filling").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cad.lemap import MappedDesign, MappedLE
from repro.core.params import PLBParams


def _le_used_units(le: MappedLE, params: PLBParams) -> int:
    usage = le.utilisation(params)
    return (
        usage["lut_inputs_used"]
        + usage["lut_outputs_used"]
        + usage["validity_inputs_used"]
        + usage["validity_outputs_used"]
    )


def _le_capacity_units(params: PLBParams) -> int:
    le = params.le
    return le.lut_inputs + le.lut_outputs + le.validity_lut_inputs + le.validity_lut_outputs


@dataclass
class FillingRatioReport:
    """All filling-ratio variants for one mapped design."""

    design_name: str
    style: str | None
    per_le: float
    per_plb: float
    lut_inputs_only: float
    les_used: int
    plbs_used: int
    pdes_used: int
    details: dict[str, object] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        return {
            "design": self.design_name,
            "style": self.style,
            "filling_ratio": round(self.per_le, 4),
            "filling_ratio_per_plb": round(self.per_plb, 4),
            "filling_ratio_lut_inputs": round(self.lut_inputs_only, 4),
            "les": self.les_used,
            "plbs": self.plbs_used,
            "pdes": self.pdes_used,
        }


def filling_ratio(design: MappedDesign) -> FillingRatioReport:
    """Compute the filling-ratio variants for a mapped (ideally packed) design."""
    params = design.params
    le_capacity = _le_capacity_units(params)

    used_units = sum(_le_used_units(le, params) for le in design.les)
    used_units += len(design.pdes)  # each used PDE consumes its single unit

    capacity_per_le = le_capacity * len(design.les) + len(design.pdes)

    lut_inputs_used = sum(len(le.lut_input_nets) for le in design.les)
    lut_inputs_capacity = params.le.lut_inputs * len(design.les)

    plbs = design.plbs if design.plbs else None
    if plbs is not None:
        plb_capacity = 0
        for plb in plbs:
            plb_capacity += le_capacity * params.les_per_plb
            plb_capacity += 1  # the PLB's PDE (used or not) is part of its capacity
        per_plb = used_units / plb_capacity if plb_capacity else 0.0
        plbs_used = len(plbs)
    else:
        per_plb = 0.0
        plbs_used = 0

    return FillingRatioReport(
        design_name=design.name,
        style=design.style.value if design.style is not None else None,
        per_le=used_units / capacity_per_le if capacity_per_le else 0.0,
        per_plb=per_plb,
        lut_inputs_only=lut_inputs_used / lut_inputs_capacity if lut_inputs_capacity else 0.0,
        les_used=len(design.les),
        plbs_used=plbs_used,
        pdes_used=len(design.pdes),
        details={
            "used_units": used_units,
            "capacity_per_le": capacity_per_le,
            "lut_inputs_used": lut_inputs_used,
            "lut_inputs_capacity": lut_inputs_capacity,
            "per_le_breakdown": [
                {"le": le.name, **le.utilisation(params)} for le in design.les
            ],
        },
    )


def utilisation_report(design: MappedDesign) -> dict[str, object]:
    """A combined report: packing occupancy + filling ratio + per-LE detail."""
    from repro.cad.pack import packing_summary  # local import to avoid a cycle

    report = filling_ratio(design)
    result: dict[str, object] = dict(report.as_row())
    if design.plbs:
        result.update(packing_summary(design))
    result["lut_functions"] = sum(len(le.functions) for le in design.les)
    result["validity_functions"] = sum(1 for le in design.les if le.validity is not None)
    result["feedback_nets"] = sum(len(le.feedback_nets) for le in design.les)
    return result
