"""Wide-function decomposition: fit arbitrary LUT functions into the LE budget.

The template and generic mappers both produce :class:`~repro.cad.lemap.LEFunction`
truth tables whose support can exceed the LE's LUT input budget (the paper's
LUT7-3 offers 7 inputs): the DIMS rail functions of a 2x2 multiplier need 9,
and a generic netlist may contain cells that are simply wider than the LUT.
Instead of raising a hard :class:`~repro.cad.techmap.MappingError`, the mapper
hands such functions to :func:`decompose_function`, which recursively splits
them until every emitted function fits, wiring the pieces together through
fresh *synthetic nets* that route through the fabric like any other net.

Three reductions are tried, in order:

1. **Cone un-absorption (re-substitution).**  When the caller supplies the
   truth tables of inner cones that were greedily absorbed into the wide
   table (``candidates``), the decomposer checks whether the table factors
   exactly through one of those cones again -- i.e. whether the absorption
   can be undone.  The cone's *original* net is then restored as an input and
   reported in ``reused_nets`` so the caller can map the cone separately.

2. **Disjoint-support extraction** (bounded Ashenhurst decomposition).  A
   bound set ``A`` of inputs whose column multiplicity is at most two can be
   collapsed into a single-output subfunction ``g(A)`` on a synthetic net,
   leaving ``h(g, B)`` with ``|B| + 1`` inputs.  The bound-set search is
   deterministic and bounded -- contiguous windows of the declared input
   order, widest useful size first -- so decomposition stays fast on wide
   tables.  (Absorbed-cone supports are not searched here; they are handled
   by the exact-match un-absorption pass above.)

3. **Shannon cofactoring** on the best-scoring variable.  The two cofactors
   become (recursively decomposed) functions on synthetic nets and the
   original output turns into a 3-input multiplexer LUT.  State-holding
   functions (feedback through the PLB interconnection matrix) always split
   on their *own output variable first*: the cofactors are then purely
   combinational and the feedback pin stays on the final mux LUT, which is
   what keeps the looped-LUT memory semantics intact without rewiring.

The emitted single-function pieces can afterwards be merged onto shared
multi-output LUTs with :func:`coalesce_decomposition_les` (only functions
created by decomposition are touched, so mappings that never decompose are
bit-identical to before).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.cad.lemap import LEFunction, MappedLE
from repro.core.params import PLBParams
from repro.logic.truthtable import TruthTable

#: Role assigned to intermediate functions created by decomposition.
DECOMPOSITION_ROLE = "decomp"

#: Ceiling on bound-set attempts per disjoint-support search (keeps wide
#: tables from turning the mapper quadratic; Shannon always terminates).
MAX_BOUND_SET_ATTEMPTS = 256


class DecompositionError(RuntimeError):
    """Raised when a function cannot be decomposed to fit the budget.

    With a budget of at least 3 LUT inputs Shannon recursion always succeeds
    (the residual multiplexer needs 3 pins), so this only fires for degenerate
    architectures.
    """


@dataclass
class DecompositionStats:
    """Counters describing what decomposition did to one mapped design."""

    functions_decomposed: int = 0
    intermediate_functions: int = 0
    shannon_splits: int = 0
    disjoint_extractions: int = 0
    resubstitutions: int = 0
    max_arity_seen: int = 0

    def observe(self, arity: int) -> None:
        self.max_arity_seen = max(self.max_arity_seen, arity)

    @property
    def active(self) -> bool:
        return self.functions_decomposed > 0

    def as_dict(self) -> dict[str, int]:
        return {
            "functions_decomposed": self.functions_decomposed,
            "intermediate_functions": self.intermediate_functions,
            "shannon_splits": self.shannon_splits,
            "disjoint_extractions": self.disjoint_extractions,
            "resubstitutions": self.resubstitutions,
            "max_arity_seen": self.max_arity_seen,
        }

    def merge(self, other: "DecompositionStats") -> None:
        self.functions_decomposed += other.functions_decomposed
        self.intermediate_functions += other.intermediate_functions
        self.shannon_splits += other.shannon_splits
        self.disjoint_extractions += other.disjoint_extractions
        self.resubstitutions += other.resubstitutions
        self.max_arity_seen = max(self.max_arity_seen, other.max_arity_seen)


class NetNamer:
    """Deterministic fresh-net naming that avoids every existing net name."""

    def __init__(self, existing: Iterable[str] = ()) -> None:
        self._taken = set(existing)
        self._counters: dict[str, int] = {}

    def reserve(self, names: Iterable[str]) -> None:
        self._taken.update(names)

    def fresh(self, base: str) -> str:
        index = self._counters.get(base, 0)
        while True:
            name = f"{base}__d{index}"
            index += 1
            if name not in self._taken:
                self._counters[base] = index
                self._taken.add(name)
                return name


@dataclass
class DecompositionResult:
    """What :func:`decompose_function` produced for one wide function.

    ``functions`` lists every emitted LUT function with the one driving the
    original output net *last*; the others drive fresh synthetic nets (role
    ``"decomp"``).  ``reused_nets`` names existing nets whose cones were
    un-absorbed -- the caller must ensure they are mapped in their own right.
    """

    functions: list[LEFunction] = field(default_factory=list)
    reused_nets: list[str] = field(default_factory=list)

    @property
    def final(self) -> LEFunction:
        return self.functions[-1]

    @property
    def intermediates(self) -> list[LEFunction]:
        return self.functions[:-1]


# ----------------------------------------------------------------------
# Bound-set analysis (shared by un-absorption and disjoint extraction)
# ----------------------------------------------------------------------
def _column_classes(
    table: TruthTable, bound: tuple[str, ...]
) -> tuple[dict[tuple[int, ...], int], list[tuple[int, ...]]] | None:
    """Partition the bound-set assignments by their column pattern.

    Returns ``(class_of_assignment, class_columns)`` when the column
    multiplicity is at most two (the condition for a single-output
    extraction), ``None`` otherwise.  Assignments are keyed by the bound
    variables' values in ``bound`` order.
    """
    free = tuple(name for name in table.inputs if name not in bound)
    positions = {name: table.inputs.index(name) for name in table.inputs}
    bound_positions = [positions[name] for name in bound]
    free_positions = [positions[name] for name in free]

    class_of: dict[tuple[int, ...], int] = {}
    columns: list[tuple[int, ...]] = []
    for bound_index in range(1 << len(bound)):
        base = 0
        values = []
        for offset, position in enumerate(bound_positions):
            bit = (bound_index >> offset) & 1
            values.append(bit)
            base |= bit << position
        column = []
        for free_index in range(1 << len(free)):
            row = base
            for offset, position in enumerate(free_positions):
                row |= ((free_index >> offset) & 1) << position
            column.append(table.bits[row])
        column_t = tuple(column)
        if column_t not in columns:
            if len(columns) == 2:
                return None
            columns.append(column_t)
        class_of[tuple(values)] = columns.index(column_t)
    return class_of, columns


def _extract_bound_set(
    table: TruthTable, bound: tuple[str, ...], inner_net: str
) -> tuple[TruthTable, TruthTable] | None:
    """Factor *table* as ``h(inner_net, free)`` with ``g = f(bound)``.

    Returns ``(g, h)`` or ``None`` when the bound set does not admit a
    single-output extraction.  ``g`` is normalised so class 1 means "the
    second distinct column": callers matching against a known cone table must
    also try the complement.
    """
    analysis = _column_classes(table, bound)
    if analysis is None:
        return None
    class_of, columns = analysis
    if len(columns) < 2:
        return None  # table does not depend on the bound set at all

    g = TruthTable.from_function(
        bound, lambda *values: class_of[tuple(values)], name=f"g_{inner_net}"
    )
    free = tuple(name for name in table.inputs if name not in bound)
    h_inputs = (inner_net,) + free

    def h_function(*values: int) -> int:
        selector = values[0]
        free_index = 0
        for offset in range(len(free)):
            free_index |= values[1 + offset] << offset
        return columns[selector][free_index]

    h = TruthTable.from_function(h_inputs, h_function, name=table.name)
    return g, h


def _try_unabsorb(
    table: TruthTable,
    candidates: Mapping[str, TruthTable],
) -> tuple[str, TruthTable] | None:
    """Undo one greedy cone absorption if the table still factors through it.

    Tries every candidate cone whose support is contained in the table (widest
    first, so the biggest arity reduction wins) and whose restoration leaves
    ``h`` strictly narrower.  Returns ``(net, h)`` on success.
    """
    ordered = sorted(
        candidates.items(), key=lambda item: (-item[1].arity, item[0])
    )
    for net, cone in ordered:
        support = tuple(name for name in table.inputs if name in cone.inputs)
        if len(support) != cone.arity or net in table.inputs:
            continue
        new_arity = table.arity - cone.arity + 1
        if new_arity >= table.arity:
            continue
        extracted = _extract_bound_set(table, support, net)
        if extracted is None:
            continue
        g, h = extracted
        cone_aligned = cone.reorder(support) if cone.inputs != support else cone
        if g.bits == cone_aligned.bits:
            return net, h
        if g.bits == tuple(1 - bit for bit in cone_aligned.bits):
            # g is the complement of the cone; flip the selector inside h so
            # the real cone output can drive the restored input unchanged.
            flipped = h.compose(
                {net: TruthTable((net,), (1, 0), name=f"not_{net}")}
            )
            return net, flipped.reorder(h.inputs)
    return None


def _disjoint_bound_sets(
    inputs: tuple[str, ...], budget: int
) -> Iterable[tuple[str, ...]]:
    """Deterministic bounded stream of candidate bound sets.

    Contiguous windows of the declared input order, widest useful size first:
    wide windows shrink ``h`` the most, and the generators that produce wide
    tables (DIMS channel expansions, datapath slices) list related wires
    adjacently, so windows catch the natural structure without a combinatorial
    subset search.
    """
    arity = len(inputs)
    emitted = 0
    largest = min(budget, arity - 1)
    smallest = max(2, arity - budget + 1)
    for size in range(largest, smallest - 1, -1):
        for start in range(0, arity - size + 1):
            if emitted >= MAX_BOUND_SET_ATTEMPTS:
                return
            emitted += 1
            yield tuple(inputs[start : start + size])


def _try_disjoint_extraction(
    table: TruthTable, budget: int, inner_net: str
) -> tuple[TruthTable, TruthTable] | None:
    """Find a bound set that collapses into one synthetic net, if any."""
    # _disjoint_bound_sets only yields sizes in [arity-budget+1, budget], so
    # every candidate already leaves both g and h within the budget.
    for bound in _disjoint_bound_sets(table.inputs, budget):
        extracted = _extract_bound_set(table, bound, inner_net)
        if extracted is not None:
            return extracted
    return None


# ----------------------------------------------------------------------
# Shannon cofactoring
# ----------------------------------------------------------------------
def _best_split_variable(table: TruthTable) -> str:
    """The variable whose cofactors have the smallest combined support."""
    best_name = table.inputs[0]
    best_score: tuple[int, int] | None = None
    for name in table.inputs:
        low = table.cofactor(name, 0).support()
        high = table.cofactor(name, 1).support()
        score = (len(low) + len(high), max(len(low), len(high)))
        if best_score is None or score < best_score:
            best_score = score
            best_name = name
    return best_name


def _mux_table(selector: str, low: object, high: object, name: str) -> TruthTable:
    """``selector ? high : low`` where each branch is a net name or a 0/1."""
    inputs: list[str] = [selector]
    for branch in (low, high):
        if isinstance(branch, str) and branch not in inputs:
            inputs.append(branch)

    def evaluate(*values: int) -> int:
        assignment = dict(zip(inputs, values))
        branch = high if assignment[selector] else low
        if isinstance(branch, str):
            return assignment[branch]
        return int(branch)

    return TruthTable.from_function(tuple(inputs), evaluate, name=name)


class _Decomposer:
    """One decomposition run: carries the namer, stats and candidate cones."""

    def __init__(
        self,
        budget: int,
        namer: NetNamer,
        stats: DecompositionStats,
        candidates: Mapping[str, TruthTable],
    ) -> None:
        self.budget = budget
        self.namer = namer
        self.stats = stats
        self.candidates = candidates
        self.emitted: list[LEFunction] = []
        self.reused: list[str] = []

    def reduce(self, table: TruthTable, output_net: str) -> TruthTable:
        """Emit helper functions until the returned table fits the budget."""
        table = table.remove_redundant_inputs()
        if table.arity <= self.budget:
            return table

        # Feedback first: keep the memory loop on the final LUT.
        if output_net in table.inputs:
            return self._split(table, output_net, output_net)

        unabsorbed = _try_unabsorb(table, self.candidates)
        if unabsorbed is not None:
            net, narrowed = unabsorbed
            self.stats.resubstitutions += 1
            if net not in self.reused:
                self.reused.append(net)
            return self.reduce(narrowed, output_net)

        inner_net = self.namer.fresh(output_net)
        extracted = _try_disjoint_extraction(table, self.budget, inner_net)
        if extracted is not None:
            g, h = extracted
            self.stats.disjoint_extractions += 1
            inner = self.reduce(g, inner_net)  # g fits by construction
            self.emitted.append(
                LEFunction(output_net=inner_net, table=inner, role=DECOMPOSITION_ROLE)
            )
            return self.reduce(h, output_net)

        return self._split(table, _best_split_variable(table), output_net)

    def _split(self, table: TruthTable, variable: str, output_net: str) -> TruthTable:
        if self.budget < 3:
            raise DecompositionError(
                f"function for net {output_net!r} needs {table.arity} inputs and the "
                f"residual multiplexer needs 3, but the LUT budget is {self.budget}"
            )
        self.stats.shannon_splits += 1
        branches: list[object] = []
        for value in (0, 1):
            cofactor = table.cofactor(variable, value).remove_redundant_inputs()
            if cofactor.is_constant():
                branches.append(cofactor.bits[0])
                continue
            branch_net = self.namer.fresh(output_net)
            reduced = self.reduce(cofactor, branch_net)
            self.emitted.append(
                LEFunction(output_net=branch_net, table=reduced, role=DECOMPOSITION_ROLE)
            )
            branches.append(branch_net)
        name = table.name or output_net
        # At most 3 inputs (selector + two branch nets), which the budget
        # check above guarantees fits; a feedback split leaves the output
        # variable as the selector, keeping the memory loop on this LUT.
        return _mux_table(variable, branches[0], branches[1], name=f"{name}_mux")


def decompose_function(
    function: LEFunction,
    budget: int,
    namer: NetNamer | None = None,
    stats: DecompositionStats | None = None,
    candidates: Mapping[str, TruthTable] | None = None,
) -> DecompositionResult:
    """Split *function* until every emitted function fits *budget* inputs.

    The returned :class:`DecompositionResult` lists intermediates first and
    the (possibly rewritten) function on the original output net last; when
    the input already fits, it is returned unchanged as the only entry.
    ``candidates`` maps inner-cone output nets to their truth tables and
    enables the un-absorption pass (see the module docstring).
    """
    namer = namer if namer is not None else NetNamer(function.table.inputs)
    stats = stats if stats is not None else DecompositionStats()
    stats.observe(function.arity)
    if function.arity <= budget:
        return DecompositionResult(functions=[function])

    stats.functions_decomposed += 1
    worker = _Decomposer(budget, namer, stats, candidates or {})
    final_table = worker.reduce(function.table, function.output_net)
    stats.intermediate_functions += len(worker.emitted)
    final = LEFunction(
        output_net=function.output_net, table=final_table, role=function.role
    )
    return DecompositionResult(
        functions=worker.emitted + [final], reused_nets=worker.reused
    )


# ----------------------------------------------------------------------
# Post-pass: merge synthetic single-function LEs onto shared LUTs
# ----------------------------------------------------------------------
def build_mapped_les(
    functions: Iterable[LEFunction], params: PLBParams
) -> list[MappedLE]:
    """Wrap functions one-per-LE, then coalesce the decomposition pieces.

    The one call every mapper makes to turn a flat function list (decomposer
    intermediates, or a whole generic mapping) into packable LEs.
    """
    return coalesce_decomposition_les(
        [
            MappedLE(name=f"le_{function.output_net}", functions=[function])
            for function in functions
        ],
        params,
    )


def coalesce_decomposition_les(
    les: list[MappedLE], params: PLBParams
) -> list[MappedLE]:
    """Merge decomposition-generated LEs onto shared multi-output LUTs.

    Only LEs whose functions are all role-``"decomp"`` and that carry no
    validity function are merged (most-shared-inputs first), so designs that
    never decomposed come back untouched.  Order of the surviving LEs follows
    the input order, which keeps packing and placement deterministic.
    """
    def mergeable(le: MappedLE) -> bool:
        return (
            le.validity is None
            and bool(le.functions)
            and all(f.role == DECOMPOSITION_ROLE for f in le.functions)
        )

    # Greedy first-fit-decreasing-by-affinity binning: each mergeable LE joins
    # the open bin it shares the most input nets with (ties: earliest bin),
    # or opens a new bin.  Bins land at their first member's position.
    slots: list[MappedLE | None] = []
    bins: list[tuple[int, MappedLE]] = []  # (slot index, accumulated LE)
    for le in les:
        if not mergeable(le):
            slots.append(le)
            continue
        best_index = -1
        best_shared = -1
        for index, (_slot, bin_le) in enumerate(bins):
            candidate = MappedLE(
                name=bin_le.name, functions=bin_le.functions + le.functions
            )
            if not candidate.fits(params):
                continue
            shared = len(set(bin_le.lut_input_nets) & set(le.lut_input_nets))
            if shared > best_shared:
                best_shared = shared
                best_index = index
        if best_index < 0:
            bins.append((len(slots), MappedLE(name=le.name, functions=list(le.functions))))
            slots.append(None)
        else:
            slot, bin_le = bins[best_index]
            bins[best_index] = (
                slot,
                MappedLE(name=bin_le.name, functions=bin_le.functions + le.functions),
            )
    for slot, bin_le in bins:
        slots[slot] = bin_le
    return [le for le in slots if le is not None]
