"""The end-to-end CAD flow.

:class:`CadFlow` chains every step -- technology mapping, packing, placement,
routing, timing analysis, metric extraction and bitstream generation -- and
returns a :class:`FlowResult` that the examples, benchmarks and experiments
consume.

Invariants the sweep engine builds on:

* :class:`FlowOptions` is a **frozen** dataclass: option sets are hashable,
  usable as grid axes, and cannot drift after a sweep key was computed from
  them.
* ``FlowOptions.to_dict()`` / ``from_dict()`` round-trip exactly and feed
  ``stable_hash()`` (see :class:`repro.core.params.SerializableParams`), so
  the same options produce the same content-addressed cache key in every
  process and session.
* The flow is **deterministic**: given the same circuit, architecture and
  options (including ``placement_seed``), every run produces bit-identical
  placements, routings and bitstreams.  This is what makes flow summaries
  cacheable and lets :meth:`CadFlow.run` accept an externally cached
  placement (the incremental re-route path) without changing the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cad.bitgen import ConfiguredPLB, configure_plb, generate_bitstream
from repro.cad.kernels import KERNELS, resolve_kernel
from repro.cad.lemap import MappedDesign
from repro.cad.metrics import FillingRatioReport, filling_ratio
from repro.cad.pack import pack_design, packing_summary
from repro.cad.place import Placement, TimingObjective, place_design
from repro.cad.route import RoutingResult, refine_critical_nets, route_design
from repro.cad.techmap import MappingError, generic_map, template_map
from repro.cad.timing import TimingEngine, TimingModel, TimingReport, analyse_timing
from repro.core.bitstream import Bitstream
from repro.core.fabric import Fabric
from repro.core.params import ArchitectureParams, SerializableParams
from repro.core.rrgraph import RoutingResourceGraph, cached_rr_graph
from repro.netlist.netlist import Netlist
from repro.styles.base import StyledCircuit

#: VPR-style criticality sharpening applied before the placer/router blends:
#: raw criticalities of shallow asynchronous netlists cluster near 1.0, and
#: ``crit ** CRITICALITY_EXPONENT`` spreads them so only genuinely critical
#: nets trade congestion for delay.
CRITICALITY_EXPONENT = 8.0


@dataclass(frozen=True)
class FlowOptions(SerializableParams):
    """Knobs of the flow.

    Frozen (hence hashable) so option sets can key sweep grids and the
    on-disk result cache; :meth:`to_dict` / :meth:`from_dict` give a stable
    serialization for content-addressed storage and worker processes.
    """

    use_template_mapping: bool = True
    run_placement: bool = True
    run_routing: bool = True
    generate_bitstream: bool = True
    placement_seed: int = 1
    placement_effort: float = 1.0
    router_max_iterations: int = 30
    timing_model: TimingModel = field(default_factory=TimingModel)
    #: Feed criticality from the timing engine back into the placer's blended
    #: cost and the router's ``crit * delay + (1 - crit) * congestion`` cost,
    #: then post-optimise critical nets for delay (see ``docs/flow.md``).
    timing_driven: bool = False
    #: The placement blend weight (``lambda``): 0.0 anneals pure wirelength,
    #: 1.0 pure criticality-weighted bounding-box delay.  Only meaningful
    #: with ``timing_driven=True``.
    timing_tradeoff: float = 0.5
    #: Run the static verifier (:mod:`repro.verify`) over every produced
    #: stage artifact and the bitstream at the end of the flow.  The gate
    #: never raises; findings land in ``FlowResult.lint_findings`` and the
    #: summary gains ``lint_errors``/``lint_warnings`` counts.
    verify_stages: bool = False
    #: Directory of an :class:`repro.artifacts.ArtifactStore`: when set,
    #: :meth:`CadFlow.run` checkpoints every stage boundary there and
    #: ``run(resume_from=...)`` can skip already-computed prefixes.
    #: **Execution-side knob**: excluded from :meth:`to_dict`, equality and
    #: hashing (``compare=False``) — where results are persisted must never
    #: change what they are, so no cache or artifact key may depend on it.
    artifact_store: str | None = field(default=None, compare=False)
    #: Which stage boundaries to checkpoint (a subset of
    #: :data:`repro.artifacts.STAGES`; ``None`` means all of them).  Only
    #: meaningful with ``artifact_store``; excluded from :meth:`to_dict`
    #: like it.
    checkpoint_stages: tuple[str, ...] | None = field(default=None, compare=False)
    #: Kernel backend for the placer/router hot paths (see
    #: :mod:`repro.cad.kernels`): ``"auto"`` uses numpy when installed,
    #: ``"python"`` forces the reference implementation, ``"numpy"``
    #: requires the optional dependency.  **Execution-side knob**: both
    #: backends produce bit-identical results, so like ``artifact_store``
    #: it is excluded from :meth:`to_dict`, equality and hashing — the
    #: same flow must hit the same cache entries under either backend.
    kernel: str = field(default="auto", compare=False)

    def __post_init__(self) -> None:
        if self.checkpoint_stages is not None and not isinstance(self.checkpoint_stages, tuple):
            # Normalise JSON-borne lists so the dataclass stays hashable.
            object.__setattr__(self, "checkpoint_stages", tuple(self.checkpoint_stages))
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNELS}"
            )

    def to_dict(self) -> dict[str, object]:
        data = super().to_dict()
        # The artifact/kernel knobs steer persistence and execution, not
        # semantics: dropping them keeps sweep keys, flow keys and
        # stable_hash() byte-stable whether or not a run checkpoints, and
        # whichever backend computes the (bit-identical) result.
        del data["artifact_store"]
        del data["checkpoint_stages"]
        del data["kernel"]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FlowOptions":
        fields_ = dict(data)
        fields_["timing_model"] = TimingModel.from_dict(dict(fields_.get("timing_model", {})))
        return cls(**fields_)


@dataclass
class FlowResult:
    """Everything the flow produced for one circuit."""

    circuit_name: str
    architecture: ArchitectureParams
    mapped: MappedDesign
    placement: Placement | None = None
    routing: RoutingResult | None = None
    timing: TimingReport | None = None
    filling: FillingRatioReport | None = None
    bitstream: Bitstream | None = None
    configured_plbs: dict[str, ConfiguredPLB] = field(default_factory=dict)
    packing: dict[str, object] = field(default_factory=dict)
    #: ``True`` when the placement was served from the sweep engine's
    #: placement cache, ``False`` when a cache was consulted but missed,
    #: ``None`` when no placement cache was involved (plain flow runs).
    placement_cache_hit: bool | None = None
    #: Whether the timing-driven loop drove this flow (criticality-fed
    #: placement/routing plus the critical-net refinement pass).
    timing_driven: bool = False
    #: Critical nets whose trees the refinement pass actually shortened
    #: (``None`` when the pass did not run, e.g. routing failed or off).
    critical_nets_rerouted: int | None = None
    #: Handshake cycle time right after negotiation, before the refinement
    #: pass — the baseline of the reported improvement delta.
    cycle_time_pre_refine_ps: int | None = None
    #: Findings of the ``verify_stages`` lint gate (``None`` when the gate
    #: did not run); each is a :class:`repro.verify.Finding`.
    lint_findings: list | None = None
    #: The resolved kernel backend (``"python"``/``"numpy"``) this flow
    #: executed with.  Deliberately **not** part of :meth:`summary` — both
    #: backends produce identical summaries, and the execution backend must
    #: never leak into cached or golden-pinned result dicts.
    kernel: str | None = None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """A flat, picklable dict of the headline numbers.

        This is the contract consumed by the sweep engine: the dict contains
        only JSON-serializable scalars, so it crosses process boundaries and
        lands in the on-disk result store unchanged.

        Key glossary (keys appear only when the producing step ran):

        ``circuit``, ``style``
            Mapped design name and logic style (``None`` for mixed netlists).
        ``les``, ``plbs``, ``pdes``
            Logic elements, packed PLBs and programmable delay elements used.
        ``decomposed_functions``, ``decomposition_intermediates``
            Only when wide-function decomposition fired: how many over-budget
            functions were split and how many synthetic intermediates that
            introduced.
        ``filling_ratio``, ``filling_ratio_per_plb``
            The paper's Section 5 metric: fraction of LE (resp. PLB) resources
            the mapping actually uses.
        ``le_occupancy``
            Packing quality: mean fraction of each LE's LUT capacity in use.
        ``placement_cost``
            Final half-perimeter wirelength of the annealed placement.
        ``placement_moves``, ``placement_net_evals``
            Annealer perf counters: proposed moves and per-net HPWL
            evaluations spent (the incremental placer's delta evaluation
            keeps the latter far below ``moves * nets``).
        ``placement_cache_hit``
            Only on sweep runs with a placement cache: ``True`` when the
            placement was reused from the cache (incremental re-route),
            ``False`` when it was computed and stored this run.
        ``routed_nets``, ``total_wirelength``, ``routing_success``
            Router outcome; ``routing_success`` is ``False`` when congestion
            remained after ``router_max_iterations``.
        ``router_iterations``, ``router_nets_rerouted``
            PathFinder perf counters: iterations until convergence and total
            net-route operations (the dirty-net router re-routes only nets
            touching overused nodes after the first iteration, so this stays
            well below ``iterations * nets``).
        ``router_node_pops``
            Dijkstra/A* heap pops over the whole routing run — the counter
            the A* geometric lower bound reduces versus plain Dijkstra.
        ``router_parallel_groups``, ``router_conflict_replays``
            Net-parallel routing counters: speculative net groups routed
            concurrently and nets replayed serially after a commit-time
            conflict (both 0 when grouping never engaged; the result is
            bit-identical to serial routing either way).
        ``routing_warm_started``
            Only when a routing-tree warm start seeded this run (the sweep
            engine's channel-width ladders): how many nets inherited a
            validated seed tree instead of routing from scratch.
        ``timing_driven``, ``critical_nets_rerouted``,
        ``cycle_time_improvement_ps``
            Only on timing-driven flows: the mode marker, how many critical
            nets the post-route refinement pass actually shortened, and the
            cycle-time delta that pass bought (pre-refinement minus final).
        ``max_net_delay_ps``, ``le_levels``, ``forward_latency_ps``,
        ``cycle_time_ps``
            Timing report (see :mod:`repro.cad.timing`).
        ``bitstream_bits_set``, ``bitstream_bits_total``
            Configuration bits programmed vs available on the fabric.
        ``lint_errors``, ``lint_warnings``
            Only when ``FlowOptions.verify_stages`` ran the static verifier
            over the flow's artifacts: error and warning finding counts
            (see ``docs/lint.md``).
        """
        data: dict[str, object] = {
            "circuit": self.circuit_name,
            "style": self.mapped.style.value if self.mapped.style else None,
            "les": len(self.mapped.les),
            "plbs": len(self.mapped.plbs),
            "pdes": len(self.mapped.pdes),
        }
        decomposition = self.mapped.metadata.get("decomposition")
        if decomposition:
            # Only present when the mapper actually split wide functions, so
            # designs that fit natively keep their historical key set.
            data["decomposed_functions"] = decomposition["functions_decomposed"]
            data["decomposition_intermediates"] = decomposition["intermediate_functions"]
        if self.filling is not None:
            data["filling_ratio"] = round(self.filling.per_le, 4)
            data["filling_ratio_per_plb"] = round(self.filling.per_plb, 4)
        if self.packing:
            data["le_occupancy"] = round(float(self.packing.get("le_occupancy", 0.0)), 4)
        if self.placement is not None:
            data["placement_cost"] = round(self.placement.cost, 2)
            data["placement_moves"] = self.placement.iterations
            data["placement_net_evals"] = self.placement.net_evaluations
        if self.placement_cache_hit is not None:
            # Only present on sweep runs with a placement cache, so plain
            # flows keep their historical key set.
            data["placement_cache_hit"] = self.placement_cache_hit
        if self.routing is not None:
            data["routed_nets"] = len(self.routing.routed)
            data["total_wirelength"] = self.routing.total_wirelength
            data["routing_success"] = self.routing.success
            data["router_iterations"] = self.routing.iterations
            data["router_nets_rerouted"] = self.routing.total_reroutes
            data["router_node_pops"] = self.routing.node_pops
            data["router_parallel_groups"] = self.routing.parallel_groups
            data["router_conflict_replays"] = self.routing.conflict_replays
            if self.routing.warm_started_nets:
                # Only present when a warm-start seed actually fired, so
                # plain flows keep their historical key set.
                data["routing_warm_started"] = self.routing.warm_started_nets
        if self.timing is not None:
            data.update(self.timing.as_row())
        if self.timing_driven:
            data["timing_driven"] = True
            data["critical_nets_rerouted"] = self.critical_nets_rerouted or 0
            if (
                self.cycle_time_pre_refine_ps is not None
                and self.timing is not None
            ):
                data["cycle_time_improvement_ps"] = (
                    self.cycle_time_pre_refine_ps - self.timing.cycle_time_ps
                )
            else:
                data["cycle_time_improvement_ps"] = 0
        if self.bitstream is not None:
            data["bitstream_bits_set"] = self.bitstream.used_bits()
            data["bitstream_bits_total"] = self.bitstream.total_bits
        if self.lint_findings is not None:
            # Only present when the verify_stages gate ran, so plain flows
            # keep their historical key set.
            data["lint_errors"] = sum(
                1 for finding in self.lint_findings if finding.severity == "error"
            )
            data["lint_warnings"] = sum(
                1 for finding in self.lint_findings if finding.severity == "warning"
            )
        return data

    def report(self) -> str:
        """A human-readable multi-line report."""
        lines = [f"=== CAD flow report: {self.circuit_name} ==="]
        for key, value in self.summary().items():
            lines.append(f"  {key:>24}: {value}")
        if self.filling is not None:
            lines.append("  per-LE utilisation:")
            for row in self.filling.details.get("per_le_breakdown", []):
                lines.append(
                    f"    {row['le']:>24}: lut {row['lut_inputs_used']}/{row['lut_inputs_total']} in, "
                    f"{row['lut_outputs_used']}/{row['lut_outputs_total']} out, "
                    f"validity {row['validity_outputs_used']}/{row['validity_outputs_total']}"
                )
        if self.timing is not None and self.timing.notes:
            lines.append("  timing notes:")
            for note in self.timing.notes:
                lines.append(f"    - {note}")
        return "\n".join(lines)


class _ArtifactSession:
    """One run's bridge to the artifact store: checkpoint writes, resume reads.

    All ``repro.artifacts`` imports stay inside methods — that package pulls
    in :mod:`repro.sweep.store`, whose package ``__init__`` imports this
    module, so a top-level import would be circular.
    """

    def __init__(
        self,
        architecture: ArchitectureParams,
        options: FlowOptions,
        circuit_name: str,
    ) -> None:
        from repro.artifacts import schemas
        from repro.artifacts.store import ArtifactStore

        self._schemas = schemas
        self.architecture = architecture
        self.options = options
        self.circuit = circuit_name
        self.store = ArtifactStore(options.artifact_store)
        self.flow_key = schemas.flow_artifact_key(circuit_name, architecture, options)
        if options.checkpoint_stages is None:
            self.stages = set(schemas.STAGES)
        else:
            unknown = sorted(set(options.checkpoint_stages) - set(schemas.STAGES))
            if unknown:
                raise ValueError(
                    f"unknown checkpoint stages {unknown}; "
                    f"expected a subset of {schemas.STAGES}"
                )
            self.stages = set(options.checkpoint_stages)
        self.saved = 0

    def load(self, stage: str) -> dict[str, object] | None:
        """The decoded payload stored for *stage*, or ``None`` on a miss.

        A missing or unreadable record is a cache miss (the stage recomputes
        deterministically); a record that *decodes* wrongly raises the typed
        schema errors so corruption never mis-deserializes silently.
        """
        record = self.store.get(self._schemas.stage_key(self.flow_key, stage))
        if record is None:
            return None
        return self._schemas.decode_envelope(record, stage)

    def load_resume(self, resume_from: str) -> dict[str, dict[str, object]]:
        """The stage payloads a resume may consume.

        ``"auto"`` loads the longest contiguous prefix of stored stages;
        an explicit stage name loads every stored stage up to and including
        it and raises a typed error when that stage itself is absent.
        Stages missing from the middle of an explicit prefix simply
        recompute — the flow is deterministic, so recomputation is
        bit-identical to a load.
        """
        from repro.core.schema import ArtifactError

        stages = self._schemas.STAGES
        if resume_from == "auto":
            loaded: dict[str, dict[str, object]] = {}
            for stage in stages:
                payload = self.load(stage)
                if payload is None:
                    break
                loaded[stage] = payload
            return loaded
        if resume_from not in stages:
            raise ValueError(
                f"unknown resume stage {resume_from!r}; expected 'auto' or one of {stages}"
            )
        prefix = stages[: stages.index(resume_from) + 1]
        loaded = {}
        for stage in prefix:
            payload = self.load(stage)
            if payload is not None:
                loaded[stage] = payload
        if resume_from not in loaded:
            raise ArtifactError(
                f"cannot resume {self.circuit!r} from {resume_from!r}: no stored artifact "
                f"under flow key {self.flow_key[:12]}… (stored: {sorted(loaded) or 'none'})"
            )
        return loaded

    def checkpoint(
        self,
        stage: str,
        loaded: Mapping[str, Mapping[str, object]],
        payload: Mapping[str, object],
    ) -> None:
        """Persist *payload* unless the stage was loaded or deselected."""
        if stage not in self.stages or stage in loaded:
            return
        record = self._schemas.encode_envelope(
            stage, self.flow_key, self.circuit, self.architecture, self.options, payload
        )
        self.store.put(self._schemas.stage_key(self.flow_key, stage), record)
        self.saved += 1

    def finish(self) -> None:
        """Apply the store's size bound once per run (cheaper than per put)."""
        if self.saved:
            self.store.enforce_size_bound()


class CadFlow:
    """Run the complete flow for one architecture instance."""

    def __init__(
        self,
        architecture: ArchitectureParams | None = None,
        options: FlowOptions | None = None,
    ) -> None:
        self.architecture = architecture if architecture is not None else ArchitectureParams()
        self.options = options if options is not None else FlowOptions()
        self.fabric = Fabric(self.architecture)
        self._rr_graph: RoutingResourceGraph | None = None

    @property
    def rr_graph(self) -> RoutingResourceGraph:
        """The routing-resource graph (lazy; shared per fabric geometry).

        Served from :func:`repro.core.rrgraph.cached_rr_graph`, so repeated
        flows over the same architecture — a batch sweep, a channel-width
        ladder — reuse one graph instance (and its attached kernel arrays)
        instead of rebuilding it per :class:`CadFlow`.
        """
        if self._rr_graph is None:
            self._rr_graph = cached_rr_graph(self.fabric)
        return self._rr_graph

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def _check_premapped(self, mapped: MappedDesign, name: str) -> MappedDesign:
        if mapped.params != self.architecture.plb:
            raise MappingError(
                f"design {name!r} was mapped for different PLB parameters than this "
                "flow's architecture; re-map it (attach a gate_circuit) instead of "
                "reusing the stale mapping"
            )
        if not self.options.use_template_mapping:
            raise MappingError(
                f"design {name!r} is pre-mapped (template-built) but the flow requests "
                "generic mapping; attach a gate_circuit to re-map from, or run with "
                "use_template_mapping=True"
            )
        return mapped

    def _resolve_routing_seed(
        self, routing_seed: Mapping[str, Sequence[str]] | None
    ) -> dict[str, list[int]] | None:
        """Map warm-start trees from node names to this graph's node ids.

        Names that do not exist on this fabric (e.g. tracks beyond a
        narrower channel width) are dropped; the router then validates what
        remains per net and falls back to routing nets whose trees broke.
        """
        if not routing_seed:
            return None
        graph = self.rr_graph
        resolved: dict[str, list[int]] = {}
        for net, names in routing_seed.items():
            ids: list[int] = []
            for name in names:
                try:
                    ids.append(graph.node_by_name(str(name)).node_id)
                except KeyError:
                    continue
            if ids:
                resolved[net] = ids
        return resolved or None

    def map(self, circuit: StyledCircuit | Netlist) -> MappedDesign:
        if isinstance(circuit, StyledCircuit):
            if self.options.use_template_mapping:
                return template_map(circuit, self.architecture.plb)
            return generic_map(circuit.netlist, self.architecture.plb, style=circuit.style)
        return generic_map(circuit, self.architecture.plb)

    def run(
        self,
        circuit: StyledCircuit | Netlist | MappedDesign | object,
        placement: Placement | None = None,
        routing_seed: Mapping[str, Sequence[str]] | None = None,
        resume_from: str | None = None,
    ) -> FlowResult:
        """Execute mapping → packing → placement → routing → analysis.

        Besides styled circuits and raw netlists this also accepts an already
        mapped design (``MappedDesign``) or any workload object carrying one
        in a ``mapped`` attribute (e.g. the registry's ``BenchmarkCircuit``
        ripple adders).  A pre-mapped design is only usable when it was mapped
        for this flow's PLB parameters: if they differ, the design is re-mapped
        from its gate-level circuit when one is attached, and rejected
        otherwise -- silently analysing a design mapped for a different LE
        would report (and cache) numbers for the wrong architecture.

        ``placement`` injects an externally computed (typically cached)
        placement: when it covers exactly the mapped design on this fabric,
        the annealing step is skipped and routing/bitgen run on the injected
        placement -- the **incremental re-route** path used by the sweep
        engine when only routing-side options changed.  An injected placement
        that does not match the design is discarded (the flow re-places and
        reports ``placement_cache_hit=False``) rather than routed blindly.

        ``routing_seed`` warm-starts the router with externally cached
        routed trees, given as node *names* per net (typically a
        neighbouring channel width's legal routing from the sweep engine's
        routing-tree cache).  Seed trees that do not validate on this
        fabric's RR graph are ignored, and a seeded routing that fails to
        converge is retried cold, so a stale seed can never make a routable
        point unroutable.

        With ``options.timing_driven`` the flow runs the criticality loop:
        place with the blended cost, estimate net delays from the placement
        geometry, route with ``crit * delay + (1 - crit) * congestion``
        costs, analyse the routed trees, then re-route critical nets for
        delay until the refinement pass stops improving.

        With ``options.artifact_store`` set, the flow **checkpoints** each
        stage boundary (``options.checkpoint_stages``, default all of
        :data:`repro.artifacts.STAGES`) into a content-addressed
        :class:`~repro.artifacts.ArtifactStore` after computing it, and
        ``resume_from`` **resumes** from those checkpoints: ``"auto"``
        consumes the longest stored contiguous stage prefix, an explicit
        stage name consumes the stored prefix up to that stage (raising a
        typed :class:`~repro.core.schema.ArtifactError` when it is absent).
        Artifacts are keyed by circuit, architecture, options and code
        fingerprint, and every stage is deterministic given its inputs, so a
        resumed run produces bit-identical results to a straight-through
        one — including the final bitstream bytes and ``summary()``.  (Sole
        corner: a timing-driven flow whose *entire* routing fallback ladder
        failed stores only its final placement, so resuming it explicitly
        from ``"placement"`` reproduces the final failed routing rather than
        replaying the ladder's intermediate attempts.)
        """
        # The registry name must resolve *before* mapping: stage artifacts
        # are addressed by (circuit name, architecture, options, code
        # fingerprint), and a resume skips mapping entirely.
        if isinstance(circuit, MappedDesign):
            name = circuit.name
        elif not isinstance(circuit, (StyledCircuit, Netlist)) and hasattr(circuit, "mapped"):
            name = getattr(circuit, "name", circuit.mapped.name)
        else:
            name = circuit.name if isinstance(circuit, (StyledCircuit, Netlist)) else str(circuit)

        session: _ArtifactSession | None = None
        if self.options.artifact_store is not None:
            session = _ArtifactSession(self.architecture, self.options, name)
        elif resume_from is not None:
            raise ValueError("resume_from requires options.artifact_store to be set")
        loaded: dict[str, dict[str, object]] = {}
        if session is not None and resume_from is not None:
            loaded = session.load_resume(resume_from)

        if "packed" in loaded or "mapped" in loaded:
            stored_design = loaded.get("packed") or loaded["mapped"]
            mapped = MappedDesign.from_dict(stored_design)
        elif isinstance(circuit, MappedDesign):
            mapped = self._check_premapped(circuit, name)
        elif not isinstance(circuit, (StyledCircuit, Netlist)) and hasattr(circuit, "mapped"):
            gate = getattr(circuit, "gate_circuit", None)
            needs_remap = (
                circuit.mapped.params != self.architecture.plb
                or not self.options.use_template_mapping
            )
            if needs_remap and isinstance(gate, StyledCircuit):
                mapped = self.map(gate)
            else:
                mapped = self._check_premapped(circuit.mapped, name)
        else:
            mapped = self.map(circuit)
        problems = mapped.validate()
        if problems:
            raise RuntimeError(f"mapping of {name!r} is inconsistent: {problems}")
        if session is not None:
            # The mapped boundary is the pre-pack design; template-built
            # circuits arrive with PLBs already assigned from an earlier
            # pack, so the checkpoint strips them rather than freezing
            # stale assignments into the artifact.
            mapped_payload = mapped.to_dict()
            mapped_payload["plbs"] = []
            session.checkpoint("mapped", loaded, mapped_payload)
        if "packed" not in loaded:
            pack_design(mapped, self.architecture.plb)
            if session is not None:
                session.checkpoint("packed", loaded, mapped.to_dict())

        result = FlowResult(circuit_name=name, architecture=self.architecture, mapped=mapped)
        result.packing = packing_summary(mapped)
        result.filling = filling_ratio(mapped)
        # Resolve the backend once per run: an "auto" request binds to the
        # same concrete kernel for placement and routing, and the result
        # records what actually executed.
        backend = resolve_kernel(self.options.kernel)
        result.kernel = backend

        model = self.options.timing_model
        engine: TimingEngine | None = None
        if self.options.timing_driven:
            # Before placement the engine runs on flat default net delays,
            # which already yields structural (depth-based) criticalities —
            # enough signal for the annealer's blended cost.
            engine = TimingEngine(mapped, model)
            result.timing_driven = True

        placement_resumed = False
        baseline_placement: Placement | None = None
        if self.options.run_placement:
            if "placement" in loaded:
                result.placement = Placement.from_dict(loaded["placement"])
                placement_resumed = True
            elif placement is not None and placement.matches_design(mapped, self.fabric):
                result.placement = placement
                result.placement_cache_hit = True
            else:
                # The baseline wirelength anneal — bit-identical to the
                # non-timing-driven flow for the same seed/effort.
                result.placement = place_design(
                    mapped,
                    self.fabric,
                    seed=self.options.placement_seed,
                    effort=self.options.placement_effort,
                    kernel=backend,
                )
                if placement is not None:
                    result.placement_cache_hit = False
                if engine is not None:
                    # Timing polish: a short low-temperature anneal under the
                    # blended objective, warm-started from the baseline
                    # layout.  Criticalities come from the baseline
                    # placement's geometry (not just structure), and the
                    # polish cannot tear up the routable layout the way a
                    # full blended anneal can.
                    baseline_placement = result.placement
                    engine.estimate_from_placement(baseline_placement, self.fabric)
                    objective = TimingObjective(
                        engine.criticalities(exponent=CRITICALITY_EXPONENT),
                        tradeoff=self.options.timing_tradeoff,
                        wire_segment_delay_ps=model.wire_segment_delay_ps,
                        switch_delay_ps=model.switch_delay_ps,
                        cbox_delay_ps=model.cbox_delay_ps,
                    )
                    result.placement = place_design(
                        mapped,
                        self.fabric,
                        seed=self.options.placement_seed,
                        effort=self.options.placement_effort * 0.4,
                        objective=objective,
                        initial=baseline_placement,
                        temperature_factor=0.02,
                        kernel=backend,
                    )
            if session is not None and result.placement is not None:
                session.checkpoint("placement", loaded, result.placement.to_dict())

        if (
            self.options.run_routing
            and result.placement is not None
            and "routing" in loaded
        ):
            stored_routing = loaded["routing"]
            result.routing = RoutingResult.from_dict(
                stored_routing.get("routing"), self.rr_graph
            )
            pre_refine = stored_routing.get("cycle_time_pre_refine_ps")
            result.cycle_time_pre_refine_ps = (
                int(pre_refine) if pre_refine is not None else None
            )
            reroutes = stored_routing.get("critical_nets_rerouted")
            result.critical_nets_rerouted = int(reroutes) if reroutes is not None else None
            if engine is not None:
                # Reproduce the straight-through engine state: bounding-box
                # estimates for every terminal net (update_from_routing only
                # *merges* routed-net delays over them), then the routed
                # trees folded in by analyse_timing below.
                engine.estimate_from_placement(result.placement, self.fabric)
        elif self.options.run_routing and result.placement is not None:
            criticalities = None
            if engine is not None:
                # Re-estimate every inter-block net from its placed bounding
                # box so the router sees geometry-aware criticalities.
                engine.estimate_from_placement(result.placement, self.fabric)
                criticalities = engine.criticalities(exponent=CRITICALITY_EXPONENT)
            warm_start = self._resolve_routing_seed(routing_seed)

            def attempt(
                target: Placement,
                crits: Mapping[str, float] | None,
                seed: Mapping[str, Sequence[int]] | None,
            ) -> RoutingResult:
                return route_design(
                    mapped,
                    target,
                    self.rr_graph,
                    max_iterations=self.options.router_max_iterations,
                    criticalities=crits,
                    timing_model=model if crits is not None else None,
                    warm_start=seed,
                    # Timing-driven rungs are backed by this ladder itself;
                    # only the final congestion rung keeps the router's
                    # internal A*→Dijkstra restart (baseline semantics).
                    restart_on_failure=crits is None,
                    kernel=backend,
                )

            routing = attempt(result.placement, criticalities, warm_start)
            if warm_start and not routing.success:
                # A stale seed must never cost routability: retry cold.
                routing = attempt(result.placement, criticalities, None)
            if (
                engine is not None
                and not routing.success
                and baseline_placement is not None
                and baseline_placement is not result.placement
            ):
                # The polished placement made a borderline fabric
                # unroutable: fall back to the baseline layout (already in
                # hand — no re-anneal), still routing timing-driven.
                engine.estimate_from_placement(baseline_placement, self.fabric)
                criticalities = engine.criticalities(exponent=CRITICALITY_EXPONENT)
                retry = attempt(baseline_placement, criticalities, None)
                if retry.success:
                    result.placement = baseline_placement
                    routing = retry
            if criticalities is not None and not routing.success:
                # Nor may timing-driven costs ever cost routability: finish
                # on pure congestion negotiation (bit-identical to the
                # baseline flow when the baseline placement is in use); the
                # refinement pass below still recovers the delay
                # optimisation on the legal result.
                target = (
                    baseline_placement
                    if baseline_placement is not None
                    else result.placement
                )
                retry = attempt(target, None, None)
                # `placement_resumed`: a resumed final placement IS the
                # baseline-equivalent target even though no polish object
                # pair exists to compare identities against.
                if retry.success or target is not result.placement or placement_resumed:
                    result.placement = target
                    routing = retry
            result.routing = routing

            if engine is not None and routing.success:
                engine.update_from_routing(routing, self.rr_graph)
                result.cycle_time_pre_refine_ps = engine.cycle_time_ps
                # The refinement pass may displace non-critical nets onto
                # longer paths; cap the growth at the repo-wide 2% quality
                # budget relative to the negotiated routing.
                wirelength_budget = int(routing.total_wirelength * 1.02)
                improved_total = 0
                best_cycle = engine.cycle_time_ps
                for _refine_pass in range(3):
                    # refine_critical_nets only rebinds dict entries to new
                    # RoutedNet objects, so a shallow copy reverts fully.
                    snapshot = dict(routing.routed)
                    improved = refine_critical_nets(
                        routing,
                        self.rr_graph,
                        engine.criticalities(),
                        model,
                        max_wirelength=wirelength_budget,
                    )
                    if not improved:
                        break
                    engine.update_from_routing(routing, self.rr_graph)
                    if engine.cycle_time_ps > best_cycle:
                        # A displaced net became the new critical path:
                        # revert the pass and stop refining.
                        routing.routed = snapshot
                        routing.critical_reroutes -= improved
                        engine.update_from_routing(routing, self.rr_graph)
                        break
                    best_cycle = engine.cycle_time_ps
                    improved_total += improved
                result.critical_nets_rerouted = improved_total

        if session is not None and result.routing is not None:
            session.checkpoint(
                "routing",
                loaded,
                {
                    "routing": result.routing.to_dict(self.rr_graph),
                    "cycle_time_pre_refine_ps": result.cycle_time_pre_refine_ps,
                    "critical_nets_rerouted": result.critical_nets_rerouted,
                },
            )

        if "timing" in loaded:
            result.timing = TimingReport.from_dict(loaded["timing"])
        else:
            result.timing = analyse_timing(
                mapped,
                routing=result.routing,
                graph=self.rr_graph if result.routing is not None else None,
                model=model,
                placement=result.placement if engine is not None else None,
                fabric=self.fabric if engine is not None else None,
                engine=engine,
            )
            if session is not None:
                session.checkpoint("timing", loaded, result.timing.to_dict())

        if self.options.generate_bitstream and result.placement is not None:
            if "bitstream" in loaded:
                result.bitstream = Bitstream.from_dict(loaded["bitstream"])
                # configure_plb is pure, so the per-PLB views accompanying a
                # stored bitstream are recomputed rather than serialized.
                result.configured_plbs = {
                    plb.name: configure_plb(plb, self.architecture) for plb in mapped.plbs
                }
            else:
                result.bitstream, result.configured_plbs = generate_bitstream(
                    mapped, result.placement, self.architecture
                )
                if session is not None:
                    session.checkpoint("bitstream", loaded, result.bitstream.to_dict())

        if self.options.verify_stages:
            # Lazy import: repro.verify consumes flow artifacts, so a
            # module-level import would be circular.
            from repro.verify.lint import lint_flow_artifacts

            styled = None
            if isinstance(circuit, StyledCircuit):
                styled = circuit
            else:
                gate = getattr(circuit, "gate_circuit", None)
                if isinstance(gate, StyledCircuit):
                    styled = gate
            report = lint_flow_artifacts(result, self, styled=styled)
            result.lint_findings = list(report.findings)

        if session is not None:
            session.finish()
        return result

    # ------------------------------------------------------------------
    # Convenience entry points
    # ------------------------------------------------------------------
    def run_all(self, circuits: list[StyledCircuit]) -> dict[str, FlowResult]:
        return {circuit.name: self.run(circuit) for circuit in circuits}
