"""Technology mapping onto the LE-level IR.

Two mappers are provided:

* :func:`template_map` -- *style-aware* mapping.  Because the style generators
  know the semantics of the circuit they produced (which Boolean function each
  dual-rail pair computes, where the latch controller sits, which request wire
  needs a matched delay), the mapper can build the LE functions directly:

  - QDI blocks: one state-holding LUT function per output rail (rise on the
    rail's ON-set, fall when all inputs are neutral, hold otherwise -- the
    classic looped-LUT realisation of DIMS logic), a LUT2-1 validity function
    per output digit, and a C-element LUT for the acknowledge;
  - micropipeline stages: the output latches absorb their datapath function
    (one looped LUT per output bit), one looped LUT for the latch controller,
    and the matched delay maps onto the PLB's programmable delay element.

  This is the mapping the paper's Figure 3 sketches with dashed boxes, and it
  is what the filling-ratio experiment measures.

* :func:`generic_map` -- a style-oblivious cone-based mapper for arbitrary
  gate netlists: every sequential cell and every primary output becomes a LUT
  function; combinational fan-in cones are absorbed greedily while the
  support stays within the LUT input budget.  It is used for the baselines
  and for the "naive mapping" ablation.

Functions whose support exceeds the LUT input budget are no longer a hard
feasibility wall: both mappers hand them to
:mod:`repro.cad.decompose`, which splits them across synthetic nets until
every emitted function fits (see that module's docstring for the strategy).
A :class:`MappingError` now only means the architecture is degenerate (LUT
budget below 3) or the circuit carries no mappable description at all.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

from repro.asynclogic.channels import Channel
from repro.cad.decompose import (
    DecompositionError,
    DecompositionResult,
    DecompositionStats,
    NetNamer,
    build_mapped_les,
    decompose_function,
)
from repro.cad.lemap import LEFunction, MappedDesign, MappedLE, MappedPDE
from repro.core.params import PLBParams
from repro.logic.truthtable import TruthTable
from repro.netlist.celltypes import STATE_VARIABLE
from repro.netlist.netlist import Netlist
from repro.styles.base import LogicStyle, StyledCircuit


class MappingError(RuntimeError):
    """Raised when a circuit cannot be mapped onto the architecture."""


def _fit_function(
    function: LEFunction,
    budget: int,
    namer: NetNamer,
    stats: DecompositionStats,
    candidates: Mapping[str, TruthTable] | None = None,
) -> DecompositionResult:
    """Decompose *function* to fit *budget*, folding failures into MappingError."""
    try:
        return decompose_function(
            function, budget, namer=namer, stats=stats, candidates=candidates
        )
    except DecompositionError as exc:
        raise MappingError(str(exc)) from exc


def _stamp_decomposition(design: MappedDesign, stats: DecompositionStats) -> None:
    """Record decomposition counters on the design (only when it happened)."""
    if stats.active:
        design.metadata["decomposition"] = stats.as_dict()


# ----------------------------------------------------------------------
# Template mapping: QDI
# ----------------------------------------------------------------------
def _qdi_rail_function(
    input_channels: list[Channel],
    output_channel: Channel,
    rail_wire: str,
    circuit: StyledCircuit,
) -> TruthTable:
    """The looped-LUT next-state function of one QDI output rail.

    The rail rises when every input digit is valid and the reference function
    asserts this rail; it falls when every input digit is neutral; it holds
    its value otherwise (partial input code words during transitions).
    """
    function = circuit.metadata.get("reference_function")
    if function is None:
        raise MappingError(
            f"circuit {circuit.name!r} carries no reference function; "
            "template QDI mapping needs it"
        )
    input_wires: list[str] = []
    for channel in input_channels:
        input_wires.extend(channel.data_wires())
    table_inputs = tuple(input_wires) + (rail_wire,)

    def next_state(*values: int) -> int:
        assignment = dict(zip(table_inputs, values))
        wire_values = {wire: assignment[wire] for wire in input_wires}
        all_valid = all(
            channel.is_valid({w: wire_values[w] for w in channel.data_wires()})
            for channel in input_channels
        )
        all_neutral = all(
            channel.is_neutral({w: wire_values[w] for w in channel.data_wires()})
            for channel in input_channels
        )
        if all_valid:
            channel_values = {
                channel.name: channel.decode({w: wire_values[w] for w in channel.data_wires()})
                for channel in input_channels
            }
            outputs = function(channel_values)
            encoded = output_channel.encode(outputs[output_channel.name])
            return encoded[rail_wire]
        if all_neutral:
            return 0
        return assignment[rail_wire]

    return TruthTable.from_function(table_inputs, next_state, name=f"rail_{rail_wire}")


def _map_qdi(circuit: StyledCircuit, params: PLBParams) -> MappedDesign:
    """Template mapping of a DIMS QDI function block."""
    design = MappedDesign(name=circuit.name, params=params, style=circuit.style)
    input_channels = list(circuit.input_channels)
    output_channels = list(circuit.output_channels)

    for channel in input_channels:
        design.primary_inputs.extend(channel.data_wires())
    for channel in output_channels:
        design.primary_outputs.extend(channel.data_wires())

    ack_net = str(circuit.metadata.get("ack_net", "ack"))
    design.primary_outputs.append(ack_net)

    le_params = params.le
    # Fresh-net naming for decomposition: reserve every name the template
    # itself will create so synthetic nets can never collide.
    reserved: list[str] = list(design.primary_inputs) + list(design.primary_outputs)
    for out_channel in output_channels:
        reserved.extend(
            f"{out_channel.name}_v{digit}" for digit in range(out_channel.digits)
        )
    namer = NetNamer(reserved)
    stats = DecompositionStats()

    rail_functions: list[tuple[Channel, str, LEFunction]] = []
    decomposition_functions: list[LEFunction] = []
    for out_channel in output_channels:
        for rail_wire in out_channel.data_wires():
            table = _qdi_rail_function(input_channels, out_channel, rail_wire, circuit)
            fitted = _fit_function(
                LEFunction(output_net=rail_wire, table=table, role="logic"),
                le_params.lut_inputs,
                namer,
                stats,
            )
            decomposition_functions.extend(fitted.intermediates)
            rail_functions.append((out_channel, rail_wire, fitted.final))

    # One LE per rail (the rail functions of one digit cannot share a LUT7-3
    # because each needs its own feedback pin on top of the shared data rails).
    validity_assigned: set[str] = set()
    les: list[MappedLE] = []
    digit_validity_nets: list[str] = []
    for out_channel, rail_wire, function in rail_functions:
        le = MappedLE(name=f"le_{rail_wire}", functions=[function])
        # Attach the digit's validity function to the first LE of each digit.
        digit_index = None
        for index in range(out_channel.digits):
            if rail_wire in out_channel.digit_wires(index):
                digit_index = index
                break
        digit_key = f"{out_channel.name}:{digit_index}"
        if digit_key not in validity_assigned and le_params.validity_lut_inputs >= 2:
            rails = out_channel.digit_wires(digit_index or 0)
            if len(rails) == 2:
                validity_net = f"{out_channel.name}_v{digit_index}"
                validity_table = TruthTable.from_function(
                    rails, lambda a, b: a or b, name=f"valid_{digit_key}"
                )
                le.validity = LEFunction(output_net=validity_net, table=validity_table, role="validity")
                digit_validity_nets.append(validity_net)
                validity_assigned.add(digit_key)
        les.append(le)

    # Wider (1-of-N, N>2) digits get their validity from a dedicated OR LE
    # function because the LUT2-1 only has two inputs; digits wider than the
    # LUT budget decompose like any other function.
    for out_channel in output_channels:
        for digit_index in range(out_channel.digits):
            digit_key = f"{out_channel.name}:{digit_index}"
            if digit_key in validity_assigned:
                continue
            rails = out_channel.digit_wires(digit_index)
            validity_net = f"{out_channel.name}_v{digit_index}"
            table = TruthTable.from_function(rails, lambda *r: any(r), name=f"valid_{digit_key}")
            fitted = _fit_function(
                LEFunction(output_net=validity_net, table=table, role="validity"),
                le_params.lut_inputs,
                namer,
                stats,
            )
            decomposition_functions.extend(fitted.intermediates)
            les.append(
                MappedLE(
                    name=f"le_valid_{out_channel.name}_{digit_index}",
                    functions=[fitted.final],
                )
            )
            digit_validity_nets.append(validity_net)
            validity_assigned.add(digit_key)

    # Acknowledge: Muller C-element over the digit validities (looped LUT).
    ack_inputs = tuple(digit_validity_nets) + (ack_net,)

    def ack_next(*values: int) -> int:
        data = values[:-1]
        previous = values[-1]
        if all(data):
            return 1
        if not any(data):
            return 0
        return previous

    ack_table = TruthTable.from_function(ack_inputs, ack_next, name="ack")
    fitted_ack = _fit_function(
        LEFunction(output_net=ack_net, table=ack_table, role="ack"),
        le_params.lut_inputs,
        namer,
        stats,
    )
    decomposition_functions.extend(fitted_ack.intermediates)
    les.append(MappedLE(name=f"le_{ack_net}", functions=[fitted_ack.final]))

    design.les = les + build_mapped_les(decomposition_functions, params)
    _stamp_decomposition(design, stats)
    return design


# ----------------------------------------------------------------------
# Template mapping: micropipeline
# ----------------------------------------------------------------------
def _map_micropipeline(circuit: StyledCircuit, params: PLBParams) -> MappedDesign:
    """Template mapping of a bundled-data micropipeline stage."""
    design = MappedDesign(name=circuit.name, params=params, style=circuit.style)
    if len(circuit.input_channels) != 1 or len(circuit.output_channels) != 1:
        raise MappingError("micropipeline template mapping expects one input and one output channel")
    input_channel = circuit.input_channels[0]
    output_channel = circuit.output_channels[0]

    datapath_tables = circuit.metadata.get("datapath_tables")
    if datapath_tables is None:
        raise MappingError(
            f"circuit {circuit.name!r} carries no datapath tables; template mapping needs them"
        )
    matched_delay = int(circuit.metadata.get("matched_delay", 0)) or 1

    design.primary_inputs.extend(input_channel.data_wires())
    design.primary_inputs.append(input_channel.req_wire)
    design.primary_inputs.append(output_channel.ack_wire)
    design.primary_outputs.extend(output_channel.data_wires())
    design.primary_outputs.append(input_channel.ack_wire)
    design.primary_outputs.append(output_channel.req_wire)

    le_params = params.le
    enable_net = output_channel.req_wire  # enable == out_req == in_ack
    req_delayed_net = f"{circuit.name}_req_delayed"
    namer = NetNamer(
        list(design.primary_inputs) + list(design.primary_outputs) + [req_delayed_net]
    )
    stats = DecompositionStats()

    # Output latches, each absorbing its datapath function:
    #   q' = f(data inputs)        when enable == 0 (transparent)
    #   q' = q                     when enable == 1 (hold)
    latch_functions: list[LEFunction] = []
    decomposition_functions: list[LEFunction] = []
    for out_wire in output_channel.data_wires():
        datapath_table: TruthTable = datapath_tables[out_wire]
        table_inputs = tuple(datapath_table.inputs) + (enable_net, out_wire)

        def latch_next(*values: int, _table: TruthTable = datapath_table, _inputs=table_inputs) -> int:
            assignment = dict(zip(_inputs, values))
            if assignment[enable_net]:
                return assignment[_inputs[-1]]
            return _table.evaluate({name: assignment[name] for name in _table.inputs})

        table = TruthTable.from_function(table_inputs, latch_next, name=f"latch_{out_wire}")
        fitted = _fit_function(
            LEFunction(output_net=out_wire, table=table, role="latch"),
            le_params.lut_inputs,
            namer,
            stats,
        )
        decomposition_functions.extend(fitted.intermediates)
        latch_functions.append(fitted.final)

    # Pack latch functions into LEs (they share the data inputs and enable).
    latch_les: list[MappedLE] = []
    current = MappedLE(name=f"le_{circuit.name}_latch0")
    for function in latch_functions:
        candidate = MappedLE(name=current.name, functions=current.functions + [function], validity=current.validity)
        if candidate.fits(params):
            current = candidate
        else:
            latch_les.append(current)
            current = MappedLE(name=f"le_{circuit.name}_latch{len(latch_les)}", functions=[function])
    if current.functions:
        latch_les.append(current)

    # Latch controller: enable = C(req_delayed, !out_ack), held otherwise.
    controller_inputs = (req_delayed_net, output_channel.ack_wire, enable_net)

    def controller_next(req_delayed: int, out_ack: int, enable: int) -> int:
        not_ack = 1 - out_ack
        if req_delayed and not_ack:
            return 1
        if not req_delayed and not not_ack:
            return 0
        return enable

    controller_table = TruthTable.from_function(controller_inputs, controller_next, name="latch_controller")
    controller_le = MappedLE(
        name=f"le_{circuit.name}_ctrl",
        functions=[LEFunction(output_net=enable_net, table=controller_table, role="controller")],
    )

    # The producer-side acknowledge mirrors the enable signal.  It is produced
    # as a second output of the controller LE (same function, second LUT output).
    in_ack_table = TruthTable.from_function(
        controller_inputs, controller_next, name="in_ack"
    ).rename({enable_net: enable_net})
    controller_le.functions.append(
        LEFunction(output_net=input_channel.ack_wire, table=in_ack_table, role="controller")
    )

    design.les = latch_les + [controller_le] + build_mapped_les(
        decomposition_functions, params
    )
    _stamp_decomposition(design, stats)
    design.pdes = [
        MappedPDE(
            name=f"pde_{circuit.name}",
            input_net=input_channel.req_wire,
            output_net=req_delayed_net,
            delay_ps=matched_delay,
        )
    ]
    return design


# ----------------------------------------------------------------------
# Template mapping dispatch
# ----------------------------------------------------------------------
def template_map(circuit: StyledCircuit, params: PLBParams | None = None) -> MappedDesign:
    """Map a styled circuit onto LEs using its style template."""
    params = params if params is not None else PLBParams()
    if circuit.style in (LogicStyle.QDI_DUAL_RAIL, LogicStyle.QDI_ONE_OF_FOUR):
        return _map_qdi(circuit, params)
    if circuit.style is LogicStyle.MICROPIPELINE:
        return _map_micropipeline(circuit, params)
    if circuit.style is LogicStyle.WCHB:
        # WCHB stages are regular gate structures; the generic mapper handles
        # them well (each C-element pair becomes a looped LUT).
        return generic_map(circuit.netlist, params, style=circuit.style)
    raise MappingError(f"no template mapping for style {circuit.style}")


# ----------------------------------------------------------------------
# Generic cone-based mapping
# ----------------------------------------------------------------------
def _cell_output_table(netlist: Netlist, cell_name: str) -> TruthTable:
    """The truth table of a cell's (single) output over its input *net* names,
    with the state variable renamed to the output net for sequential cells."""
    cell = netlist.cell(cell_name)
    if len(cell.cell_type.outputs) != 1:
        raise MappingError(f"generic mapping only supports single-output cells ({cell_name})")
    output_pin = cell.cell_type.outputs[0]
    output_net = cell.connections[output_pin]
    table = cell.cell_type.table_for(output_pin)
    rename = {pin: cell.connections[pin] for pin in cell.cell_type.inputs if pin in table.inputs}
    if STATE_VARIABLE in table.inputs:
        rename[STATE_VARIABLE] = output_net
    targets = [rename.get(pin, pin) for pin in table.inputs]
    if len(set(targets)) != len(targets):
        # Several pins tied to the same net: collapse the duplicate columns
        # into one variable (XOR(a, a) is the constant 0, not a 2-input
        # function) instead of building a table with repeated input names.
        distinct = list(dict.fromkeys(targets))
        source = table

        def tied(*values: int) -> int:
            by_net = dict(zip(distinct, values))
            return source.evaluate(
                {pin: by_net[net] for pin, net in zip(source.inputs, targets)}
            )

        return TruthTable.from_function(distinct, tied, name=source.name)
    return table.rename(rename)


def generic_map(
    netlist: Netlist,
    params: PLBParams | None = None,
    style: LogicStyle | None = None,
    max_lut_inputs: int | None = None,
) -> MappedDesign:
    """Cone-based mapping of an arbitrary gate netlist onto LUT functions.

    Every primary output and every sequential-cell output becomes a LUT
    function; combinational fan-in is collapsed greedily while the support
    fits the LUT input budget.  Nets that remain on a cone frontier become
    LUT functions themselves.  The resulting single-function LEs are then
    combined by the packer.
    """
    params = params if params is not None else PLBParams()
    budget = max_lut_inputs if max_lut_inputs is not None else params.le.lut_inputs

    design = MappedDesign(name=netlist.name, params=params, style=style)
    design.primary_inputs = list(netlist.primary_inputs)
    design.primary_outputs = list(netlist.primary_outputs)

    # Delay cells become PDE assignments instead of LUT functions.
    delay_outputs: dict[str, MappedPDE] = {}
    for cell in netlist.iter_cells():
        if cell.type_name == "DELAY":
            output_net = cell.connections["z"]
            delay_outputs[output_net] = MappedPDE(
                name=f"pde_{cell.name}",
                input_net=cell.connections["a"],
                output_net=output_net,
                delay_ps=int(cell.attributes.get("delay", cell.cell_type.delay)),
            )
    design.pdes = list(delay_outputs.values())

    sequential_outputs = {
        cell.connections[cell.cell_type.outputs[0]]
        for cell in netlist.sequential_cells()
    }

    required: list[str] = []
    for net in netlist.primary_outputs:
        if net not in required:
            required.append(net)
    for net in sorted(sequential_outputs):
        if net not in required:
            required.append(net)
    for pde in design.pdes:
        if pde.input_net not in required and netlist.net(pde.input_net).driver is not None:
            required.append(pde.input_net)

    primary_inputs = set(design.primary_inputs)
    namer = NetNamer(netlist.nets)
    stats = DecompositionStats()

    mapped: dict[str, LEFunction] = {}
    # The worklist is a deque with a companion seen-set: list.pop(0) plus
    # `net not in queue` membership scans were O(n^2) on large netlists.
    queue: deque[str] = deque(required)
    queued: set[str] = set(required)

    def enqueue(net: str) -> None:
        if (
            net not in mapped
            and net not in primary_inputs
            and net not in delay_outputs
            and net not in queued
        ):
            queue.append(net)
            queued.add(net)

    while queue:
        target = queue.popleft()
        queued.discard(target)
        if target in mapped or target in primary_inputs or target in delay_outputs:
            continue
        driver = netlist.driver_of(target)
        if driver is None:
            continue  # undriven (will be caught by validation)
        driver_cell, _pin = driver
        table = _cell_output_table(netlist, driver_cell.name)

        # Greedy cone absorption; absorbed cones are remembered so the
        # decomposer can un-absorb them if the table ends up too wide.
        absorbed: dict[str, TruthTable] = {}
        progress = True
        while progress:
            progress = False
            for net in list(table.inputs):
                if net == target or net in primary_inputs:
                    continue
                if net in sequential_outputs or net in delay_outputs:
                    continue
                inner_driver = netlist.driver_of(net)
                if inner_driver is None:
                    continue
                inner_cell, _ = inner_driver
                if inner_cell.cell_type.is_sequential:
                    continue
                inner_table = _cell_output_table(netlist, inner_cell.name)
                candidate = table.compose({net: inner_table})
                if candidate.arity <= budget:
                    table = candidate
                    absorbed[net] = inner_table
                    progress = True

        fitted = _fit_function(
            LEFunction(output_net=target, table=table, role="logic"),
            budget,
            namer,
            stats,
            candidates=absorbed,
        )
        for function in fitted.intermediates:
            mapped[function.output_net] = function
        mapped[target] = fitted.final
        for net in fitted.reused_nets:
            enqueue(net)
        for function in fitted.functions:
            for net in function.input_nets:
                if net != function.output_net:
                    enqueue(net)

    design.les = build_mapped_les(mapped.values(), params)
    _stamp_decomposition(design, stats)
    return design
