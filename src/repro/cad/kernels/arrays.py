"""Lazy numpy views of the flattened RR-graph arrays.

:class:`~repro.core.rrgraph.RoutingResourceGraph` keeps its flattened
node/edge data as plain python lists so the pure-python kernels (and the
no-numpy install) never pay an import.  The numpy kernels need the same
data as contiguous arrays; this module attaches them to the graph once,
on first use, so repeated flows over a cached graph share one copy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.rrgraph import RoutingResourceGraph

_ATTR = "_kernel_arrays"


def graph_arrays(graph: "RoutingResourceGraph") -> Dict[str, Any]:
    """Return (building on first use) the numpy views of ``graph``.

    The returned dict holds ``base_cost``/``capacity``/``x``/``y`` and
    ``is_wire`` arrays mirroring the graph's flattened lists.  The graph
    is immutable after construction, so the attachment is idempotent and
    safe to share between flows and threads.
    """

    cached = getattr(graph, _ATTR, None)
    if cached is None:
        import numpy as np

        cached = {
            "base_cost": np.asarray(graph.base_cost, dtype=np.float64),
            "capacity": np.asarray(graph.capacity, dtype=np.int64),
            "x": np.asarray(graph.x, dtype=np.int64),
            "y": np.asarray(graph.y, dtype=np.int64),
            "is_wire": np.asarray(graph.is_wire, dtype=bool),
        }
        setattr(graph, _ATTR, cached)
    return cached
