"""Array-backed net-cost cache for the annealing placer.

:class:`NumpyNetCostCache` keeps the semantics, counters and float
results of the reference :class:`~repro.cad.place.NetCostCache`
bit-identical while restructuring the data layout for speed:

* every terminal gets an integer id; per-net terminal-id rows and flat
  ``x``/``y`` coordinate arrays replace name-keyed dict lookups in the
  bounding-box scan (the anneal's hottest function);
* a per-terminal-id net index replaces the name-keyed ``_nets_of`` dict
  in the propose path;
* full delta-HPWL recomputes (the audit/reference path) run as one
  vectorized ``reduceat`` sweep over the coordinate arrays.

Coordinates are integer-valued doubles well below 2**53, so every min /
max / sum here is exact regardless of evaluation order — which is what
lets the vectorized recompute return the reference value bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cad.place import NetCostCache, WirelengthObjective


class NumpyNetCostCache(NetCostCache):
    """Drop-in :class:`NetCostCache` with flat-array bookkeeping."""

    def __init__(
        self,
        nets: Dict[str, List[str]],
        plb_sites: Dict[str, Tuple[int, int]],
        io_positions: Dict[str, Tuple[float, float]],
        objective: Optional[WirelengthObjective] = None,
    ) -> None:
        # Flat terminal structures must exist before the base constructor
        # runs: it builds the initial boxes through our _scan_box override.
        self.plb_sites = plb_sites
        self.io_positions = io_positions
        tid_of: Dict[str, int] = {}
        names: List[str] = []
        term_tids: List[List[int]] = []
        for terminals in nets.values():
            row: List[int] = []
            for terminal in terminals:
                tid = tid_of.get(terminal)
                if tid is None:
                    tid = len(names)
                    tid_of[terminal] = tid
                    names.append(terminal)
                row.append(tid)
            term_tids.append(row)
        self._tid_of = tid_of
        self._tid_names = names
        self._io_net = [
            name[3:] if name.startswith("io:") else None for name in names
        ]
        self._term_tids = term_tids
        count = len(names)
        self._pos_x: List[Optional[float]] = [None] * count
        self._pos_y: List[Optional[float]] = [None] * count
        for tid in range(count):
            self._refresh_tid(tid)
        nets_of_tid: List[List[int]] = [[] for _ in range(count)]
        for index, row in enumerate(term_tids):
            for tid in row:
                nets_of_tid[tid].append(index)
        self._nets_of_tid: List[Tuple[int, ...]] = [
            tuple(indices) for indices in nets_of_tid
        ]
        # Per-net (a, b) terminal pair for two-terminal nets (None for
        # larger nets): the propose loop's dominant branch keys off it
        # without re-measuring the terminal row.
        self._two_pin: List[Optional[Tuple[int, int]]] = [
            (row[0], row[1]) if len(row) == 2 else None for row in term_tids
        ]
        self._pos_undo: List[Tuple[int, Optional[float], Optional[float]]] = []
        # Generation-stamped proposal slots: ``_slot_gen[i] == _prop_gen``
        # means net ``i`` was touched by the current proposal and its
        # working box lives in ``_slot_box[i]`` (``_slot_final`` marks
        # rescanned nets that take no further shifts).  Stamping avoids
        # allocating a dict + set per proposal on the anneal hot path.
        net_count = len(term_tids)
        self._prop_gen = 0
        self._slot_gen = [0] * net_count
        self._slot_final = [0] * net_count
        self._slot_box: List[Optional[list]] = [None] * net_count
        self._fold_gen = [0] * net_count
        self._plan: Optional[
            List[Tuple[int, Tuple[float, float], Tuple[float, float]]]
        ] = None
        self._plain = objective is None or type(objective) is WirelengthObjective
        self._flat = None  # lazy reduceat layout for vectorized recomputes
        self._starts = None
        super().__init__(nets, plb_sites, io_positions, objective=objective)

    # ------------------------------------------------------------------
    # Flat-coordinate maintenance
    # ------------------------------------------------------------------
    def _refresh_tid(self, tid: int) -> None:
        """Re-read one terminal's coordinates from the caller's dicts."""
        io_net = self._io_net[tid]
        if io_net is not None:
            position = self.io_positions.get(io_net)
            if position is None:
                self._pos_x[tid] = None
                self._pos_y[tid] = None
            else:
                self._pos_x[tid] = position[0]
                self._pos_y[tid] = position[1]
        else:
            x, y = self.plb_sites[self._tid_names[tid]]
            self._pos_x[tid] = float(x)
            self._pos_y[tid] = float(y)

    # ------------------------------------------------------------------
    # Hot-path overrides (same counters, same floats, flat lookups)
    # ------------------------------------------------------------------
    def _scan_box(self, index: int):
        self.evaluations += 1
        px = self._pos_x
        py = self._pos_y
        row = self._term_tids[index]
        if len(row) == 2:
            # Two-terminal nets dominate the netlists and always rescan
            # (either terminal is an extreme), so they get a branch-only
            # path: no intermediate lists, no count() passes.
            tid_a, tid_b = row
            x_a = px[tid_a]
            x_b = px[tid_b]
            if x_a is None or x_b is None:
                return None
            y_a = py[tid_a]
            y_b = py[tid_b]
            if x_a < x_b:
                xmin, xmax, cxmin, cxmax = x_a, x_b, 1, 1
            elif x_b < x_a:
                xmin, xmax, cxmin, cxmax = x_b, x_a, 1, 1
            else:
                xmin = xmax = x_a
                cxmin = cxmax = 2
            if y_a < y_b:
                ymin, ymax, cymin, cymax = y_a, y_b, 1, 1
            elif y_b < y_a:
                ymin, ymax, cymin, cymax = y_b, y_a, 1, 1
            else:
                ymin = ymax = y_a
                cymin = cymax = 2
            return [xmin, xmax, ymin, ymax, cxmin, cxmax, cymin, cymax]
        if len(row) == 3:
            # Unrolled three-terminal scan: no intermediate lists, counts
            # as boolean sums (same float equality as list.count).
            tid_a, tid_b, tid_c = row
            x_a = px[tid_a]
            x_b = px[tid_b]
            x_c = px[tid_c]
            if x_a is not None and x_b is not None and x_c is not None:
                y_a = py[tid_a]
                y_b = py[tid_b]
                y_c = py[tid_c]
                xmin = x_b if x_b < x_a else x_a
                if x_c < xmin:
                    xmin = x_c
                xmax = x_b if x_b > x_a else x_a
                if x_c > xmax:
                    xmax = x_c
                ymin = y_b if y_b < y_a else y_a
                if y_c < ymin:
                    ymin = y_c
                ymax = y_b if y_b > y_a else y_a
                if y_c > ymax:
                    ymax = y_c
                return [
                    xmin,
                    xmax,
                    ymin,
                    ymax,
                    (x_a == xmin) + (x_b == xmin) + (x_c == xmin),
                    (x_a == xmax) + (x_b == xmax) + (x_c == xmax),
                    (y_a == ymin) + (y_b == ymin) + (y_c == ymin),
                    (y_a == ymax) + (y_b == ymax) + (y_c == ymax),
                ]
        if len(row) == 4:
            tid_a, tid_b, tid_c, tid_d = row
            x_a = px[tid_a]
            x_b = px[tid_b]
            x_c = px[tid_c]
            x_d = px[tid_d]
            if (
                x_a is not None
                and x_b is not None
                and x_c is not None
                and x_d is not None
            ):
                y_a = py[tid_a]
                y_b = py[tid_b]
                y_c = py[tid_c]
                y_d = py[tid_d]
                xmin = x_b if x_b < x_a else x_a
                if x_c < xmin:
                    xmin = x_c
                if x_d < xmin:
                    xmin = x_d
                xmax = x_b if x_b > x_a else x_a
                if x_c > xmax:
                    xmax = x_c
                if x_d > xmax:
                    xmax = x_d
                ymin = y_b if y_b < y_a else y_a
                if y_c < ymin:
                    ymin = y_c
                if y_d < ymin:
                    ymin = y_d
                ymax = y_b if y_b > y_a else y_a
                if y_c > ymax:
                    ymax = y_c
                if y_d > ymax:
                    ymax = y_d
                return [
                    xmin,
                    xmax,
                    ymin,
                    ymax,
                    (x_a == xmin) + (x_b == xmin) + (x_c == xmin) + (x_d == xmin),
                    (x_a == xmax) + (x_b == xmax) + (x_c == xmax) + (x_d == xmax),
                    (y_a == ymin) + (y_b == ymin) + (y_c == ymin) + (y_d == ymin),
                    (y_a == ymax) + (y_b == ymax) + (y_c == ymax) + (y_d == ymax),
                ]
        xs = [px[tid] for tid in row]
        if None in xs:
            positioned = [tid for tid in row if px[tid] is not None]
            xs = [px[tid] for tid in positioned]
            ys = [py[tid] for tid in positioned]
        else:
            ys = [py[tid] for tid in row]
        if len(xs) < 2:
            return None
        xmin = min(xs)
        xmax = max(xs)
        ymin = min(ys)
        ymax = max(ys)
        return [
            xmin,
            xmax,
            ymin,
            ymax,
            xs.count(xmin),
            xs.count(xmax),
            ys.count(ymin),
            ys.count(ymax),
        ]

    def propose(self, affected: Iterable[int]) -> float:
        affected = list(affected)
        self._plan = None
        undo = []
        seen: set[int] = set()
        for index in affected:
            for tid in self._term_tids[index]:
                if tid in seen:
                    continue
                seen.add(tid)
                undo.append((tid, self._pos_x[tid], self._pos_y[tid]))
                self._refresh_tid(tid)
        self._pos_undo = undo
        return super().propose(affected)

    def propose_moves(
        self, moves: Sequence[Tuple[str, Tuple[float, float], Tuple[float, float]]]
    ) -> float:
        px = self._pos_x
        py = self._pos_y
        undo = []
        plan: List[Tuple[int, Tuple[float, float], Tuple[float, float]]] = []
        moved: set[int] = set()
        for terminal, old, new in moves:
            tid = self._tid_of.get(terminal)
            if tid is None:
                continue
            undo.append((tid, px[tid], py[tid]))
            # Apply every coordinate before any box work: a rescan must see
            # the final positions (the reference reads the mutated dicts).
            px[tid] = new[0]
            py[tid] = new[1]
            plan.append((tid, old, new))
            moved.add(tid)
        self._pos_undo = undo

        # ``order`` preserves the reference's first-touch order; the
        # stamped slot arrays carry the working boxes (see __init__).
        if not self._plain:
            # General objectives keep the reference propose/commit (same
            # dict-order float summation); they still get the flat-array
            # _scan_box.  Only the exact plain-HPWL path takes the fused
            # loop below.
            return super().propose_moves(moves)

        gen = self._prop_gen + 1
        self._prop_gen = gen
        slot_gen = self._slot_gen
        slot_final = self._slot_final
        slot_box = self._slot_box
        nets_of_tid = self._nets_of_tid
        two_pin = self._two_pin
        boxes = self.boxes
        costs = self.costs
        scan = self._scan_box
        bbox_hits = 0
        fast_evals = 0
        # Every cost here is an integer-valued double (see the module
        # docstring), so accumulating ``delta += new - prev`` per store —
        # re-stores subtracting their earlier contribution — is exact and
        # equals the reference's ordered (new_sum - old_sum).  ``commit``
        # replays ``plan`` to fold the slot boxes in.
        self._plan = plan
        delta = 0.0
        for tid, old, new in plan:
            old_x, old_y = old
            new_x, new_y = new
            for index in nets_of_tid[tid]:
                if slot_gen[index] == gen:
                    if slot_final[index] == gen:
                        continue
                    base = slot_box[index]
                    prev = (base[1] - base[0]) + (base[3] - base[2])
                else:
                    slot_gen[index] = gen
                    base = boxes[index]
                    prev = costs[index]
                    if base is None:
                        box = scan(index)
                        slot_box[index] = box
                        slot_final[index] = gen
                        if box is not None:
                            delta += (box[1] - box[0]) + (box[3] - box[2]) - prev
                        else:
                            delta -= prev
                        continue
                pair = two_pin[index]
                if pair is not None:
                    tid_a, tid_b = pair
                    other = tid_b if tid_a == tid else tid_a
                    if other not in moved:
                        # Fast path for the dominant case: a two-terminal
                        # net whose other endpoint did not move.  The new
                        # box is the two-point box of (new, other) however
                        # the reference gets there; only the counter
                        # differs — an axis shift succeeds exactly when
                        # that axis did not move or the old box was
                        # degenerate on it (both-shift success is a
                        # ``bbox_updates``, anything else is a rescan).
                        other_x = px[other]
                        other_y = py[other]
                        if (new_x == old_x or old_x == other_x) and (
                            new_y == old_y or old_y == other_y
                        ):
                            bbox_hits += 1
                        else:
                            fast_evals += 1
                        if new_x < other_x:
                            xmin, xmax, cxmin, cxmax = new_x, other_x, 1, 1
                        elif other_x < new_x:
                            xmin, xmax, cxmin, cxmax = other_x, new_x, 1, 1
                        else:
                            xmin = xmax = new_x
                            cxmin = cxmax = 2
                        if new_y < other_y:
                            ymin, ymax, cymin, cymax = new_y, other_y, 1, 1
                        elif other_y < new_y:
                            ymin, ymax, cymin, cymax = other_y, new_y, 1, 1
                        else:
                            ymin = ymax = new_y
                            cymin = cymax = 2
                        slot_box[index] = [
                            xmin, xmax, ymin, ymax, cxmin, cxmax, cymin, cymax,
                        ]
                        delta += (xmax - xmin) + (ymax - ymin) - prev
                        continue
                # Both-axis bbox shift, inlined from the reference
                # NetCostCache._shift_axis (x axis first, short-circuit on
                # the unresolvable remove-last-extreme case).
                b0, b1, b2, b3, c0, c1, c2, c3 = base
                ok = True
                if new_x != old_x:
                    if old_x == b0:
                        if c0 == 1:
                            ok = False
                        else:
                            c0 -= 1
                    if ok:
                        if old_x == b1:
                            if c1 == 1:
                                ok = False
                            else:
                                c1 -= 1
                        if ok:
                            if new_x < b0:
                                b0 = new_x
                                c0 = 1
                            elif new_x == b0:
                                c0 += 1
                            if new_x > b1:
                                b1 = new_x
                                c1 = 1
                            elif new_x == b1:
                                c1 += 1
                if ok and new_y != old_y:
                    if old_y == b2:
                        if c2 == 1:
                            ok = False
                        else:
                            c2 -= 1
                    if ok:
                        if old_y == b3:
                            if c3 == 1:
                                ok = False
                            else:
                                c3 -= 1
                        if ok:
                            if new_y < b2:
                                b2 = new_y
                                c2 = 1
                            elif new_y == b2:
                                c2 += 1
                            if new_y > b3:
                                b3 = new_y
                                c3 = 1
                            elif new_y == b3:
                                c3 += 1
                if ok:
                    bbox_hits += 1
                    slot_box[index] = [b0, b1, b2, b3, c0, c1, c2, c3]
                    delta += (b1 - b0) + (b3 - b2) - prev
                else:
                    box = scan(index)
                    slot_box[index] = box
                    slot_final[index] = gen
                    if box is not None:
                        delta += (box[1] - box[0]) + (box[3] - box[2]) - prev
                    else:
                        delta -= prev
        self.bbox_updates += bbox_hits
        self.evaluations += fast_evals
        return delta

    def commit(self) -> None:
        self._pos_undo = []
        plan = self._plan
        if plan is not None:
            # Replay the plan to find the touched nets (first-touch order,
            # deduplicated by the fold stamp — same order, same exact
            # floats as the reference's pending-list fold).
            self._plan = None
            gen = self._prop_gen
            fold_gen = self._fold_gen
            slot_box = self._slot_box
            nets_of_tid = self._nets_of_tid
            boxes = self.boxes
            costs = self.costs
            total = self.total
            for tid, _old, _new in plan:
                for index in nets_of_tid[tid]:
                    if fold_gen[index] == gen:
                        continue
                    fold_gen[index] = gen
                    box = slot_box[index]
                    boxes[index] = box
                    cost = (
                        0.0 if box is None else (box[1] - box[0]) + (box[3] - box[2])
                    )
                    total += cost - costs[index]
                    costs[index] = cost
            self.total = total
        super().commit()

    def reject(self) -> None:
        for tid, x, y in self._pos_undo:
            self._pos_x[tid] = x
            self._pos_y[tid] = y
        self._pos_undo = []
        self._plan = None
        self._pending = []  # the base reject, inlined (hot on rejected moves)

    # ------------------------------------------------------------------
    # Vectorized reference recomputes
    # ------------------------------------------------------------------
    def _reduceat_layout(self):
        import numpy as np

        if self._flat is None:
            flat: List[int] = []
            starts: List[int] = []
            for row in self._term_tids:
                starts.append(len(flat))
                flat.extend(row)
            self._flat = np.asarray(flat, dtype=np.int64)
            self._starts = np.asarray(starts, dtype=np.int64)
        return self._flat, self._starts

    def _vector_hpwl(self) -> float:
        import numpy as np

        flat, starts = self._reduceat_layout()
        px = np.fromiter(self._pos_x, dtype=np.float64, count=len(self._pos_x))
        py = np.fromiter(self._pos_y, dtype=np.float64, count=len(self._pos_y))
        xs = px[flat]
        ys = py[flat]
        dx = np.maximum.reduceat(xs, starts) - np.minimum.reduceat(xs, starts)
        dy = np.maximum.reduceat(ys, starts) - np.minimum.reduceat(ys, starts)
        # Integer-valued doubles: the sum is exact in any order, so this
        # equals the reference's sequential accumulation bit-for-bit.
        return float(np.sum(dx + dy))

    def full_recompute(self) -> float:
        if self._plain and None not in self._pos_x:
            return self._vector_hpwl()
        return super().full_recompute()

    def wirelength(self) -> float:
        if None not in self._pos_x:
            return self._vector_hpwl()
        return super().wirelength()
