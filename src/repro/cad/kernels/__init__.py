"""Pluggable array-native kernels for the CAD hot paths.

The placer and router each have two interchangeable backends:

* ``"python"`` — the pure-python reference implementation.  Always
  available, always tested, and the semantic ground truth.
* ``"numpy"`` — array-native kernels over the flattened RR-graph CSR
  arrays and per-net terminal coordinate arrays.  Requires the optional
  ``numpy`` extra (``pip install asyncfpga-repro[fast]``).

Both backends are bit-identical by construction: the numpy kernels
precompute exactly the same IEEE-754 double quantities the python inner
loops derive element-by-element, so bitstreams, summaries and every
router/placer counter match for a fixed seed.  ``"auto"`` selects numpy
when it is importable and silently falls back to python otherwise.
"""

from __future__ import annotations

KERNELS = ("auto", "python", "numpy")

try:  # pragma: no cover - exercised via numpy_available()
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised on no-numpy CI leg
    _numpy = None


class KernelUnavailableError(RuntimeError):
    """An explicitly requested kernel backend cannot be used."""


def numpy_available() -> bool:
    """Return True when the optional numpy dependency is importable."""

    return _numpy is not None


def resolve_kernel(kernel: str = "auto") -> str:
    """Resolve a kernel request to a concrete backend name.

    ``"auto"`` prefers numpy and falls back to python; an explicit
    ``"numpy"`` request raises :class:`KernelUnavailableError` when the
    dependency is absent so callers never silently get the wrong backend.
    """

    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    if kernel == "auto":
        return "numpy" if numpy_available() else "python"
    if kernel == "numpy" and not numpy_available():
        raise KernelUnavailableError(
            "kernel='numpy' requested but numpy is not installed; "
            "install the [fast] extra or use kernel='auto'"
        )
    return kernel
